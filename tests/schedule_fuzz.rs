//! Schedule fuzzing: rerun the distributed kernels under many permuted
//! message-delivery orders (the deterministic scheduler's seed drives both
//! token-handoff preemption and the per-rank `delivery_order` merge
//! permutations) and assert the *results* never move.
//!
//! What must be invariant across schedules: distance vectors (bitwise),
//! BFS level vectors, superstep counts, total traffic volume. What may
//! legitimately differ: parent choices among equal-length paths, message
//! interleaving, per-message timing. The suite pins the former and is
//! silent on the latter.
//!
//! What must be *byte-identical* for the same seed: everything — distances,
//! parents, `NetStats`, simulated clocks. That is the replay guarantee.

use graph500::baselines::dijkstra;
use graph500::gen::{KroneckerGenerator, KroneckerParams};
use graph500::graph::{Csr, Directedness, EdgeList, ShortestPaths};
use graph500::partition::{assemble_local_graph, Block1D};
use graph500::simnet::{Machine, MachineConfig, NetStats};
use graph500::sssp::{
    distributed_bfs, distributed_delta_stepping, Direction, Grid2DSssp, OptConfig, SsspRunStats,
};

/// The fuzz target: a scale-10 Kronecker graph (1024 vertices, 16384 edge
/// records) — big enough for multi-superstep frontiers on 8 ranks, small
/// enough to run under many schedules.
fn fuzz_graph() -> (EdgeList, u64) {
    let gen = KroneckerGenerator::new(KroneckerParams::graph500(10, 42));
    (gen.generate_all(), 1 << 10)
}

/// One deterministic-mode 1D run: distances gathered to rank 0, rank-0
/// kernel counters, per-rank network stats.
fn run_1d(
    el: &EdgeList,
    n: u64,
    p: usize,
    root: u64,
    opts: &OptConfig,
    sched_seed: u64,
) -> (ShortestPaths, SsspRunStats, Vec<NetStats>) {
    let report = Machine::new(MachineConfig::with_ranks(p).deterministic(sched_seed)).run(|ctx| {
        let part = Block1D::new(n, p);
        let m = el.len();
        let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
        let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
        let g = assemble_local_graph(ctx, mine.into_iter(), part);
        let (sp, stats) = distributed_delta_stepping(ctx, &g, root, opts);
        (sp.gather_to_all(ctx, g.part()), stats)
    });
    let stats_vec = report.stats.clone();
    let (sp, kstats) = report.results.into_iter().next().expect("rank 0");
    (sp, kstats, stats_vec)
}

fn assert_bitwise_equal_dists(a: &[f32], b: &[f32], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: length");
    for (v, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: vertex {v}: {x} vs {y}");
    }
}

/// ≥16 permuted delivery orders of the scale-10, 8-rank run: distances are
/// bitwise invariant, superstep counts invariant, and all equal Dijkstra.
#[test]
fn sixteen_schedules_zero_divergence_1d() {
    let (el, n) = fuzz_graph();
    let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
    let root = (0..n)
        .max_by_key(|&v| csr.degree(v as usize))
        .expect("nonempty");
    let oracle = dijkstra(&csr, root);
    let opts = OptConfig::all_on();

    let (base_sp, base_stats, _) = run_1d(&el, n, 8, root, &opts, 0);
    assert!(
        base_sp.distances_match(&oracle, 1e-4),
        "canonical schedule vs Dijkstra"
    );

    for sched_seed in 1..=16u64 {
        let (sp, stats, _) = run_1d(&el, n, 8, root, &opts, sched_seed);
        assert_bitwise_equal_dists(&base_sp.dist, &sp.dist, &format!("seed {sched_seed}"));
        assert_eq!(
            base_stats.supersteps, stats.supersteps,
            "seed {sched_seed}: superstep count moved"
        );
        assert_eq!(
            base_stats.buckets, stats.buckets,
            "seed {sched_seed}: bucket count moved"
        );
        assert!(
            sp.distances_match(&oracle, 1e-4),
            "seed {sched_seed} vs Dijkstra"
        );
    }
}

/// The replay guarantee: the same schedule seed reproduces everything
/// byte-for-byte — distances, parents, kernel counters, and per-rank
/// `NetStats` including simulated-time-derived fields.
#[test]
fn same_seed_replays_byte_identically() {
    let (el, n) = fuzz_graph();
    let opts = OptConfig::all_on();
    for sched_seed in [0u64, 0xFEED, 0xDEAD_BEEF] {
        let (sp_a, st_a, net_a) = run_1d(&el, n, 8, 1, &opts, sched_seed);
        let (sp_b, st_b, net_b) = run_1d(&el, n, 8, 1, &opts, sched_seed);
        assert_bitwise_equal_dists(&sp_a.dist, &sp_b.dist, &format!("replay {sched_seed:#x}"));
        assert_eq!(sp_a.parent, sp_b.parent, "replay {sched_seed:#x}: parents");
        assert_eq!(st_a, st_b, "replay {sched_seed:#x}: kernel counters");
        assert_eq!(net_a, net_b, "replay {sched_seed:#x}: NetStats");
    }
}

/// The *collective* structure is schedule-invariant: barrier and
/// collective-round counts are a function of the superstep structure, which
/// fuzzing must not move. Point-to-point volume MAY legitimately shift
/// between schedules (relaxation order changes which improvement updates
/// clear the send filter — that sensitivity is the point of fuzzing), but
/// it must never shift between replays of the same seed (covered by
/// `same_seed_replays_byte_identically`).
#[test]
fn collective_structure_is_schedule_invariant() {
    let (el, n) = fuzz_graph();
    let opts = OptConfig::all_on();
    let (_, _, base_net) = run_1d(&el, n, 4, 1, &opts, 0);
    let base_barriers: u64 = base_net.iter().map(|s| s.barriers).sum();
    let base_colls: u64 = base_net.iter().map(|s| s.collectives).sum();
    for sched_seed in [3u64, 7, 11, 15] {
        let (_, _, net) = run_1d(&el, n, 4, 1, &opts, sched_seed);
        let barriers: u64 = net.iter().map(|s| s.barriers).sum();
        let colls: u64 = net.iter().map(|s| s.collectives).sum();
        assert_eq!(
            base_barriers, barriers,
            "seed {sched_seed}: barrier count moved"
        );
        assert_eq!(
            base_colls, colls,
            "seed {sched_seed}: collective count moved"
        );
    }
}

/// Every optimization path (coalescing, dedup, compression, fusion, pull
/// direction) has its own merge loops — fuzz each toggle class.
#[test]
fn every_opt_path_is_schedule_invariant() {
    let (el, n) = fuzz_graph();
    let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
    let oracle = dijkstra(&csr, 1);
    let configs: Vec<(&str, OptConfig)> = vec![
        ("all_off", OptConfig::all_off()),
        ("no_coalescing", OptConfig::all_on().without_coalescing()),
        ("no_dedup", OptConfig::all_on().without_dedup()),
        ("no_compression", OptConfig::all_on().without_compression()),
        ("no_fusion", OptConfig::all_on().without_fusion()),
        ("pull", OptConfig::all_on().with_direction(Direction::Pull)),
    ];
    for (name, opts) in configs {
        let (base_sp, base_stats, _) = run_1d(&el, n, 8, 1, &opts, 0);
        assert!(base_sp.distances_match(&oracle, 1e-4), "{name} vs Dijkstra");
        for sched_seed in [5u64, 9] {
            let (sp, stats, _) = run_1d(&el, n, 8, 1, &opts, sched_seed);
            assert_bitwise_equal_dists(&base_sp.dist, &sp.dist, &format!("{name}/{sched_seed}"));
            assert_eq!(
                base_stats.supersteps, stats.supersteps,
                "{name}/{sched_seed}"
            );
        }
    }
}

/// The 2D kernel has different merge points (row broadcast flatten,
/// diagonal apply) — fuzz those too, on a 3×3 grid.
#[test]
fn grid_2d_is_schedule_invariant() {
    let (el, n) = fuzz_graph();
    let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
    let root = 1u64;
    let oracle = dijkstra(&csr, root);
    let p = 9usize;

    let run = |sched_seed: u64| {
        Machine::new(MachineConfig::with_ranks(p).deterministic(sched_seed))
            .run(|ctx| {
                let m = el.len();
                let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
                let mine = (lo..hi).map(|i| el.get(i));
                let mut g = Grid2DSssp::build(ctx, n, mine, 0.25);
                let stats = g.run(ctx, root);
                (g.gather(ctx), stats.supersteps)
            })
            .results
            .into_iter()
            .next()
            .expect("rank 0")
    };

    let (base_sp, base_supersteps) = run(0);
    assert!(
        base_sp.distances_match(&oracle, 1e-4),
        "2D canonical vs Dijkstra"
    );
    for sched_seed in [1u64, 2, 6, 13] {
        let (sp, supersteps) = run(sched_seed);
        assert_bitwise_equal_dists(&base_sp.dist, &sp.dist, &format!("2D seed {sched_seed}"));
        assert_eq!(
            base_supersteps, supersteps,
            "2D seed {sched_seed}: supersteps moved"
        );
    }
}

/// BFS levels (and superstep counts) are schedule-invariant in all three
/// direction modes; parents may differ between schedules.
#[test]
fn bfs_is_schedule_invariant() {
    let (el, n) = fuzz_graph();
    let p = 8usize;
    for dir in [Direction::Push, Direction::Pull, Direction::Hybrid] {
        let run = |sched_seed: u64| {
            Machine::new(MachineConfig::with_ranks(p).deterministic(sched_seed))
                .run(|ctx| {
                    let part = Block1D::new(n, p);
                    let m = el.len();
                    let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
                    let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
                    let g = assemble_local_graph(ctx, mine.into_iter(), part);
                    let (res, stats) = distributed_bfs(ctx, &g, 1, dir);
                    let (level, _parent) = res.gather_to_all(ctx, g.part());
                    (level, stats.supersteps)
                })
                .results
                .into_iter()
                .next()
                .expect("rank 0")
        };
        let (base_levels, base_supersteps) = run(0);
        for sched_seed in [4u64, 8, 12] {
            let (levels, supersteps) = run(sched_seed);
            assert_eq!(
                base_levels, levels,
                "{dir:?} seed {sched_seed}: levels moved"
            );
            assert_eq!(
                base_supersteps, supersteps,
                "{dir:?} seed {sched_seed}: supersteps moved"
            );
        }
    }
}

/// Threads mode and the canonical deterministic schedule (seed 0) are the
/// same algorithm over the same value stream — full-kernel check that the
/// serialized scheduler does not change results or simulated accounting.
#[test]
fn threads_and_canonical_deterministic_agree() {
    let (el, n) = fuzz_graph();
    let opts = OptConfig::all_on();
    let p = 4usize;
    let spmd = |ctx: &mut graph500::simnet::RankCtx| {
        let part = Block1D::new(n, p);
        let m = el.len();
        let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
        let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
        let g = assemble_local_graph(ctx, mine.into_iter(), part);
        let (sp, stats) = distributed_delta_stepping(ctx, &g, 1, &opts);
        (sp.gather_to_all(ctx, g.part()), stats)
    };
    let threads = Machine::new(MachineConfig::with_ranks(p)).run(spmd);
    let det = Machine::new(MachineConfig::with_ranks(p).deterministic(0)).run(spmd);
    let (sp_t, st_t) = threads.results.into_iter().next().expect("rank 0");
    let (sp_d, st_d) = det.results.into_iter().next().expect("rank 0");
    assert_bitwise_equal_dists(&sp_t.dist, &sp_d.dist, "threads vs det(0)");
    assert_eq!(sp_t.parent, sp_d.parent);
    assert_eq!(st_t, st_d);
    assert_eq!(threads.stats, det.stats, "per-rank NetStats");
}
