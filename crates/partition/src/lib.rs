//! # g500-partition — distributing the graph across ranks
//!
//! At 2^42 vertices nobody holds the graph; each rank owns a slice of the
//! vertex set plus the out-edges of its vertices. This crate provides the
//! ownership maps ([`VertexPartition`] implementations), the degree-aware
//! hub relabeling that tames Kronecker skew, a 2D edge-partition map for the
//! design-space comparison, and the SPMD assembly routine that turns
//! independently generated edge blocks into per-rank CSRs over `simnet`.
#![warn(missing_docs)]

pub mod assemble;
pub mod dist_result;
pub mod hybrid;
pub mod part1d;
pub mod part2d;

pub use assemble::{assemble_local_graph, LocalGraph};
pub use dist_result::DistShortestPaths;
pub use hybrid::{degree_aware_relabel, HybridPartition, SparseHubRelabel};
pub use part1d::{Block1D, Cyclic1D};
pub use part2d::EdgePartition2D;

use g500_graph::VertexId;

/// An ownership map: which rank owns each global vertex, and the bijection
/// between a rank's local index space and the global id space.
///
/// Invariants every implementation upholds (property-tested):
/// * `owner(v) < num_ranks()` for all `v < num_vertices()`,
/// * `to_global(owner(v), to_local(v)) == v`,
/// * `to_local(to_global(r, l)) == l` for `l < local_count(r)`,
/// * `Σ_r local_count(r) == num_vertices()`.
pub trait VertexPartition: Clone + Send + Sync {
    /// Number of ranks the vertex set is split over.
    fn num_ranks(&self) -> usize;

    /// Global vertex count.
    fn num_vertices(&self) -> u64;

    /// Owning rank of global vertex `v`.
    fn owner(&self, v: VertexId) -> usize;

    /// Local index of `v` within its owner's slice.
    fn to_local(&self, v: VertexId) -> usize;

    /// Global id of local index `l` on rank `rank`.
    fn to_global(&self, rank: usize, local: usize) -> VertexId;

    /// Number of vertices owned by `rank`.
    fn local_count(&self, rank: usize) -> usize;
}
