//! The bucket priority structure of delta-stepping.
//!
//! Distances are binned into buckets of width Δ; bucket `k` holds vertices
//! with tentative distance in `[kΔ, (k+1)Δ)`. Entries are *lazy*: a vertex
//! whose distance improves is simply inserted again into its new bucket, and
//! stale entries are filtered at pop time by re-checking the vertex's
//! current bucket — the standard trick that avoids a decrease-key.

use g500_graph::Weight;

/// A lazy bucket queue over local vertex indices.
#[derive(Clone, Debug)]
pub struct BucketQueue {
    delta: Weight,
    /// `buckets[k]` holds (possibly stale) vertices for bucket index `k`.
    buckets: Vec<Vec<u32>>,
    /// Index of the lowest bucket that may be non-empty.
    cursor: usize,
    /// Number of live entries (upper bound; staleness makes it approximate,
    /// exact emptiness is checked by scanning from `cursor`).
    entries: usize,
}

impl BucketQueue {
    /// New queue with bucket width `delta`.
    pub fn new(delta: Weight) -> Self {
        assert!(
            delta > 0.0 && delta.is_finite(),
            "delta must be positive and finite"
        );
        Self {
            delta,
            buckets: Vec::new(),
            cursor: 0,
            entries: 0,
        }
    }

    /// Bucket width.
    #[inline]
    pub fn delta(&self) -> Weight {
        self.delta
    }

    /// Bucket index of distance `d`.
    #[inline]
    pub fn bucket_of(&self, d: Weight) -> usize {
        debug_assert!(d.is_finite() && d >= 0.0);
        (d / self.delta) as usize
    }

    /// Insert vertex `v` with tentative distance `d` (lazy; duplicates OK).
    pub fn insert(&mut self, v: u32, d: Weight) {
        let k = self.bucket_of(d);
        if k >= self.buckets.len() {
            self.buckets.resize_with(k + 1, Vec::new);
        }
        self.buckets[k].push(v);
        self.entries += 1;
        if k < self.cursor {
            self.cursor = k;
        }
    }

    /// Lowest bucket index that currently has entries, advancing the cursor
    /// past drained buckets. `None` when the queue is empty.
    pub fn min_bucket(&mut self) -> Option<usize> {
        while self.cursor < self.buckets.len() {
            if !self.buckets[self.cursor].is_empty() {
                return Some(self.cursor);
            }
            self.cursor += 1;
        }
        None
    }

    /// Remove and return the raw (possibly stale) contents of bucket `k`.
    /// Callers must filter entries against the current distance array.
    pub fn take_bucket(&mut self, k: usize) -> Vec<u32> {
        if k >= self.buckets.len() {
            return Vec::new();
        }
        let v = std::mem::take(&mut self.buckets[k]);
        self.entries -= v.len();
        v
    }

    /// Raw size of bucket `k` including stale entries.
    pub fn bucket_len(&self, k: usize) -> usize {
        self.buckets.get(k).map_or(0, Vec::len)
    }

    /// Remove and return *all* remaining entries of *all* buckets (used by
    /// tail fusion, which stops caring about bucket order).
    pub fn drain_all(&mut self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.entries);
        for b in self.buckets.iter_mut().skip(self.cursor) {
            out.append(b);
        }
        self.entries = 0;
        out
    }

    /// Total entries across buckets, counting stale duplicates.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no entries remain (stale or otherwise).
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        let q = BucketQueue::new(0.5);
        assert_eq!(q.bucket_of(0.0), 0);
        assert_eq!(q.bucket_of(0.49), 0);
        assert_eq!(q.bucket_of(0.5), 1);
        assert_eq!(q.bucket_of(2.75), 5);
    }

    #[test]
    fn insert_and_take_in_order() {
        let mut q = BucketQueue::new(1.0);
        q.insert(10, 2.5);
        q.insert(20, 0.5);
        q.insert(30, 2.9);
        assert_eq!(q.min_bucket(), Some(0));
        assert_eq!(q.take_bucket(0), vec![20]);
        assert_eq!(q.min_bucket(), Some(2));
        let mut b2 = q.take_bucket(2);
        b2.sort_unstable();
        assert_eq!(b2, vec![10, 30]);
        assert_eq!(q.min_bucket(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn reinsertion_moves_cursor_back() {
        let mut q = BucketQueue::new(1.0);
        q.insert(1, 5.0);
        assert_eq!(q.min_bucket(), Some(5));
        // an improvement re-inserts at a lower bucket
        q.insert(1, 0.5);
        assert_eq!(q.min_bucket(), Some(0));
    }

    #[test]
    fn drain_all_empties_everything() {
        let mut q = BucketQueue::new(0.25);
        for i in 0..10u32 {
            q.insert(i, i as f32 * 0.3);
        }
        assert_eq!(q.len(), 10);
        let mut all = q.drain_all();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<u32>>());
        assert!(q.is_empty());
        assert_eq!(q.min_bucket(), None);
    }

    #[test]
    fn take_out_of_range_is_empty() {
        let mut q = BucketQueue::new(1.0);
        assert_eq!(q.take_bucket(99), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn bad_delta_rejected() {
        BucketQueue::new(0.0);
    }
}
