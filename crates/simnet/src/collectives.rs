//! Collective operations built from point-to-point messages.
//!
//! Every collective is implemented as an explicit message schedule over
//! [`RankCtx`] sends/receives — the same layering as a real MPI — so its
//! virtual-time cost *emerges* from the LogGP model rather than being a
//! formula: a barrier on 64 ranks costs ~2·log₂(64) message latencies
//! because that is what the binomial trees below actually do.
//!
//! Tag discipline: each collective invocation claims a fresh sequence number
//! from the rank-local counter. SPMD programs call collectives in the same
//! order on every rank, so sequence numbers agree globally and back-to-back
//! collectives can never confuse each other's messages even when some ranks
//! run far ahead.

use crate::rank::{RankCtx, Tag, TrafficClass, TAG_COLLECTIVE_BASE};
use crate::trace::TraceCode;
use crate::transport::TransportError;
use crate::wire::{decode_vec_checked, encode_slice, Wire};

impl RankCtx {
    fn coll_tag(&mut self, round: u64) -> Tag {
        TAG_COLLECTIVE_BASE | (self.coll_seq << 12) | round
    }

    /// Advance the collective sequence number (tag namespace) and count the
    /// completed primitive phase. An `allreduce` is two primitive phases
    /// (reduce + bcast), and `barrier` additionally bumps the barrier
    /// counter; [`crate::NetStats`] documents that convention.
    fn next_coll(&mut self) {
        self.coll_seq += 1;
        self.bump_collective();
    }

    /// Open a collective span tagged with the current sequence number.
    /// Composite collectives (allreduce = reduce + bcast, barrier =
    /// allreduce, reduce_scatter = alltoallv + local reduce) nest their
    /// building blocks' spans inside their own, so summary totals are
    /// *inclusive* virtual time.
    fn coll_trace_begin(&mut self, code: TraceCode) {
        let seq = self.coll_seq;
        self.trace_begin(code, seq, 0);
    }

    /// Close the span opened by [`RankCtx::coll_trace_begin`]. Must be
    /// called on **every** exit path of the collective.
    fn coll_trace_end(&mut self, code: TraceCode) {
        let seq = self.coll_seq;
        self.trace_end(code, seq, 0);
    }

    fn send_coll<T: Wire>(&mut self, dest: usize, tag: Tag, items: &[T]) {
        self.send_bytes_class(dest, tag, encode_slice(items), TrafficClass::Collective);
    }

    fn recv_coll<T: Wire>(&mut self, src: usize, tag: Tag) -> Vec<T> {
        let buf = self.recv_bytes_class(src, tag);
        decode_vec_checked(&buf).unwrap_or_else(|e| {
            panic!(
                "rank {}: collective payload type mismatch: {}",
                self.rank(),
                TransportError::Decode {
                    src,
                    dst: self.rank(),
                    tag,
                    len: e.len,
                    elem_size: e.elem_size,
                }
            )
        })
    }

    /// Reduce all ranks' `value` to rank 0 with the associative, commutative
    /// `combine`, via a binomial tree (⌈log₂ p⌉ rounds). Non-roots return
    /// `None`.
    pub fn reduce_to_root<T: Wire + Clone>(
        &mut self,
        value: T,
        combine: impl Fn(&T, &T) -> T,
    ) -> Option<T> {
        let p = self.size();
        let me = self.rank();
        self.coll_trace_begin(TraceCode::ReduceToRoot);
        let mut acc = value;
        let mut round = 0u64;
        let mut step = 1usize;
        while step < p {
            let tag = self.coll_tag(round);
            if me & step != 0 {
                // I hand off my partial and am done.
                let dest = me - step;
                self.send_coll(dest, tag, &[acc.clone()]);
                // Drain remaining rounds: nothing to do; exit loop.
                self.next_coll();
                self.coll_trace_end(TraceCode::ReduceToRoot);
                return None;
            }
            let partner = me + step;
            if partner < p {
                let other: Vec<T> = self.recv_coll(partner, tag);
                assert_eq!(other.len(), 1);
                acc = combine(&acc, &other[0]);
            }
            step <<= 1;
            round += 1;
        }
        self.next_coll();
        self.coll_trace_end(TraceCode::ReduceToRoot);
        if me == 0 {
            Some(acc)
        } else {
            None
        }
    }

    /// Broadcast `value` from rank 0 to everyone via a binomial tree.
    pub fn bcast<T: Wire + Clone>(&mut self, value: Option<T>) -> T {
        let p = self.size();
        let me = self.rank();
        self.coll_trace_begin(TraceCode::Bcast);
        // Highest power of two covering p.
        let mut top = 1usize;
        while top < p {
            top <<= 1;
        }
        let mut have: Option<T> = if me == 0 {
            Some(value.expect("rank 0 must supply the broadcast value"))
        } else {
            None
        };
        let mut round = 0u64;
        let mut step = top;
        while step >= 1 {
            let tag = self.coll_tag(round);
            if have.is_some() {
                let dest = me + step;
                if me.is_multiple_of(step * 2) && dest < p && step >= 1 {
                    let v = have.clone().expect("checked");
                    self.send_coll(dest, tag, &[v]);
                }
            } else if me % (step * 2) == step {
                let src = me - step;
                let mut got: Vec<T> = self.recv_coll(src, tag);
                assert_eq!(got.len(), 1);
                have = got.pop();
            }
            if step == 1 {
                break;
            }
            step >>= 1;
            round += 1;
        }
        self.next_coll();
        self.coll_trace_end(TraceCode::Bcast);
        have.expect("broadcast tree reached every rank")
    }

    /// Allreduce: combine every rank's `value`; every rank gets the result.
    pub fn allreduce<T: Wire + Clone>(&mut self, value: T, combine: impl Fn(&T, &T) -> T) -> T {
        self.coll_trace_begin(TraceCode::Allreduce);
        let root = self.reduce_to_root(value, combine);
        let out = self.bcast(root);
        self.coll_trace_end(TraceCode::Allreduce);
        out
    }

    /// Allreduce sum of `u64`.
    pub fn allreduce_sum(&mut self, v: u64) -> u64 {
        self.allreduce(v, |a, b| a + b)
    }

    /// Allreduce sum of `f64`.
    pub fn allreduce_sum_f64(&mut self, v: f64) -> f64 {
        self.allreduce(v, |a, b| a + b)
    }

    /// Allreduce min of `u64`.
    pub fn allreduce_min(&mut self, v: u64) -> u64 {
        self.allreduce(v, |a, b| *a.min(b))
    }

    /// Allreduce max of `u64`.
    pub fn allreduce_max(&mut self, v: u64) -> u64 {
        self.allreduce(v, |a, b| *a.max(b))
    }

    /// Allreduce logical-and (consensus "everyone done?" check).
    pub fn allreduce_and(&mut self, v: bool) -> bool {
        self.allreduce(v as u64, |a, b| a & b) == 1
    }

    /// Barrier: no payload, everyone leaves only after everyone entered.
    pub fn barrier(&mut self) {
        self.coll_trace_begin(TraceCode::Barrier);
        self.allreduce(0u8, |_, _| 0u8);
        self.bump_barrier();
        self.coll_trace_end(TraceCode::Barrier);
    }

    /// Ring allgather: every rank contributes a variably-sized block of
    /// `T`s; returns all blocks indexed by rank. `p − 1` rounds, each rank
    /// forwarding the block it received the previous round — the classic
    /// bandwidth-optimal schedule.
    pub fn allgatherv<T: Wire + Clone>(&mut self, mine: &[T]) -> Vec<Vec<T>> {
        let p = self.size();
        let me = self.rank();
        self.coll_trace_begin(TraceCode::Allgatherv);
        let mut blocks: Vec<Option<Vec<T>>> = vec![None; p];
        blocks[me] = Some(mine.to_vec());
        let next = (me + 1) % p;
        let prev = (me + p - 1) % p;
        for step in 0..p.saturating_sub(1) {
            let tag = self.coll_tag(step as u64);
            let send_idx = (me + p - step) % p;
            let to_send = blocks[send_idx].clone().expect("block owned by schedule");
            self.send_coll(next, tag, &to_send);
            let recv_idx = (prev + p - step) % p;
            let got: Vec<T> = self.recv_coll(prev, tag);
            blocks[recv_idx] = Some(got);
        }
        self.next_coll();
        self.coll_trace_end(TraceCode::Allgatherv);
        blocks
            .into_iter()
            .map(|b| b.expect("ring covered all ranks"))
            .collect()
    }

    /// Personalised all-to-all: `out[d]` is delivered to rank `d`; returns
    /// the blocks received, indexed by source rank (own block moved across
    /// directly, free of network charge).
    pub fn alltoallv<T: Wire + Clone>(&mut self, out: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let p = self.size();
        let me = self.rank();
        assert_eq!(out.len(), p, "alltoallv needs one buffer per rank");
        self.coll_trace_begin(TraceCode::Alltoallv);
        let tag = self.coll_tag(0);
        let mut result: Vec<Vec<T>> = Vec::with_capacity(p);
        let mut own: Option<Vec<T>> = None;
        for (d, buf) in out.into_iter().enumerate() {
            if d == me {
                own = Some(buf);
            } else {
                self.send_coll(d, tag, &buf);
            }
        }
        for s in 0..p {
            if s == me {
                result.push(own.take().expect("own block set above"));
            } else {
                result.push(self.recv_coll(s, tag));
            }
        }
        self.next_coll();
        self.coll_trace_end(TraceCode::Alltoallv);
        result
    }

    /// Gather all ranks' single value at rank 0 (others return `None`).
    pub fn gather_to_root<T: Wire + Clone>(&mut self, value: T) -> Option<Vec<T>> {
        let p = self.size();
        let me = self.rank();
        self.coll_trace_begin(TraceCode::GatherToRoot);
        let tag = self.coll_tag(0);
        if me == 0 {
            let mut all = Vec::with_capacity(p);
            all.push(value);
            for s in 1..p {
                all.push(self.recv_one_coll::<T>(s, tag));
            }
            self.next_coll();
            self.coll_trace_end(TraceCode::GatherToRoot);
            Some(all)
        } else {
            self.send_coll(0, tag, &[value]);
            self.next_coll();
            self.coll_trace_end(TraceCode::GatherToRoot);
            None
        }
    }

    fn recv_one_coll<T: Wire>(&mut self, src: usize, tag: Tag) -> T {
        let mut v: Vec<T> = self.recv_coll(src, tag);
        assert_eq!(v.len(), 1);
        v.pop().expect("length checked")
    }

    /// Exclusive prefix scan: rank `r` receives
    /// `v₀ ⊕ … ⊕ v_{r−1}` (the identity on rank 0). `combine` must be an
    /// **associative** monoid operation with `identity` as its unit (it
    /// need not be commutative — rank order is preserved). The classic use
    /// is assigning disjoint global id ranges from local counts.
    /// Hillis–Steele schedule: ⌈log₂ p⌉ rounds.
    pub fn exscan<T: Wire + Clone>(
        &mut self,
        value: T,
        identity: T,
        combine: impl Fn(&T, &T) -> T,
    ) -> T {
        let p = self.size();
        let me = self.rank();
        self.coll_trace_begin(TraceCode::Exscan);
        // acc = inclusive scan of my prefix; result = exclusive part
        let mut acc = value;
        let mut result = identity;
        let mut round = 0u64;
        let mut step = 1usize;
        while step < p {
            let tag = self.coll_tag(round);
            if me + step < p {
                self.send_coll(me + step, tag, &[acc.clone()]);
            }
            if me >= step {
                let got: T = self.recv_one_coll(me - step, tag);
                result = combine(&got, &result);
                acc = combine(&got, &acc);
            }
            step <<= 1;
            round += 1;
        }
        self.next_coll();
        self.coll_trace_end(TraceCode::Exscan);
        result
    }

    /// Exclusive prefix sum of `u64` (id-range assignment).
    pub fn exscan_sum(&mut self, v: u64) -> u64 {
        self.exscan(v, 0, |a, b| a + b)
    }

    /// Reduce-scatter: element-wise reduce `p` same-length blocks across
    /// ranks, then hand rank `r` the `r`-th reduced block. Implemented as
    /// an all-to-all of per-destination blocks followed by a local reduce —
    /// the "pairwise exchange" schedule, whose traffic (each rank ships
    /// p−1 blocks) is what a real implementation pays.
    pub fn reduce_scatter<T: Wire + Clone>(
        &mut self,
        blocks: Vec<Vec<T>>,
        combine: impl Fn(&T, &T) -> T,
    ) -> Vec<T> {
        let p = self.size();
        assert_eq!(blocks.len(), p, "one block per destination rank");
        self.coll_trace_begin(TraceCode::ReduceScatter);
        let received = self.alltoallv(blocks);
        let mut it = received.into_iter();
        let mut acc = it.next().expect("p >= 1 blocks");
        for block in it {
            assert_eq!(block.len(), acc.len(), "reduce_scatter blocks must align");
            for (a, b) in acc.iter_mut().zip(&block) {
                *a = combine(a, b);
            }
        }
        self.next_coll();
        self.coll_trace_end(TraceCode::ReduceScatter);
        acc
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::{Machine, MachineConfig};

    /// Every collective is exercised at both power-of-two and ragged rank
    /// counts — the binomial trees and the ring have different edge cases.
    const SIZES: [usize; 5] = [1, 2, 3, 5, 8];

    #[test]
    fn allreduce_sum_and_min_max() {
        for p in SIZES {
            let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
                let me = ctx.rank() as u64;
                (
                    ctx.allreduce_sum(me + 1),
                    ctx.allreduce_min(me + 10),
                    ctx.allreduce_max(me + 10),
                )
            });
            let expect_sum: u64 = (1..=p as u64).sum();
            for r in rep.results {
                assert_eq!(r, (expect_sum, 10, 9 + p as u64), "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_and_consensus() {
        let rep = Machine::new(MachineConfig::with_ranks(4))
            .run(|ctx| (ctx.allreduce_and(true), ctx.allreduce_and(ctx.rank() != 2)));
        for r in rep.results {
            assert_eq!(r, (true, false));
        }
    }

    #[test]
    fn allreduce_f64() {
        let rep = Machine::new(MachineConfig::with_ranks(5))
            .run(|ctx| ctx.allreduce_sum_f64(0.5 * (ctx.rank() as f64 + 1.0)));
        for r in rep.results {
            assert!((r - 7.5).abs() < 1e-12);
        }
    }

    #[test]
    fn bcast_from_root() {
        for p in SIZES {
            let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
                let v = if ctx.rank() == 0 { Some(1234u64) } else { None };
                ctx.bcast(v)
            });
            assert!(rep.results.iter().all(|&v| v == 1234), "p={p}");
        }
    }

    #[test]
    fn reduce_to_root_only_root_gets_value() {
        let rep = Machine::new(MachineConfig::with_ranks(6))
            .run(|ctx| ctx.reduce_to_root(ctx.rank() as u64, |a, b| a + b));
        assert_eq!(rep.results[0], Some(15));
        assert!(rep.results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn allgatherv_variable_blocks() {
        for p in SIZES {
            let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
                let me = ctx.rank() as u64;
                // rank r contributes r+1 copies of r
                let mine: Vec<u64> = vec![me; ctx.rank() + 1];
                ctx.allgatherv(&mine)
            });
            for blocks in rep.results {
                assert_eq!(blocks.len(), p);
                for (r, b) in blocks.iter().enumerate() {
                    assert_eq!(b, &vec![r as u64; r + 1], "p={p} block {r}");
                }
            }
        }
    }

    #[test]
    fn alltoallv_personalized_exchange() {
        for p in SIZES {
            let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
                let me = ctx.rank() as u64;
                // message to rank d encodes (me, d)
                let out: Vec<Vec<(u64, u64)>> =
                    (0..ctx.size()).map(|d| vec![(me, d as u64)]).collect();
                ctx.alltoallv(out)
            });
            for (r, blocks) in rep.results.iter().enumerate() {
                for (s, b) in blocks.iter().enumerate() {
                    assert_eq!(b, &vec![(s as u64, r as u64)], "p={p}");
                }
            }
        }
    }

    #[test]
    fn gather_to_root_collects_in_rank_order() {
        let rep = Machine::new(MachineConfig::with_ranks(5))
            .run(|ctx| ctx.gather_to_root(ctx.rank() as u64 * 2));
        assert_eq!(rep.results[0], Some(vec![0, 2, 4, 6, 8]));
        assert!(rep.results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn barrier_counts_and_back_to_back_collectives() {
        let rep = Machine::new(MachineConfig::with_ranks(4)).run(|ctx| {
            // back-to-back collectives with skewed ranks must not cross-talk
            if ctx.rank() == 0 {
                ctx.charge_compute(5_000_000);
            }
            let a = ctx.allreduce_sum(1);
            ctx.barrier();
            let b = ctx.allreduce_sum(2);
            (a, b)
        });
        for r in &rep.results {
            assert_eq!(*r, (4, 8));
        }
        assert!(rep.stats.iter().all(|s| s.barriers == 1));
    }

    #[test]
    fn exscan_assigns_disjoint_ranges() {
        for p in SIZES {
            let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
                let count = (ctx.rank() as u64 + 1) * 10; // rank r owns 10(r+1) items
                ctx.exscan_sum(count)
            });
            let mut expect = 0u64;
            for (r, &start) in rep.results.iter().enumerate() {
                assert_eq!(start, expect, "p={p} rank {r}");
                expect += (r as u64 + 1) * 10;
            }
        }
    }

    #[test]
    fn exscan_non_commutative_monoid() {
        // 2x2 matrix product: associative, non-commutative, identity I —
        // verifies the scan preserves rank order, not just totals
        type M = (u64, u64, u64, u64);
        fn mul(a: &M, b: &M) -> M {
            (
                a.0 * b.0 + a.1 * b.2,
                a.0 * b.1 + a.1 * b.3,
                a.2 * b.0 + a.3 * b.2,
                a.2 * b.1 + a.3 * b.3,
            )
        }
        let ident: M = (1, 0, 0, 1);
        let rep = Machine::new(MachineConfig::with_ranks(5)).run(|ctx| {
            let r = ctx.rank() as u64;
            let mine: M = (1, r + 1, 0, 1); // upper-triangular shear by r+1
            ctx.exscan(mine, ident, mul)
        });
        // sequential reference
        let mut expect = Vec::new();
        let mut acc = ident;
        for r in 0..5u64 {
            expect.push(acc);
            acc = mul(&acc, &(1, r + 1, 0, 1));
        }
        assert_eq!(rep.results, expect);
    }

    #[test]
    fn reduce_scatter_elementwise() {
        for p in SIZES {
            let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
                let me = ctx.rank() as u64;
                // block for rank d: [me + d, me + d] (len 2)
                let blocks: Vec<Vec<u64>> = (0..ctx.size() as u64)
                    .map(|d| vec![me + d, me * d])
                    .collect();
                ctx.reduce_scatter(blocks, |a, b| a + b)
            });
            let sum_r: u64 = (0..p as u64).sum();
            for (r, block) in rep.results.iter().enumerate() {
                let r = r as u64;
                assert_eq!(block[0], sum_r + r * p as u64, "p={p}");
                assert_eq!(block[1], sum_r * r, "p={p}");
            }
        }
    }

    #[test]
    fn collective_traffic_is_metered() {
        let rep = Machine::new(MachineConfig::with_ranks(8)).run(|ctx| ctx.allreduce_sum(1));
        let total = rep.total_stats();
        assert!(total.coll_msgs > 0);
        assert!(total.coll_bytes > 0);
        assert_eq!(total.user_msgs, 0);
        // sim time should reflect at least a couple of message latencies
        assert!(rep.sim_time_s > 1e-6);
    }
}
