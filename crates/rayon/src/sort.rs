//! Join-based parallel merge sort backing `par_sort_unstable*`.
//!
//! Determinism: the recursion splits at the fixed midpoint, leaves below a
//! fixed cutoff use `slice::sort_unstable_by`, and the merge prefers the
//! left run on ties — so the output is a pure function of the input,
//! identical at any thread count (and identical to running the same
//! algorithm sequentially). Equal elements may still be permuted relative
//! to the input (the leaves are unstable), but *how* they are permuted is
//! fixed by the input alone.

use crate::pool::join;
use std::cmp::Ordering;
use std::mem::MaybeUninit;
use std::ptr;

/// Below this length a leaf is sorted sequentially; fixed (not derived from
/// the thread count) so leaf boundaries are reproducible.
const SORT_CUTOFF: usize = 4096;

/// Aborts the process if dropped — used to turn a panic inside the merge
/// (from a panicking comparator) into an abort instead of exposing
/// double-drops of elements that exist in both the scratch and the slice.
struct AbortOnUnwind;

impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        eprintln!("comparator panicked during parallel merge; aborting");
        std::process::abort();
    }
}

pub(crate) fn par_merge_sort_by<T, F>(v: &mut [T], cmp: &F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync + ?Sized,
{
    if v.len() <= SORT_CUTOFF {
        v.sort_unstable_by(|a, b| cmp(a, b));
        return;
    }
    let mut buf: Vec<MaybeUninit<T>> = Vec::with_capacity(v.len());
    // SAFETY: MaybeUninit needs no initialization; contents are only ever
    // bitwise copies that are never dropped from the buffer.
    unsafe { buf.set_len(v.len()) };
    sort_rec(v, &mut buf, cmp);
}

fn sort_rec<T, F>(v: &mut [T], buf: &mut [MaybeUninit<T>], cmp: &F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync + ?Sized,
{
    if v.len() <= SORT_CUTOFF {
        v.sort_unstable_by(|a, b| cmp(a, b));
        return;
    }
    let mid = v.len() / 2;
    let (vl, vr) = v.split_at_mut(mid);
    let (bl, br) = buf.split_at_mut(mid);
    join(|| sort_rec(vl, bl, cmp), || sort_rec(vr, br, cmp));
    // Skip the merge when the halves are already in order (common for
    // nearly-sorted inputs). The check is a pure function of the sorted
    // halves — themselves pure functions of the input — so taking it or
    // not is identical at every thread count; and since `!= Greater` is
    // exactly the condition under which the left-preferential merge would
    // copy all of the left half first, skipping changes nothing.
    if cmp(&v[mid - 1], &v[mid]) != Ordering::Greater {
        return;
    }
    merge(v, buf, mid, cmp);
}

/// Merge the sorted halves `v[..mid]` and `v[mid..]` through `buf`.
/// Left-preferential on ties (`!= Greater` takes left), which both fixes the
/// tie order deterministically and yields stability.
fn merge<T, F>(v: &mut [T], buf: &mut [MaybeUninit<T>], mid: usize, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering + Sync + ?Sized,
{
    let n = v.len();
    let guard = AbortOnUnwind;
    // SAFETY: everything below shuffles bitwise copies between `v` and the
    // equally-sized scratch; every element ends up in `v` exactly once, and
    // the scratch never drops. A comparator panic would leave duplicates,
    // which the guard converts to an abort.
    unsafe {
        ptr::copy_nonoverlapping(v.as_ptr(), buf.as_mut_ptr() as *mut T, n);
        let b = buf.as_ptr() as *const T;
        let out = v.as_mut_ptr();
        let (mut i, mut j, mut k) = (0usize, mid, 0usize);
        while i < mid && j < n {
            let src = if cmp(&*b.add(i), &*b.add(j)) != Ordering::Greater {
                let s = i;
                i += 1;
                s
            } else {
                let s = j;
                j += 1;
                s
            };
            ptr::copy_nonoverlapping(b.add(src), out.add(k), 1);
            k += 1;
        }
        if i < mid {
            ptr::copy_nonoverlapping(b.add(i), out.add(k), mid - i);
        }
        if j < n {
            ptr::copy_nonoverlapping(b.add(j), out.add(k), n - j);
        }
    }
    std::mem::forget(guard);
}
