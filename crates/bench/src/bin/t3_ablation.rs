//! T3 — Optimization ablation: turn each feature off, one at a time.
//!
//! Reconstructs the evaluation's ablation table: harmonic-mean TEPS (and
//! the traffic counters that explain it) for the full stack vs each
//! single-feature removal vs everything-off. The no-coalescing row is the
//! expensive strawman that shows why aggregation is non-negotiable at
//! scale.
//!
//! Overrides: `G500_SCALE` (default 14), `G500_RANKS` (default 8),
//! `G500_ROOTS` (default 4).

use g500_bench::{banner, gteps, param, Table};
use g500_sssp::{Direction, OptConfig};
use graph500::{run_sssp_benchmark, BenchmarkConfig, PartitionStrategy};

fn main() {
    let scale = param("G500_SCALE", 14) as u32;
    let ranks = param("G500_RANKS", 8) as usize;
    let roots = param("G500_ROOTS", 4) as usize;
    banner(
        "T3",
        "optimization ablation",
        &[
            ("scale", scale.to_string()),
            ("ranks", ranks.to_string()),
            ("roots", roots.to_string()),
        ],
    );

    let variants: Vec<(&str, OptConfig, PartitionStrategy)> = vec![
        (
            "all-on (paper)",
            OptConfig::all_on(),
            PartitionStrategy::DegreeAware { hub_factor: 8.0 },
        ),
        (
            "- coalescing",
            OptConfig::all_on().without_coalescing(),
            PartitionStrategy::DegreeAware { hub_factor: 8.0 },
        ),
        (
            "- dedup sort",
            OptConfig::all_on().without_dedup(),
            PartitionStrategy::DegreeAware { hub_factor: 8.0 },
        ),
        (
            "- compression",
            OptConfig::all_on().without_compression(),
            PartitionStrategy::DegreeAware { hub_factor: 8.0 },
        ),
        (
            "- bucket fusion",
            OptConfig::all_on().without_fusion(),
            PartitionStrategy::DegreeAware { hub_factor: 8.0 },
        ),
        (
            "- direction opt",
            OptConfig::all_on().with_direction(Direction::Push),
            PartitionStrategy::DegreeAware { hub_factor: 8.0 },
        ),
        (
            "- hub partition",
            OptConfig::all_on(),
            PartitionStrategy::Block,
        ),
        ("all-off", OptConfig::all_off(), PartitionStrategy::Block),
    ];

    let t = Table::new(&[
        "variant",
        "hmean_GTEPS",
        "slowdown",
        "supersteps",
        "msgs",
        "MB_sent",
        "validated",
    ]);
    let mut baseline = 0.0f64;
    for (name, opts, part) in variants {
        let mut cfg = BenchmarkConfig::graph500(scale, ranks);
        cfg.num_roots = roots;
        cfg.opts = opts;
        cfg.partition = part;
        let rep = run_sssp_benchmark(&cfg);
        let g = rep.teps.harmonic_mean;
        if baseline == 0.0 {
            baseline = g;
        }
        let steps: u64 = rep.runs.iter().map(|r| r.stats.supersteps).sum();
        t.row(&[
            name.to_string(),
            gteps(g),
            format!("{:.2}x", baseline / g),
            steps.to_string(),
            rep.net.total_msgs().to_string(),
            format!("{:.1}", rep.net.total_bytes() as f64 / 1e6),
            rep.all_validated().to_string(),
        ]);
    }
    println!("\nexpected shape: every removal slows down; coalescing removal is catastrophic (per-edge message overhead)");
}
