//! Batched multi-source SSSP — the "64 roots" workload done right.
//!
//! The Graph500 harness runs 64 independent searches back-to-back. At
//! extreme scale, the *tail* of each search — many near-empty supersteps —
//! dominates, and the machine idles through 64 tails in sequence. Batching
//! runs `B` sources concurrently: each superstep carries the union of all
//! sources' traffic, so per-superstep fixed costs (latency, allreduce
//! fan-in) are amortized B ways. This is the natural "future work"
//! extension of the paper's superstep-reduction theme, and experiment F11
//! measures exactly the amortization.
//!
//! Implementation: a per-source distance/parent table and source-tagged
//! updates `(source index, target, dist, parent)` flowing through one
//! shared bucket schedule. Buckets are indexed by distance as usual; a
//! (source, vertex) pair is an element of bucket `⌊dist_s(v)/Δ⌋`. For
//! simplicity and clarity this kernel always pushes and always coalesces
//! (the single-source kernel is the ablation vehicle).

use crate::bucket::BucketQueue;
use g500_graph::{VertexId, Weight, INF_WEIGHT, NO_PARENT};
use g500_partition::{LocalGraph, VertexPartition};
use simnet::RankCtx;

/// Per-rank result of a batched run: one distance/parent slice per source.
#[derive(Clone, Debug)]
pub struct MultiDist {
    /// `dist[s][l]`: distance from source `s` to local vertex `l`.
    pub dist: Vec<Vec<Weight>>,
    /// `parent[s][l]`: global parent of local vertex `l` in source `s`'s tree.
    pub parent: Vec<Vec<u64>>,
}

/// Counters from one batched run.
#[derive(Clone, Debug, Default)]
pub struct MultiStats {
    /// Global communication rounds for the whole batch.
    pub supersteps: u64,
    /// Local relaxations for the whole batch.
    pub relaxations: u64,
    /// Update records shipped.
    pub updates_sent: u64,
}

/// Source-tagged update: (source index, global target, dist, parent).
type MUpdate = (u32, u64, f32, u64);

/// Element key packing (source, local vertex) into one u64 for the bucket
/// queue (which stores u32: we keep a side table instead).
#[derive(Clone, Copy, PartialEq, Eq)]
struct Elem {
    source: u32,
    local: u32,
}

/// Run `roots.len()` SSSP searches concurrently from `roots`. Collective.
pub fn multi_source_delta_stepping<P: VertexPartition>(
    ctx: &mut RankCtx,
    graph: &LocalGraph<P>,
    roots: &[VertexId],
    delta: Weight,
) -> (MultiDist, MultiStats) {
    let part = graph.part();
    let p = ctx.size();
    let me = ctx.rank();
    let n_local = graph.local_vertices();
    let n_sources = roots.len();
    assert!(n_sources > 0 && n_sources <= u32::MAX as usize);

    let mut dist = vec![vec![INF_WEIGHT; n_local]; n_sources];
    let mut parent = vec![vec![NO_PARENT; n_local]; n_sources];
    let mut stats = MultiStats::default();

    // The bucket queue stores indices into `elems`; elements are
    // append-only (lazy duplicates filtered at pop, as in single-source).
    let mut elems: Vec<Elem> = Vec::new();
    let mut buckets = BucketQueue::new(delta);

    for (s, &root) in roots.iter().enumerate() {
        if part.owner(root) == me {
            let l = part.to_local(root);
            dist[s][l] = 0.0;
            parent[s][l] = root;
            elems.push(Elem {
                source: s as u32,
                local: l as u32,
            });
            buckets.insert(elems.len() as u32 - 1, 0.0);
        }
    }

    loop {
        let k_local = buckets.min_bucket().map_or(u64::MAX, |k| k as u64);
        let k = ctx.allreduce_min(k_local);
        if k == u64::MAX {
            break;
        }
        // settled (source, local) pairs of this bucket, for the heavy phase
        let mut settled: Vec<Elem> = Vec::new();

        // light inner loop
        loop {
            let mut frontier: Vec<Elem> = Vec::new();
            for ei in buckets.take_bucket(k as usize) {
                let e = elems[ei as usize];
                let d = dist[e.source as usize][e.local as usize];
                if d.is_finite() && buckets.bucket_of(d) == k as usize {
                    frontier.push(e);
                }
            }
            let total = ctx.allreduce_sum(frontier.len() as u64);
            if total == 0 {
                break;
            }
            settled.extend_from_slice(&frontier);

            let mut out: Vec<Vec<MUpdate>> = vec![Vec::new(); p];
            let mut relaxed = 0u64;
            for e in &frontier {
                let du = dist[e.source as usize][e.local as usize];
                let u_global = part.to_global(me, e.local as usize);
                for (v, w) in graph.arcs(e.local as usize) {
                    if w >= delta {
                        continue;
                    }
                    relaxed += 1;
                    out[part.owner(v)].push((e.source, v, du + w, u_global));
                }
            }
            stats.relaxations += relaxed;
            ctx.charge_compute(relaxed);

            // coalesced exchange with per-(source, target) dedup
            for b in out.iter_mut() {
                b.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
                b.dedup_by_key(|u| (u.0, u.1));
            }
            stats.updates_sent += out.iter().map(|b| b.len() as u64).sum::<u64>();
            let incoming = ctx.alltoallv(out);
            stats.supersteps += 1;

            for block in incoming {
                ctx.charge_compute(block.len() as u64);
                for (s, v, nd, par) in block {
                    apply(
                        part,
                        &mut dist,
                        &mut parent,
                        &mut elems,
                        &mut buckets,
                        s,
                        v,
                        nd,
                        par,
                    );
                }
            }
        }

        // heavy phase for everything this bucket settled
        let mut out: Vec<Vec<MUpdate>> = vec![Vec::new(); p];
        let mut relaxed = 0u64;
        for e in &settled {
            let du = dist[e.source as usize][e.local as usize];
            let u_global = part.to_global(me, e.local as usize);
            for (v, w) in graph.arcs(e.local as usize) {
                if w < delta {
                    continue;
                }
                relaxed += 1;
                out[part.owner(v)].push((e.source, v, du + w, u_global));
            }
        }
        stats.relaxations += relaxed;
        ctx.charge_compute(relaxed);
        for b in out.iter_mut() {
            b.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
            b.dedup_by_key(|u| (u.0, u.1));
        }
        stats.updates_sent += out.iter().map(|b| b.len() as u64).sum::<u64>();
        let incoming = ctx.alltoallv(out);
        stats.supersteps += 1;
        for block in incoming {
            ctx.charge_compute(block.len() as u64);
            for (s, v, nd, par) in block {
                apply(
                    part,
                    &mut dist,
                    &mut parent,
                    &mut elems,
                    &mut buckets,
                    s,
                    v,
                    nd,
                    par,
                );
            }
        }
    }

    (MultiDist { dist, parent }, stats)
}

#[allow(clippy::too_many_arguments)]
fn apply<P: VertexPartition>(
    part: &P,
    dist: &mut [Vec<Weight>],
    parent: &mut [Vec<u64>],
    elems: &mut Vec<Elem>,
    buckets: &mut BucketQueue,
    s: u32,
    v_global: u64,
    nd: Weight,
    par: u64,
) {
    let l = part.to_local(v_global);
    if nd < dist[s as usize][l] {
        dist[s as usize][l] = nd;
        parent[s as usize][l] = par;
        elems.push(Elem {
            source: s,
            local: l as u32,
        });
        buckets.insert(elems.len() as u32 - 1, nd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g500_baselines::dijkstra;
    use g500_graph::{Csr, Directedness};
    use g500_partition::{assemble_local_graph, Block1D};
    use simnet::{Machine, MachineConfig};

    #[test]
    fn batched_matches_dijkstra_per_source() {
        let el = g500_gen::simple::erdos_renyi(48, 220, 31);
        let csr = Csr::from_edges(48, &el, Directedness::Undirected);
        let roots = [0u64, 7, 13, 40];
        let p = 3;
        let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(48, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let (md, _) = multi_source_delta_stepping(ctx, &g, &roots, 0.2);
            // gather per source
            let mut out = Vec::new();
            for s in 0..roots.len() {
                let slice = g500_partition::DistShortestPaths {
                    dist: md.dist[s].clone(),
                    parent: md.parent[s].clone(),
                };
                out.push(slice.gather_to_all(ctx, g.part()));
            }
            out
        });
        for (s, &root) in roots.iter().enumerate() {
            let oracle = dijkstra(&csr, root);
            assert!(
                rep.results[0][s].distances_match(&oracle, 1e-4),
                "source {s} (root {root})"
            );
        }
    }

    #[test]
    fn batching_amortizes_supersteps() {
        // B sequential runs pay ~B× the supersteps of one batched run
        let gen = g500_gen::KroneckerGenerator::new(g500_gen::KroneckerParams::graph500(9, 8));
        let el = gen.generate_all();
        let n = 512u64;
        let roots = [1u64, 3, 5, 7, 11, 13, 17, 19];
        let p = 4;
        let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(n, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);

            let (_, batched) = multi_source_delta_stepping(ctx, &g, &roots, 0.125);

            let mut sequential_steps = 0u64;
            for &r in &roots {
                let (_, s) = multi_source_delta_stepping(ctx, &g, &[r], 0.125);
                sequential_steps += s.supersteps;
            }
            (batched.supersteps, sequential_steps)
        });
        let (batched, sequential) = rep.results[0];
        assert!(
            batched * 2 < sequential,
            "batched {batched} supersteps vs sequential {sequential}"
        );
    }

    #[test]
    fn single_source_batch_is_just_sssp() {
        let el = g500_gen::simple::path(12, 0.3);
        let csr = Csr::from_edges(12, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, 0);
        let rep = Machine::new(MachineConfig::with_ranks(2)).run(|ctx| {
            let part = Block1D::new(12, 2);
            let mine: Vec<_> = if ctx.rank() == 0 {
                el.iter().collect()
            } else {
                Vec::new()
            };
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let (md, _) = multi_source_delta_stepping(ctx, &g, &[0], 0.5);
            g500_partition::DistShortestPaths {
                dist: md.dist[0].clone(),
                parent: md.parent[0].clone(),
            }
            .gather_to_all(ctx, g.part())
        });
        assert!(rep.results[0].distances_match(&oracle, 1e-5));
    }
}
