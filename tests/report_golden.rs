//! Golden-report regression tests for the bucket-queue hot path.
//!
//! The radix-layout upgrade of `sssp/bucket.rs` must be *behaviorally
//! invisible*: under the deterministic scheduler the scale-10 1D and 2D
//! report JSON is a pure function of the configuration, so it is pinned
//! byte-for-byte to goldens captured before the upgrade. Any change to the
//! bucket drain order, the superstep schedule, or the distance/parent bits
//! shows up here as a diff.
//!
//! The 1D runs spawn the real `g500` binary under `G500_THREADS=1` and
//! `=4` (the pool is process-global, so thread counts only compare across
//! processes); both must reproduce the same golden. Regenerate after an
//! *intentional* semantic change with
//! `G500_BLESS=1 cargo test --test report_golden`.

use graph500::simnet::{Machine, MachineConfig};
use graph500::sssp::Grid2DSssp;
use std::process::Command;

const GOLDEN_1D: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/report_1d_scale10.json"
);
const GOLDEN_2D: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/report_2d_scale10.txt"
);

/// Compare `actual` against the golden file at `path`; with `G500_BLESS=1`
/// rewrite the golden instead.
fn check_golden(path: &str, actual: &str) {
    if std::env::var("G500_BLESS").is_ok() {
        std::fs::write(path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing golden {path}: {e}; run with G500_BLESS=1"));
    assert_eq!(
        expected, actual,
        "report drifted from {path}; if intentional, regenerate with G500_BLESS=1"
    );
}

/// Run the `g500` binary at scale 10 under `threads` and return its JSON
/// stdout minus the host-dependent lines (wall time, pool size).
fn run_1d_json(threads: usize) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_g500"))
        .args([
            "sssp",
            "--scale",
            "10",
            "--ranks",
            "4",
            "--roots",
            "2",
            "--deterministic",
            "--json",
        ])
        .env("G500_THREADS", threads.to_string())
        .output()
        .expect("spawn g500");
    assert!(
        out.status.success(),
        "g500 failed under {} threads: {}",
        threads,
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8(out.stdout)
        .expect("utf8 json")
        .lines()
        .filter(|l| !l.contains("wall_time_s") && !l.contains("\"threads\""))
        .collect::<Vec<_>>()
        .join("\n");
    json + "\n"
}

#[test]
fn golden_1d_scale10_report_json_at_t1_and_t4() {
    let t1 = run_1d_json(1);
    check_golden(GOLDEN_1D, &t1);
    let t4 = run_1d_json(4);
    assert_eq!(
        t1, t4,
        "1D report JSON differs between G500_THREADS=1 and =4"
    );
}

/// The 2D kernel has no CLI front end; serialize its deterministic run —
/// distance bits, parents, and the full superstep/record counters — into a
/// canonical text form and pin that.
#[test]
fn golden_2d_scale10_report() {
    let gen = graph500::gen::KroneckerGenerator::new(graph500::gen::KroneckerParams::graph500(
        10, 20220814,
    ));
    let el = gen.generate_all();
    let n = 1u64 << 10;
    let p = 4usize;
    let rep = Machine::new(MachineConfig::with_ranks(p).deterministic(0)).run(|ctx| {
        let m = el.len();
        let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
        let mine = (lo..hi).map(|i| el.get(i));
        let mut g = Grid2DSssp::build(ctx, n, mine, 0.25);
        let stats = g.run(ctx, 1);
        (g.gather(ctx), stats)
    });
    let (sp, stats) = &rep.results[0];
    let mut out = String::new();
    out.push_str(&format!(
        "supersteps {}\nrelaxations {}\nfrontier_records {}\nupdate_records {}\n",
        stats.supersteps, stats.relaxations, stats.frontier_records, stats.update_records
    ));
    for v in 0..n as usize {
        out.push_str(&format!(
            "{v} {:08x} {}\n",
            sp.dist[v].to_bits(),
            sp.parent[v]
        ));
    }
    // every rank gathered the same global view
    for (other, _) in &rep.results[1..] {
        assert_eq!(other.dist.len(), sp.dist.len());
        for v in 0..n as usize {
            assert_eq!(other.dist[v].to_bits(), sp.dist[v].to_bits());
        }
    }
    check_golden(GOLDEN_2D, &out);
}
