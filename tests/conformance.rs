//! Differential conformance: every distributed configuration — 1D
//! block/cyclic and 2D grid layouts crossed with each optimization toggle —
//! must produce sequential Dijkstra's distances on every graph family
//! (Kronecker, Erdős–Rényi, path, star), running under the deterministic
//! scheduler so any failure is replayable from the printed config label.

use graph500::baselines::dijkstra;
use graph500::gen::{simple, KroneckerGenerator, KroneckerParams};
use graph500::graph::{Csr, Directedness, EdgeList, ShortestPaths};
use graph500::partition::{assemble_local_graph, Block1D, Cyclic1D, VertexPartition};
use graph500::simnet::{Machine, MachineConfig};
use graph500::sssp::{distributed_delta_stepping, Direction, Grid2DSssp, OptConfig};

mod common;

/// The graph families the suite crosses against every configuration.
fn families() -> Vec<(&'static str, EdgeList, u64)> {
    let kron = KroneckerGenerator::new(KroneckerParams::graph500(9, 5));
    vec![
        ("kronecker", kron.generate_all(), 512),
        ("erdos_renyi", simple::erdos_renyi(256, 1024, 11), 256),
        ("path", simple::path(97, 0.25), 97),
        ("star", simple::star(64, 0.8), 64),
    ]
}

/// The optimization matrix: each toggle exercised both ways, plus the
/// direction variants and delta extremes — 9 combos.
fn opt_matrix() -> Vec<(&'static str, OptConfig)> {
    vec![
        ("all_on", OptConfig::all_on()),
        ("all_off", OptConfig::all_off()),
        ("no_coalescing", OptConfig::all_on().without_coalescing()),
        ("no_dedup", OptConfig::all_on().without_dedup()),
        ("no_compression", OptConfig::all_on().without_compression()),
        ("no_fusion", OptConfig::all_on().without_fusion()),
        ("pull", OptConfig::all_on().with_direction(Direction::Pull)),
        ("push", OptConfig::all_on().with_direction(Direction::Push)),
        ("delta_wide", OptConfig::all_on().with_delta(5.0)),
    ]
}

fn dist_run_det<P: VertexPartition + 'static>(
    el: &EdgeList,
    part_of: impl Fn(usize) -> P + Sync,
    p: usize,
    root: u64,
    opts: &OptConfig,
) -> ShortestPaths {
    // The CI lossy profile re-runs this whole suite over a faulty network
    // via G500_DROP_RATE etc.; the plan is inactive by default.
    Machine::new(
        MachineConfig::with_ranks(p)
            .deterministic(0)
            .faults(common::fault_overlay()),
    )
    .run(|ctx| {
        let part = part_of(ctx.size());
        let m = el.len();
        let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
        let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
        let g = assemble_local_graph(ctx, mine.into_iter(), part);
        let (sp, _) = distributed_delta_stepping(ctx, &g, root, opts);
        sp.gather_to_all(ctx, g.part())
    })
    .results
    .pop()
    .expect("at least one rank")
}

fn grid_run_det(el: &EdgeList, n: u64, p: usize, root: u64, delta: f32) -> ShortestPaths {
    Machine::new(
        MachineConfig::with_ranks(p)
            .deterministic(0)
            .faults(common::fault_overlay()),
    )
    .run(|ctx| {
        let m = el.len();
        let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
        let mine = (lo..hi).map(|i| el.get(i));
        let mut g = Grid2DSssp::build(ctx, n, mine, delta);
        g.run(ctx, root);
        g.gather(ctx)
    })
    .results
    .into_iter()
    .next()
    .expect("rank 0")
}

/// 1D block layout × the full optimization matrix × every family:
/// 9 configs · 4 families = 36 differential checks against Dijkstra.
#[test]
fn block_1d_conforms_across_opt_matrix() {
    for (fam, el, n) in families() {
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, 0);
        for (name, opts) in opt_matrix() {
            let sp = dist_run_det(&el, |p| Block1D::new(n, p), 4, 0, &opts);
            assert!(sp.distances_match(&oracle, 1e-4), "block/{name} on {fam}");
        }
    }
}

/// Cyclic striping reroutes every vertex to a different owner — same
/// matrix, different communication pattern.
#[test]
fn cyclic_1d_conforms_across_opt_matrix() {
    for (fam, el, n) in families() {
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, 0);
        for (name, opts) in opt_matrix() {
            let sp = dist_run_det(&el, |p| Cyclic1D::new(n, p), 4, 0, &opts);
            assert!(sp.distances_match(&oracle, 1e-4), "cyclic/{name} on {fam}");
        }
    }
}

/// The 2D grid kernel against the oracle on every family, at two grid
/// shapes and two delta settings.
#[test]
fn grid_2d_conforms() {
    for (fam, el, n) in families() {
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, 0);
        for p in [4usize, 9] {
            for delta in [0.25f32, 2.0] {
                let sp = grid_run_det(&el, n, p, 0, delta);
                assert!(
                    sp.distances_match(&oracle, 1e-4),
                    "2D p={p} delta={delta} on {fam}"
                );
            }
        }
    }
}

/// Rank-count sweep: the answer is independent of how many ranks share the
/// work, including degenerate (1 rank, more ranks than vertices on the
/// star's periphery blocks).
#[test]
fn rank_count_does_not_change_answers() {
    for (fam, el, n) in families() {
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, 0);
        for p in [1usize, 3, 8] {
            let sp = dist_run_det(&el, |p| Block1D::new(n, p), p, 0, &OptConfig::all_on());
            assert!(sp.distances_match(&oracle, 1e-4), "p={p} on {fam}");
        }
    }
}

/// The adversarial families from `common::adversarial`, as `EdgeList`s.
fn adversarial_families(seed: u64) -> Vec<(&'static str, EdgeList, u64)> {
    common::adversarial::all(seed)
        .into_iter()
        .map(|(name, n, edges)| {
            let el = EdgeList::from_edges(
                edges
                    .iter()
                    .map(|&(u, v, w)| graph500::graph::WEdge::new(u, v, w)),
            );
            (name, el, n)
        })
        .collect()
}

/// Adversarial families × the optimization matrix on the 1D block layout.
/// These graphs are built to punish queue shortcuts (stale-entry trust,
/// label-correcting order, bucket-scan laziness, zero-weight plateaus);
/// every config must still reproduce Dijkstra exactly.
#[test]
fn adversarial_block_1d_conforms_across_opt_matrix() {
    for (fam, el, n) in adversarial_families(1) {
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, 0);
        for (name, opts) in opt_matrix() {
            let sp = dist_run_det(&el, |p| Block1D::new(n, p), 4, 0, &opts);
            assert!(sp.distances_match(&oracle, 1e-4), "block/{name} on {fam}");
        }
    }
}

/// Same adversaries over cyclic striping: every plateau and correction
/// wave crosses rank boundaries.
#[test]
fn adversarial_cyclic_1d_conforms_across_opt_matrix() {
    for (fam, el, n) in adversarial_families(2) {
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, 0);
        for (name, opts) in opt_matrix() {
            let sp = dist_run_det(&el, |p| Cyclic1D::new(n, p), 4, 0, &opts);
            assert!(sp.distances_match(&oracle, 1e-4), "cyclic/{name} on {fam}");
        }
    }
}

/// Adversaries on the 2D grid kernel at two delta extremes.
#[test]
fn adversarial_grid_2d_conforms() {
    for (fam, el, n) in adversarial_families(3) {
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, 0);
        for delta in [0.25f32, 2.0] {
            let sp = grid_run_det(&el, n, 4, 0, delta);
            assert!(
                sp.distances_match(&oracle, 1e-4),
                "2D delta={delta} on {fam}"
            );
        }
    }
}

/// The new sequential baselines must be *bitwise* Dijkstra on every
/// adversarial family, across several seeds per family.
#[test]
fn adversarial_new_baselines_bitwise_vs_dijkstra() {
    use graph500::baselines::{bmssp, dijkstra_radix_heap};
    for seed in 0..4u64 {
        for (fam, el, n) in adversarial_families(seed) {
            let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
            let oracle = dijkstra(&csr, 0);
            let radix = dijkstra_radix_heap(&csr, 0);
            let bm = bmssp(&csr, 0);
            for v in 0..n as usize {
                assert_eq!(
                    oracle.dist[v].to_bits(),
                    radix.dist[v].to_bits(),
                    "radix vs dijkstra: {fam} seed {seed} vertex {v}"
                );
                assert_eq!(
                    oracle.dist[v].to_bits(),
                    bm.dist[v].to_bits(),
                    "bmssp vs dijkstra: {fam} seed {seed} vertex {v}"
                );
            }
        }
    }
}

/// Cross-layout agreement is *bitwise*, not just within tolerance: block,
/// cyclic, and 2D layouts relax the same paths with the same f32 adds, so
/// the distance vectors must be identical to the bit.
#[test]
fn layouts_agree_bitwise() {
    for (fam, el, n) in families() {
        let block = dist_run_det(&el, |p| Block1D::new(n, p), 4, 0, &OptConfig::all_on());
        let cyclic = dist_run_det(&el, |p| Cyclic1D::new(n, p), 4, 0, &OptConfig::all_on());
        let grid = grid_run_det(&el, n, 4, 0, 0.25);
        for v in 0..n as usize {
            assert_eq!(
                block.dist[v].to_bits(),
                cyclic.dist[v].to_bits(),
                "{fam}: block vs cyclic at {v}"
            );
            assert_eq!(
                block.dist[v].to_bits(),
                grid.dist[v].to_bits(),
                "{fam}: block vs 2D at {v}"
            );
        }
    }
}
