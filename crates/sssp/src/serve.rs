//! Multi-tenant SSSP query serving over a resident graph.
//!
//! The Graph500 benchmark answers 64 fixed roots and exits; a production
//! path service answers an *open stream* of queries — some full
//! single-source, some point-to-point — against a graph that stays
//! resident. This module turns the batched kernel ([`crate::multi`]) into
//! that service:
//!
//! * **Admission windows** — queries are admitted in windows of
//!   `batch_width` and executed as one batch through shared delta-stepping
//!   supersteps, amortizing per-superstep fixed costs across tenants.
//! * **Landmark cache** — `k` high-degree landmarks are precomputed (with
//!   the batched kernel itself); a point-to-point query gets the
//!   triangle-inequality upper bound `min_j dist(L_j,s) + dist(L_j,t)`
//!   attached to its lane, pruning relaxations that cannot matter for the
//!   target. Sound for undirected graphs (all graphs here are).
//! * **Result LRU** — full single-source results are cached; a repeat
//!   full query is answered without running a lane, and a point-to-point
//!   query whose source is cached is answered by the target's owner from
//!   the cached slice.
//!
//! # Determinism
//!
//! Every control decision — window composition, cache hit/miss, lane
//! assignment, landmark bounds, retirement — is a pure function of the
//! query stream and allreduced values, taken identically on every rank:
//! the LRU key order is replicated (values are per-rank local slices),
//! and admission data moves through one allgather whose record order is
//! fixed. Batched answers are bitwise identical to per-source runs at any
//! `G500_THREADS` (see [`crate::multi`]).

use crate::config::OptConfig;
use crate::multi::{try_batched_delta_stepping, BatchSpec, MultiDist};
use g500_graph::{VertexId, Weight, INF_WEIGHT, NO_PARENT};
use g500_partition::{DistShortestPaths, LocalGraph, VertexPartition};
use simnet::recovery::FaultEscalation;
use simnet::{RankCtx, TraceCode};

/// One query against the resident graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Query {
    /// Global source vertex.
    pub source: VertexId,
    /// `None` = full single-source query; `Some(t)` = point-to-point.
    pub target: Option<VertexId>,
}

impl Query {
    /// A full single-source query.
    pub fn full(source: VertexId) -> Self {
        Query {
            source,
            target: None,
        }
    }

    /// A point-to-point query.
    pub fn p2p(source: VertexId, target: VertexId) -> Self {
        Query {
            source,
            target: Some(target),
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Admission window: queries per shared batch.
    pub batch_width: usize,
    /// Kernel optimization stack (including Δ) for every batch.
    pub opts: OptConfig,
    /// Landmarks to precompute (0 disables triangle-inequality bounds).
    pub num_landmarks: usize,
    /// Full-result LRU capacity in entries (0 disables the cache).
    pub lru_capacity: usize,
    /// Attach the local distance/parent slices to full-query outcomes.
    pub keep_paths: bool,
    /// Per-query latency deadline in virtual seconds; lane-run queries
    /// whose answer arrives later are marked [`QueryOutcome::shed`]
    /// (`f64::INFINITY` = no deadline). The answer itself is still exact —
    /// shedding is an SLO verdict, not a correctness one.
    pub deadline_s: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_width: 16,
            opts: OptConfig::all_on().with_delta(0.125),
            num_landmarks: 4,
            lru_capacity: 8,
            keep_paths: false,
            deadline_s: f64::INFINITY,
        }
    }
}

/// The answer to one query, in stream order.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The query as submitted.
    pub query: Query,
    /// Point-to-point answer (`INF_WEIGHT` = unreachable); `None` for
    /// full queries (their answer is the tree, see `paths`).
    pub dist: Option<Weight>,
    /// Point-to-point tree parent of the target (`NO_PARENT` if none).
    pub parent: Option<u64>,
    /// Answered from the LRU without running a lane.
    pub cache_hit: bool,
    /// The lane retired before its batch finished.
    pub early_exit: bool,
    /// Landmark upper bound attached to the lane (`INF_WEIGHT` = none).
    pub bound: Weight,
    /// Virtual seconds from window admission to answer.
    pub latency_s: f64,
    /// The query was shed: its window's kernel failed twice under crash
    /// faults (no answer: `dist`/`paths` empty) or its answer blew the
    /// configured deadline (answer present but late).
    pub shed: bool,
    /// Local result slice for full queries when `keep_paths` is set.
    pub paths: Option<DistShortestPaths>,
}

/// Aggregate serving counters (per rank; control counters are identical
/// on every rank).
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Queries answered.
    pub queries: u64,
    /// Admission windows executed.
    pub batches: u64,
    /// Queries answered from the LRU.
    pub cache_hits: u64,
    /// Point-to-point lanes that retired early.
    pub early_exits: u64,
    /// Lanes actually run through the kernel.
    pub lanes_run: u64,
    /// Kernel supersteps across all batches.
    pub supersteps: u64,
    /// Kernel relaxations across all batches.
    pub relaxations: u64,
    /// Update records shipped across all batches.
    pub updates_sent: u64,
    /// Relaxations pruned by landmark bounds.
    pub pruned: u64,
    /// Supersteps spent precomputing landmarks.
    pub precompute_supersteps: u64,
    /// Queries shed (kernel failed twice under crash faults, or the
    /// answer blew the deadline).
    pub queries_shed: u64,
    /// Lane-run queries re-admitted after their window's kernel crashed
    /// beyond its recovery budget once.
    pub queries_retried: u64,
}

/// Precomputed landmark distances: `k` high-degree vertices and this
/// rank's local distance slice per landmark.
#[derive(Clone, Debug)]
pub struct LandmarkSet {
    /// Landmark vertex ids, highest degree first (ties by id).
    pub ids: Vec<VertexId>,
    local: Vec<Weight>,
    n_local: usize,
}

impl LandmarkSet {
    /// `dist(L_j, v)` for local vertex `l`.
    pub fn local_dist(&self, j: usize, l: usize) -> Weight {
        self.local[j * self.n_local + l]
    }
}

/// Triangle-inequality upper bound on `dist(s, t)` from per-landmark
/// distances `ls[j] = dist(L_j, s)` and `lt[j] = dist(L_j, t)`. The sum is
/// inflated by `1e-5` relative so `f32` rounding can never push the bound
/// below the true distance. `INF_WEIGHT` when no landmark reaches both.
pub fn triangle_bound(ls: &[Weight], lt: &[Weight]) -> Weight {
    let mut best = INF_WEIGHT;
    for (&a, &b) in ls.iter().zip(lt) {
        if a.is_finite() && b.is_finite() {
            let ub = (a + b) * (1.0 + 1e-5);
            if ub < best {
                best = ub;
            }
        }
    }
    best
}

/// A small deterministic LRU: recency is a pure function of the key
/// stream (`get`/`insert` order), so replicas driving it with the same
/// stream stay in lockstep even though their values differ.
#[derive(Clone, Debug)]
pub struct Lru<K: PartialEq + Clone, V> {
    cap: usize,
    entries: Vec<(K, V)>, // most recently used last
}

impl<K: PartialEq + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        Lru {
            cap,
            entries: Vec::new(),
        }
    }

    /// Look up `k`, marking it most recently used on hit.
    pub fn get(&mut self, k: &K) -> Option<&V> {
        let i = self.entries.iter().position(|(ek, _)| ek == k)?;
        let e = self.entries.remove(i);
        self.entries.push(e);
        self.entries.last().map(|(_, v)| v)
    }

    /// Insert (or refresh) `k`, evicting the least recently used entry
    /// when over capacity.
    pub fn insert(&mut self, k: K, v: V) {
        if self.cap == 0 {
            return;
        }
        if let Some(i) = self.entries.iter().position(|(ek, _)| *ek == k) {
            self.entries.remove(i);
        }
        self.entries.push((k, v));
        if self.entries.len() > self.cap {
            self.entries.remove(0);
        }
    }

    /// Cached keys, least recently used first.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// How one window query gets its answer.
enum Plan {
    /// Full query answered from the LRU.
    FullHit,
    /// Point-to-point query answered from a cached source slice.
    P2pHit,
    /// Runs as lane `i` of the window batch (shared by duplicates).
    Lane(usize),
}

/// The serving engine: a resident partitioned graph plus landmark and
/// result caches. Collective: every rank drives its engine with the same
/// query stream.
pub struct QueryEngine<'g, P: VertexPartition + Sync> {
    graph: &'g LocalGraph<P>,
    cfg: ServeConfig,
    landmarks: Option<LandmarkSet>,
    lru: Lru<VertexId, DistShortestPaths>,
    stats: ServeStats,
}

impl<'g, P: VertexPartition + Sync> QueryEngine<'g, P> {
    /// Build an engine, precomputing landmarks with the batched kernel.
    /// Collective. Panics on fault escalation; use
    /// [`QueryEngine::try_new`] to handle it as a typed error.
    pub fn new(ctx: &mut RankCtx, graph: &'g LocalGraph<P>, cfg: ServeConfig) -> Self {
        match Self::try_new(ctx, graph, cfg) {
            Ok(engine) => engine,
            Err(e) => panic!("rank {}: {e}", ctx.rank()),
        }
    }

    /// [`QueryEngine::new`] with typed fault escalation: landmark
    /// precompute runs before any query exists to degrade onto, so a
    /// crash it cannot recover from surfaces as the kernel's `Err` —
    /// identical on every rank.
    pub fn try_new(
        ctx: &mut RankCtx,
        graph: &'g LocalGraph<P>,
        cfg: ServeConfig,
    ) -> Result<Self, FaultEscalation> {
        let mut stats = ServeStats::default();
        let landmarks = if cfg.num_landmarks > 0 {
            let set = precompute_landmarks(ctx, graph, cfg.num_landmarks, &cfg.opts, &mut stats)?;
            (!set.ids.is_empty()).then_some(set)
        } else {
            None
        };
        let lru = Lru::new(cfg.lru_capacity);
        Ok(QueryEngine {
            graph,
            cfg,
            landmarks,
            lru,
            stats,
        })
    }

    /// Serving counters so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The precomputed landmark ids (empty if disabled).
    pub fn landmark_ids(&self) -> &[VertexId] {
        self.landmarks.as_ref().map_or(&[], |l| &l.ids)
    }

    /// Answer a query stream: admit in windows of `batch_width`, run each
    /// window as one shared batch. Returns outcomes in stream order.
    /// Collective.
    ///
    /// Under crash faults the engine degrades instead of failing: a
    /// window whose kernel exhausts its recovery budget is retried once
    /// (the crash lottery has moved on, so the retry draws fresh
    /// windows), and if the retry fails too, the window's lane-run
    /// queries are shed — answered with [`QueryOutcome::shed`] set and no
    /// result — while cache hits are still served. This never panics and
    /// never returns an error: the degradation policy absorbs every
    /// recovery failure.
    pub fn serve(&mut self, ctx: &mut RankCtx, queries: &[Query]) -> Vec<QueryOutcome> {
        let mut out = Vec::with_capacity(queries.len());
        let width = self.cfg.batch_width.max(1);
        for window in queries.chunks(width) {
            self.serve_window(ctx, window, &mut out);
        }
        out
    }

    fn serve_window(&mut self, ctx: &mut RankCtx, window: &[Query], out: &mut Vec<QueryOutcome>) {
        let part = self.graph.part();
        let me = ctx.rank();
        let k = self.landmarks.as_ref().map_or(0, |l| l.ids.len());
        // admission record key space: slot 0 = cached p2p answer from the
        // target's owner, slots 1..=k = dist(L_j, source) from the
        // source's owner, k+1..=2k = dist(L_j, target) from the target's
        // owner; key = query index * slots + slot
        let slots = (2 * k + 1) as u32;
        let batch_ord = self.stats.batches;
        let ord0 = self.stats.queries;
        ctx.trace_begin(TraceCode::QueryBatch, batch_ord, window.len() as u64);
        let t0 = ctx.now();

        let mut plans: Vec<Plan> = Vec::with_capacity(window.len());
        let mut specs: Vec<BatchSpec> = Vec::new();
        let mut lane_of: Vec<(Query, usize)> = Vec::new(); // window-dup sharing
        let mut contrib: Vec<(u32, f32, u64)> = Vec::new();

        for (qi, q) in window.iter().enumerate() {
            let ordinal = self.stats.queries;
            self.stats.queries += 1;
            let cached = self.cfg.lru_capacity > 0 && {
                // replicated recency update; owner reads the value below
                self.lru.get(&q.source).is_some()
            };
            let plan = match (q.target, cached) {
                (None, true) => {
                    self.stats.cache_hits += 1;
                    Plan::FullHit
                }
                (Some(t), true) => {
                    self.stats.cache_hits += 1;
                    if part.owner(t) == me {
                        let paths = self.lru.get(&q.source).expect("just hit");
                        let l = part.to_local(t);
                        contrib.push((qi as u32 * slots, paths.dist[l], paths.parent[l]));
                    }
                    Plan::P2pHit
                }
                (target, false) => {
                    if let Some((_, lane)) = lane_of.iter().find(|(oq, _)| oq == q) {
                        Plan::Lane(*lane)
                    } else {
                        let lane = specs.len();
                        specs.push(match target {
                            None => BatchSpec::full(q.source),
                            Some(t) => BatchSpec::p2p(q.source, t),
                        });
                        lane_of.push((*q, lane));
                        if let (Some(t), Some(lm)) = (target, self.landmarks.as_ref()) {
                            for (side, v) in [(0u32, q.source), (1, t)] {
                                if part.owner(v) == me {
                                    let l = part.to_local(v);
                                    for j in 0..k {
                                        let key =
                                            qi as u32 * slots + 1 + side * k as u32 + j as u32;
                                        contrib.push((key, lm.local_dist(j, l), 0));
                                    }
                                }
                            }
                        }
                        Plan::Lane(lane)
                    }
                }
            };
            ctx.trace_count(
                TraceCode::QueryAdmitted,
                ordinal,
                matches!(plan, Plan::FullHit | Plan::P2pHit) as u64,
            );
            plans.push(plan);
        }

        // one admission allgather resolves cached p2p answers and both
        // halves of every landmark bound
        let mut hit_answer = vec![(INF_WEIGHT, NO_PARENT); window.len()];
        let mut ls = vec![INF_WEIGHT; window.len() * k.max(1)];
        let mut lt = vec![INF_WEIGHT; window.len() * k.max(1)];
        for block in ctx.allgatherv(&contrib) {
            for (key, d, aux) in block {
                let qi = (key / slots) as usize;
                let slot = key % slots;
                if slot == 0 {
                    hit_answer[qi] = (d, aux);
                } else if (slot as usize) <= k {
                    ls[qi * k + slot as usize - 1] = d;
                } else {
                    lt[qi * k + slot as usize - 1 - k] = d;
                }
            }
        }
        for (qi, plan) in plans.iter().enumerate() {
            if let Plan::Lane(lane) = plan {
                if specs[*lane].target.is_some() && k > 0 && specs[*lane].bound.is_infinite() {
                    specs[*lane].bound =
                        triangle_bound(&ls[qi * k..(qi + 1) * k], &lt[qi * k..(qi + 1) * k]);
                }
            }
        }
        let t_admit = ctx.now();

        // Run the window batch. A kernel `Err` is agreement-backed —
        // identical on every rank from the same collective point — so the
        // retry and shed decisions below stay in lockstep without any
        // extra coordination.
        let lane_queries = plans.iter().filter(|p| matches!(p, Plan::Lane(_))).count() as u64;
        let batch = if specs.is_empty() {
            None
        } else {
            let mut attempt = try_batched_delta_stepping(ctx, self.graph, &specs, &self.cfg.opts);
            if attempt.is_err() {
                // one re-admission: the crash lottery's draw counter is
                // monotone, so the retry faces fresh crash windows rather
                // than replaying the fatal schedule
                self.stats.queries_retried += lane_queries;
                ctx.count_queries_retried(lane_queries);
                attempt = try_batched_delta_stepping(ctx, self.graph, &specs, &self.cfg.opts);
            }
            match attempt {
                Ok((md, st)) => {
                    self.stats.lanes_run += specs.len() as u64;
                    self.stats.supersteps += st.supersteps;
                    self.stats.relaxations += st.relaxations;
                    self.stats.updates_sent += st.updates_sent;
                    self.stats.pruned += st.pruned;
                    Some(md)
                }
                Err(_) => None, // twice unrecoverable: shed the window's lanes
            }
        };
        let batch_failed = batch.is_none() && !specs.is_empty();

        for (qi, (q, plan)) in window.iter().zip(&plans).enumerate() {
            out.push(match plan {
                Plan::FullHit => QueryOutcome {
                    query: *q,
                    dist: None,
                    parent: None,
                    cache_hit: true,
                    early_exit: false,
                    bound: INF_WEIGHT,
                    latency_s: t_admit - t0,
                    shed: false,
                    paths: self
                        .cfg
                        .keep_paths
                        .then(|| self.lru.get(&q.source).expect("hit").clone()),
                },
                Plan::P2pHit => QueryOutcome {
                    query: *q,
                    dist: Some(hit_answer[qi].0),
                    parent: Some(hit_answer[qi].1),
                    cache_hit: true,
                    early_exit: false,
                    bound: INF_WEIGHT,
                    latency_s: t_admit - t0,
                    shed: false,
                    paths: None,
                },
                Plan::Lane(_) if batch_failed => {
                    // the window's kernel failed twice: no answer exists,
                    // hand back a counted shed verdict instead of dying
                    self.stats.queries_shed += 1;
                    ctx.count_queries_shed(1);
                    ctx.trace_count(TraceCode::QueryShed, ord0 + qi as u64, 0);
                    QueryOutcome {
                        query: *q,
                        dist: None,
                        parent: None,
                        cache_hit: false,
                        early_exit: false,
                        bound: INF_WEIGHT,
                        latency_s: ctx.now() - t0,
                        shed: true,
                        paths: None,
                    }
                }
                Plan::Lane(lane) => {
                    let md = batch.as_ref().expect("lane implies batch");
                    let early = md.early_exit[*lane];
                    if early {
                        self.stats.early_exits += 1;
                    }
                    let latency_s = md.finished_at[*lane] - t0;
                    let shed = latency_s > self.cfg.deadline_s;
                    if shed {
                        self.stats.queries_shed += 1;
                        ctx.count_queries_shed(1);
                        ctx.trace_count(TraceCode::QueryShed, ord0 + qi as u64, 1);
                    }
                    QueryOutcome {
                        query: *q,
                        dist: q.target.map(|_| md.target_dist[*lane]),
                        parent: q.target.map(|_| md.target_parent[*lane]),
                        cache_hit: false,
                        early_exit: early,
                        bound: specs[*lane].bound,
                        latency_s,
                        shed,
                        paths: (self.cfg.keep_paths && q.target.is_none())
                            .then(|| md.lane_paths(*lane)),
                    }
                }
            });
        }

        // cache full results, in window order (replicated key stream)
        if let Some(md) = &batch {
            for &(q, lane) in &lane_of {
                if q.target.is_none() && self.cfg.lru_capacity > 0 {
                    self.lru.insert(q.source, md.lane_paths(lane));
                }
            }
        }
        self.stats.batches += 1;
        ctx.trace_end(TraceCode::QueryBatch, batch_ord, specs.len() as u64);
    }
}

/// Pick the `k` highest-degree vertices (ties by id) as landmarks and run
/// one batched full SSSP from all of them.
fn precompute_landmarks<P: VertexPartition + Sync>(
    ctx: &mut RankCtx,
    graph: &LocalGraph<P>,
    k: usize,
    opts: &OptConfig,
    stats: &mut ServeStats,
) -> Result<LandmarkSet, FaultEscalation> {
    let part = graph.part();
    let me = ctx.rank();
    let n_local = graph.local_vertices();
    let mut cand: Vec<(u64, u64)> = (0..n_local)
        .map(|l| (graph.neighbors(l).len() as u64, part.to_global(me, l)))
        .collect();
    cand.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    cand.truncate(k);
    let mut merged: Vec<(u64, u64)> = ctx.allgatherv(&cand).into_iter().flatten().collect();
    merged.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    merged.truncate(k);
    let ids: Vec<VertexId> = merged.into_iter().map(|(_, v)| v).collect();
    if ids.is_empty() {
        return Ok(LandmarkSet {
            ids,
            local: Vec::new(),
            n_local,
        });
    }

    let specs: Vec<BatchSpec> = ids.iter().map(|&v| BatchSpec::full(v)).collect();
    let (md, st): (MultiDist, _) = try_batched_delta_stepping(ctx, graph, &specs, opts)?;
    stats.precompute_supersteps += st.supersteps;
    let mut local = vec![INF_WEIGHT; ids.len() * n_local];
    for j in 0..ids.len() {
        local[j * n_local..(j + 1) * n_local].copy_from_slice(md.lane_dist(j));
    }
    Ok(LandmarkSet {
        ids,
        local,
        n_local,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use g500_baselines::dijkstra;
    use g500_graph::{Csr, Directedness};
    use g500_partition::{assemble_local_graph, Block1D};
    use simnet::{Machine, MachineConfig};

    #[test]
    fn lru_evicts_least_recent_and_refreshes_on_get() {
        let mut lru: Lru<u64, u32> = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.get(&1), Some(&10)); // 1 now most recent
        lru.insert(3, 30); // evicts 2
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(&10));
        assert_eq!(lru.get(&3), Some(&30));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_zero_capacity_caches_nothing() {
        let mut lru: Lru<u64, u32> = Lru::new(0);
        lru.insert(1, 10);
        assert!(lru.is_empty());
        assert_eq!(lru.get(&1), None);
    }

    #[test]
    fn triangle_bound_skips_unreachable_landmarks() {
        assert!(triangle_bound(&[INF_WEIGHT], &[0.5]).is_infinite());
        assert!(triangle_bound(&[], &[]).is_infinite());
        let b = triangle_bound(&[INF_WEIGHT, 1.0], &[0.25, 2.0]);
        assert!((b - 3.0).abs() < 1e-3 && b >= 3.0);
    }

    #[test]
    fn engine_answers_match_dijkstra_and_cache_is_exact() {
        let el = g500_gen::simple::erdos_renyi(64, 300, 77);
        let csr = Csr::from_edges(64, &el, Directedness::Undirected);
        let p = 3;
        let queries = vec![
            Query::full(3),
            Query::p2p(3, 40), // same window as the full query: own lane
            Query::p2p(11, 62),
            Query::full(3),     // second window: LRU hit
            Query::p2p(3, 40),  // LRU hit answered by target owner
            Query::p2p(11, 62), // miss again (p2p results are not cached)
        ];
        let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(64, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let cfg = ServeConfig {
                batch_width: 3,
                num_landmarks: 3,
                lru_capacity: 4,
                ..ServeConfig::default()
            };
            let mut engine = QueryEngine::new(ctx, &g, cfg);
            let outcomes = engine.serve(ctx, &queries);
            let stats = engine.stats().clone();
            (outcomes, stats)
        });
        let (outcomes, stats) = &rep.results[0];
        let d3 = dijkstra(&csr, 3);
        let d11 = dijkstra(&csr, 11);
        assert_eq!(outcomes.len(), 6);
        assert_eq!(outcomes[1].dist.unwrap().to_bits(), d3.dist[40].to_bits());
        assert_eq!(outcomes[2].dist.unwrap().to_bits(), d11.dist[62].to_bits());
        assert!(outcomes[3].cache_hit, "repeat full query must hit");
        assert!(outcomes[4].cache_hit, "p2p over cached source must hit");
        assert_eq!(outcomes[4].dist.unwrap().to_bits(), d3.dist[40].to_bits());
        assert_eq!(outcomes[5].dist.unwrap().to_bits(), d11.dist[62].to_bits());
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.batches, 2);
        assert!(stats.queries == 6);
        for o in outcomes {
            assert!(o.latency_s >= 0.0);
        }
    }

    #[test]
    fn serving_survives_crashes_with_exact_answers() {
        // in-budget crashes are recovered inside the kernel: the serving
        // layer sees successful batches, answers stay exact, nothing is
        // shed or retried
        let el = g500_gen::simple::erdos_renyi(64, 300, 77);
        let csr = Csr::from_edges(64, &el, Directedness::Undirected);
        let p = 3;
        let queries = vec![
            Query::full(3),
            Query::p2p(3, 40),
            Query::p2p(11, 62),
            Query::full(21),
        ];
        let plan = simnet::CrashPlan::random(0x5E12, 0.01).with_checkpoint_interval(2);
        let rep = Machine::new(MachineConfig::with_ranks(p).crashes(plan)).run(|ctx| {
            let part = Block1D::new(64, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let cfg = ServeConfig {
                batch_width: 2,
                num_landmarks: 3,
                lru_capacity: 4,
                ..ServeConfig::default()
            };
            let mut engine = QueryEngine::new(ctx, &g, cfg);
            let outcomes = engine.serve(ctx, &queries);
            (outcomes, engine.stats().clone())
        });
        assert!(
            rep.total_stats().saw_crashes(),
            "the schedule must actually crash someone: {:?}",
            rep.total_stats()
        );
        let (outcomes, stats) = &rep.results[0];
        let d3 = dijkstra(&csr, 3);
        let d11 = dijkstra(&csr, 11);
        assert_eq!(outcomes[1].dist.unwrap().to_bits(), d3.dist[40].to_bits());
        assert_eq!(outcomes[2].dist.unwrap().to_bits(), d11.dist[62].to_bits());
        assert!(outcomes.iter().all(|o| !o.shed));
        assert_eq!(stats.queries_shed, 0);
        assert_eq!(stats.queries_retried, 0);
    }

    #[test]
    fn unrecoverable_windows_shed_instead_of_failing() {
        // crash rate 1.0: every rank dies at every probe, so every window
        // batch loses its checkpoints twice — the engine must retry once,
        // then shed the window's lane queries without panicking
        let el = g500_gen::simple::erdos_renyi(48, 220, 31);
        let p = 2;
        let queries = vec![
            Query::full(3),
            Query::p2p(3, 40),
            Query::full(7),
            Query::p2p(11, 20),
        ];
        let plan = simnet::CrashPlan::random(0xDEAD, 1.0).with_checkpoint_interval(2);
        let rep = Machine::new(MachineConfig::with_ranks(p).crashes(plan)).run(|ctx| {
            let part = Block1D::new(48, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let cfg = ServeConfig {
                batch_width: 2,
                num_landmarks: 0, // precompute has no stream to degrade onto
                lru_capacity: 0,
                ..ServeConfig::default()
            };
            let mut engine = QueryEngine::new(ctx, &g, cfg);
            let outcomes = engine.serve(ctx, &queries);
            (outcomes, engine.stats().clone())
        });
        let (outcomes, stats) = &rep.results[0];
        assert_eq!(outcomes.len(), 4);
        for o in outcomes {
            assert!(o.shed, "query {:?} must be shed", o.query);
            assert!(o.dist.is_none() && o.paths.is_none());
        }
        assert_eq!(stats.queries_shed, 4);
        assert_eq!(stats.queries_retried, 4);
        assert!(rep.total_stats().queries_shed > 0);
        assert!(rep.total_stats().queries_retried > 0);
    }

    #[test]
    fn zero_deadline_sheds_late_answers_but_keeps_them_exact() {
        let el = g500_gen::simple::erdos_renyi(48, 220, 31);
        let csr = Csr::from_edges(48, &el, Directedness::Undirected);
        let p = 2;
        let queries = vec![Query::p2p(3, 40), Query::p2p(3, 40)];
        let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(48, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let cfg = ServeConfig {
                batch_width: 2,
                num_landmarks: 0,
                lru_capacity: 0,
                deadline_s: 0.0,
                ..ServeConfig::default()
            };
            let mut engine = QueryEngine::new(ctx, &g, cfg);
            let outcomes = engine.serve(ctx, &queries);
            (outcomes, engine.stats().clone())
        });
        let (outcomes, stats) = &rep.results[0];
        let d3 = dijkstra(&csr, 3);
        // a deadline shed is an SLO verdict: the answer is still exact
        for o in outcomes {
            assert!(o.shed);
            assert_eq!(o.dist.unwrap().to_bits(), d3.dist[40].to_bits());
        }
        assert_eq!(stats.queries_shed, 2);
        assert_eq!(stats.queries_retried, 0);
    }

    #[test]
    fn landmark_bound_is_attached_and_sound() {
        let el = g500_gen::simple::erdos_renyi(96, 500, 5);
        let csr = Csr::from_edges(96, &el, Directedness::Undirected);
        let p = 2;
        let queries: Vec<Query> = (0..8).map(|i| Query::p2p(i * 7, i * 11 + 1)).collect();
        let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(96, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let cfg = ServeConfig {
                batch_width: 8,
                num_landmarks: 4,
                lru_capacity: 0,
                ..ServeConfig::default()
            };
            let mut engine = QueryEngine::new(ctx, &g, cfg);
            engine.serve(ctx, &queries)
        });
        let mut bounded = 0;
        for o in &rep.results[0] {
            let oracle = dijkstra(&csr, o.query.source);
            let true_d = oracle.dist[o.query.target.unwrap() as usize];
            assert_eq!(
                o.dist.unwrap().to_bits(),
                true_d.to_bits(),
                "query {:?}",
                o.query
            );
            if o.bound.is_finite() {
                bounded += 1;
                assert!(o.bound >= true_d, "bound below true distance");
            }
        }
        assert!(bounded > 0, "no query got a landmark bound");
    }
}
