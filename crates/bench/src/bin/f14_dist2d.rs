//! F14 — 1D vs 2D kernel, measured.
//!
//! The companion analytic experiment (F13) bounds per-vertex fan-out; this
//! one runs both kernels on the same graphs and machine and reports what
//! the bound buys and costs: simulated time, messages, bytes, supersteps.
//! 1D is the paper family's choice for SSSP; 2D caps fan-out but
//! replicates every frontier record √p ways — the crossover depends on
//! frontier density and machine latency.
//!
//! Overrides: `G500_MAX_SCALE` (15), `G500_RANKS` (16, must be square),
//! `G500_ROOTS` (2).

use g500_bench::{banner, param, secs, Table};
use g500_gen::{KroneckerGenerator, KroneckerParams};
use g500_partition::{assemble_local_graph, Block1D};
use g500_sssp::{distributed_delta_stepping, Grid2DSssp, OptConfig};
use graph500::simnet::{Machine, MachineConfig, NetStats};

struct Point {
    time: f64,
    msgs: u64,
    mbytes: f64,
    supersteps: u64,
}

fn run_1d(gen: &KroneckerGenerator, ranks: usize, roots: &[u64]) -> Point {
    let n = gen.params().num_vertices();
    let m = gen.params().num_edges();
    let opts = OptConfig::all_on();
    let rep = Machine::new(MachineConfig::with_ranks(ranks)).run(|ctx| {
        let part = Block1D::new(n, ranks);
        let (lo, hi) = (
            ctx.rank() as u64 * m / ranks as u64,
            (ctx.rank() as u64 + 1) * m / ranks as u64,
        );
        let mine = gen.edge_block(lo..hi);
        let g = assemble_local_graph(ctx, mine.iter(), part);
        let start = ctx.now();
        let mut steps = 0u64;
        for &r in roots {
            let (_, s) = distributed_delta_stepping(ctx, &g, r, &opts);
            steps += s.supersteps;
        }
        let t = ctx.allreduce(ctx.now() - start, |a, b| if a > b { *a } else { *b });
        (t, steps)
    });
    summarize(rep.results[0].0, rep.results[0].1, &rep.stats)
}

fn run_2d(gen: &KroneckerGenerator, ranks: usize, roots: &[u64]) -> Point {
    let n = gen.params().num_vertices();
    let m = gen.params().num_edges();
    let rep = Machine::new(MachineConfig::with_ranks(ranks)).run(|ctx| {
        let (lo, hi) = (
            ctx.rank() as u64 * m / ranks as u64,
            (ctx.rank() as u64 + 1) * m / ranks as u64,
        );
        let mine = gen.edge_block(lo..hi);
        let mut g = Grid2DSssp::build(ctx, n, mine.iter(), 0.125);
        let start = ctx.now();
        let mut steps = 0u64;
        for &r in roots {
            let s = g.run(ctx, r);
            steps += s.supersteps;
        }
        let t = ctx.allreduce(ctx.now() - start, |a, b| if a > b { *a } else { *b });
        (t, steps)
    });
    summarize(rep.results[0].0, rep.results[0].1, &rep.stats)
}

fn summarize(time: f64, supersteps: u64, stats: &[NetStats]) -> Point {
    let total = graph500::simnet::stats::aggregate(stats);
    Point {
        time,
        msgs: total.total_msgs(),
        mbytes: total.total_bytes() as f64 / 1e6,
        supersteps,
    }
}

fn main() {
    let max_scale = param("G500_MAX_SCALE", 15) as u32;
    let ranks = param("G500_RANKS", 16) as usize;
    let nroots = param("G500_ROOTS", 2) as usize;
    banner(
        "F14",
        "1D vs 2D kernel (measured)",
        &[("ranks", ranks.to_string())],
    );

    let t = Table::new(&["scale", "kernel", "sim_time", "supersteps", "msgs", "MB"]);
    for scale in (11..=max_scale).step_by(2) {
        let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, 1));
        // roots with edges, deterministic
        let sample = gen.edge_block(0..1024);
        let mut roots: Vec<u64> = Vec::new();
        for e in sample.iter() {
            if roots.len() < nroots && !roots.contains(&e.u) {
                roots.push(e.u);
            }
        }
        let one = run_1d(&gen, ranks, &roots);
        let two = run_2d(&gen, ranks, &roots);
        t.row(&[
            scale.to_string(),
            "1D (paper)".into(),
            secs(one.time),
            one.supersteps.to_string(),
            one.msgs.to_string(),
            format!("{:.2}", one.mbytes),
        ]);
        t.row(&[
            scale.to_string(),
            "2D grid".into(),
            secs(two.time),
            two.supersteps.to_string(),
            two.msgs.to_string(),
            format!("{:.2}", two.mbytes),
        ]);
    }
    println!("\nexpected shape: 2D trades lower peak fan-out for frontier replication; 1D with coalescing+hub partition wins at these densities, consistent with the paper family's 1D choice for SSSP");
}
