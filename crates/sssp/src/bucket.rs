//! The bucket priority structure of delta-stepping.
//!
//! Distances are binned into buckets of width Δ; bucket `k` holds vertices
//! with tentative distance in `[kΔ, (k+1)Δ)`. Entries are *lazy*: a vertex
//! whose distance improves is simply inserted again into its new bucket, and
//! stale entries are filtered at pop time by re-checking the vertex's
//! current bucket — the standard trick that avoids a decrease-key.
//!
//! # Radix layout
//!
//! Finding the next non-empty bucket used to be a linear cursor scan —
//! `O(#buckets)` per epoch, which dominates on long-diameter graphs where
//! most buckets are empty (road networks, `almost_line` adversaries). The
//! queue now keeps a multi-level occupancy bitmap over the bucket lanes:
//! level 0 has one bit per bucket, and each level above summarizes 64 words
//! of the level below, so `min_bucket` is a masked-word scan plus one
//! descent — `O(64 · levels)` with `levels = ⌈log₆₄ #buckets⌉` (3 levels
//! covers 16M buckets). The lanes themselves are unchanged `Vec<u32>`s in
//! insertion order, so every drain returns bitwise-identical contents in
//! the identical order as the linear-scan layout — the shared-memory
//! delta-stepping determinism contract does not see the index at all.

use g500_graph::Weight;

/// A lazy bucket queue over local vertex indices, indexed by a multi-level
/// occupancy bitmap.
#[derive(Clone, Debug)]
pub struct BucketQueue {
    delta: Weight,
    /// `buckets[k]` holds (possibly stale) vertices for bucket index `k`,
    /// in insertion order. Length is kept a multiple of the bitmap fanout.
    buckets: Vec<Vec<u32>>,
    /// Occupancy bitmaps: `levels[0]` has one bit per bucket (bit set ⇔
    /// lane non-empty); `levels[l][w]` bit `b` is set ⇔ word
    /// `levels[l-1][w·64 + b]` is non-zero. The top level is one word.
    levels: Vec<Vec<u64>>,
    /// Index of the lowest bucket that may be non-empty.
    cursor: usize,
    /// Number of live entries (upper bound; staleness makes it approximate,
    /// exact emptiness is checked against the occupancy index).
    entries: usize,
}

impl BucketQueue {
    /// New queue with bucket width `delta`.
    pub fn new(delta: Weight) -> Self {
        assert!(
            delta > 0.0 && delta.is_finite(),
            "delta must be positive and finite"
        );
        Self {
            delta,
            buckets: Vec::new(),
            levels: Vec::new(),
            cursor: 0,
            entries: 0,
        }
    }

    /// Bucket width.
    #[inline]
    pub fn delta(&self) -> Weight {
        self.delta
    }

    /// Bucket index of distance `d`.
    #[inline]
    pub fn bucket_of(&self, d: Weight) -> usize {
        debug_assert!(d.is_finite() && d >= 0.0);
        (d / self.delta) as usize
    }

    /// Grow the lane array (geometrically) and rebuild the bitmap pyramid
    /// so bucket `k` is addressable. Amortized O(1) per insert; the
    /// rebuild touches only `#buckets / 64` words.
    fn ensure_bucket(&mut self, k: usize) {
        if k < self.buckets.len() {
            return;
        }
        let new_len = (k + 1).next_power_of_two().max(64);
        self.buckets.resize_with(new_len, Vec::new);
        // Rebuild the pyramid bottom-up; existing occupancy is preserved
        // because lanes were only extended with empties.
        self.rebuild_index();
    }

    /// Set bucket `k`'s occupancy bit, propagating up the pyramid.
    #[inline]
    fn mark(&mut self, k: usize) {
        let mut idx = k;
        for level in &mut self.levels {
            let bit = 1u64 << (idx & 63);
            let word = &mut level[idx >> 6];
            if *word & bit != 0 {
                return; // ancestors already set
            }
            *word |= bit;
            idx >>= 6;
        }
    }

    /// Clear bucket `k`'s occupancy bit, clearing summary bits whose whole
    /// word drained.
    #[inline]
    fn unmark(&mut self, k: usize) {
        let mut idx = k;
        for level in &mut self.levels {
            let word = &mut level[idx >> 6];
            *word &= !(1u64 << (idx & 63));
            if *word != 0 {
                return; // word still occupied: summaries stay set
            }
            idx >>= 6;
        }
    }

    /// First occupied bucket `≥ from`, via masked-word ascent then descent.
    fn first_occupied_from(&self, from: usize) -> Option<usize> {
        if self.levels.is_empty() || from >= self.buckets.len() {
            return None;
        }
        let mut level = 0;
        let mut idx = from;
        loop {
            let (w, b) = (idx >> 6, idx & 63);
            let word = self.levels[level].get(w).map_or(0, |&x| x & (!0u64 << b));
            if word != 0 {
                idx = (w << 6) + word.trailing_zeros() as usize;
                while level > 0 {
                    level -= 1;
                    let w = self.levels[level][idx];
                    debug_assert!(w != 0, "summary bit set over empty word");
                    idx = (idx << 6) + w.trailing_zeros() as usize;
                }
                return Some(idx);
            }
            // this word is clear at and above `b`: resume one level up,
            // strictly after the word we just exhausted
            level += 1;
            if level >= self.levels.len() {
                return None;
            }
            idx = w + 1;
        }
    }

    /// Insert vertex `v` with tentative distance `d` (lazy; duplicates OK).
    pub fn insert(&mut self, v: u32, d: Weight) {
        let k = self.bucket_of(d);
        self.ensure_bucket(k);
        self.buckets[k].push(v);
        self.mark(k);
        self.entries += 1;
        if k < self.cursor {
            self.cursor = k;
        }
    }

    /// Lowest bucket index that currently has entries, advancing the cursor
    /// past drained buckets. `None` when the queue is empty.
    pub fn min_bucket(&mut self) -> Option<usize> {
        let found = self.first_occupied_from(self.cursor);
        self.cursor = found.unwrap_or(self.buckets.len());
        found
    }

    /// Remove and return the raw (possibly stale) contents of bucket `k`.
    /// Callers must filter entries against the current distance array.
    pub fn take_bucket(&mut self, k: usize) -> Vec<u32> {
        if k >= self.buckets.len() {
            return Vec::new();
        }
        let v = std::mem::take(&mut self.buckets[k]);
        if !v.is_empty() {
            self.unmark(k);
        }
        self.entries -= v.len();
        v
    }

    /// As [`take_bucket`](Self::take_bucket), but append into the caller's
    /// scratch instead of handing over the lane Vec, so the lane keeps its
    /// capacity. Contents and order are identical to `take_bucket`; the
    /// batched serving kernel drains thousands of buckets per batch and
    /// would otherwise re-grow every lane it revisits.
    pub fn drain_bucket_into(&mut self, k: usize, out: &mut Vec<u32>) {
        let Some(lane) = self.buckets.get_mut(k) else {
            return;
        };
        if lane.is_empty() {
            return;
        }
        out.extend_from_slice(lane);
        self.entries -= lane.len();
        lane.clear();
        self.unmark(k);
    }

    /// Drop all entries (stale included) but keep every lane's capacity and
    /// the bitmap allocation, resetting the cursor: a queue reused across
    /// batches starts each batch from bucket 0 without reallocating.
    pub fn clear(&mut self) {
        let mut k = 0usize;
        while let Some(next) = self.first_occupied_from(k) {
            self.buckets[next].clear();
            self.unmark(next);
            k = next + 1;
        }
        self.entries = 0;
        self.cursor = 0;
    }

    /// Raw size of bucket `k` including stale entries.
    pub fn bucket_len(&self, k: usize) -> usize {
        self.buckets.get(k).map_or(0, Vec::len)
    }

    /// Remove and return *all* remaining entries of *all* buckets (used by
    /// tail fusion, which stops caring about bucket order). Order is
    /// ascending bucket index, insertion order within a bucket — identical
    /// to the pre-radix linear sweep.
    pub fn drain_all(&mut self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.entries);
        let mut k = self.cursor;
        while let Some(next) = self.first_occupied_from(k) {
            out.append(&mut self.buckets[next]);
            self.unmark(next);
            k = next + 1;
        }
        self.entries = 0;
        out
    }

    /// Total entries across buckets, counting stale duplicates.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no entries remain (stale or otherwise).
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Rebuild the occupancy pyramid from the current lane contents.
    fn rebuild_index(&mut self) {
        if self.buckets.is_empty() {
            self.levels.clear();
            return;
        }
        let mut words = self.buckets.len().div_ceil(64);
        let mut fresh: Vec<Vec<u64>> = Vec::new();
        loop {
            fresh.push(vec![0u64; words]);
            if words <= 1 {
                break;
            }
            words = words.div_ceil(64);
        }
        for (k, lane) in self.buckets.iter().enumerate() {
            if !lane.is_empty() {
                fresh[0][k >> 6] |= 1u64 << (k & 63);
            }
        }
        for l in 1..fresh.len() {
            for w in 0..fresh[l - 1].len() {
                if fresh[l - 1][w] != 0 {
                    fresh[l][w >> 6] |= 1u64 << (w & 63);
                }
            }
        }
        self.levels = fresh;
    }

    /// Append an exact snapshot to `out`: lane-array length, cursor, and
    /// every non-empty lane verbatim. Stale entries are included on
    /// purpose — rollback determinism is defined as bitwise equality with
    /// the fault-free run, and staleness is part of the queue's behavior.
    pub fn save(&self, out: &mut Vec<u8>) {
        use simnet::recovery::codec;
        codec::put_u64(out, self.delta.to_bits() as u64);
        codec::put_u64(out, self.buckets.len() as u64);
        codec::put_u64(out, self.cursor as u64);
        let occupied = self.buckets.iter().filter(|l| !l.is_empty()).count();
        codec::put_u64(out, occupied as u64);
        for (k, lane) in self.buckets.iter().enumerate() {
            if !lane.is_empty() {
                codec::put_u64(out, k as u64);
                codec::put_u32_slice(out, lane);
            }
        }
    }

    /// Restore from a snapshot written by [`BucketQueue::save`] at `*pos`,
    /// advancing it. The queue must have been constructed with the same
    /// `delta` the snapshot was taken under.
    pub fn load(&mut self, buf: &[u8], pos: &mut usize) {
        use simnet::recovery::codec;
        let delta_bits = codec::get_u64(buf, pos) as u32;
        assert_eq!(
            delta_bits,
            self.delta.to_bits(),
            "checkpoint bucket width does not match the live queue"
        );
        let len = codec::get_u64(buf, pos) as usize;
        self.buckets.clear();
        self.buckets.resize_with(len, Vec::new);
        self.cursor = codec::get_u64(buf, pos) as usize;
        self.entries = 0;
        let occupied = codec::get_u64(buf, pos) as usize;
        for _ in 0..occupied {
            let k = codec::get_u64(buf, pos) as usize;
            let lane = codec::get_u32_vec(buf, pos);
            self.entries += lane.len();
            self.buckets[k] = lane;
        }
        self.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        let q = BucketQueue::new(0.5);
        assert_eq!(q.bucket_of(0.0), 0);
        assert_eq!(q.bucket_of(0.49), 0);
        assert_eq!(q.bucket_of(0.5), 1);
        assert_eq!(q.bucket_of(2.75), 5);
    }

    #[test]
    fn insert_and_take_in_order() {
        let mut q = BucketQueue::new(1.0);
        q.insert(10, 2.5);
        q.insert(20, 0.5);
        q.insert(30, 2.9);
        assert_eq!(q.min_bucket(), Some(0));
        assert_eq!(q.take_bucket(0), vec![20]);
        assert_eq!(q.min_bucket(), Some(2));
        let mut b2 = q.take_bucket(2);
        b2.sort_unstable();
        assert_eq!(b2, vec![10, 30]);
        assert_eq!(q.min_bucket(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn reinsertion_moves_cursor_back() {
        let mut q = BucketQueue::new(1.0);
        q.insert(1, 5.0);
        assert_eq!(q.min_bucket(), Some(5));
        // an improvement re-inserts at a lower bucket
        q.insert(1, 0.5);
        assert_eq!(q.min_bucket(), Some(0));
    }

    #[test]
    fn drain_all_empties_everything() {
        let mut q = BucketQueue::new(0.25);
        for i in 0..10u32 {
            q.insert(i, i as f32 * 0.3);
        }
        assert_eq!(q.len(), 10);
        let mut all = q.drain_all();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<u32>>());
        assert!(q.is_empty());
        assert_eq!(q.min_bucket(), None);
    }

    #[test]
    fn drain_into_matches_take() {
        let mut a = BucketQueue::new(0.5);
        let mut b = BucketQueue::new(0.5);
        for i in 0..50u32 {
            let d = (i % 9) as f32 * 0.4;
            a.insert(i, d);
            b.insert(i, d);
        }
        let mut scratch = Vec::new();
        while let Some(k) = a.min_bucket() {
            scratch.clear();
            a.drain_bucket_into(k, &mut scratch);
            assert_eq!(b.min_bucket(), Some(k));
            assert_eq!(scratch, b.take_bucket(k));
        }
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut q = BucketQueue::new(0.25);
        for i in 0..100u32 {
            q.insert(i, (i % 13) as f32 * 0.5);
        }
        // advance the cursor past bucket 0 first
        let k = q.min_bucket().unwrap();
        q.take_bucket(k);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.min_bucket(), None);
        q.insert(7, 0.1);
        assert_eq!(q.min_bucket(), Some(0));
        assert_eq!(q.take_bucket(0), vec![7]);
    }

    #[test]
    fn take_out_of_range_is_empty() {
        let mut q = BucketQueue::new(1.0);
        assert_eq!(q.take_bucket(99), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn bad_delta_rejected() {
        BucketQueue::new(0.0);
    }

    #[test]
    fn sparse_far_bucket_crosses_bitmap_words() {
        // bucket 100_000 needs 2 pyramid levels; the scan must skip ~1.5k
        // empty level-0 words without visiting them
        let mut q = BucketQueue::new(0.001);
        let k = q.bucket_of(100.0); // ~100_000 (f32 division is inexact)
        assert!(k > 64 * 64, "must exceed one summary word of buckets");
        q.insert(7, 100.0);
        assert_eq!(q.min_bucket(), Some(k));
        assert_eq!(q.take_bucket(k), vec![7]);
        assert_eq!(q.min_bucket(), None);
        // cursor is far right; a fresh low insert must pull it back
        q.insert(8, 0.0);
        assert_eq!(q.min_bucket(), Some(0));
    }

    #[test]
    fn summary_bits_clear_only_when_word_drains() {
        let mut q = BucketQueue::new(1.0);
        // two occupied buckets inside the same level-0 word
        q.insert(1, 3.0);
        q.insert(2, 7.0);
        assert_eq!(q.take_bucket(3), vec![1]);
        // word still occupied through bucket 7
        assert_eq!(q.min_bucket(), Some(7));
        assert_eq!(q.take_bucket(7), vec![2]);
        assert_eq!(q.min_bucket(), None);
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let mut q = BucketQueue::new(0.5);
        for i in 0..200u32 {
            q.insert(i, (i % 37) as f32 * 0.21);
        }
        // drain a couple of buckets so cursor and stale structure are
        // mid-flight, then improve one vertex to create a stale duplicate
        let k = q.min_bucket().unwrap();
        q.take_bucket(k);
        q.insert(140, 0.1);
        let mut snap = Vec::new();
        q.save(&mut snap);
        let mut r = BucketQueue::new(0.5);
        let mut pos = 0;
        r.load(&snap, &mut pos);
        assert_eq!(pos, snap.len());
        assert_eq!(r.len(), q.len());
        // the restored queue must drain identically to the original
        loop {
            let (a, b) = (q.min_bucket(), r.min_bucket());
            assert_eq!(a, b);
            match a {
                Some(k) => assert_eq!(q.take_bucket(k), r.take_bucket(k)),
                None => break,
            }
        }
        // and a second snapshot of the restored queue is byte-identical
        let mut q2 = BucketQueue::new(0.5);
        let mut r2 = BucketQueue::new(0.5);
        let mut pos = 0;
        q2.load(&snap, &mut pos);
        let mut pos = 0;
        r2.load(&snap, &mut pos);
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        q2.save(&mut s1);
        r2.save(&mut s2);
        assert_eq!(s1, s2);
        assert_eq!(s1, snap);
    }

    #[test]
    #[should_panic(expected = "bucket width does not match")]
    fn snapshot_delta_mismatch_rejected() {
        let mut q = BucketQueue::new(0.5);
        q.insert(1, 0.1);
        let mut snap = Vec::new();
        q.save(&mut snap);
        let mut r = BucketQueue::new(0.25);
        r.load(&snap, &mut 0);
    }

    #[test]
    fn interleaved_ops_match_naive_model() {
        // deterministic pseudo-random op stream checked against a plain
        // Vec<Vec<u32>> + linear-scan model
        let mut q = BucketQueue::new(0.5);
        let mut model: Vec<Vec<u32>> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..2000u32 {
            let d = (rng() % 700) as f32 * 0.07;
            q.insert(i, d);
            let k = (d / 0.5) as usize;
            if k >= model.len() {
                model.resize_with(k + 1, Vec::new);
            }
            model[k].push(i);
            if rng() % 3 == 0 {
                let got = q.min_bucket();
                let want = model.iter().position(|b| !b.is_empty());
                assert_eq!(got, want);
                if let Some(k) = got {
                    assert_eq!(q.bucket_len(k), model[k].len());
                    assert_eq!(q.take_bucket(k), std::mem::take(&mut model[k]));
                }
            }
        }
        let drained = q.drain_all();
        let expect: Vec<u32> = model.iter().flatten().copied().collect();
        assert_eq!(drained, expect);
        assert!(q.is_empty());
    }
}
