//! Sequential delta-stepping — the readable reference implementation.
//!
//! Classic Meyer & Sanders: process buckets in order; within a bucket,
//! repeatedly relax *light* edges (w < Δ) of newly settled vertices until
//! the bucket stops refilling, then relax the *heavy* edges (w ≥ Δ) of
//! everything the bucket settled, exactly once. Heavy relaxations can only
//! reach later buckets, which is what makes the single deferred pass safe.

use crate::bucket::BucketQueue;
use g500_graph::{Csr, ShortestPaths, VertexId, Weight};

/// Sequential delta-stepping from `root` with bucket width `delta`.
///
/// `graph` must contain both directions of each undirected edge. Exact (up
/// to float associativity): property-tested against Dijkstra.
pub fn delta_stepping(graph: &Csr, root: VertexId, delta: Weight) -> ShortestPaths {
    let n = graph.num_vertices();
    let mut sp = ShortestPaths::with_root(n, root);
    let mut buckets = BucketQueue::new(delta);
    buckets.insert(root as u32, 0.0);

    // Scratch reused across buckets (allocation-free inner loop).
    let mut settled: Vec<u32> = Vec::new();
    let mut frontier: Vec<u32> = Vec::new();

    while let Some(k) = buckets.min_bucket() {
        settled.clear();
        // Light-edge phase: drain bucket k to fixpoint.
        loop {
            frontier.clear();
            for v in buckets.take_bucket(k) {
                // lazy filter: only entries whose *current* distance still
                // falls in bucket k are live
                if buckets.bucket_of(sp.dist[v as usize]) == k {
                    frontier.push(v);
                }
            }
            if frontier.is_empty() {
                break;
            }
            settled.extend_from_slice(&frontier);
            for &u in &frontier {
                let du = sp.dist[u as usize];
                for (v, w) in graph.arcs(u as usize) {
                    if w < delta {
                        relax(&mut sp, &mut buckets, u, v, du + w);
                    }
                }
            }
        }
        // Heavy-edge phase: each vertex settled in this bucket relaxes its
        // heavy edges once. Duplicates in `settled` are possible when a
        // vertex re-entered bucket k after improving within it; relaxation
        // is idempotent so this stays correct (only mildly wasteful).
        for &u in &settled {
            let du = sp.dist[u as usize];
            for (v, w) in graph.arcs(u as usize) {
                if w >= delta {
                    relax(&mut sp, &mut buckets, u, v, du + w);
                }
            }
        }
    }
    sp
}

#[inline]
fn relax(sp: &mut ShortestPaths, buckets: &mut BucketQueue, u: u32, v: VertexId, nd: Weight) {
    let vi = v as usize;
    if nd < sp.dist[vi] {
        sp.dist[vi] = nd;
        sp.parent[vi] = u as u64;
        buckets.insert(v as u32, nd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g500_baselines::dijkstra;
    use g500_graph::{Directedness, EdgeList};

    fn check_against_dijkstra(el: &EdgeList, n: usize, root: u64, delta: f32) {
        let g = Csr::from_edges(n, el, Directedness::Undirected);
        let exact = dijkstra(&g, root);
        let ds = delta_stepping(&g, root, delta);
        assert!(
            ds.distances_match(&exact, 1e-4),
            "delta {delta} root {root} diverged from Dijkstra"
        );
    }

    #[test]
    fn random_graphs_various_deltas() {
        for seed in 0..4 {
            let el = g500_gen::simple::erdos_renyi(70, 350, seed);
            for delta in [0.05f32, 0.2, 1.0, 100.0] {
                check_against_dijkstra(&el, 70, 3, delta);
            }
        }
    }

    #[test]
    fn kronecker_graph() {
        let gen = g500_gen::KroneckerGenerator::new(g500_gen::KroneckerParams::graph500(8, 7));
        let el = gen.generate_all();
        check_against_dijkstra(&el, 256, 1, 0.125);
    }

    #[test]
    fn heavy_only_graph() {
        // all weights >= delta → pure heavy phases (Dijkstra-like behavior)
        let el = g500_gen::simple::path(10, 0.9);
        check_against_dijkstra(&el, 10, 0, 0.1);
    }

    #[test]
    fn light_only_graph() {
        // all weights < delta → single bucket, Bellman-Ford-like
        let el = g500_gen::simple::erdos_renyi(40, 160, 9);
        check_against_dijkstra(&el, 40, 0, 50.0);
    }

    #[test]
    fn zero_weight_edges_stay_in_bucket() {
        let el = EdgeList::from_edges([
            g500_graph::WEdge::new(0, 1, 0.0),
            g500_graph::WEdge::new(1, 2, 0.0),
            g500_graph::WEdge::new(2, 3, 0.7),
        ]);
        let g = Csr::from_edges(4, &el, Directedness::Undirected);
        let sp = delta_stepping(&g, 0, 0.5);
        assert_eq!(sp.dist, vec![0.0, 0.0, 0.0, 0.7]);
    }

    #[test]
    fn disconnected_graph() {
        let el = g500_gen::simple::path(5, 0.2); // vertices 5..8 isolated
        let g = Csr::from_edges(8, &el, Directedness::Undirected);
        let sp = delta_stepping(&g, 0, 0.3);
        assert_eq!(sp.reached_count(), 5);
        assert!(sp.dist[6].is_infinite());
    }
}
