//! F13 — 1D vs 2D placement: destination fan-out per relaxing vertex.
//!
//! The BFS lineage of Graph500 codes uses 2D (adjacency-matrix) process
//! grids to bound each vertex's communication partners to one grid row
//! (√p ranks) instead of up to p. Delta-stepping keeps per-vertex bucket
//! state, which favours 1D — the paper family's choice — but the trade-off
//! deserves numbers: this experiment counts, for real Kronecker frontier
//! vertices, how many *distinct destination ranks* their out-edges touch
//! under 1D block vs a √p×√p 2D grid.
//!
//! Overrides: `G500_SCALE` (14), `G500_RANKS` (16).

use g500_bench::{banner, param, Table};
use g500_gen::{KroneckerGenerator, KroneckerParams};
use g500_graph::{Csr, Directedness};
use g500_partition::{Block1D, EdgePartition2D, VertexPartition};
use std::collections::HashSet;

fn main() {
    let scale = param("G500_SCALE", 14) as u32;
    let ranks = param("G500_RANKS", 16) as usize;
    let side = (ranks as f64).sqrt().round() as usize;
    assert_eq!(
        side * side,
        ranks,
        "G500_RANKS must be a perfect square for the 2D grid"
    );
    banner(
        "F13",
        "1D vs 2D destination fan-out",
        &[
            ("scale", scale.to_string()),
            ("ranks", format!("{ranks} = {side}x{side}")),
        ],
    );

    let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, 1));
    let el = gen.generate_all();
    let n = gen.params().num_vertices();
    let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
    let p1d = Block1D::new(n, ranks);
    let p2d = EdgePartition2D::new(n, side, side);

    // fan-out distribution over all vertices with degree > 0
    let mut hist_1d = vec![0u64; ranks + 1];
    let mut hist_2d = vec![0u64; ranks + 1];
    let (mut sum_1d, mut sum_2d, mut count) = (0u64, 0u64, 0u64);
    let mut set1: HashSet<usize> = HashSet::new();
    let mut set2: HashSet<usize> = HashSet::new();
    for u in 0..n as usize {
        if csr.degree(u) == 0 {
            continue;
        }
        set1.clear();
        set2.clear();
        for &v in csr.neighbors(u) {
            set1.insert(p1d.owner(v));
            set2.insert(p2d.owner_edge(u as u64, v));
        }
        hist_1d[set1.len()] += 1;
        hist_2d[set2.len()] += 1;
        sum_1d += set1.len() as u64;
        sum_2d += set2.len() as u64;
        count += 1;
    }

    let t = Table::new(&["fanout(ranks)", "1D_vertices", "2D_vertices"]);
    for f in 1..=ranks {
        if hist_1d[f] > 0 || hist_2d[f] > 0 {
            t.row(&[
                f.to_string(),
                hist_1d[f].to_string(),
                hist_2d[f].to_string(),
            ]);
        }
    }
    println!(
        "\nmean fan-out: 1D {:.2} ranks, 2D {:.2} ranks (2D bound: {side})",
        sum_1d as f64 / count as f64,
        sum_2d as f64 / count as f64
    );
    println!("max possible: 1D {ranks}, 2D {side}");
    println!("\nexpected shape: 2D caps fan-out at sqrt(p); 1D hubs touch nearly all ranks — the cost delta 2D trades against bucket-state duplication");
}
