//! Distributed direction-optimizing BFS — Graph500 kernel 2.
//!
//! The companion kernel (the sibling paper scaled it to 281 trillion
//! edges); implemented here both for the BFS-vs-SSSP cost comparison (F10)
//! and because the Graph500 output block reports it. Level-synchronous with
//! the Beamer-style direction switch:
//!
//! * **push** (top-down): frontier vertices send `(child, parent)` claims
//!   along out-edges — traffic ∝ frontier *arcs*;
//! * **pull** (bottom-up): the frontier is broadcast and every unvisited
//!   vertex scans its own adjacency for any frontier member, stopping at
//!   the first hit — traffic ∝ frontier *vertices*, and the early exit
//!   skips most of the adjacency on dense levels.
//!
//! The broadcast ships frontier ids rather than a bitmap (conservative for
//! pull: a bitmap would be cheaper still on very dense frontiers), so the
//! measured push/pull crossover is a lower bound on the real technique's
//! win.

use crate::config::Direction;
use g500_graph::{Bitmap, VertexId};
use g500_partition::{LocalGraph, VertexPartition};
use simnet::RankCtx;
use std::collections::HashSet;

/// Sentinel parent for unvisited vertices.
pub const BFS_NO_PARENT: u64 = u64::MAX;

/// One rank's BFS output: hop level (−1 unvisited) and global parent.
#[derive(Clone, Debug)]
pub struct DistBfs {
    /// `level[l]` of local vertex `l`, −1 if unvisited.
    pub level: Vec<i64>,
    /// `parent[l]` as a global id, `BFS_NO_PARENT` if unvisited.
    pub parent: Vec<u64>,
}

impl DistBfs {
    /// Collectively reassemble global `(level, parent)` arrays.
    pub fn gather_to_all<P: VertexPartition>(
        &self,
        ctx: &mut RankCtx,
        part: &P,
    ) -> (Vec<i64>, Vec<u64>) {
        let me = ctx.rank();
        let mine: Vec<(u64, i64, u64)> = self
            .level
            .iter()
            .enumerate()
            .filter(|&(_, &lv)| lv >= 0)
            .map(|(l, &lv)| (part.to_global(me, l), lv, self.parent[l]))
            .collect();
        let blocks = ctx.allgatherv(&mine);
        let n = part.num_vertices() as usize;
        let mut level = vec![-1i64; n];
        let mut parent = vec![BFS_NO_PARENT; n];
        for block in blocks {
            for (v, lv, p) in block {
                level[v as usize] = lv;
                parent[v as usize] = p;
            }
        }
        (level, parent)
    }
}

/// Counters from one BFS run.
#[derive(Clone, Debug, Default)]
pub struct BfsStats {
    /// Communication rounds (one per level).
    pub supersteps: u64,
    /// Depth of the BFS tree (number of levels below the root).
    pub levels: u64,
    /// Levels executed top-down.
    pub push_levels: u64,
    /// Levels executed bottom-up.
    pub pull_levels: u64,
    /// Bottom-up levels whose frontier was broadcast as a bitmap (dense
    /// frontiers) rather than an id list (sparse frontiers).
    pub bitmap_levels: u64,
    /// Local edge examinations.
    pub edges_scanned: u64,
    /// Virtual seconds for the traversal on this rank.
    pub sim_time_s: f64,
}

/// Tag-free wire record for a push claim: (child global id, parent global id).
type Claim = (u64, u64);

/// Run a distributed BFS from `root`. Collective; `direction` chooses the
/// policy (Hybrid = Beamer switch with `alpha = 14`).
pub fn distributed_bfs<P: VertexPartition>(
    ctx: &mut RankCtx,
    graph: &LocalGraph<P>,
    root: VertexId,
    direction: Direction,
) -> (DistBfs, BfsStats) {
    const ALPHA: f64 = 14.0;
    let start_now = ctx.now();
    let p = ctx.size();
    let me = ctx.rank();
    let part = graph.part();
    let n_local = graph.local_vertices();

    let mut res = DistBfs {
        level: vec![-1; n_local],
        parent: vec![BFS_NO_PARENT; n_local],
    };
    let mut stats = BfsStats::default();
    let mut frontier: Vec<u32> = Vec::new();
    let mut unexplored_arcs: u64 = graph.local_arcs() as u64;

    if part.owner(root) == me {
        let l = part.to_local(root);
        res.level[l] = 0;
        res.parent[l] = root;
        frontier.push(l as u32);
        unexplored_arcs -= graph.degree(l) as u64;
    }

    let mut cur_level: i64 = 0;
    loop {
        let f_arcs_local: u64 = frontier
            .iter()
            .map(|&v| graph.degree(v as usize) as u64)
            .sum();
        let (f_size, f_arcs, unexplored) = ctx.allreduce(
            (frontier.len() as u64, f_arcs_local, unexplored_arcs),
            |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2),
        );
        if f_size == 0 {
            break;
        }
        let use_pull = match direction {
            Direction::Push => false,
            Direction::Pull => true,
            Direction::Hybrid => f_arcs as f64 * ALPHA > unexplored as f64,
        };

        let mut next: Vec<u32> = Vec::new();
        if use_pull {
            stats.pull_levels += 1;
            // Frontier membership travels one of two ways, picked by
            // density: a dense frontier as a fixed n-bit bitmap (the real
            // technique — traffic independent of frontier size), a sparse
            // one as an id list (bitmap would waste n/8 bytes per rank).
            let n_global = part.num_vertices();
            let use_bitmap = (f_size as u128) * 64 > n_global as u128;
            let in_frontier: Box<dyn Fn(u64) -> bool> = if use_bitmap {
                stats.bitmap_levels += 1;
                let mut bm = Bitmap::new(n_global as usize);
                for &v in &frontier {
                    bm.set(part.to_global(me, v as usize) as usize);
                }
                let blocks = ctx.allgatherv(bm.words());
                let mut merged = Bitmap::new(n_global as usize);
                for words in blocks {
                    merged.union_with(&Bitmap::from_words(n_global as usize, words));
                }
                ctx.charge_compute(n_global / 64 + 1);
                Box::new(move |v: u64| merged.get(v as usize))
            } else {
                let mine: Vec<u64> = frontier
                    .iter()
                    .map(|&v| part.to_global(me, v as usize))
                    .collect();
                let blocks = ctx.allgatherv(&mine);
                let fset: HashSet<u64> = blocks.into_iter().flatten().collect();
                ctx.charge_compute(fset.len() as u64);
                Box::new(move |v: u64| fset.contains(&v))
            };
            let mut scanned = 0u64;
            for l in 0..n_local {
                if res.level[l] >= 0 {
                    continue;
                }
                for (t, _) in graph.arcs(l) {
                    scanned += 1;
                    if in_frontier(t) {
                        res.level[l] = cur_level + 1;
                        res.parent[l] = t;
                        next.push(l as u32);
                        break; // the bottom-up early exit
                    }
                }
            }
            stats.edges_scanned += scanned;
            ctx.charge_compute(scanned);
        } else {
            stats.push_levels += 1;
            // Top-down: claim children along out-edges.
            let mut out: Vec<Vec<Claim>> = vec![Vec::new(); p];
            let mut scanned = 0u64;
            for &u in &frontier {
                let u_global = part.to_global(me, u as usize);
                for (v, _) in graph.arcs(u as usize) {
                    scanned += 1;
                    let owner = part.owner(v);
                    if owner == me {
                        let l = part.to_local(v);
                        if res.level[l] < 0 {
                            res.level[l] = cur_level + 1;
                            res.parent[l] = u_global;
                            next.push(l as u32);
                        }
                    } else {
                        out[owner].push((v, u_global));
                    }
                }
            }
            stats.edges_scanned += scanned;
            ctx.charge_compute(scanned);
            // dedup claims per destination (first claim wins, any parent is
            // a valid parent)
            for b in out.iter_mut() {
                b.sort_unstable_by_key(|c| c.0);
                b.dedup_by_key(|c| c.0);
            }
            let mut incoming = ctx.alltoallv(out);
            // Claims are applied in the (possibly fuzzed) delivery order;
            // level assignment is first-claim-wins, so parents may differ
            // across orders but levels never do.
            let order = ctx.delivery_order(incoming.len());
            for block in order.into_iter().map(|s| std::mem::take(&mut incoming[s])) {
                for (v, parent) in block {
                    let l = part.to_local(v);
                    if res.level[l] < 0 {
                        res.level[l] = cur_level + 1;
                        res.parent[l] = parent;
                        next.push(l as u32);
                    }
                }
            }
        }

        for &v in &next {
            unexplored_arcs = unexplored_arcs.saturating_sub(graph.degree(v as usize) as u64);
        }
        frontier = next;
        cur_level += 1;
        stats.supersteps += 1;
    }

    stats.levels = cur_level.max(1) as u64 - 1;
    stats.sim_time_s = ctx.now() - start_now;
    (res, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use g500_graph::EdgeList;
    use g500_partition::{assemble_local_graph, Block1D};
    use simnet::{Machine, MachineConfig};

    fn run_bfs(
        el: &EdgeList,
        n: u64,
        p: usize,
        root: u64,
        dir: Direction,
    ) -> (Vec<i64>, Vec<u64>, BfsStats) {
        let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(n, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let (res, stats) = distributed_bfs(ctx, &g, root, dir);
            let (level, parent) = res.gather_to_all(ctx, g.part());
            (level, parent, stats)
        });
        rep.results.into_iter().next().expect("rank 0 result")
    }

    #[test]
    fn path_levels_all_directions() {
        let el = g500_gen::simple::path(10, 1.0);
        for dir in [Direction::Push, Direction::Pull, Direction::Hybrid] {
            let (level, parent, _) = run_bfs(&el, 10, 3, 0, dir);
            assert_eq!(
                level,
                (0..10).map(|i| i as i64).collect::<Vec<_>>(),
                "{dir:?}"
            );
            assert_eq!(parent[5], 4);
        }
    }

    #[test]
    fn bfs_tree_validates() {
        let gen = g500_gen::KroneckerGenerator::new(g500_gen::KroneckerParams::graph500(8, 5));
        let el = gen.generate_all();
        for dir in [Direction::Push, Direction::Pull, Direction::Hybrid] {
            let (level, parent, _) = run_bfs(&el, 256, 4, 3, dir);
            g500_validate::validate_bfs(256, &el, 3, &level, &parent)
                .unwrap_or_else(|e| panic!("{dir:?}: {e:?}"));
        }
    }

    #[test]
    fn hybrid_pulls_on_dense_graph() {
        let el = g500_gen::simple::complete(64, 1.0);
        let (_, _, stats) = run_bfs(&el, 64, 2, 0, Direction::Hybrid);
        assert!(stats.pull_levels >= 1, "dense graph should trigger pull");
        assert_eq!(stats.levels, 1);
    }

    #[test]
    fn disconnected_part_unvisited() {
        let el = g500_gen::simple::path(4, 1.0); // vertices 4..7 isolated
        let (level, parent, _) = run_bfs(&el, 8, 2, 0, Direction::Hybrid);
        assert_eq!(level[5], -1);
        assert_eq!(parent[5], BFS_NO_PARENT);
        assert_eq!(level[3], 3);
    }

    #[test]
    fn dense_frontier_uses_bitmap_broadcast() {
        // complete graph: level-1 frontier is (almost) everyone → bitmap
        let el = g500_gen::simple::complete(64, 1.0);
        let (_, _, stats) = run_bfs(&el, 64, 2, 0, Direction::Pull);
        assert!(
            stats.bitmap_levels >= 1,
            "dense pull should pick the bitmap path"
        );
    }

    #[test]
    fn sparse_frontier_uses_id_list() {
        // long path: frontiers of size 1 → id list, never bitmap
        let el = g500_gen::simple::path(128, 1.0);
        let (_, _, stats) = run_bfs(&el, 128, 2, 0, Direction::Pull);
        assert_eq!(
            stats.bitmap_levels, 0,
            "singleton frontiers must not pay n-bit broadcasts"
        );
        assert!(stats.pull_levels > 100);
    }

    #[test]
    fn pull_scans_fewer_edges_than_push_on_dense_level() {
        let el = g500_gen::simple::complete(48, 1.0);
        let (_, _, push) = run_bfs(&el, 48, 2, 0, Direction::Push);
        let (_, _, pull) = run_bfs(&el, 48, 2, 0, Direction::Pull);
        assert!(
            pull.edges_scanned < push.edges_scanned,
            "pull {} vs push {}",
            pull.edges_scanned,
            push.edges_scanned
        );
    }
}
