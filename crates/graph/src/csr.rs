//! Compressed sparse row adjacency.
//!
//! [`Csr`] is the workhorse structure every kernel traverses. Construction is
//! a two-pass counting sort (degree count → prefix sum → scatter); the count
//! pass is parallel, the scatter pass is sequential per the single-writer
//! discipline (on the target machines each rank builds its own local CSR, so
//! intra-build parallelism matters less than avoiding atomics in the
//! scatter).

use crate::edgelist::EdgeList;
use crate::types::{VertexId, WEdge, Weight};
use rayon::prelude::*;

/// Whether an edge list already contains both directions of each edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Directedness {
    /// Insert each listed edge exactly as given.
    Directed,
    /// Insert each listed edge in both directions (Graph500 graphs are
    /// undirected but generated with one record per edge).
    Undirected,
}

/// Compressed sparse row adjacency with optional weights.
#[derive(Clone, Debug)]
pub struct Csr {
    n: usize,
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
}

impl Csr {
    /// Build a CSR over `n` vertices from an edge list.
    ///
    /// Self-loops are kept (the Graph500 validator tolerates them; SSSP
    /// relaxation over a self-loop is a no-op). Endpoints must be `< n`.
    pub fn from_edges(n: usize, edges: &EdgeList, dir: Directedness) -> Self {
        let m = edges.len();
        let slots = match dir {
            Directedness::Directed => m,
            Directedness::Undirected => 2 * m,
        };

        // Pass 1: per-vertex degree count (parallel chunked count + merge).
        // Each chunk allocates an n-slot scratch array, so the chunk count
        // is capped at the pool size (scratch ≤ threads × n × 4B) and
        // floored at MIN_COUNT_CHUNK edges per chunk. Work-size-aware
        // cutoff: a sub-threshold edge list is counted sequentially in one
        // pass — the pool hand-off and per-chunk scratch cost more than
        // the count itself (and the pool is never even started). Integer
        // degree sums are partition- and order-insensitive, so neither the
        // cutoff nor a thread-dependent chunk count can change the result
        // (see the fixed-chunk contract in `rayon`).
        const MIN_COUNT_CHUNK: usize = 1 << 15;
        let count_range = |lo: usize, hi: usize| -> Vec<u32> {
            let mut deg = vec![0u32; n];
            for i in lo..hi {
                let e = edges.get(i);
                debug_assert!(
                    (e.u as usize) < n && (e.v as usize) < n,
                    "edge ({}, {}) out of range for n={n}",
                    e.u,
                    e.v
                );
                deg[e.u as usize] += 1;
                if dir == Directedness::Undirected {
                    deg[e.v as usize] += 1;
                }
            }
            deg
        };
        let partials: Vec<Vec<u32>> = if m <= 2 * MIN_COUNT_CHUNK {
            vec![count_range(0, m)]
        } else {
            let nchunks = rayon::current_num_threads()
                .min(m.div_ceil(MIN_COUNT_CHUNK))
                .max(1);
            let chunk = m.div_ceil(nchunks).max(1);
            (0..nchunks)
                .into_par_iter()
                .with_max_len(1)
                .map(|c| count_range(c * chunk, ((c + 1) * chunk).min(m)))
                .collect()
        };

        let mut offsets = vec![0u64; n + 1];
        for part in &partials {
            for (v, &d) in part.iter().enumerate() {
                offsets[v + 1] += d as u64;
            }
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        debug_assert_eq!(offsets[n] as usize, slots);

        // Pass 2: scatter.
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut targets = vec![0 as VertexId; slots];
        let mut weights = vec![0.0 as Weight; slots];
        for e in edges.iter() {
            let c = &mut cursor[e.u as usize];
            targets[*c as usize] = e.v;
            weights[*c as usize] = e.w;
            *c += 1;
            if dir == Directedness::Undirected {
                let c = &mut cursor[e.v as usize];
                targets[*c as usize] = e.u;
                weights[*c as usize] = e.w;
                *c += 1;
            }
        }

        Csr {
            n,
            offsets,
            targets,
            weights,
        }
    }

    /// Build a *rectangular* CSR: `rows` source rows, targets unconstrained
    /// (e.g. block-local sources with global targets — the layout of a 2D
    /// edge block, whose rows and columns index different spaces).
    /// Always directed: each record is inserted exactly as given.
    pub fn from_edges_rect(rows: usize, edges: &EdgeList) -> Self {
        let m = edges.len();
        let mut offsets = vec![0u64; rows + 1];
        for i in 0..m {
            let e = edges.get(i);
            debug_assert!((e.u as usize) < rows, "source {} out of {} rows", e.u, rows);
            offsets[e.u as usize + 1] += 1;
        }
        for r in 0..rows {
            offsets[r + 1] += offsets[r];
        }
        let mut cursor = offsets[..rows].to_vec();
        let mut targets = vec![0 as VertexId; m];
        let mut weights = vec![0.0 as Weight; m];
        for e in edges.iter() {
            let c = &mut cursor[e.u as usize];
            targets[*c as usize] = e.v;
            weights[*c as usize] = e.w;
            *c += 1;
        }
        Csr {
            n: rows,
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of stored arcs (directed slots).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Neighbor ids of `u`.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[VertexId] {
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Weights parallel to [`Self::neighbors`].
    #[inline]
    pub fn edge_weights(&self, u: usize) -> &[Weight] {
        &self.weights[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// `(neighbor, weight)` pairs of `u`.
    #[inline]
    pub fn arcs(&self, u: usize) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.neighbors(u)
            .iter()
            .copied()
            .zip(self.edge_weights(u).iter().copied())
    }

    /// Offset array (length `n + 1`).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Flat target array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Flat weight array, parallel to [`Self::targets`].
    #[inline]
    pub fn weights_flat(&self) -> &[Weight] {
        &self.weights
    }

    /// Iterate over all arcs as `WEdge`s.
    pub fn iter_edges(&self) -> impl Iterator<Item = WEdge> + '_ {
        (0..self.n).flat_map(move |u| {
            self.arcs(u)
                .map(move |(v, w)| WEdge::new(u as VertexId, v, w))
        })
    }

    /// The transposed graph (in-edges become out-edges).
    ///
    /// Needed by the pull-direction relaxation kernel. For symmetric inputs
    /// the transpose equals the original, a property tests exploit.
    pub fn transpose(&self) -> Csr {
        let mut el = EdgeList::with_capacity(self.num_arcs());
        for e in self.iter_edges() {
            el.push(e.reversed());
        }
        Csr::from_edges(self.n, &el, Directedness::Directed)
    }

    /// Sort each adjacency list by target id (stabilises compression ratios
    /// and makes binary-search membership possible).
    pub fn sort_adjacency(&mut self) {
        let offsets = self.offsets.clone();
        let n = self.n;
        // Split both flat arrays into per-vertex windows and sort pairs.
        let mut perm_scratch: Vec<(VertexId, Weight)> = Vec::new();
        for u in 0..n {
            let lo = offsets[u] as usize;
            let hi = offsets[u + 1] as usize;
            if hi - lo <= 1 {
                continue;
            }
            perm_scratch.clear();
            perm_scratch.extend(
                self.targets[lo..hi]
                    .iter()
                    .copied()
                    .zip(self.weights[lo..hi].iter().copied()),
            );
            perm_scratch.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
            for (i, (t, w)) in perm_scratch.iter().enumerate() {
                self.targets[lo + i] = *t;
                self.weights[lo + i] = *w;
            }
        }
    }

    /// Sum of all weights (used by tests and statistics).
    pub fn total_weight(&self) -> f64 {
        self.weights.par_iter().map(|&w| w as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> EdgeList {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        EdgeList::from_edges([
            WEdge::new(0, 1, 1.0),
            WEdge::new(0, 2, 2.0),
            WEdge::new(1, 3, 3.0),
            WEdge::new(2, 3, 4.0),
        ])
    }

    #[test]
    fn directed_build_matches_input() {
        let g = Csr::from_edges(4, &diamond(), Directedness::Directed);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        let mut n0: Vec<_> = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
    }

    #[test]
    fn undirected_build_doubles_arcs() {
        let g = Csr::from_edges(4, &diamond(), Directedness::Undirected);
        assert_eq!(g.num_arcs(), 8);
        assert_eq!(g.degree(3), 2);
        let mut n3: Vec<_> = g.neighbors(3).to_vec();
        n3.sort_unstable();
        assert_eq!(n3, vec![1, 2]);
    }

    #[test]
    fn weights_travel_with_targets() {
        let g = Csr::from_edges(4, &diamond(), Directedness::Undirected);
        for (v, w) in g.arcs(3) {
            match v {
                1 => assert_eq!(w, 3.0),
                2 => assert_eq!(w, 4.0),
                other => panic!("unexpected neighbor {other}"),
            }
        }
    }

    #[test]
    fn transpose_of_symmetric_graph_is_identical() {
        let mut g = Csr::from_edges(4, &diamond(), Directedness::Undirected);
        let mut t = g.transpose();
        g.sort_adjacency();
        t.sort_adjacency();
        assert_eq!(g.offsets(), t.offsets());
        assert_eq!(g.targets(), t.targets());
    }

    #[test]
    fn transpose_reverses_directed_arcs() {
        let g = Csr::from_edges(4, &diamond(), Directedness::Directed);
        let t = g.transpose();
        assert_eq!(t.degree(0), 0);
        assert_eq!(t.degree(3), 2);
        assert_eq!(t.neighbors(1), &[0]);
    }

    #[test]
    fn iter_edges_roundtrip_counts() {
        let g = Csr::from_edges(4, &diamond(), Directedness::Undirected);
        assert_eq!(g.iter_edges().count(), 8);
        let total: f64 = g.iter_edges().map(|e| e.w as f64).sum();
        assert_eq!(total, 2.0 * (1.0 + 2.0 + 3.0 + 4.0));
        assert_eq!(total, g.total_weight());
    }

    #[test]
    fn empty_and_isolated_vertices() {
        let g = Csr::from_edges(5, &EdgeList::new(), Directedness::Directed);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_arcs(), 0);
        for u in 0..5 {
            assert_eq!(g.degree(u), 0);
        }
    }

    #[test]
    fn rectangular_build_allows_global_targets() {
        // 3 local rows, targets in a much larger global space
        let el = EdgeList::from_edges([
            WEdge::new(0, 1_000_000, 0.5),
            WEdge::new(2, 7, 0.25),
            WEdge::new(0, 99, 0.75),
        ]);
        let g = Csr::from_edges_rect(3, &el);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.neighbors(2), &[7]);
        let mut n0 = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![99, 1_000_000]);
    }

    #[test]
    fn self_loops_are_preserved() {
        let el = EdgeList::from_edges([WEdge::new(1, 1, 0.5)]);
        let g = Csr::from_edges(2, &el, Directedness::Undirected);
        assert_eq!(g.degree(1), 2); // stored once per direction
        assert_eq!(g.neighbors(1), &[1, 1]);
    }
}
