//! Golden-trace regression tests: the observability layer's determinism
//! contract, pinned to checked-in artifacts.
//!
//! Under `SchedMode::Deterministic` the merged trace is a pure function of
//! the configuration — byte-identical across repeated runs and across
//! `G500_THREADS` — so its summary can be diffed against a golden file the
//! way distances are diffed in the conformance suite. A drift here means a
//! semantic change to the instrumentation (or the simulator), which is
//! exactly what these tests exist to flag.
//!
//! Regenerate the goldens after an intentional change with
//! `G500_BLESS=1 cargo test --test trace_golden`.

use graph500::simnet::{Machine, MachineConfig, Trace};
use graph500::sssp::Grid2DSssp;
use graph500::{run_sssp_benchmark, BenchmarkConfig};
use std::process::Command;

const GOLDEN_1D: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/trace_1d_scale10.txt"
);
const GOLDEN_2D: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/trace_2d_scale10.txt"
);

/// Compare `actual` against the golden file at `path`; with `G500_BLESS=1`
/// rewrite the golden instead.
fn check_golden(path: &str, actual: &str) {
    if std::env::var("G500_BLESS").is_ok() {
        std::fs::write(path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing golden {path}: {e}; run with G500_BLESS=1"));
    assert_eq!(
        expected, actual,
        "trace summary drifted from {path}; if intentional, regenerate with G500_BLESS=1"
    );
}

fn traced_1d_cfg() -> BenchmarkConfig {
    let mut cfg = BenchmarkConfig::quick(10, 4).deterministic(0).traced(true);
    cfg.num_roots = 2;
    cfg.validate = false;
    cfg
}

fn run_traced_2d() -> Trace {
    let gen = graph500::gen::KroneckerGenerator::new(graph500::gen::KroneckerParams::graph500(
        10, 20220814,
    ));
    let el = gen.generate_all();
    let n = 1u64 << 10;
    let p = 4usize;
    let report =
        Machine::new(MachineConfig::with_ranks(p).deterministic(0).traced(true)).run(|ctx| {
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine = (lo..hi).map(|i| el.get(i));
            let mut g = Grid2DSssp::build(ctx, n, mine, 0.25);
            g.run(ctx, 1);
            g.gather(ctx)
        });
    Trace::merge(report.traces)
}

#[test]
fn golden_1d_scale10_summary() {
    let rep = run_sssp_benchmark(&traced_1d_cfg());
    let summary = rep.trace_summary().expect("run was traced");
    check_golden(GOLDEN_1D, &summary.render());
}

#[test]
fn golden_2d_scale10_summary() {
    let trace = run_traced_2d();
    check_golden(GOLDEN_2D, &trace.summary().render());
}

#[test]
fn repeated_runs_produce_byte_identical_traces() {
    let a = run_sssp_benchmark(&traced_1d_cfg());
    let b = run_sssp_benchmark(&traced_1d_cfg());
    let (ta, tb) = (a.trace.expect("traced"), b.trace.expect("traced"));
    assert_eq!(
        ta.to_bytes(),
        tb.to_bytes(),
        "same config + sched seed must replay the identical merged trace"
    );
    let c = run_traced_2d();
    let d = run_traced_2d();
    assert_eq!(c.to_bytes(), d.to_bytes(), "2D trace not replayable");
}

/// Spawn the real `g500` binary (the pool is process-global, so thread
/// counts can only be compared across processes) and return (normalized
/// JSON stdout, Chrome trace bytes).
fn run_traced_binary(threads: usize, out: &std::path::Path) -> (String, Vec<u8>) {
    let res = Command::new(env!("CARGO_BIN_EXE_g500"))
        .args([
            "sssp",
            "--scale",
            "9",
            "--ranks",
            "4",
            "--roots",
            "2",
            "--deterministic",
            "--trace",
            "--trace-out",
            out.to_str().expect("utf8 tmp path"),
            "--json",
        ])
        .env("G500_THREADS", threads.to_string())
        .output()
        .expect("spawn g500");
    assert!(
        res.status.success(),
        "g500 failed under {} threads: {}",
        threads,
        String::from_utf8_lossy(&res.stderr)
    );
    let json = String::from_utf8(res.stdout)
        .expect("utf8 json")
        .lines()
        .filter(|l| !l.contains("wall_time_s") && !l.contains("\"threads\""))
        .collect::<Vec<_>>()
        .join("\n");
    let chrome = std::fs::read(out).expect("trace file written");
    (json, chrome)
}

#[test]
fn traced_run_is_bitwise_identical_across_thread_counts() {
    let dir = std::env::temp_dir();
    let p1 = dir.join("g500_trace_t1.json");
    let p4 = dir.join("g500_trace_t4.json");
    let (json1, chrome1) = run_traced_binary(1, &p1);
    let (json4, chrome4) = run_traced_binary(4, &p4);
    assert!(json1.contains("\"trace\":"), "traced JSON missing summary");
    assert_eq!(
        json1, json4,
        "traced JSON differs between G500_THREADS=1 and =4"
    );
    assert_eq!(
        chrome1, chrome4,
        "Chrome trace differs between G500_THREADS=1 and =4"
    );
    let _ = std::fs::remove_file(p1);
    let _ = std::fs::remove_file(p4);
}

/// With tracing off, the report is byte-identical to one from a traced
/// build: the only difference tracing may make to output is the opt-in
/// `"trace"` entry itself.
#[test]
fn tracing_off_leaves_report_json_untouched() {
    let mut off_cfg = traced_1d_cfg();
    off_cfg.machine = off_cfg.machine.traced(false);
    let off = run_sssp_benchmark(&off_cfg);
    let on = run_sssp_benchmark(&traced_1d_cfg());
    let strip = |json: &str| -> String {
        json.lines()
            .filter(|l| !l.contains("wall_time_s") && !l.trim_start().starts_with("\"trace\":"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert!(!off.to_json().contains("\"trace\":"));
    assert!(on.to_json().contains("\"trace\":"));
    assert!(!off.render().contains("trace summary"));
    assert!(on.render().contains("trace summary"));
    assert_eq!(
        strip(&off.to_json()),
        strip(&on.to_json()),
        "tracing changed a non-trace report field"
    );
}

/// Minimal structural JSON validator: balanced objects/arrays outside
/// strings, escape-aware. Enough to catch malformed hand-rolled output
/// without a JSON dependency.
fn assert_valid_json(s: &str) {
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        assert!(depth_obj >= 0 && depth_arr >= 0, "unbalanced close");
    }
    assert!(!in_str, "unterminated string");
    assert_eq!(depth_obj, 0, "unbalanced objects");
    assert_eq!(depth_arr, 0, "unbalanced arrays");
}

#[test]
fn chrome_export_is_structurally_valid_json() {
    let rep = run_sssp_benchmark(&traced_1d_cfg());
    let chrome = rep.trace.as_ref().expect("traced").to_chrome_json();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.ends_with("]}"));
    assert!(chrome.contains("\"ph\":\"B\""));
    assert!(chrome.contains("\"ph\":\"E\""));
    assert!(chrome.contains("\"name\":\"superstep\""));
    assert_valid_json(&chrome);
    // the report JSON (with the embedded trace summary) must stay valid too
    assert_valid_json(&rep.to_json());
}

/// A crashed, traced run records the recovery machinery as first-class
/// spans: checkpoint-write at every interval boundary, restore and replay
/// after each crash. With crashes off, none of the three names may appear
/// — the goldens above double as the proof that crash-free trace output
/// is untouched by the recovery subsystem.
#[test]
fn crashed_run_traces_recovery_spans() {
    use graph500::CrashPlan;
    let mut cfg = traced_1d_cfg();
    cfg = cfg.crashes(
        CrashPlan::none()
            .with_forced(1, 2)
            .with_checkpoint_interval(2),
    );
    let rep = run_sssp_benchmark(&cfg);
    let summary = rep.trace_summary().expect("run was traced");
    let rendered = summary.render();
    for span in ["checkpoint-write", "restore", "replay"] {
        assert!(
            rendered.contains(span),
            "crashed trace summary is missing the {span} span:\n{rendered}"
        );
    }
    let clean = run_sssp_benchmark(&traced_1d_cfg());
    let clean_rendered = clean.trace_summary().expect("traced").render();
    for span in ["checkpoint-write", "restore", "replay"] {
        assert!(
            !clean_rendered.contains(span),
            "crash-free trace summary mentions {span}:\n{clean_rendered}"
        );
    }
}
