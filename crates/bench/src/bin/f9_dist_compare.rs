//! F9 — Distributed algorithm comparison.
//!
//! Optimized delta-stepping vs unoptimized delta-stepping vs distributed
//! Bellman-Ford on the same simulated machine, across scales. The gap to
//! distributed Bellman-Ford is the headline algorithmic win; the gap to
//! unoptimized delta-stepping is the engineering win.
//!
//! Overrides: `G500_MAX_SCALE` (16), `G500_RANKS` (8), `G500_ROOTS` (2).

use g500_baselines::{bmssp, dijkstra_radix_heap, distributed_bellman_ford};
use g500_bench::{banner, param, secs, Table};
use g500_gen::{KroneckerGenerator, KroneckerParams};
use g500_graph::{Csr, Directedness};
use g500_partition::{assemble_local_graph, Block1D, LocalGraph};
use g500_sssp::{distributed_delta_stepping, OptConfig};
use graph500::simnet::{Machine, MachineConfig, RankCtx};

/// Host-side: roots with at least one edge, deterministic.
fn pick_roots(gen: &KroneckerGenerator, count: usize) -> Vec<u64> {
    let el = gen.generate_all();
    let n = gen.params().num_vertices() as usize;
    let mut deg = vec![false; n];
    for e in el.iter() {
        deg[e.u as usize] = true;
        deg[e.v as usize] = true;
    }
    (0..n as u64)
        .filter(|&v| deg[v as usize])
        .step_by(97)
        .take(count)
        .collect()
}

/// Host-side oracle check: the optimized distributed kernel's distances
/// must match both sequential oracles (radix-heap Dijkstra and BMSSP),
/// which in turn must agree with each other *bitwise*. Catches a bench
/// silently comparing the timings of disagreeing kernels.
fn verify_against_oracles(gen: &KroneckerGenerator, ranks: usize, root: u64, scale: u32) {
    let el = gen.generate_all();
    let n = gen.params().num_vertices();
    let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
    let radix = dijkstra_radix_heap(&csr, root);
    let bm = bmssp(&csr, root);
    for v in 0..n as usize {
        assert_eq!(
            radix.dist[v].to_bits(),
            bm.dist[v].to_bits(),
            "oracles disagree at scale {scale} vertex {v}"
        );
    }
    let m = gen.params().num_edges();
    let got = Machine::new(MachineConfig::with_ranks(ranks))
        .run(|ctx| {
            let part = Block1D::new(n, ranks);
            let (lo, hi) = (
                ctx.rank() as u64 * m / ranks as u64,
                (ctx.rank() as u64 + 1) * m / ranks as u64,
            );
            let g = assemble_local_graph(ctx, gen.edge_block(lo..hi).iter(), part);
            let (sp, _) = distributed_delta_stepping(ctx, &g, root, &OptConfig::all_on());
            sp.gather_to_all(ctx, g.part())
        })
        .results
        .pop()
        .expect("rank");
    assert!(
        got.distances_match(&radix, 1e-4),
        "distributed kernel diverged from the oracles at scale {scale}"
    );
}

/// Run `kernel` once per root on a fresh simulated machine; return the mean
/// simulated time and mean superstep count.
fn measure<K>(gen: &KroneckerGenerator, ranks: usize, roots: &[u64], kernel: K) -> (f64, u64)
where
    K: Fn(&mut RankCtx, &LocalGraph<Block1D>, u64) -> u64 + Sync,
{
    let n = gen.params().num_vertices();
    let m = gen.params().num_edges();
    let rep = Machine::new(MachineConfig::with_ranks(ranks)).run(|ctx| {
        let part = Block1D::new(n, ranks);
        let (lo, hi) = (
            ctx.rank() as u64 * m / ranks as u64,
            (ctx.rank() as u64 + 1) * m / ranks as u64,
        );
        let mine = gen.edge_block(lo..hi);
        ctx.charge_compute(hi - lo);
        let g = assemble_local_graph(ctx, mine.iter(), part);
        let mut total_t = 0.0;
        let mut steps = 0u64;
        for &r in roots {
            let before = ctx.now();
            steps += kernel(ctx, &g, r);
            total_t += ctx.allreduce(ctx.now() - before, |a, b| if a > b { *a } else { *b });
        }
        (total_t / roots.len() as f64, steps / roots.len() as u64)
    });
    rep.results[0]
}

fn main() {
    let max_scale = param("G500_MAX_SCALE", 16) as u32;
    let ranks = param("G500_RANKS", 8) as usize;
    let nroots = param("G500_ROOTS", 2) as usize;
    banner(
        "F9",
        "distributed algorithm comparison",
        &[("ranks", ranks.to_string())],
    );

    let t = Table::new(&[
        "scale",
        "algorithm",
        "mean_time",
        "supersteps",
        "speedup_vs_bf",
    ]);
    for scale in (12..=max_scale).step_by(2) {
        let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, 1));
        let roots = pick_roots(&gen, nroots);
        verify_against_oracles(&gen, ranks, roots[0], scale);

        let (bf_t, bf_steps) = measure(&gen, ranks, &roots, |ctx, g, r| {
            distributed_bellman_ford(ctx, g, r).1
        });
        t.row(&[
            scale.to_string(),
            "dist-bellman-ford".into(),
            secs(bf_t),
            bf_steps.to_string(),
            "1.00x".into(),
        ]);

        let plain_opts = OptConfig::all_off().with_delta(0.125);
        let (plain_t, plain_steps) = measure(&gen, ranks, &roots, |ctx, g, r| {
            distributed_delta_stepping(ctx, g, r, &plain_opts)
                .1
                .supersteps
        });
        t.row(&[
            scale.to_string(),
            "delta (unoptimized)".into(),
            secs(plain_t),
            plain_steps.to_string(),
            format!("{:.2}x", bf_t / plain_t),
        ]);

        let opt_opts = OptConfig::all_on();
        let (opt_t, opt_steps) = measure(&gen, ranks, &roots, |ctx, g, r| {
            distributed_delta_stepping(ctx, g, r, &opt_opts)
                .1
                .supersteps
        });
        t.row(&[
            scale.to_string(),
            "delta (optimized)".into(),
            secs(opt_t),
            opt_steps.to_string(),
            format!("{:.2}x", bf_t / opt_t),
        ]);
    }
    println!("\nexpected shape: optimized delta-stepping multiple-x over distributed Bellman-Ford, and clearly over its own unoptimized form");
}
