//! F2 — Strong-scaling curve: fixed graph, growing machine.
//!
//! The complementary view to F1: a scale-`G500_SCALE` graph solved on 1 →
//! `G500_MAX_RANKS` ranks. Speedup flattens once per-rank work no longer
//! amortizes the per-superstep latency floor — the regime the paper's
//! superstep-reduction optimizations (fusion, direction switching) exist
//! to push outward.
//!
//! Overrides: `G500_SCALE` (default 16), `G500_MAX_RANKS` (32), `G500_ROOTS` (4).

use g500_bench::{banner, gteps, param, secs, Table};
use graph500::{run_sssp_benchmark, BenchmarkConfig};

fn main() {
    let scale = param("G500_SCALE", 16) as u32;
    let max_ranks = param("G500_MAX_RANKS", 32) as usize;
    let roots = param("G500_ROOTS", 4) as usize;
    banner(
        "F2",
        "strong scaling",
        &[
            ("scale", scale.to_string()),
            ("max ranks", max_ranks.to_string()),
        ],
    );

    let t = Table::new(&[
        "ranks",
        "hmean_GTEPS",
        "median_time",
        "speedup",
        "parallel_eff%",
    ]);
    let mut base_g = 0.0f64;
    let mut ranks = 1usize;
    while ranks <= max_ranks {
        let mut cfg = BenchmarkConfig::graph500(scale, ranks);
        cfg.num_roots = roots;
        cfg.validate = false;
        let rep = run_sssp_benchmark(&cfg);
        let g = rep.teps.harmonic_mean;
        if ranks == 1 {
            base_g = g;
        }
        let speedup = g / base_g;
        let med_time = rep.runs.iter().map(|r| r.sim_time_s).sum::<f64>() / rep.runs.len() as f64;
        t.row(&[
            ranks.to_string(),
            gteps(g),
            secs(med_time),
            format!("{speedup:.2}x"),
            format!("{:.1}", 100.0 * speedup / ranks as f64),
        ]);
        ranks *= 2;
    }
    println!("\nexpected shape: sublinear speedup flattening as communication dominates the shrinking per-rank work");
}
