//! Cross-implementation agreement: every SSSP implementation in the
//! workspace — sequential delta-stepping, shared-memory parallel,
//! distributed (all optimization configurations), near-far, Bellman-Ford
//! (both), distributed Bellman-Ford — must produce Dijkstra's distances on
//! every graph family.

use graph500::baselines::{
    bellman_ford, bellman_ford_parallel, bmssp, dijkstra, dijkstra_radix_heap,
    distributed_bellman_ford, near_far, weight_to_key, INF_KEY,
};
use graph500::gen::{simple, KroneckerGenerator, KroneckerParams};
use graph500::graph::{Csr, Directedness, EdgeList, ShortestPaths};
use graph500::partition::{assemble_local_graph, Block1D, Cyclic1D, VertexPartition};
use graph500::simnet::{Machine, MachineConfig};
use graph500::sssp::{
    delta_stepping, distributed_delta_stepping, parallel_delta_stepping, Direction, OptConfig,
};

fn families() -> Vec<(String, EdgeList, u64)> {
    let kron = KroneckerGenerator::new(KroneckerParams::graph500(8, 77));
    vec![
        ("path".into(), simple::path(40, 0.25), 40),
        ("cycle".into(), simple::cycle(33, 0.5), 33),
        ("star".into(), simple::star(50, 0.9), 50),
        ("grid".into(), simple::grid2d(8, 7), 56),
        ("tree".into(), simple::random_tree(60, 5), 60),
        ("erdos".into(), simple::erdos_renyi(64, 256, 9), 64),
        ("complete".into(), simple::complete(24, 0.7), 24),
        ("kronecker".into(), kron.generate_all(), 256),
    ]
}

fn dist_run<P: VertexPartition + 'static>(
    el: &EdgeList,
    part_of: impl Fn(usize) -> P + Sync,
    p: usize,
    root: u64,
    opts: OptConfig,
) -> ShortestPaths {
    Machine::new(MachineConfig::with_ranks(p))
        .run(|ctx| {
            let part = part_of(ctx.size());
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let (sp, _) = distributed_delta_stepping(ctx, &g, root, &opts);
            sp.gather_to_all(ctx, g.part())
        })
        .results
        .pop()
        .expect("at least one rank")
}

#[test]
fn sequential_implementations_agree() {
    for (name, el, n) in families() {
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, 0);
        for (algo, sp) in [
            ("delta_stepping", delta_stepping(&csr, 0, 0.3)),
            ("parallel_delta", parallel_delta_stepping(&csr, 0, 0.3)),
            ("bellman_ford", bellman_ford(&csr, 0)),
            ("bf_parallel", bellman_ford_parallel(&csr, 0)),
            ("near_far", near_far(&csr, 0, 0.3)),
            ("dijkstra_radix", dijkstra_radix_heap(&csr, 0)),
            ("bmssp", bmssp(&csr, 0)),
        ] {
            assert!(sp.distances_match(&oracle, 1e-4), "{algo} on {name}");
        }
    }
}

#[test]
fn distributed_delta_agrees_on_all_families() {
    for (name, el, n) in families() {
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, 0);
        for p in [2usize, 5] {
            let sp = dist_run(&el, |p| Block1D::new(n, p), p, 0, OptConfig::all_on());
            assert!(sp.distances_match(&oracle, 1e-4), "block p={p} on {name}");
            let sp = dist_run(&el, |p| Cyclic1D::new(n, p), p, 0, OptConfig::all_on());
            assert!(sp.distances_match(&oracle, 1e-4), "cyclic p={p} on {name}");
        }
    }
}

#[test]
fn distributed_delta_every_config_on_kronecker() {
    let gen = KroneckerGenerator::new(KroneckerParams::graph500(8, 3));
    let el = gen.generate_all();
    let csr = Csr::from_edges(256, &el, Directedness::Undirected);
    let oracle = dijkstra(&csr, 7);
    let configs = vec![
        OptConfig::all_on(),
        OptConfig::all_off(),
        OptConfig::all_on().without_coalescing(),
        OptConfig::all_on().without_dedup().without_compression(),
        OptConfig::all_on().with_direction(Direction::Pull),
        OptConfig::all_on()
            .with_direction(Direction::Push)
            .without_fusion(),
        OptConfig::all_on().with_delta(0.03),
        OptConfig::all_on().with_delta(5.0),
    ];
    for (i, opts) in configs.into_iter().enumerate() {
        let sp = dist_run(&el, |p| Block1D::new(256, p), 4, 7, opts);
        assert!(sp.distances_match(&oracle, 1e-4), "config {i}");
    }
}

#[test]
fn distributed_bellman_ford_agrees() {
    for (name, el, n) in families() {
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, 0);
        let sp = Machine::new(MachineConfig::with_ranks(3))
            .run(|ctx| {
                let part = Block1D::new(n, 3);
                let m = el.len();
                let (lo, hi) = (ctx.rank() * m / 3, (ctx.rank() + 1) * m / 3);
                let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
                let g = assemble_local_graph(ctx, mine.into_iter(), part);
                let (sp, _) = distributed_bellman_ford(ctx, &g, 0);
                sp.gather_to_all(ctx, g.part())
            })
            .results
            .pop()
            .expect("rank result");
        assert!(sp.distances_match(&oracle, 1e-4), "dist-bf on {name}");
    }
}

#[test]
fn distributed_validator_accepts_real_kernel_output() {
    // the full distributed pipeline: generate → assemble → optimized
    // kernel → *distributed* validation (no rank sees global state)
    let gen = KroneckerGenerator::new(KroneckerParams::graph500(9, 21));
    let el = gen.generate_all();
    let n = 512u64;
    let p = 4;
    let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
        let part = Block1D::new(n, p);
        let m = el.len();
        let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
        let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
        let g = assemble_local_graph(ctx, mine.clone().into_iter(), part);
        // pick a deterministic giant-ish root: highest-degree local vertex
        // of rank 0, broadcast
        let root = ctx.bcast(if ctx.rank() == 0 {
            let mut best = (0u64, 0usize);
            for l in 0..g.local_vertices() {
                if g.degree(l) > best.1 {
                    best = (part.to_global(0, l), g.degree(l));
                }
            }
            Some(best.0)
        } else {
            None
        });
        let (sp, _) = distributed_delta_stepping(ctx, &g, root, &OptConfig::all_on());
        let v = graph500::validate::distributed_validate_sssp(ctx, &g, &mine, root, &sp);
        (v.ok, v.errors.clone(), v.reached, v.traversed_edges)
    });
    let (ok0, errors0, reached0, traversed0) = rep.results[0].clone();
    assert!(ok0, "{errors0:?}");
    // every rank agrees on the global aggregates
    for (ok, _, reached, traversed) in &rep.results {
        assert!(ok);
        assert_eq!(*reached, reached0);
        assert_eq!(*traversed, traversed0);
    }
    assert!(
        traversed0 > 0 && reached0 > 1,
        "kernel reached a real component"
    );
}

#[test]
fn distributed_validator_rejects_corrupted_kernel_output() {
    let el = simple::erdos_renyi(64, 256, 3);
    let p = 4;
    let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
        let part = Block1D::new(64, p);
        let m = el.len();
        let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
        let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
        let g = assemble_local_graph(ctx, mine.clone().into_iter(), part);
        let (mut sp, _) = distributed_delta_stepping(ctx, &g, 0, &OptConfig::all_on());
        // corrupt one reached vertex on rank 2
        if ctx.rank() == 2 {
            if let Some(l) =
                (0..g.local_vertices()).find(|&l| sp.dist[l] > 0.0 && sp.dist[l].is_finite())
            {
                sp.dist[l] *= 0.5;
            }
        }
        graph500::validate::distributed_validate_sssp(ctx, &g, &mine, 0, &sp).ok
    });
    assert!(
        rep.results.iter().all(|&ok| !ok),
        "corruption must fail on every rank"
    );
}

#[test]
fn shared_inf_sentinel_is_pinned_across_baselines() {
    use graph500::graph::{ShortestPaths, INF_WEIGHT};

    // the contract itself: one sentinel, u64::MAX / 4, with overflow
    // headroom, and the key embedding maps INF_WEIGHT onto it exactly
    assert_eq!(INF_KEY, u64::MAX / 4);
    assert_eq!(weight_to_key(INF_WEIGHT), INF_KEY);
    assert!(
        INF_KEY.checked_add(INF_KEY).is_some(),
        "sentinel addition must not wrap"
    );
    // every finite key sits strictly below the sentinel (monotone order)
    assert!(weight_to_key(f32::MAX) < INF_KEY);
    assert!(weight_to_key(0.0) < weight_to_key(f32::MAX));

    // a graph with an unreachable island: every baseline must report the
    // island with the *bitwise* shared sentinel, not some private infinity
    let el = EdgeList::from_edges(
        [(0u64, 1, 0.5f32), (1, 2, 0.25), (3, 4, 1.0)]
            .iter()
            .map(|&(u, v, w)| graph500::graph::WEdge::new(u, v, w)),
    );
    let csr = Csr::from_edges(5, &el, Directedness::Undirected);
    let runs: Vec<(&str, ShortestPaths)> = vec![
        ("dijkstra", dijkstra(&csr, 0)),
        ("dijkstra_radix", dijkstra_radix_heap(&csr, 0)),
        ("bmssp", bmssp(&csr, 0)),
        ("bellman_ford", bellman_ford(&csr, 0)),
        ("near_far", near_far(&csr, 0, 0.3)),
        ("delta_stepping", delta_stepping(&csr, 0, 0.3)),
    ];
    for (algo, sp) in &runs {
        for v in [3usize, 4] {
            assert_eq!(
                sp.dist[v].to_bits(),
                INF_WEIGHT.to_bits(),
                "{algo}: unreachable vertex {v} must carry the shared sentinel"
            );
            assert_eq!(
                weight_to_key(sp.dist[v]),
                INF_KEY,
                "{algo}: sentinel must map onto INF_KEY"
            );
        }
    }
}

#[test]
fn parents_encode_valid_trees_everywhere() {
    // beyond distances: parents must reconstruct the same distance by
    // walking the tree
    for (name, el, n) in families() {
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let sp = dist_run(&el, |p| Block1D::new(n, p), 3, 0, OptConfig::all_on());
        for v in 0..n as usize {
            if !sp.dist[v].is_finite() || v as u64 == 0 {
                continue;
            }
            let p = sp.parent[v] as usize;
            assert!(sp.dist[p].is_finite(), "{name}: parent of {v} unreached");
            // the tree edge must exist with a weight explaining the delta
            let ok = csr
                .arcs(p)
                .any(|(t, w)| t == v as u64 && (sp.dist[p] + w - sp.dist[v]).abs() < 1e-3);
            assert!(ok, "{name}: no tree edge {p}->{v}");
        }
    }
}
