//! 2D-partitioned distributed delta-stepping — the design-space rival.
//!
//! The Graph500 BFS lineage distributes the adjacency *matrix* over an
//! `s × s` process grid: the edge block `(u, v)` with `u` in vertex-block
//! `i` and `v` in vertex-block `j` lives on grid rank `(i, j)`; vertex
//! *state* (distances, buckets) lives on the diagonal rank `(b, b)` of its
//! block. One relaxation superstep then decomposes into
//!
//! 1. **row broadcast** — diagonal ranks broadcast their frontier
//!    `(vertex, dist)` pairs along their grid row (√p ranks),
//! 2. **local relax** — every rank relaxes its stored edges against the
//!    received frontier, keeping only the min candidate per target,
//! 3. **column reduce** — candidates flow down each grid column to the
//!    target's diagonal rank, pre-aggregated per column,
//!
//! so no vertex ever talks to more than `√p + √p` ranks — the fan-out cap
//! that experiment F13 shows analytically and F14 measures. The price is
//! that every frontier datum is replicated √p ways even when its edges
//! touch two ranks, which is why the 1D layout (the paper family's choice
//! for SSSP, whose bucket state is per-vertex and cheap to route exactly)
//! wins on low-degree frontiers. This kernel exists to make that trade-off
//! measurable rather than asserted.
//!
//! Always push-mode with coalescing + per-target dedup; bucket semantics
//! (light inner loop to fixpoint, heavy pass once) match the 1D kernel, so
//! results are directly comparable and equally validatable.

use crate::bucket::BucketQueue;
use crate::dist::{get_weight_vec, put_weight_slice};
use g500_graph::{Csr, EdgeList, ShortestPaths, VertexId, WEdge, Weight};
use g500_partition::{Block1D, VertexPartition};
use rayon::prelude::*;
use simnet::recovery::{codec, Checkpoint, FaultEscalation, Recovery};
use simnet::{RankCtx, SubComm, TraceCode};
use std::collections::HashMap;

/// Per-chunk result of the parallel local relax scan: relaxation count and
/// the improving candidates `(target_global, new_dist, parent_global)` in
/// (source, arc) order.
type RelaxScan = (u64, Vec<(u64, f32, u64)>);

/// Counters from one 2D run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Sssp2DStats {
    /// Communication rounds (row broadcast + column reduce pairs).
    pub supersteps: u64,
    /// Local edge relaxations.
    pub relaxations: u64,
    /// Frontier records broadcast along rows.
    pub frontier_records: u64,
    /// Candidate records reduced down columns (post-dedup).
    pub update_records: u64,
}

/// Borrow of the 2D kernel's mutable per-run state for checkpoint/restore:
/// diagonal vertex state plus the run counters (the scratch arenas are
/// overwritten before every read and stay out).
struct GridState<'a> {
    dist: &'a mut Vec<Weight>,
    parent: &'a mut Vec<u64>,
    buckets: &'a mut BucketQueue,
    stats: &'a mut Sssp2DStats,
}

impl Checkpoint for GridState<'_> {
    fn save(&self, out: &mut Vec<u8>) {
        put_weight_slice(out, self.dist);
        codec::put_u64_slice(out, self.parent);
        self.buckets.save(out);
        codec::put_u64(out, self.stats.supersteps);
        codec::put_u64(out, self.stats.relaxations);
        codec::put_u64(out, self.stats.frontier_records);
        codec::put_u64(out, self.stats.update_records);
    }

    fn load(&mut self, buf: &[u8]) {
        let mut pos = 0;
        *self.dist = get_weight_vec(buf, &mut pos);
        *self.parent = codec::get_u64_vec(buf, &mut pos);
        self.buckets.load(buf, &mut pos);
        self.stats.supersteps = codec::get_u64(buf, &mut pos);
        self.stats.relaxations = codec::get_u64(buf, &mut pos);
        self.stats.frontier_records = codec::get_u64(buf, &mut pos);
        self.stats.update_records = codec::get_u64(buf, &mut pos);
        assert_eq!(pos, buf.len(), "trailing bytes in 2D kernel checkpoint");
    }
}

/// The per-rank state of the 2D kernel.
pub struct Grid2DSssp {
    /// Grid side (ranks = side²).
    side: usize,
    /// My grid row / column.
    row: usize,
    col: usize,
    /// Vertex blocks (side blocks over n vertices).
    blocks: Block1D,
    /// My edge block as a CSR over *global* source ids of block `row`,
    /// targets restricted to block `col`. Stored as map src → (targets,
    /// weights) ranges via a local CSR on block-local indices.
    local: Csr,
    /// Row and column communicators.
    row_comm: SubComm,
    col_comm: SubComm,
    /// Diagonal state (only on ranks with row == col): dist/parent over the
    /// block's local indices.
    dist: Vec<Weight>,
    parent: Vec<u64>,
    buckets: BucketQueue,
    /// Round-scratch arenas reused across every superstep of a run: the
    /// flattened row-broadcast frontier and the parallel relax-scan output.
    active_scratch: Vec<(u64, f32)>,
    relax_scratch: Vec<RelaxScan>,
}

impl Grid2DSssp {
    /// Collectively build the 2D-distributed graph. `ranks` must be a
    /// perfect square. Each rank passes its generated slice of the global
    /// edge list.
    pub fn build(
        ctx: &mut RankCtx,
        n: u64,
        my_edges: impl Iterator<Item = WEdge>,
        delta: Weight,
    ) -> Self {
        let p = ctx.size();
        let side = (p as f64).sqrt().round() as usize;
        assert_eq!(side * side, p, "2D kernel needs a square rank count");
        let me = ctx.rank();
        let (row, col) = (me / side, me % side);
        let blocks = Block1D::new(n, side);

        // Route both directions of each edge to grid rank
        // (block(src), block(dst)).
        let mut out: Vec<Vec<(u64, u64, f32)>> = vec![Vec::new(); p];
        let mut generated = 0u64;
        for e in my_edges {
            let a = (blocks.owner(e.u), blocks.owner(e.v));
            out[a.0 * side + a.1].push((e.u, e.v, e.w));
            let b = (blocks.owner(e.v), blocks.owner(e.u));
            out[b.0 * side + b.1].push((e.v, e.u, e.w));
            generated += 1;
        }
        ctx.charge_compute(2 * generated);
        let received = ctx.alltoallv(out);

        // Local CSR over block-local source indices; targets stay global.
        let n_block = blocks.local_count(row);
        let mut el = EdgeList::new();
        for block in received {
            for (u, v, w) in block {
                debug_assert_eq!(blocks.owner(u), row, "misrouted edge row");
                debug_assert_eq!(blocks.owner(v), col, "misrouted edge col");
                el.push(WEdge::new(blocks.to_local(u) as u64, v, w));
            }
        }
        ctx.charge_compute(el.len() as u64);
        let local = Csr::from_edges_rect(n_block.max(1), &el);

        let row_comm = ctx.split(row as u64, col as u64);
        let col_comm = ctx.split(side as u64 + col as u64, row as u64);

        // Diagonal ranks own the state of their block.
        let state_n = if row == col {
            blocks.local_count(row)
        } else {
            0
        };
        Grid2DSssp {
            side,
            row,
            col,
            blocks,
            local,
            row_comm,
            col_comm,
            dist: vec![f32::INFINITY; state_n],
            parent: vec![u64::MAX; state_n],
            buckets: BucketQueue::new(delta),
            active_scratch: Vec::new(),
            relax_scratch: Vec::new(),
        }
    }

    fn is_diag(&self) -> bool {
        self.row == self.col
    }

    /// Run SSSP from `root`; returns the stats. Distances stay distributed;
    /// use [`Self::gather`] afterwards.
    ///
    /// Panics on an unmasked fault; [`Grid2DSssp::try_run`] is the
    /// typed-error variant for crash-injected machines.
    pub fn run(&mut self, ctx: &mut RankCtx, root: VertexId) -> Sssp2DStats {
        match self.try_run(ctx, root) {
            Ok(stats) => stats,
            Err(e) => panic!("rank {}: {e}", ctx.rank()),
        }
    }

    /// [`Grid2DSssp::run`] with crash recovery surfaced as a typed error:
    /// checkpoints at bucket boundaries, probes every superstep, rolls
    /// back and replays on an agreed verdict. Off-diagonal ranks snapshot
    /// their (empty) state too, keeping every collective aligned.
    pub fn try_run(
        &mut self,
        ctx: &mut RankCtx,
        root: VertexId,
    ) -> Result<Sssp2DStats, FaultEscalation> {
        let delta = self.buckets.delta();
        let mut stats = Sssp2DStats::default();
        // reset state between runs
        for d in self.dist.iter_mut() {
            *d = f32::INFINITY;
        }
        for pz in self.parent.iter_mut() {
            *pz = u64::MAX;
        }
        self.buckets = BucketQueue::new(delta);
        if self.is_diag() && self.blocks.owner(root) == self.row {
            let l = self.blocks.to_local(root);
            self.dist[l] = 0.0;
            self.parent[l] = root;
            self.buckets.insert(l as u32, 0.0);
        }

        let mut rec = Recovery::begin(
            ctx,
            &GridState {
                dist: &mut self.dist,
                parent: &mut self.parent,
                buckets: &mut self.buckets,
                stats: &mut stats,
            },
        );
        'outer: loop {
            if let Some(r) = rec.as_mut() {
                let mut st = GridState {
                    dist: &mut self.dist,
                    parent: &mut self.parent,
                    buckets: &mut self.buckets,
                    stats: &mut stats,
                };
                if r.bucket_boundary(ctx, &mut st)? {
                    continue 'outer;
                }
            }
            let k_local = if self.is_diag() {
                self.buckets.min_bucket().map_or(u64::MAX, |k| k as u64)
            } else {
                u64::MAX
            };
            let k = ctx.allreduce(k_local, |a, b| *a.min(b));
            if k == u64::MAX {
                break;
            }
            ctx.trace_begin(TraceCode::Bucket, k, 0);
            let bucket_snap = ctx
                .trace_enabled()
                .then(|| (ctx.stats().compute_s, ctx.stats().comm_s));
            let mut bucket_frontier = 0u64;
            let mut settled: Vec<u32> = Vec::new();
            // light inner loop
            loop {
                if let Some(r) = rec.as_mut() {
                    let mut st = GridState {
                        dist: &mut self.dist,
                        parent: &mut self.parent,
                        buckets: &mut self.buckets,
                        stats: &mut stats,
                    };
                    if r.probe(ctx, &mut st)? {
                        // mid-bucket rollback: close the open span and
                        // restart the outer loop from the restored state
                        ctx.trace_end(TraceCode::Bucket, k, 0);
                        continue 'outer;
                    }
                }
                let frontier = self.collect_frontier(k as usize);
                let total = ctx.allreduce(frontier.len() as u64, |a, b| a + b);
                if total == 0 {
                    break;
                }
                bucket_frontier += total;
                settled.extend_from_slice(&frontier);
                self.relax_round(ctx, &frontier, |w| w < delta, &mut stats, 0);
            }
            // heavy pass
            settled.sort_unstable();
            settled.dedup();
            ctx.trace_count(TraceCode::Settled, settled.len() as u64, k);
            self.relax_round(ctx, &settled, |w| w >= delta, &mut stats, 1);
            if let Some((c0, m0)) = bucket_snap {
                let dc = ctx.stats().compute_s - c0;
                let dm = ctx.stats().comm_s - m0;
                ctx.trace_count(TraceCode::BucketFrontier, bucket_frontier, k);
                ctx.trace_count_f64(TraceCode::BucketCompute, dc, k);
                ctx.trace_count_f64(TraceCode::BucketComm, dm, k);
            }
            ctx.trace_end(TraceCode::Bucket, k, 0);
        }
        if let Some(r) = rec {
            r.finish(ctx);
        }
        Ok(stats)
    }

    fn collect_frontier(&mut self, k: usize) -> Vec<u32> {
        if !self.is_diag() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for v in self.buckets.take_bucket(k) {
            let d = self.dist[v as usize];
            if d.is_finite() && self.buckets.bucket_of(d) == k {
                out.push(v);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// One 2D superstep: row-broadcast the frontier, relax matching edges,
    /// column-reduce candidates to the diagonal, apply.
    fn relax_round(
        &mut self,
        ctx: &mut RankCtx,
        frontier: &[u32],
        class: impl Fn(Weight) -> bool + Sync,
        stats: &mut Sssp2DStats,
        flavor: u64,
    ) {
        let ss = stats.supersteps;
        let snap = ctx
            .trace_enabled()
            .then(|| (ctx.stats().compute_s, ctx.stats().comm_s, stats.relaxations));
        ctx.trace_begin(TraceCode::Superstep, ss, flavor);
        // 1. row broadcast: only the diagonal member contributes
        let mine: Vec<(u64, f32)> = if self.is_diag() {
            frontier
                .iter()
                .map(|&l| (l as u64, self.dist[l as usize]))
                .collect()
        } else {
            Vec::new()
        };
        stats.frontier_records += mine.len() as u64 * (self.side as u64 - 1);
        let mut blocks_in = self.row_comm.allgatherv(ctx, &mine);
        // Flatten in the (possibly fuzzed) delivery order; relaxation below
        // min-aggregates, so the order cannot change distances.
        let order = ctx.delivery_order(blocks_in.len());
        let mut active = std::mem::take(&mut self.active_scratch);
        active.clear();
        for s in order {
            active.append(&mut blocks_in[s]);
        }

        // 2. local relax: candidates per global target, min-aggregated.
        // The edge scan (the expensive part) runs in parallel over fixed
        // chunks of the already order-fixed active list, emitting
        // candidates in (source, arc) order; the sequential fold below
        // consumes them in exactly that order, so the aggregate — values
        // and tie winners alike — is identical at any thread count.
        let nloc = self.local.num_vertices();
        let blocks = &self.blocks;
        let row = self.row;
        let local = &self.local;
        ctx.trace_begin(TraceCode::TaskWave, active.len() as u64, 4);
        let mut per_chunk = std::mem::take(&mut self.relax_scratch);
        active
            .par_chunks(256)
            // ≥ 4 blocks (1024 sources) per pool job: rounds with ≤ 2048
            // active sources run inline via the ≤ 2-chunk cutoff, and
            // bigger waves amortize the hand-off. Block geometry (and so
            // candidate order) is unchanged — only job granularity moves.
            .with_min_len(4)
            .map(|chunk| {
                let mut relaxed = 0u64;
                let mut cands: Vec<(u64, f32, u64)> = Vec::new();
                for &(src_local, du) in chunk {
                    let u_global = blocks.to_global(row, src_local as usize);
                    if (src_local as usize) < nloc {
                        let vs = local.neighbors(src_local as usize);
                        let ws = local.edge_weights(src_local as usize);
                        for (&v, &w) in vs.iter().zip(ws) {
                            if !class(w) {
                                continue;
                            }
                            relaxed += 1;
                            cands.push((v, du + w, u_global));
                        }
                    }
                }
                (relaxed, cands)
            })
            .collect_into_vec(&mut per_chunk);

        let mut best: HashMap<u64, (f32, u64)> = HashMap::new();
        let mut relaxed = 0u64;
        for (r, cands) in per_chunk.iter_mut() {
            relaxed += *r;
            for (v, nd, u_global) in cands.drain(..) {
                let e = best.entry(v).or_insert((f32::INFINITY, u64::MAX));
                if nd < e.0 {
                    *e = (nd, u_global);
                }
            }
        }
        stats.relaxations += relaxed;
        ctx.charge_compute(relaxed);
        ctx.trace_end(TraceCode::TaskWave, active.len() as u64, 4);
        self.relax_scratch = per_chunk;
        self.active_scratch = active;

        // 3. column reduce: ship candidates to the diagonal rank of my
        // column (sub-rank == col index within the column communicator)
        let mut col_out: Vec<Vec<(u64, f32, u64)>> = vec![Vec::new(); self.col_comm.size()];
        let diag_sub = self.col; // in column c, the diagonal is grid row c
        col_out[diag_sub] = best.into_iter().map(|(v, (d, par))| (v, d, par)).collect();
        stats.update_records += col_out[diag_sub].len() as u64;
        let incoming = self.col_comm.alltoallv(ctx, col_out);
        stats.supersteps += 1;

        // 4. apply on the diagonal
        if self.is_diag() {
            let mut incoming = incoming;
            let order = ctx.delivery_order(incoming.len());
            let mut applied = 0u64;
            for block in order.into_iter().map(|s| std::mem::take(&mut incoming[s])) {
                for (v, nd, par) in block {
                    applied += 1;
                    let l = self.blocks.to_local(v);
                    if nd < self.dist[l] {
                        self.dist[l] = nd;
                        self.parent[l] = par;
                        self.buckets.insert(l as u32, nd);
                    }
                }
            }
            ctx.charge_compute(applied);
        }

        ctx.trace_end(TraceCode::Superstep, ss, flavor);
        if let Some((c0, m0, r0)) = snap {
            let dc = ctx.stats().compute_s - c0;
            let dm = ctx.stats().comm_s - m0;
            let dr = stats.relaxations - r0;
            ctx.trace_count_f64(TraceCode::SuperstepCompute, dc, flavor);
            ctx.trace_count_f64(TraceCode::SuperstepComm, dm, flavor);
            ctx.trace_count(TraceCode::Relaxations, dr, flavor);
        }
    }

    /// Collectively reassemble the global result on every rank.
    pub fn gather(&mut self, ctx: &mut RankCtx) -> ShortestPaths {
        let mine: Vec<(u64, f32, u64)> = if self.is_diag() {
            self.dist
                .iter()
                .enumerate()
                .filter(|(_, d)| d.is_finite())
                .map(|(l, &d)| (self.blocks.to_global(self.row, l), d, self.parent[l]))
                .collect()
        } else {
            Vec::new()
        };
        let blocks = ctx.allgatherv(&mine);
        let mut out = ShortestPaths::unreached(self.blocks.num_vertices() as usize);
        for block in blocks {
            for (v, d, p) in block {
                out.dist[v as usize] = d;
                out.parent[v as usize] = p;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g500_baselines::dijkstra;
    use simnet::{Machine, MachineConfig};

    fn run_2d(
        el: &EdgeList,
        n: u64,
        p: usize,
        root: u64,
        delta: f32,
    ) -> (ShortestPaths, Sssp2DStats) {
        Machine::new(MachineConfig::with_ranks(p))
            .run(|ctx| {
                let m = el.len();
                let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
                let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
                let mut g = Grid2DSssp::build(ctx, n, mine.into_iter(), delta);
                let stats = g.run(ctx, root);
                (g.gather(ctx), stats)
            })
            .results
            .pop()
            .expect("rank result")
    }

    fn oracle(el: &EdgeList, n: usize, root: u64) -> ShortestPaths {
        let csr = Csr::from_edges(n, el, g500_graph::Directedness::Undirected);
        dijkstra(&csr, root)
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in [2u64, 9] {
            let el = g500_gen::simple::erdos_renyi(50, 220, seed);
            let exact = oracle(&el, 50, 3);
            for p in [1usize, 4, 9] {
                let (sp, _) = run_2d(&el, 50, p, 3, 0.2);
                assert!(sp.distances_match(&exact, 1e-4), "seed {seed} p={p}");
            }
        }
    }

    #[test]
    fn matches_on_kronecker() {
        let gen = g500_gen::KroneckerGenerator::new(g500_gen::KroneckerParams::graph500(8, 6));
        let el = gen.generate_all();
        let exact = oracle(&el, 256, 1);
        let (sp, stats) = run_2d(&el, 256, 4, 1, 0.125);
        assert!(sp.distances_match(&exact, 1e-4));
        assert!(stats.supersteps > 0 && stats.relaxations > 0);
    }

    #[test]
    fn various_deltas_exact() {
        let el = g500_gen::simple::erdos_renyi(36, 150, 4);
        let exact = oracle(&el, 36, 0);
        for delta in [0.05f32, 0.5, 10.0] {
            let (sp, _) = run_2d(&el, 36, 4, 0, delta);
            assert!(sp.distances_match(&exact, 1e-4), "delta {delta}");
        }
    }

    #[test]
    fn disconnected_graph() {
        let el = g500_gen::simple::path(6, 0.4); // vertices 6..9 isolated
        let (sp, _) = run_2d(&el, 10, 4, 0, 0.3);
        assert_eq!(sp.reached_count(), 6);
        assert!(sp.dist[8].is_infinite());
    }

    #[test]
    #[should_panic(expected = "square rank count")]
    fn non_square_grid_rejected() {
        let el = g500_gen::simple::path(4, 1.0);
        run_2d(&el, 4, 3, 0, 0.5);
    }

    #[test]
    fn crash_recovery_is_byte_identical_to_fault_free() {
        let el = g500_gen::simple::erdos_renyi(50, 220, 9);
        let run = |crash: Option<simnet::CrashPlan>| {
            let mut cfg = MachineConfig::with_ranks(4);
            if let Some(plan) = crash {
                cfg = cfg.crashes(plan);
            }
            let el = &el;
            Machine::new(cfg).run(move |ctx| {
                let m = el.len();
                let (lo, hi) = (ctx.rank() * m / 4, (ctx.rank() + 1) * m / 4);
                let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
                let mut g = Grid2DSssp::build(ctx, 50, mine.into_iter(), 0.2);
                let stats = g.try_run(ctx, 3).expect("in-budget crashes recover");
                (g.gather(ctx), stats)
            })
        };
        let clean = run(None);
        let plan = simnet::CrashPlan::random(0x2D, 0.01).with_checkpoint_interval(2);
        let crashed = run(Some(plan));
        assert!(crashed.total_stats().saw_crashes(), "schedule must crash");
        for (c, f) in clean.results.iter().zip(crashed.results.iter()) {
            let cbits: Vec<u32> = c.0.dist.iter().map(|d| d.to_bits()).collect();
            let fbits: Vec<u32> = f.0.dist.iter().map(|d| d.to_bits()).collect();
            assert_eq!(cbits, fbits);
            assert_eq!(c.0.parent, f.0.parent);
            assert_eq!(c.1, f.1, "2D run counters have no time fields");
        }
    }
}
