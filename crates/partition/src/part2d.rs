//! Two-dimensional (edge) partitioning.
//!
//! The Graph500 BFS literature splits the adjacency *matrix* over a
//! `pr × pc` process grid: edge `(u, v)` lives on the rank at (row block of
//! `u`, column block of `v`). Frontier exchange then happens within grid
//! rows/columns only, turning all-to-all traffic into √p-sized collectives.
//! The SSSP kernel in this repo is 1D (as delta-stepping's per-vertex bucket
//! state favours), but the 2D map is implemented for the design-space
//! comparison: the communication-volume bench contrasts the destination
//! fan-out of 1D vs 2D placements.

use crate::part1d::Block1D;
use crate::VertexPartition;
use g500_graph::VertexId;

/// A `pr × pc` process-grid edge partition over `n` vertices.
#[derive(Clone, Copy, Debug)]
pub struct EdgePartition2D {
    rows: Block1D,
    cols: Block1D,
    pr: usize,
    pc: usize,
}

impl EdgePartition2D {
    /// Build a grid of `pr` row blocks × `pc` column blocks.
    pub fn new(n: u64, pr: usize, pc: usize) -> Self {
        assert!(pr > 0 && pc > 0);
        Self {
            rows: Block1D::new(n, pr),
            cols: Block1D::new(n, pc),
            pr,
            pc,
        }
    }

    /// Total ranks in the grid.
    pub fn num_ranks(&self) -> usize {
        self.pr * self.pc
    }

    /// Grid shape `(pr, pc)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.pr, self.pc)
    }

    /// Rank owning edge `(u, v)`: row-major position in the grid.
    pub fn owner_edge(&self, u: VertexId, v: VertexId) -> usize {
        self.rows.owner(u) * self.pc + self.cols.owner(v)
    }

    /// The set of ranks a vertex's out-edges can live on (its grid row).
    /// Size `pc` — this is the 2D fan-out bound the comparison bench cites.
    pub fn row_of_vertex(&self, u: VertexId) -> Vec<usize> {
        let r = self.rows.owner(u);
        (0..self.pc).map(|c| r * self.pc + c).collect()
    }

    /// The grid row and column of `rank`.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.pc, rank % self.pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_in_range_and_consistent() {
        let g = EdgePartition2D::new(100, 3, 4);
        assert_eq!(g.num_ranks(), 12);
        for u in (0..100).step_by(7) {
            for v in (0..100).step_by(11) {
                let r = g.owner_edge(u, v);
                assert!(r < 12);
                let (row, col) = g.coords(r);
                assert!(row < 3 && col < 4);
                // all edges from u stay within u's grid row
                assert!(g.row_of_vertex(u).contains(&r));
            }
        }
    }

    #[test]
    fn row_fanout_is_pc() {
        let g = EdgePartition2D::new(64, 4, 4);
        assert_eq!(g.row_of_vertex(0).len(), 4);
        // 1D over the same 16 ranks would fan out to 16 ranks
        assert!(g.row_of_vertex(0).len() < 16);
    }

    #[test]
    fn edges_cover_all_ranks() {
        let g = EdgePartition2D::new(16, 2, 2);
        let mut seen = [false; 4];
        for u in 0..16 {
            for v in 0..16 {
                seen[g.owner_edge(u, v)] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
