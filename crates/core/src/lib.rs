//! # graph500 — the end-to-end benchmark facade
//!
//! One-call drivers that run the full Graph500 flow on the simulated
//! machine: generate the Kronecker graph (kernel 0 construction), sample 64
//! search keys, run SSSP (kernel 3) or BFS (kernel 2) from each, validate
//! every result against the input edge list, and report the official
//! harmonic-mean TEPS block.
//!
//! ```
//! use graph500::{run_sssp_benchmark, BenchmarkConfig};
//!
//! let cfg = BenchmarkConfig::quick(10, 2); // scale 10, 2 ranks, 4 roots
//! let report = run_sssp_benchmark(&cfg);
//! assert!(report.all_validated());
//! assert!(report.teps.harmonic_mean > 0.0);
//! ```
//!
//! The crate also re-exports the whole workspace surface so downstream code
//! can depend on `graph500` alone.
#![warn(missing_docs)]

pub mod driver;
pub mod serving;
pub mod trace_report;

pub use driver::{
    run_bfs_benchmark, run_sssp_benchmark, try_run_sssp_benchmark, BenchmarkConfig,
    BenchmarkReport, PartitionStrategy, RootRun,
};
pub use serving::{
    run_query_serving_benchmark, synth_queries, try_run_query_serving_benchmark, ServeBenchConfig,
    ServeReport,
};
pub use simnet::{
    CrashPlan, FaultEscalation, FaultPlan, Trace, TraceConfig, TraceSummary, TransportError,
};
pub use trace_report::write_chrome_trace;

// Re-export the component crates under stable names.
pub use g500_baselines as baselines;
pub use g500_gen as gen;
pub use g500_graph as graph;
pub use g500_partition as partition;
pub use g500_sssp as sssp;
pub use g500_validate as validate;
pub use rayon;
pub use simnet;
