//! Degree-aware "hybrid" partitioning.
//!
//! Kronecker graphs put a large fraction of all edges on a tiny set of hub
//! vertices (experiment F7 quantifies it). Under a plain block partition
//! whole hubs land on single ranks and those ranks become hot spots — both
//! in memory and in incoming relaxation traffic. The paper's system family
//! handles this with degree-aware placement: relabel hubs to the front of
//! the id space, then stripe that hub prefix cyclically over ranks while
//! block-partitioning the low-degree tail.
//!
//! [`degree_aware_relabel`] computes the relabeling from a degree sequence;
//! [`HybridPartition`] is the ownership map over the relabeled ids.

use crate::part1d::{Block1D, Cyclic1D};
use crate::VertexPartition;
use g500_graph::{Permutation, VertexId};

/// Ownership map where ids `< hub_count` are cyclically striped and ids
/// `>= hub_count` are block-partitioned; each rank's local index space lists
/// its hubs first, then its block vertices.
#[derive(Clone, Copy, Debug)]
pub struct HybridPartition {
    hub_count: u64,
    hubs: Cyclic1D,
    tail: Block1D,
    p: usize,
    n: u64,
}

impl HybridPartition {
    /// Partition `n` relabeled vertices over `p` ranks with the first
    /// `hub_count` ids striped.
    pub fn new(n: u64, p: usize, hub_count: u64) -> Self {
        assert!(hub_count <= n, "hub prefix larger than vertex set");
        Self {
            hub_count,
            hubs: Cyclic1D::new(hub_count, p),
            tail: Block1D::new(n - hub_count, p),
            p,
            n,
        }
    }

    /// Number of hub-prefix ids.
    pub fn hub_count(&self) -> u64 {
        self.hub_count
    }

    /// Whether global id `v` is in the hub prefix.
    #[inline]
    pub fn is_hub(&self, v: VertexId) -> bool {
        v < self.hub_count
    }

    fn hubs_on(&self, rank: usize) -> usize {
        self.hubs.local_count(rank)
    }
}

impl VertexPartition for HybridPartition {
    fn num_ranks(&self) -> usize {
        self.p
    }

    fn num_vertices(&self) -> u64 {
        self.n
    }

    fn owner(&self, v: VertexId) -> usize {
        debug_assert!(v < self.n);
        if v < self.hub_count {
            self.hubs.owner(v)
        } else {
            self.tail.owner(v - self.hub_count)
        }
    }

    fn to_local(&self, v: VertexId) -> usize {
        if v < self.hub_count {
            self.hubs.to_local(v)
        } else {
            let tail_owner = self.tail.owner(v - self.hub_count);
            self.hubs_on(tail_owner) + self.tail.to_local(v - self.hub_count)
        }
    }

    fn to_global(&self, rank: usize, local: usize) -> VertexId {
        let h = self.hubs_on(rank);
        if local < h {
            self.hubs.to_global(rank, local)
        } else {
            self.hub_count + self.tail.to_global(rank, local - h)
        }
    }

    fn local_count(&self, rank: usize) -> usize {
        self.hubs_on(rank) + self.tail.local_count(rank)
    }
}

/// Pick hubs from a degree sequence and build the relabeling permutation.
///
/// A vertex is a hub if its degree is at least `hub_factor ×` the mean
/// degree; the hub set is additionally capped at `n / 16` so a pathological
/// input can't stripe everything. Returns the permutation (old id → new id;
/// hubs occupy new ids `0..hub_count` in descending-degree order) and the
/// hub count.
pub fn degree_aware_relabel(degrees: &[usize], hub_factor: f64) -> (Permutation, u64) {
    let n = degrees.len();
    if n == 0 {
        return (Permutation::identity(0), 0);
    }
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let threshold = (mean * hub_factor).max(1.0);
    let perm = Permutation::by_degree_desc(degrees);
    // After by_degree_desc, new id k has the k-th highest degree; count the
    // prefix above threshold.
    let cap = (n / 16).max(1);
    let mut hub_count = 0u64;
    for k in 0..cap {
        let old = perm.invert(k as VertexId) as usize;
        if degrees[old] as f64 >= threshold {
            hub_count += 1;
        } else {
            break;
        }
    }
    (perm, hub_count)
}

/// A closed-form hub relabeling: the chosen hubs map to labels
/// `0..hubs.len()` (in the given priority order) and every other id keeps
/// its relative order, shifted past the hubs. Unlike [`Permutation`] it
/// needs memory proportional to the *hub set*, not the vertex set, so it
/// scales to id spaces no rank could hold — the regime the paper operates
/// in.
#[derive(Clone, Debug)]
pub struct SparseHubRelabel {
    n: u64,
    /// Hubs in priority (e.g. descending-degree) order; `by_priority[i]`
    /// gets new label `i`.
    by_priority: Vec<VertexId>,
    /// The same hubs sorted by original id, for rank queries.
    by_id: Vec<VertexId>,
    /// `rank_of[h]` = position of hub `h` in `by_priority`.
    rank_of: std::collections::HashMap<VertexId, u64>,
}

impl SparseHubRelabel {
    /// Build from the hub list in priority order. Panics on duplicates or
    /// out-of-range ids.
    pub fn new(n: u64, hubs_by_priority: Vec<VertexId>) -> Self {
        let mut rank_of = std::collections::HashMap::with_capacity(hubs_by_priority.len());
        for (i, &h) in hubs_by_priority.iter().enumerate() {
            assert!(h < n, "hub {h} out of range");
            let dup = rank_of.insert(h, i as u64);
            assert!(dup.is_none(), "duplicate hub {h}");
        }
        let mut by_id = hubs_by_priority.clone();
        by_id.sort_unstable();
        Self {
            n,
            by_priority: hubs_by_priority,
            by_id,
            rank_of,
        }
    }

    /// Number of hubs (the cyclic prefix length for [`HybridPartition`]).
    pub fn hub_count(&self) -> u64 {
        self.by_priority.len() as u64
    }

    /// Hubs with original ids `< v`.
    fn hubs_below(&self, v: VertexId) -> u64 {
        self.by_id.partition_point(|&h| h < v) as u64
    }

    /// New label of original id `v`.
    pub fn apply(&self, v: VertexId) -> VertexId {
        debug_assert!(v < self.n);
        match self.rank_of.get(&v) {
            Some(&r) => r,
            None => self.hub_count() + (v - self.hubs_below(v)),
        }
    }

    /// Original id of new label `l`.
    pub fn invert(&self, l: VertexId) -> VertexId {
        debug_assert!(l < self.n);
        let h = self.hub_count();
        if l < h {
            return self.by_priority[l as usize];
        }
        // `f(x) = x − hubs_below(x)` counts non-hub ids `< x` and is
        // non-decreasing; the wanted original id is the `target`-th non-hub,
        // i.e. the `v` with `f(v) == target` and `f(v + 1) == target + 1`.
        // Binary-search the smallest `x` with `f(x) ≥ target + 1`; then
        // `v = x − 1`.
        let target = l - h;
        let (mut lo, mut hi) = (0u64, self.n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if mid - self.hubs_below(mid) > target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bijection(part: &HybridPartition) {
        let n = part.num_vertices();
        let p = part.num_ranks();
        let total: usize = (0..p).map(|r| part.local_count(r)).sum();
        assert_eq!(total as u64, n);
        for v in 0..n {
            let r = part.owner(v);
            let l = part.to_local(v);
            assert!(l < part.local_count(r));
            assert_eq!(part.to_global(r, l), v, "v={v}");
        }
    }

    #[test]
    fn bijection_various_shapes() {
        check_bijection(&HybridPartition::new(100, 4, 10));
        check_bijection(&HybridPartition::new(101, 4, 7));
        check_bijection(&HybridPartition::new(50, 7, 0)); // no hubs → pure block
        check_bijection(&HybridPartition::new(50, 7, 50)); // all hubs → pure cyclic
        check_bijection(&HybridPartition::new(5, 8, 3)); // more ranks than vertices
    }

    #[test]
    fn hubs_spread_across_ranks() {
        let part = HybridPartition::new(1000, 4, 8);
        let owners: Vec<_> = (0..8).map(|v| part.owner(v)).collect();
        assert_eq!(owners, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert!(part.is_hub(7));
        assert!(!part.is_hub(8));
    }

    #[test]
    fn local_space_lists_hubs_first() {
        let part = HybridPartition::new(100, 4, 8);
        // rank 0 owns hubs 0 and 4 → locals 0, 1
        assert_eq!(part.to_local(0), 0);
        assert_eq!(part.to_local(4), 1);
        // its first tail vertex comes after the hubs
        let first_tail = part.to_global(0, 2);
        assert!(first_tail >= 8);
    }

    #[test]
    fn relabel_selects_hot_vertices() {
        // one mega-hub (vertex 5), mean degree ~2
        let mut degrees = vec![2usize; 64];
        degrees[5] = 100;
        degrees[9] = 50;
        let (perm, hubs) = degree_aware_relabel(&degrees, 8.0);
        assert_eq!(hubs, 2);
        assert_eq!(perm.apply(5), 0);
        assert_eq!(perm.apply(9), 1);
    }

    #[test]
    fn relabel_caps_hub_fraction() {
        // every vertex identical degree + factor below 1 → cap kicks in
        let degrees = vec![10usize; 160];
        let (_, hubs) = degree_aware_relabel(&degrees, 0.5);
        assert!(hubs <= 10, "cap exceeded: {hubs}");
    }

    #[test]
    fn relabel_empty() {
        let (perm, hubs) = degree_aware_relabel(&[], 8.0);
        assert_eq!(perm.len(), 0);
        assert_eq!(hubs, 0);
    }

    #[test]
    fn sparse_relabel_is_a_bijection() {
        let n = 100u64;
        let r = SparseHubRelabel::new(n, vec![42, 7, 99, 0]);
        assert_eq!(r.hub_count(), 4);
        let mut seen = vec![false; n as usize];
        for v in 0..n {
            let l = r.apply(v);
            assert!(l < n);
            assert!(!seen[l as usize], "collision at {v}");
            seen[l as usize] = true;
            assert_eq!(r.invert(l), v, "invert failed for {v} -> {l}");
        }
    }

    #[test]
    fn sparse_relabel_hub_order_is_priority_order() {
        let r = SparseHubRelabel::new(50, vec![30, 10, 20]);
        assert_eq!(r.apply(30), 0);
        assert_eq!(r.apply(10), 1);
        assert_eq!(r.apply(20), 2);
        assert_eq!(r.invert(0), 30);
        // first non-hub (id 0) lands right after the hubs
        assert_eq!(r.apply(0), 3);
    }

    #[test]
    fn sparse_relabel_no_hubs_is_identity() {
        let r = SparseHubRelabel::new(10, vec![]);
        for v in 0..10 {
            assert_eq!(r.apply(v), v);
            assert_eq!(r.invert(v), v);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate hub")]
    fn sparse_relabel_rejects_duplicates() {
        SparseHubRelabel::new(10, vec![3, 3]);
    }
}
