//! Microbenchmarks for the hot kernels: generator throughput, CSR
//! construction, bucket-queue operations, the update codec, sequential SSSP
//! kernels, and simnet collectives.
//!
//! These complement the experiment harnesses (`src/bin/*`): the harnesses
//! measure *simulated* time on the modeled machine, these measure *host*
//! time of the real Rust kernels. The harness is a self-contained timing
//! loop (`harness = false`): the workspace is offline and carries no
//! criterion, and a median-of-samples loop is enough to spot order-of-
//! magnitude regressions. Run with `cargo bench -p g500-bench`.
//!
//! Besides the text table, the run finishes with a thread-count sweep over
//! the pool-parallel hot kernels (re-exec'd children under
//! `G500_THREADS ∈ {1,2,4}`, since the pool is fixed at first use) and
//! writes the medians to `results/bench_micro.json` at the workspace root.

use g500_baselines::dijkstra;
use g500_gen::{KroneckerGenerator, KroneckerParams};
use g500_graph::{compress, Csr, Directedness};
use g500_sssp::codec::{decode_updates, dedup_min, encode_updates, Update};
use g500_sssp::{delta_stepping, parallel_delta_stepping, BucketQueue};
use graph500::simnet::{Machine, MachineConfig};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

/// Run `f` `samples` times and report the median wall time, scaled by
/// `elements` into a throughput figure.
fn bench(name: &str, elements: u64, samples: usize, mut f: impl FnMut()) {
    // one warmup to populate caches / page in data
    f();
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    let rate = if median > 0.0 {
        elements as f64 / median
    } else {
        f64::INFINITY
    };
    println!(
        "{name:<40} {:>12.3} ms   {:>12.3e} elem/s",
        median * 1e3,
        rate
    );
}

fn bench_generator() {
    for scale in [14u32, 16] {
        let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, 1));
        let m = gen.params().num_edges();
        bench(&format!("generator/kronecker_all/{scale}"), m, 5, || {
            black_box(gen.generate_all().len());
        });
    }
}

fn bench_csr_build() {
    for scale in [14u32, 16] {
        let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, 1));
        let el = gen.generate_all();
        let n = gen.params().num_vertices() as usize;
        bench(
            &format!("csr/build_undirected/{scale}"),
            el.len() as u64,
            5,
            || {
                black_box(Csr::from_edges(n, &el, Directedness::Undirected).num_arcs());
            },
        );
    }
}

fn bench_bucket_queue() {
    let n = 100_000u32;
    bench("bucket_queue/insert_drain_100k", n as u64, 10, || {
        let mut q = BucketQueue::new(0.1);
        for i in 0..n {
            q.insert(i, (i % 977) as f32 * 0.01);
        }
        let mut popped = 0usize;
        while let Some(k) = q.min_bucket() {
            popped += q.take_bucket(k).len();
        }
        black_box(popped);
    });
}

fn bench_codec() {
    let updates: Vec<Update> = (0..10_000u64)
        .map(|i| (1_000_000 + i * 3, 0.5 + (i % 7) as f32, i))
        .collect();
    bench("update_codec/encode_10k", updates.len() as u64, 20, || {
        black_box(encode_updates(&updates, true).len());
    });
    let enc = encode_updates(&updates, true);
    bench("update_codec/decode_10k", updates.len() as u64, 20, || {
        black_box(decode_updates(&enc).expect("well-formed").len());
    });
    bench(
        "update_codec/dedup_10k_half_dup",
        updates.len() as u64,
        20,
        || {
            let mut v = updates.clone();
            v.extend(updates.iter().map(|&(t, d, p)| (t, d + 0.1, p)));
            black_box(dedup_min(&mut v));
        },
    );
}

fn bench_varint() {
    let adj: Vec<u64> = (0..10_000u64).map(|i| i * 7 + 1_000_000).collect();
    bench("varint/encode_adjacency_10k", adj.len() as u64, 20, || {
        black_box(compress::encode_adjacency(&adj).len());
    });
    let enc = compress::encode_adjacency(&adj);
    bench("varint/decode_adjacency_10k", adj.len() as u64, 20, || {
        black_box(compress::decode_adjacency(&enc).expect("well-formed").len());
    });
}

fn bench_sssp_kernels() {
    let gen = KroneckerGenerator::new(KroneckerParams::graph500(14, 1));
    let el = gen.generate_all();
    let n = gen.params().num_vertices() as usize;
    let csr = Csr::from_edges(n, &el, Directedness::Undirected);
    let root = (0..n).find(|&v| csr.degree(v) > 0).unwrap_or(0) as u64;
    let m = el.len() as u64;
    bench("sssp_seq/dijkstra_s14", m, 5, || {
        black_box(dijkstra(&csr, root).reached_count());
    });
    bench("sssp_seq/delta_stepping_s14", m, 5, || {
        black_box(delta_stepping(&csr, root, 0.125).reached_count());
    });
    bench("sssp_seq/parallel_delta_s14", m, 5, || {
        black_box(parallel_delta_stepping(&csr, root, 0.125).reached_count());
    });
}

fn bench_collectives() {
    for ranks in [4usize, 16] {
        bench(&format!("simnet/allreduce_x100/{ranks}"), 100, 5, || {
            Machine::new(MachineConfig::with_ranks(ranks)).run(|ctx| {
                let mut acc = 0u64;
                for i in 0..100 {
                    acc += ctx.allreduce_sum(i);
                }
                black_box(acc)
            });
        });
        bench(
            &format!("simnet/alltoallv_1k_records/{ranks}"),
            1024,
            5,
            || {
                Machine::new(MachineConfig::with_ranks(ranks)).run(|ctx| {
                    let out: Vec<Vec<u64>> = (0..ctx.size())
                        .map(|d| vec![d as u64; 1024 / ctx.size()])
                        .collect();
                    black_box(ctx.alltoallv(out).len())
                });
            },
        );
    }
}

// ---------------------------------------------------------------------------
// Thread-count sweep → results/bench_micro.json
//
// The worker pool is process-global and fixed at first use, so a sweep over
// thread counts must re-exec: the parent spawns itself once per count in
// `SWEEP_THREADS` with `G500_BENCH_CHILD=1` and `G500_THREADS=<t>` set; the
// child runs only the pool-parallel hot kernels and prints one
// machine-readable `G500_BENCH\t<kernel>\t<median_ns>` line each, which the
// parent collects into JSON. Determinism contract: the *results* of every
// kernel are bitwise identical across the sweep — only the times differ.
// ---------------------------------------------------------------------------

const CHILD_ENV: &str = "G500_BENCH_CHILD";
const SWEEP_THREADS: [usize; 3] = [1, 2, 4];

/// Median wall time of `samples` runs of `f`, in nanoseconds (one warmup).
fn median_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut times: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_nanos());
    }
    times.sort_unstable();
    times[times.len() / 2] as u64
}

/// Child mode: time the pool-parallel hot kernels under whatever
/// `G500_THREADS` the parent set, and emit parse-friendly lines.
fn child_main() {
    let gen = KroneckerGenerator::new(KroneckerParams::graph500(14, 1));
    let el = gen.generate_all();
    let n = gen.params().num_vertices() as usize;
    let csr = Csr::from_edges(n, &el, Directedness::Undirected);
    let root = (0..n).find(|&v| csr.degree(v) > 0).unwrap_or(0) as u64;
    let results: [(&str, u64); 3] = [
        (
            "generator/kronecker_s14",
            median_ns(5, || {
                black_box(gen.generate_all().len());
            }),
        ),
        (
            "csr/build_undirected_s14",
            median_ns(5, || {
                black_box(Csr::from_edges(n, &el, Directedness::Undirected).num_arcs());
            }),
        ),
        (
            "sssp/parallel_delta_s14",
            median_ns(3, || {
                black_box(parallel_delta_stepping(&csr, root, 0.125).reached_count());
            }),
        ),
    ];
    for (name, ns) in results {
        println!("G500_BENCH\t{name}\t{ns}");
    }
}

/// Re-exec ourselves once per thread count and collect the child lines.
/// Returns `(thread_count, [(kernel, median_ns)])` per sweep point.
fn run_sweep(exe: &Path) -> Vec<(usize, Vec<(String, u64)>)> {
    let mut sweep = Vec::new();
    for t in SWEEP_THREADS {
        eprintln!("sweep: re-exec with G500_THREADS={t}…");
        let out = match Command::new(exe)
            .env(CHILD_ENV, "1")
            .env("G500_THREADS", t.to_string())
            .output()
        {
            Ok(o) => o,
            Err(e) => {
                eprintln!("sweep: failed to spawn child for {t} threads: {e}; skipping");
                continue;
            }
        };
        if !out.status.success() {
            eprintln!(
                "sweep: child for {t} threads exited with {}; skipping",
                out.status
            );
            continue;
        }
        let mut kernels = Vec::new();
        for line in String::from_utf8_lossy(&out.stdout).lines() {
            let mut parts = line.split('\t');
            if parts.next() != Some("G500_BENCH") {
                continue;
            }
            if let (Some(name), Some(ns)) = (parts.next(), parts.next()) {
                if let Ok(ns) = ns.parse::<u64>() {
                    kernels.push((name.to_string(), ns));
                }
            }
        }
        sweep.push((t, kernels));
    }
    sweep
}

/// Serialize the sweep as `results/bench_micro.json` at the workspace root:
/// kernel × thread-count × median ns, plus host metadata.
fn write_sweep_json(path: &Path, sweep: &[(usize, Vec<(String, u64)>)]) -> std::io::Result<()> {
    // kernel names in first-seen order
    let mut kernels: Vec<&str> = Vec::new();
    for (_, rows) in sweep {
        for (name, _) in rows {
            if !kernels.contains(&name.as_str()) {
                kernels.push(name);
            }
        }
    }
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"micro\",\n");
    s.push_str("  \"unit\": \"ns\",\n");
    s.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    s.push_str(&format!(
        "  \"thread_counts\": [{}],\n",
        sweep
            .iter()
            .map(|(t, _)| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str("  \"kernels\": [\n");
    for (ki, name) in kernels.iter().enumerate() {
        let cells: Vec<String> = sweep
            .iter()
            .filter_map(|(t, rows)| {
                rows.iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, ns)| format!("\"{t}\": {ns}"))
            })
            .collect();
        s.push_str(&format!(
            "    {{\"name\": \"{name}\", \"median_ns\": {{{}}}}}{}\n",
            cells.join(", "),
            if ki + 1 < kernels.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, s)
}

/// Parent half of the sweep: orchestrate children, write JSON, print a
/// human-readable speedup table.
fn bench_thread_sweep() {
    let exe = match std::env::current_exe() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("sweep: cannot locate own executable ({e}); skipping JSON emission");
            return;
        }
    };
    let sweep = run_sweep(&exe);
    if sweep.is_empty() {
        eprintln!("sweep: no child runs succeeded; skipping JSON emission");
        return;
    }
    let out: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_micro.json");
    match write_sweep_json(&out, &sweep) {
        Ok(()) => println!("\nwrote {}", out.display()),
        Err(e) => eprintln!("sweep: could not write {}: {e}", out.display()),
    }
    // speedup table relative to the 1-thread run
    let base = sweep.iter().find(|(t, _)| *t == 1);
    println!(
        "\n{:<40} {}",
        "thread sweep (median ms)",
        sweep
            .iter()
            .map(|(t, _)| format!("{:>10}", format!("T={t}")))
            .collect::<String>()
    );
    if let Some((_, base_rows)) = base {
        for (name, base_ns) in base_rows {
            let mut row = format!("{name:<40} ");
            for (_, rows) in &sweep {
                match rows.iter().find(|(n, _)| n == name) {
                    Some((_, ns)) => row.push_str(&format!("{:>10.2}", *ns as f64 / 1e6)),
                    None => row.push_str(&format!("{:>10}", "-")),
                }
            }
            if let Some((_, ns4)) = sweep
                .iter()
                .rev()
                .find_map(|(t, rows)| (*t > 1).then(|| rows.iter().find(|(n, _)| n == name))?)
            {
                row.push_str(&format!("   ({:.2}x)", *base_ns as f64 / *ns4 as f64));
            }
            println!("{row}");
        }
    }
}

fn main() {
    if std::env::var_os(CHILD_ENV).is_some() {
        child_main();
        return;
    }
    println!("{:<40} {:>15} {:>18}", "benchmark", "median", "throughput");
    bench_generator();
    bench_csr_build();
    bench_bucket_queue();
    bench_codec();
    bench_varint();
    bench_sssp_kernels();
    bench_collectives();
    bench_thread_sweep();
}
