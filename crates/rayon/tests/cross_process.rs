//! Cross-process byte-identity for the work-stealing pool.
//!
//! The pool is process-global and fixed at first use, so comparing thread
//! counts honestly requires separate processes. The parent test re-execs
//! this test binary with `RAYON_XPROC_CHILD=1` under `G500_THREADS=1` and
//! `=4` and compares the child's stdout byte for byte. The child pipeline
//! uses `with_max_len(1)` over thousands of items, so at 4 threads every
//! chunk run goes through the deques and the batched-claim splitter — the
//! exact machinery that must not be able to change results.

use rayon::prelude::*;
use std::process::Command;

const CHILD_ENV: &str = "RAYON_XPROC_CHILD";

/// A chunk-heavy deterministic pipeline: float sums (combine-order
/// sensitive), an order-sensitive collect, and a duplicate-key sort.
fn child_report() -> String {
    let weights: Vec<f32> = (0..100_000u64)
        .map(|i| ((i.wrapping_mul(2654435761)) % 1000) as f32 * 1e-3)
        .collect();
    let sum: f64 = weights.par_iter().with_max_len(64).map(|&w| w as f64).sum();

    let collected: Vec<u64> = (0..50_000u64)
        .into_par_iter()
        .with_max_len(1)
        .map(|i| i.wrapping_mul(6364136223846793005))
        .collect();
    let mut h = 0xcbf29ce484222325u64;
    for x in &collected {
        h = (h ^ x).wrapping_mul(0x100000001b3);
    }

    let mut pairs: Vec<(u32, u32)> = (0..60_000u32).map(|i| (i % 13, i)).collect();
    pairs.par_sort_unstable_by_key(|&(k, _)| k);
    let mut sh = 0xcbf29ce484222325u64;
    for &(k, v) in &pairs {
        sh = (sh ^ ((k as u64) << 32 | v as u64)).wrapping_mul(0x100000001b3);
    }

    format!(
        "sum={:016x} collect={h:016x} sort={sh:016x}\n",
        sum.to_bits()
    )
}

fn run_child(threads: usize) -> String {
    let exe = std::env::current_exe().expect("test exe path");
    let out = Command::new(exe)
        .args(["--exact", "child_emit_report", "--nocapture"])
        .env(CHILD_ENV, "1")
        .env("G500_THREADS", threads.to_string())
        .output()
        .expect("spawn child test process");
    assert!(
        out.status.success(),
        "child failed under {threads} threads: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    // Under --nocapture the harness's own "test ... " prefix shares the
    // line, so locate the marker anywhere and slice from there.
    stdout
        .lines()
        .find_map(|l| l.find("REPORT ").map(|p| l[p..].to_string()))
        .unwrap_or_else(|| panic!("no REPORT line in child output:\n{stdout}"))
}

/// Child half: prints the pipeline digest when re-exec'd with the env flag;
/// a no-op under the normal test run.
#[test]
fn child_emit_report() {
    if std::env::var(CHILD_ENV).is_err() {
        return;
    }
    print!("REPORT {}", child_report());
}

#[test]
fn batched_claim_results_identical_at_1_and_4_threads() {
    let one = run_child(1);
    let four = run_child(4);
    assert_eq!(
        one, four,
        "work-stealing pool changed results between G500_THREADS=1 and =4"
    );
}
