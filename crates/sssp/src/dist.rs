//! The headline kernel: distributed delta-stepping with the extreme-scale
//! optimization stack.
//!
//! Bulk-synchronous structure, one bucket at a time:
//!
//! ```text
//! while some rank has a non-empty bucket:
//!     k ← allreduce-min of local minimum bucket indices
//!     repeat                                   (light-edge inner loop)
//!         frontier ← live entries of local bucket k
//!         agree on direction (push / pull) from global frontier density
//!         push: relax light out-edges, exchange updates, apply
//!         pull: broadcast frontier, scan local unsettled adjacency
//!     until bucket k is globally empty
//!     relax heavy edges of everything bucket k settled, exchange once
//!     if the global residue is tiny and fusion is on: finish it in one
//!     fused Bellman-Ford tail instead of dribbling through buckets
//! ```
//!
//! Every optimization is toggleable via [`OptConfig`]; with everything off
//! this degenerates to the plain textbook distributed delta-stepping that
//! the ablation experiments measure against.

use crate::bucket::BucketQueue;
use crate::config::{Direction, OptConfig};
use crate::delta::suggest_delta;
use crate::exchange::{exchange_into, ExchangeBufs};
use g500_graph::{VertexId, Weight};
use g500_partition::{DistShortestPaths, LocalGraph, VertexPartition};
use rayon::prelude::*;
use simnet::recovery::{codec, Checkpoint, FaultEscalation, Recovery};
use simnet::{RankCtx, TraceCode};
use std::collections::HashMap;

/// Per-vertex result of the parallel pull scan: relaxation count, and (if
/// the vertex improved) its final `(dist, parent)` plus every strict-
/// improvement distance along the way (each must reach the bucket queue —
/// stale entries drive the superstep count).
type PullScan = (u64, Option<(f32, u64, Vec<f32>)>);

/// Per-chunk result of the parallel heavy-phase scan: relaxation count and
/// the improving candidates `(target_global, new_dist, parent_global,
/// owner_rank)` in (source, arc) order.
type HeavyScan = (u64, Vec<(u64, f32, u64, usize)>);

/// Per-bucket phase timing record (for the breakdown figure F4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseRecord {
    /// Bucket index.
    pub bucket: u64,
    /// Global frontier size summed over the bucket's inner iterations.
    pub frontier: u64,
    /// Virtual compute seconds this rank spent in the bucket.
    pub compute_s: f64,
    /// Virtual communication seconds this rank spent in the bucket.
    pub comm_s: f64,
}

/// Counters one run of the distributed kernel produces (per rank; counts
/// like `supersteps` are identical on every rank by construction).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SsspRunStats {
    /// Global communication rounds (inner light iterations + heavy phases
    /// + fused-tail rounds).
    pub supersteps: u64,
    /// Buckets processed.
    pub buckets: u64,
    /// Local edge relaxations performed.
    pub relaxations: u64,
    /// Update records shipped by this rank (post-dedup).
    pub updates_sent: u64,
    /// Update records offered before dedup.
    pub updates_offered: u64,
    /// Inner iterations that ran in push mode.
    pub push_iterations: u64,
    /// Inner iterations that ran in pull mode.
    pub pull_iterations: u64,
    /// Whether the fused Bellman-Ford tail was taken.
    pub tail_fused: bool,
    /// Virtual seconds from kernel start to finish on this rank.
    pub sim_time_s: f64,
    /// Virtual compute seconds inside the kernel.
    pub compute_s: f64,
    /// Virtual communication seconds inside the kernel.
    pub comm_s: f64,
    /// Per-bucket phases (only when `OptConfig::record_phases`).
    pub phases: Vec<PhaseRecord>,
}

impl PhaseRecord {
    /// Render as a JSON object (hand-rolled: the workspace has no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bucket\":{},\"frontier\":{},\"compute_s\":{},\"comm_s\":{}}}",
            self.bucket,
            self.frontier,
            json_f64(self.compute_s),
            json_f64(self.comm_s)
        )
    }
}

impl SsspRunStats {
    /// Render as a JSON object (hand-rolled: the workspace has no serde).
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = self.phases.iter().map(|p| p.to_json()).collect();
        format!(
            "{{\"supersteps\":{},\"buckets\":{},\"relaxations\":{},\"updates_sent\":{},\
             \"updates_offered\":{},\"push_iterations\":{},\"pull_iterations\":{},\
             \"tail_fused\":{},\"sim_time_s\":{},\"compute_s\":{},\"comm_s\":{},\
             \"phases\":[{}]}}",
            self.supersteps,
            self.buckets,
            self.relaxations,
            self.updates_sent,
            self.updates_offered,
            self.push_iterations,
            self.pull_iterations,
            self.tail_fused,
            json_f64(self.sim_time_s),
            json_f64(self.compute_s),
            json_f64(self.comm_s),
            phases.join(",")
        )
    }
}

/// `f64` → JSON number (`null` when non-finite).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Append a length-prefixed `Weight` slice as raw bit patterns (exact:
/// infinities and the bitwise identity of every distance survive).
pub(crate) fn put_weight_slice(out: &mut Vec<u8>, xs: &[Weight]) {
    codec::put_u64(out, xs.len() as u64);
    for &x in xs {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

/// Read a length-prefixed `Weight` vector written by [`put_weight_slice`].
pub(crate) fn get_weight_vec(buf: &[u8], pos: &mut usize) -> Vec<Weight> {
    let n = codec::get_u64(buf, pos) as usize;
    (0..n)
        .map(|_| {
            let x = u32::from_le_bytes(
                buf[*pos..*pos + 4]
                    .try_into()
                    .expect("checkpoint truncated"),
            );
            *pos += 4;
            Weight::from_bits(x)
        })
        .collect()
}

/// Append a distance/parent pair to a checkpoint.
pub(crate) fn save_paths(sp: &DistShortestPaths, out: &mut Vec<u8>) {
    put_weight_slice(out, &sp.dist);
    codec::put_u64_slice(out, &sp.parent);
}

/// Restore a distance/parent pair from a checkpoint.
pub(crate) fn load_paths(sp: &mut DistShortestPaths, buf: &[u8], pos: &mut usize) {
    sp.dist = get_weight_vec(buf, pos);
    sp.parent = codec::get_u64_vec(buf, pos);
}

impl SsspRunStats {
    /// Append to a checkpoint. Time fields are included so rollback is
    /// exact, even though crash runs legitimately report different virtual
    /// times than fault-free runs.
    pub(crate) fn save_ckpt(&self, out: &mut Vec<u8>) {
        codec::put_u64(out, self.supersteps);
        codec::put_u64(out, self.buckets);
        codec::put_u64(out, self.relaxations);
        codec::put_u64(out, self.updates_sent);
        codec::put_u64(out, self.updates_offered);
        codec::put_u64(out, self.push_iterations);
        codec::put_u64(out, self.pull_iterations);
        codec::put_u64(out, self.tail_fused as u64);
        codec::put_f64(out, self.sim_time_s);
        codec::put_f64(out, self.compute_s);
        codec::put_f64(out, self.comm_s);
        codec::put_u64(out, self.phases.len() as u64);
        for p in &self.phases {
            codec::put_u64(out, p.bucket);
            codec::put_u64(out, p.frontier);
            codec::put_f64(out, p.compute_s);
            codec::put_f64(out, p.comm_s);
        }
    }

    /// Restore from a checkpoint written by
    /// [`save_ckpt`](SsspRunStats::save_ckpt).
    pub(crate) fn load_ckpt(&mut self, buf: &[u8], pos: &mut usize) {
        self.supersteps = codec::get_u64(buf, pos);
        self.buckets = codec::get_u64(buf, pos);
        self.relaxations = codec::get_u64(buf, pos);
        self.updates_sent = codec::get_u64(buf, pos);
        self.updates_offered = codec::get_u64(buf, pos);
        self.push_iterations = codec::get_u64(buf, pos);
        self.pull_iterations = codec::get_u64(buf, pos);
        self.tail_fused = codec::get_u64(buf, pos) != 0;
        self.sim_time_s = codec::get_f64(buf, pos);
        self.compute_s = codec::get_f64(buf, pos);
        self.comm_s = codec::get_f64(buf, pos);
        let n = codec::get_u64(buf, pos) as usize;
        self.phases = (0..n)
            .map(|_| PhaseRecord {
                bucket: codec::get_u64(buf, pos),
                frontier: codec::get_u64(buf, pos),
                compute_s: codec::get_f64(buf, pos),
                comm_s: codec::get_f64(buf, pos),
            })
            .collect();
    }
}

/// Working state threaded through the phases.
struct Kernel<'a, P: VertexPartition> {
    graph: &'a LocalGraph<P>,
    opts: OptConfig,
    delta: Weight,
    sp: DistShortestPaths,
    buckets: BucketQueue,
    /// Generation stamps: `frontier_seen[v] == frontier_epoch` means v is
    /// already in the current inner iteration's frontier.
    frontier_seen: Vec<u64>,
    frontier_epoch: u64,
    /// `settled_seen[v] == settled_epoch` means v is already in the current
    /// bucket's settled list.
    settled_seen: Vec<u64>,
    settled_epoch: u64,
    /// Arcs of local vertices that have not yet entered any frontier —
    /// the denominator of the pull heuristic (an upper bound on remaining
    /// pull work).
    unsettled_arcs: u64,
    unsettled_mark: Vec<bool>,
    stats: SsspRunStats,
    /// Superstep scratch arenas, reused across the whole run: the exchange
    /// buckets/incoming buffer and the two parallel-scan result buffers.
    /// Every superstep used to reallocate all of these from nothing.
    xbufs: ExchangeBufs,
    pull_scratch: Vec<PullScan>,
    heavy_scratch: Vec<HeavyScan>,
}

/// Borrow of the kernel's mutable state for checkpoint/restore. Everything
/// live across a superstep boundary is here; the scratch arenas (`xbufs`,
/// `pull_scratch`, `heavy_scratch`) are excluded on purpose — they are
/// fully overwritten before being read in every superstep.
struct KernelState<'a, 'g, P: VertexPartition>(&'a mut Kernel<'g, P>);

impl<P: VertexPartition> Checkpoint for KernelState<'_, '_, P> {
    fn save(&self, out: &mut Vec<u8>) {
        let k = &*self.0;
        save_paths(&k.sp, out);
        k.buckets.save(out);
        codec::put_u64_slice(out, &k.frontier_seen);
        codec::put_u64(out, k.frontier_epoch);
        codec::put_u64_slice(out, &k.settled_seen);
        codec::put_u64(out, k.settled_epoch);
        codec::put_u64(out, k.unsettled_arcs);
        codec::put_bool_slice(out, &k.unsettled_mark);
        k.stats.save_ckpt(out);
    }

    fn load(&mut self, buf: &[u8]) {
        let k = &mut *self.0;
        let mut pos = 0;
        load_paths(&mut k.sp, buf, &mut pos);
        k.buckets.load(buf, &mut pos);
        k.frontier_seen = codec::get_u64_vec(buf, &mut pos);
        k.frontier_epoch = codec::get_u64(buf, &mut pos);
        k.settled_seen = codec::get_u64_vec(buf, &mut pos);
        k.settled_epoch = codec::get_u64(buf, &mut pos);
        k.unsettled_arcs = codec::get_u64(buf, &mut pos);
        k.unsettled_mark = codec::get_bool_vec(buf, &mut pos);
        k.stats.load_ckpt(buf, &mut pos);
        assert_eq!(pos, buf.len(), "trailing bytes in kernel checkpoint");
    }
}

/// Run the distributed kernel from `root`. Collective: all ranks call with
/// identical `opts`. Returns this rank's slice of the result and the run
/// statistics.
///
/// Panics on an unmasked fault; [`try_distributed_delta_stepping`] is the
/// typed-error variant for crash-injected machines.
pub fn distributed_delta_stepping<P: VertexPartition>(
    ctx: &mut RankCtx,
    graph: &LocalGraph<P>,
    root: VertexId,
    opts: &OptConfig,
) -> (DistShortestPaths, SsspRunStats) {
    match try_distributed_delta_stepping(ctx, graph, root, opts) {
        Ok(out) => out,
        Err(e) => panic!("rank {}: {e}", ctx.rank()),
    }
}

/// [`distributed_delta_stepping`] with crash recovery surfaced as a typed
/// error: under a [`simnet::CrashPlan`] the kernel checkpoints at bucket
/// boundaries, probes for crashes every superstep, and rolls back and
/// replays on an agreed verdict; a crash schedule the budget cannot absorb
/// comes back as `Err` — identically on every rank, from the same
/// collective point.
pub fn try_distributed_delta_stepping<P: VertexPartition>(
    ctx: &mut RankCtx,
    graph: &LocalGraph<P>,
    root: VertexId,
    opts: &OptConfig,
) -> Result<(DistShortestPaths, SsspRunStats), FaultEscalation> {
    let n_local = graph.local_vertices();
    let start_now = ctx.now();
    let start_stats = ctx.stats().clone();

    // Δ selection. The statistics allreduce runs unconditionally so the
    // collective schedule does not depend on the option (and it is cheap).
    let local_w: f64 = (0..n_local)
        .flat_map(|l| graph.arcs(l).map(|(_, w)| w as f64))
        .sum();
    let (sum_w, arcs, verts) = ctx.allreduce(
        (local_w, graph.local_arcs() as u64, n_local as u64),
        |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2),
    );
    let delta = opts.delta.unwrap_or_else(|| {
        let avg_degree = arcs as f64 / verts.max(1) as f64;
        let mean_w = if arcs == 0 { 0.5 } else { sum_w / arcs as f64 };
        suggest_delta(avg_degree, mean_w)
    });

    let mut k = Kernel {
        graph,
        opts: *opts,
        delta,
        sp: DistShortestPaths::unreached(n_local),
        buckets: BucketQueue::new(delta),
        frontier_seen: vec![0; n_local],
        frontier_epoch: 0,
        settled_seen: vec![0; n_local],
        settled_epoch: 0,
        unsettled_arcs: graph.local_arcs() as u64,
        unsettled_mark: vec![false; n_local],
        stats: SsspRunStats::default(),
        xbufs: ExchangeBufs::new(ctx.size()),
        pull_scratch: Vec::new(),
        heavy_scratch: Vec::new(),
    };

    let part = graph.part();
    if part.owner(root) == ctx.rank() {
        let l = part.to_local(root);
        k.sp.dist[l] = 0.0;
        k.sp.parent[l] = root;
        k.buckets.insert(l as u32, 0.0);
    }

    k.main_loop(ctx)?;

    k.stats.sim_time_s = ctx.now() - start_now;
    k.stats.compute_s = ctx.stats().compute_s - start_stats.compute_s;
    k.stats.comm_s = ctx.stats().comm_s - start_stats.comm_s;
    Ok((k.sp, k.stats))
}

impl<P: VertexPartition> Kernel<'_, P> {
    /// Snapshot counters at a traced superstep's start; `None` when
    /// tracing is off, so untraced runs skip the clone-free reads too.
    fn ss_snapshot(&self, ctx: &RankCtx) -> Option<(f64, f64, u64)> {
        ctx.trace_enabled().then(|| {
            (
                ctx.stats().compute_s,
                ctx.stats().comm_s,
                self.stats.relaxations,
            )
        })
    }

    /// Close a traced superstep span and emit its compute/comm/relaxation
    /// deltas. `flavor`: 0 light, 1 heavy, 2 fused tail.
    fn ss_close(&mut self, ctx: &mut RankCtx, snap: Option<(f64, f64, u64)>, flavor: u64) {
        ctx.trace_end(TraceCode::Superstep, self.stats.supersteps, flavor);
        if let Some((c0, m0, r0)) = snap {
            let dc = ctx.stats().compute_s - c0;
            let dm = ctx.stats().comm_s - m0;
            let dr = self.stats.relaxations - r0;
            ctx.trace_count_f64(TraceCode::SuperstepCompute, dc, flavor);
            ctx.trace_count_f64(TraceCode::SuperstepComm, dm, flavor);
            ctx.trace_count(TraceCode::Relaxations, dr, flavor);
        }
    }

    fn main_loop(&mut self, ctx: &mut RankCtx) -> Result<(), FaultEscalation> {
        // Crash recovery (None on fault-free machines): the epoch-0
        // checkpoint captures the root insertion above, so a rollback all
        // the way back restarts the search rather than losing it.
        let mut rec = Recovery::begin(ctx, &KernelState(self));
        'outer: loop {
            if let Some(r) = rec.as_mut() {
                // Bucket boundary: crash probe + periodic checkpoint. On a
                // restore the rolled-back state re-enters the loop here.
                if r.bucket_boundary(ctx, &mut KernelState(self))? {
                    continue 'outer;
                }
            }
            let k_local = self.buckets.min_bucket().map_or(u64::MAX, |k| k as u64);
            let k = ctx.allreduce_min(k_local);
            if k == u64::MAX {
                break;
            }
            self.stats.buckets += 1;
            ctx.trace_begin(TraceCode::Bucket, k, 0);
            let phase_start = (ctx.stats().compute_s, ctx.stats().comm_s);
            let mut phase_frontier = 0u64;

            self.settled_epoch += 1;
            let mut settled: Vec<u32> = Vec::new();

            // ---- light-edge inner loop ----
            loop {
                if let Some(r) = rec.as_mut() {
                    // Inner superstep probe: a mid-bucket crash rolls back
                    // to the last bucket-boundary checkpoint, so close the
                    // open bucket span and restart the outer loop.
                    if r.probe(ctx, &mut KernelState(self))? {
                        ctx.trace_end(TraceCode::Bucket, k, 0);
                        continue 'outer;
                    }
                }
                let frontier = self.collect_frontier(k as usize);
                let f_arcs_local: u64 = frontier
                    .iter()
                    .map(|&v| self.graph.degree(v as usize) as u64)
                    .sum();
                let (f_size, f_arcs, unsettled) = ctx.allreduce(
                    (frontier.len() as u64, f_arcs_local, self.unsettled_arcs),
                    |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2),
                );
                if f_size == 0 {
                    break;
                }
                let snap = self.ss_snapshot(ctx);
                ctx.trace_begin(TraceCode::Superstep, self.stats.supersteps, 0);
                phase_frontier += f_size;
                for &v in &frontier {
                    if self.settled_seen[v as usize] != self.settled_epoch {
                        self.settled_seen[v as usize] = self.settled_epoch;
                        settled.push(v);
                    }
                }
                let use_pull = match self.opts.direction {
                    Direction::Push => false,
                    Direction::Pull => true,
                    Direction::Hybrid => f_arcs as f64 * self.opts.pull_ratio > unsettled as f64,
                };
                if use_pull {
                    self.stats.pull_iterations += 1;
                    self.pull_iteration(ctx, k as usize, &frontier);
                } else {
                    self.stats.push_iterations += 1;
                    self.push_iteration(ctx, k as usize, frontier, &mut settled);
                }
                self.stats.supersteps += 1;
                self.ss_close(ctx, snap, 0);
            }

            // ---- heavy-edge phase (always push, once per settled vertex) ----
            let snap = self.ss_snapshot(ctx);
            ctx.trace_begin(TraceCode::Superstep, self.stats.supersteps, 1);
            ctx.trace_count(TraceCode::Settled, settled.len() as u64, k);
            self.heavy_phase(ctx, &settled);
            self.stats.supersteps += 1;
            self.ss_close(ctx, snap, 1);

            if self.opts.record_phases {
                self.stats.phases.push(PhaseRecord {
                    bucket: k,
                    frontier: phase_frontier,
                    compute_s: ctx.stats().compute_s - phase_start.0,
                    comm_s: ctx.stats().comm_s - phase_start.1,
                });
            }
            if ctx.trace_enabled() {
                let dc = ctx.stats().compute_s - phase_start.0;
                let dm = ctx.stats().comm_s - phase_start.1;
                ctx.trace_count(TraceCode::BucketFrontier, phase_frontier, k);
                ctx.trace_count_f64(TraceCode::BucketCompute, dc, k);
                ctx.trace_count_f64(TraceCode::BucketComm, dm, k);
            }
            // The fused tail below is deliberately outside the bucket span:
            // its rounds carry flavor 2 and the per-bucket counters above
            // keep the same semantics as `PhaseRecord` (tail excluded).
            ctx.trace_end(TraceCode::Bucket, k, 0);

            // ---- fused tail ----
            // Two conditions gate the fusion: the live residue is tiny AND
            // most of the relaxation work is already behind us. The second
            // guard matters: right after bucket 0 the queue is also tiny
            // (the search has barely started), and fusing there would run
            // an unbucketed Bellman-Ford over the entire graph.
            if self.opts.bucket_fusion {
                let (active, relaxed) = ctx.allreduce(
                    (self.buckets.len() as u64, self.stats.relaxations),
                    |a, b| (a.0 + b.0, a.1 + b.1),
                );
                let bulk_done = relaxed * 2 > self.graph.global_arcs();
                if active > 0 && active < self.opts.tail_threshold * ctx.size() as u64 && bulk_done
                {
                    self.fused_tail(ctx);
                    self.stats.tail_fused = true;
                }
            }
        }
        if let Some(r) = rec {
            r.finish(ctx);
        }
        Ok(())
    }

    /// Drain the live, deduplicated frontier of bucket `k`.
    fn collect_frontier(&mut self, k: usize) -> Vec<u32> {
        self.frontier_epoch += 1;
        let mut out = Vec::new();
        for v in self.buckets.take_bucket(k) {
            let d = self.sp.dist[v as usize];
            if d.is_finite()
                && self.buckets.bucket_of(d) == k
                && self.frontier_seen[v as usize] != self.frontier_epoch
            {
                self.frontier_seen[v as usize] = self.frontier_epoch;
                out.push(v);
            }
        }
        for &v in &out {
            if !self.unsettled_mark[v as usize] {
                self.unsettled_mark[v as usize] = true;
                self.unsettled_arcs = self
                    .unsettled_arcs
                    .saturating_sub(self.graph.degree(v as usize) as u64);
            }
        }
        out
    }

    /// Apply one incoming/locally-generated update. Returns `Some(local)`
    /// if it improved the vertex.
    fn apply(&mut self, v_global: u64, nd: Weight, parent: u64) -> Option<u32> {
        let l = self.graph.part().to_local(v_global);
        if nd < self.sp.dist[l] {
            self.sp.dist[l] = nd;
            self.sp.parent[l] = parent;
            self.buckets.insert(l as u32, nd);
            Some(l as u32)
        } else {
            None
        }
    }

    /// One push-mode light iteration over `frontier`. Cascaded vertices
    /// (local improvements that stay in bucket `k` when fusion is on) are
    /// processed within this superstep and recorded in `settled` so the
    /// heavy phase covers them too.
    fn push_iteration(
        &mut self,
        ctx: &mut RankCtx,
        k: usize,
        frontier: Vec<u32>,
        settled: &mut Vec<u32>,
    ) {
        let me = ctx.rank();
        let delta = self.delta;
        let cascade = self.opts.bucket_fusion;
        let graph = self.graph;
        let mut xbufs = std::mem::take(&mut self.xbufs);
        let mut stack = frontier;
        let mut relaxed = 0u64;

        while let Some(u) = stack.pop() {
            let du = self.sp.dist[u as usize];
            let u_global = graph.part().to_global(me, u as usize);
            let vs = graph.neighbors(u as usize);
            let ws = graph.edge_weights(u as usize);
            for (&v, &w) in vs.iter().zip(ws) {
                if w >= delta {
                    continue;
                }
                relaxed += 1;
                let nd = du + w;
                let owner = graph.part().owner(v);
                if owner == me {
                    let l = graph.part().to_local(v);
                    if nd < self.sp.dist[l] {
                        self.sp.dist[l] = nd;
                        self.sp.parent[l] = u_global;
                        if cascade && (nd / delta) as usize == k {
                            // process within this superstep; it settles in
                            // bucket k, so the heavy phase must see it
                            if self.settled_seen[l] != self.settled_epoch {
                                self.settled_seen[l] = self.settled_epoch;
                                settled.push(l as u32);
                            }
                            stack.push(l as u32);
                        } else {
                            self.buckets.insert(l as u32, nd);
                        }
                    }
                } else {
                    xbufs.bucket_mut(owner).push((v, nd, u_global));
                }
            }
        }
        self.stats.relaxations += relaxed;
        ctx.charge_compute(relaxed);

        let outcome = exchange_into(ctx, &mut xbufs, &self.opts);
        self.stats.updates_sent += outcome.records_sent;
        self.stats.updates_offered += outcome.records_offered;
        ctx.charge_compute(xbufs.incoming().len() as u64);
        for &(v, nd, parent) in xbufs.incoming() {
            self.apply(v, nd, parent);
        }
        self.xbufs = xbufs;
    }

    /// One pull-mode light iteration: broadcast the frontier, scan local
    /// unsettled adjacency. All improvements are local — zero point-to-point
    /// update traffic.
    fn pull_iteration(&mut self, ctx: &mut RankCtx, k: usize, frontier: &[u32]) {
        let me = ctx.rank();
        let delta = self.delta;
        let graph = self.graph;
        let mine: Vec<(u64, f32)> = frontier
            .iter()
            .map(|&v| {
                (
                    graph.part().to_global(me, v as usize),
                    self.sp.dist[v as usize],
                )
            })
            .collect();
        let blocks = ctx.allgatherv(&mine);
        // Min-merge the per-rank frontier blocks in the (possibly fuzzed)
        // delivery order — the min makes the merge order-free.
        let order = ctx.delivery_order(blocks.len());
        let mut fmap: HashMap<u64, f32> = HashMap::new();
        for s in order {
            for &(v, d) in &blocks[s] {
                fmap.entry(v).and_modify(|e| *e = e.min(d)).or_insert(d);
            }
        }
        ctx.charge_compute(fmap.len() as u64);

        let bucket_floor = k as f32 * delta;
        let n_local = graph.local_vertices();
        ctx.trace_begin(TraceCode::TaskWave, n_local as u64, 0);
        // Parallel scan: each local vertex reads only the frozen frontier
        // map and its *own* distance slot, so vertices are independent. The
        // per-vertex improvement chain (running best + every strict-
        // improvement event, which must all reach the bucket queue — stale
        // entries drive the superstep count) is replayed sequentially in
        // `l` order below, reproducing the sequential schedule bitwise at
        // any thread count.
        let dist = &self.sp.dist;
        let mut per_l = std::mem::take(&mut self.pull_scratch);
        (0..n_local)
            .into_par_iter()
            .with_min_len(256)
            .map(|l| {
                if dist[l] < bucket_floor {
                    return (0, None); // settled in an earlier bucket
                }
                let mut scanned = 0u64;
                let mut dl = dist[l];
                let mut pl = u64::MAX;
                let mut events: Vec<f32> = Vec::new();
                let ts = graph.neighbors(l);
                let ws = graph.edge_weights(l);
                for (&t, &w) in ts.iter().zip(ws) {
                    scanned += 1;
                    if w >= delta {
                        continue;
                    }
                    if let Some(&fd) = fmap.get(&t) {
                        let cand = fd + w;
                        if cand < dl {
                            dl = cand;
                            pl = t;
                            events.push(cand);
                        }
                    }
                }
                let upd = (!events.is_empty()).then_some((dl, pl, events));
                (scanned, upd)
            })
            .collect_into_vec(&mut per_l);

        let mut scanned = 0u64;
        for (l, (s, upd)) in per_l.iter_mut().enumerate() {
            scanned += *s;
            if let Some((dl, pl, events)) = upd.take() {
                self.sp.dist[l] = dl;
                self.sp.parent[l] = pl;
                for cand in events {
                    self.buckets.insert(l as u32, cand);
                }
            }
        }
        self.pull_scratch = per_l;
        self.stats.relaxations += scanned;
        ctx.charge_compute(scanned);
        ctx.trace_end(TraceCode::TaskWave, n_local as u64, 0);
    }

    /// Heavy-edge phase: one push pass over the bucket's settled set.
    fn heavy_phase(&mut self, ctx: &mut RankCtx, settled: &[u32]) {
        let me = ctx.rank();
        let delta = self.delta;
        let graph = self.graph;
        let mut xbufs = std::mem::take(&mut self.xbufs);
        // Parallel candidate scan. Distances of settled vertices cannot
        // change during this phase (for settled u, du < (k+1)δ, and any
        // heavy relaxation delivers nd = du' + w ≥ kδ + δ, which `apply`
        // rejects against dist < (k+1)δ), so the scan reads a frozen view.
        // Candidates are re-walked sequentially in (source, arc) order
        // below, so local applies and per-destination buffers are byte-
        // identical to the sequential schedule at any thread count.
        ctx.trace_begin(TraceCode::TaskWave, settled.len() as u64, 1);
        let dist = &self.sp.dist;
        let mut per_chunk = std::mem::take(&mut self.heavy_scratch);
        settled
            .par_chunks(256)
            .map(|chunk| {
                let mut relaxed = 0u64;
                let mut cands: Vec<(u64, f32, u64, usize)> = Vec::new();
                for &u in chunk {
                    let du = dist[u as usize];
                    let u_global = graph.part().to_global(me, u as usize);
                    let vs = graph.neighbors(u as usize);
                    let ws = graph.edge_weights(u as usize);
                    for (&v, &w) in vs.iter().zip(ws) {
                        if w < delta {
                            continue;
                        }
                        relaxed += 1;
                        cands.push((v, du + w, u_global, graph.part().owner(v)));
                    }
                }
                (relaxed, cands)
            })
            .collect_into_vec(&mut per_chunk);

        let mut relaxed = 0u64;
        for (r, cands) in per_chunk.iter_mut() {
            relaxed += *r;
            for (v, nd, u_global, owner) in cands.drain(..) {
                if owner == me {
                    self.apply(v, nd, u_global);
                } else {
                    xbufs.bucket_mut(owner).push((v, nd, u_global));
                }
            }
        }
        self.heavy_scratch = per_chunk;
        self.stats.relaxations += relaxed;
        ctx.charge_compute(relaxed);
        ctx.trace_end(TraceCode::TaskWave, settled.len() as u64, 1);

        let outcome = exchange_into(ctx, &mut xbufs, &self.opts);
        self.stats.updates_sent += outcome.records_sent;
        self.stats.updates_offered += outcome.records_offered;
        ctx.charge_compute(xbufs.incoming().len() as u64);
        for &(v, nd, parent) in xbufs.incoming() {
            self.apply(v, nd, parent);
        }
        self.xbufs = xbufs;
    }

    /// Fused Bellman-Ford tail: once the global residue is tiny, bucket
    /// discipline only adds synchronization — drain everything and relax to
    /// fixpoint, all edge classes at once.
    fn fused_tail(&mut self, ctx: &mut RankCtx) {
        let me = ctx.rank();
        self.frontier_epoch += 1;
        let mut frontier: Vec<u32> = Vec::new();
        for v in self.buckets.drain_all() {
            if self.sp.dist[v as usize].is_finite()
                && self.frontier_seen[v as usize] != self.frontier_epoch
            {
                self.frontier_seen[v as usize] = self.frontier_epoch;
                frontier.push(v);
            }
        }

        let mut xbufs = std::mem::take(&mut self.xbufs);
        loop {
            let snap = self.ss_snapshot(ctx);
            ctx.trace_begin(TraceCode::Superstep, self.stats.supersteps, 2);
            let mut next: Vec<u32> = Vec::new();
            let mut relaxed = 0u64;
            let mut stack = std::mem::take(&mut frontier);
            self.frontier_epoch += 1;
            let graph = self.graph;
            while let Some(u) = stack.pop() {
                let du = self.sp.dist[u as usize];
                let u_global = graph.part().to_global(me, u as usize);
                let vs = graph.neighbors(u as usize);
                let ws = graph.edge_weights(u as usize);
                for (&v, &w) in vs.iter().zip(ws) {
                    relaxed += 1;
                    let nd = du + w;
                    let owner = graph.part().owner(v);
                    if owner == me {
                        let l = graph.part().to_local(v);
                        if nd < self.sp.dist[l] {
                            self.sp.dist[l] = nd;
                            self.sp.parent[l] = u_global;
                            // round-synchronous: defer to the next round.
                            // (an in-round LIFO cascade is label-correcting
                            // with worst-case re-relaxation blowup)
                            if self.frontier_seen[l] != self.frontier_epoch {
                                self.frontier_seen[l] = self.frontier_epoch;
                                next.push(l as u32);
                            }
                        }
                    } else {
                        xbufs.bucket_mut(owner).push((v, nd, u_global));
                    }
                }
            }
            self.stats.relaxations += relaxed;
            ctx.charge_compute(relaxed);

            let outcome = exchange_into(ctx, &mut xbufs, &self.opts);
            self.stats.updates_sent += outcome.records_sent;
            self.stats.updates_offered += outcome.records_offered;
            self.stats.supersteps += 1;
            ctx.charge_compute(xbufs.incoming().len() as u64);
            for &(v, nd, parent) in xbufs.incoming() {
                let l = self.graph.part().to_local(v);
                if nd < self.sp.dist[l] {
                    self.sp.dist[l] = nd;
                    self.sp.parent[l] = parent;
                    if self.frontier_seen[l] != self.frontier_epoch {
                        self.frontier_seen[l] = self.frontier_epoch;
                        next.push(l as u32);
                    }
                }
            }
            let remaining = ctx.allreduce_sum(next.len() as u64);
            frontier = next;
            self.ss_close(ctx, snap, 2);
            if remaining == 0 {
                break;
            }
        }
        self.xbufs = xbufs;
        // Buckets were drained; `drain_all` plus direct dist writes keep the
        // queue empty, so the outer loop terminates at the next allreduce.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g500_baselines::dijkstra;
    use g500_graph::{Csr, Directedness, EdgeList, ShortestPaths};
    use g500_partition::{assemble_local_graph, Block1D};
    use simnet::{Machine, MachineConfig};

    fn run_dist(
        el: &EdgeList,
        n: u64,
        p: usize,
        root: u64,
        opts: OptConfig,
    ) -> (ShortestPaths, SsspRunStats) {
        let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(n, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let (sp, stats) = distributed_delta_stepping(ctx, &g, root, &opts);
            (sp.gather_to_all(ctx, g.part()), stats)
        });
        rep.results.into_iter().next().expect("at least one rank")
    }

    fn exact(el: &EdgeList, n: usize, root: u64) -> ShortestPaths {
        let csr = Csr::from_edges(n, el, Directedness::Undirected);
        dijkstra(&csr, root)
    }

    #[test]
    fn all_on_matches_dijkstra_random() {
        let el = g500_gen::simple::erdos_renyi(64, 320, 13);
        let oracle = exact(&el, 64, 3);
        for p in [1, 2, 4] {
            let (sp, _) = run_dist(&el, 64, p, 3, OptConfig::all_on());
            assert!(sp.distances_match(&oracle, 1e-4), "p={p}");
        }
    }

    #[test]
    fn all_off_matches_dijkstra_random() {
        let el = g500_gen::simple::erdos_renyi(48, 200, 17);
        let oracle = exact(&el, 48, 0);
        let (sp, _) = run_dist(&el, 48, 3, 0, OptConfig::all_off());
        assert!(sp.distances_match(&oracle, 1e-4));
    }

    #[test]
    fn every_single_knob_off_still_exact() {
        let el = g500_gen::simple::erdos_renyi(56, 280, 23);
        let oracle = exact(&el, 56, 7);
        let configs = [
            OptConfig::all_on().without_coalescing(),
            OptConfig::all_on().without_dedup(),
            OptConfig::all_on().without_compression(),
            OptConfig::all_on().without_fusion(),
            OptConfig::all_on().with_direction(Direction::Push),
            OptConfig::all_on().with_direction(Direction::Pull),
        ];
        for (i, opts) in configs.into_iter().enumerate() {
            let (sp, _) = run_dist(&el, 56, 3, 7, opts);
            assert!(sp.distances_match(&oracle, 1e-4), "config {i}");
        }
    }

    #[test]
    fn kronecker_exactness() {
        let gen = g500_gen::KroneckerGenerator::new(g500_gen::KroneckerParams::graph500(8, 42));
        let el = gen.generate_all();
        let oracle = exact(&el, 256, 5);
        let (sp, stats) = run_dist(&el, 256, 4, 5, OptConfig::all_on());
        assert!(sp.distances_match(&oracle, 1e-4));
        assert!(stats.relaxations > 0);
        assert!(stats.supersteps > 0);
    }

    #[test]
    fn fixed_delta_values_all_exact() {
        let el = g500_gen::simple::erdos_renyi(40, 180, 29);
        let oracle = exact(&el, 40, 1);
        for delta in [0.02f32, 0.1, 0.5, 10.0] {
            let (sp, _) = run_dist(&el, 40, 2, 1, OptConfig::all_on().with_delta(delta));
            assert!(sp.distances_match(&oracle, 1e-4), "delta {delta}");
        }
    }

    #[test]
    fn disconnected_root_touches_only_component() {
        let el = g500_gen::simple::path(6, 0.4); // vertices 6..9 isolated
        let (sp, _) = run_dist(&el, 10, 2, 0, OptConfig::all_on());
        assert_eq!(sp.reached_count(), 6);
        assert!(sp.dist[7].is_infinite());
    }

    #[test]
    fn fusion_reduces_supersteps_on_paths() {
        // a long path is the worst case for bucket discipline; the fused
        // tail + cascade should cut the superstep count substantially
        let el = g500_gen::simple::path(64, 0.09);
        let (_, with) = run_dist(&el, 64, 2, 0, OptConfig::all_on());
        let (_, without) = run_dist(&el, 64, 2, 0, OptConfig::all_on().without_fusion());
        assert!(
            with.supersteps < without.supersteps,
            "fusion {} vs plain {}",
            with.supersteps,
            without.supersteps
        );
    }

    #[test]
    fn dedup_reduces_shipped_updates() {
        let gen = g500_gen::KroneckerGenerator::new(g500_gen::KroneckerParams::graph500(9, 4));
        let el = gen.generate_all();
        let (_, with) = run_dist(&el, 512, 4, 0, OptConfig::all_on());
        let (_, without) = run_dist(&el, 512, 4, 0, OptConfig::all_on().without_dedup());
        assert!(
            with.updates_sent <= without.updates_sent,
            "dedup shipped more: {} vs {}",
            with.updates_sent,
            without.updates_sent
        );
    }

    #[test]
    fn hybrid_uses_both_directions_on_dense_graph() {
        let el = g500_gen::simple::complete(40, 0.5);
        let (sp, stats) = run_dist(&el, 40, 2, 0, OptConfig::all_on());
        assert_eq!(sp.reached_count(), 40);
        assert!(stats.pull_iterations + stats.push_iterations > 0);
    }

    #[test]
    fn phase_records_when_requested() {
        let el = g500_gen::simple::erdos_renyi(32, 128, 3);
        let (_, stats) = run_dist(&el, 32, 2, 0, OptConfig::all_on().with_phases());
        assert!(!stats.phases.is_empty());
        let total: u64 = stats.phases.iter().map(|p| p.frontier).sum();
        assert!(total > 0);
    }

    #[test]
    fn root_on_last_rank() {
        let el = g500_gen::simple::cycle(15, 0.2);
        let oracle = exact(&el, 15, 14);
        let (sp, _) = run_dist(&el, 15, 4, 14, OptConfig::all_on());
        assert!(sp.distances_match(&oracle, 1e-4));
    }

    #[test]
    fn crash_recovery_is_byte_identical_to_fault_free() {
        let el = g500_gen::simple::erdos_renyi(64, 320, 13);
        let run = |crash: Option<simnet::CrashPlan>| {
            let mut cfg = MachineConfig::with_ranks(4);
            if let Some(plan) = crash {
                cfg = cfg.crashes(plan);
            }
            let el = &el;
            Machine::new(cfg).run(move |ctx| {
                let part = Block1D::new(64, 4);
                let m = el.len();
                let (lo, hi) = (ctx.rank() * m / 4, (ctx.rank() + 1) * m / 4);
                let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
                let g = assemble_local_graph(ctx, mine.into_iter(), part);
                let (sp, stats) = try_distributed_delta_stepping(ctx, &g, 3, &OptConfig::all_on())
                    .expect("in-budget crashes must be recovered");
                (sp.gather_to_all(ctx, g.part()), stats)
            })
        };
        let clean = run(None);
        let plan = simnet::CrashPlan::random(0xD1E, 0.01).with_checkpoint_interval(2);
        let crashed = run(Some(plan));
        assert!(
            crashed.total_stats().saw_crashes(),
            "the schedule must actually crash someone: {:?}",
            crashed.total_stats()
        );
        for (c, f) in clean.results.iter().zip(crashed.results.iter()) {
            let (csp, cst) = c;
            let (fsp, fst) = f;
            let cbits: Vec<u32> = csp.dist.iter().map(|d| d.to_bits()).collect();
            let fbits: Vec<u32> = fsp.dist.iter().map(|d| d.to_bits()).collect();
            assert_eq!(cbits, fbits, "distances must be byte-identical");
            assert_eq!(csp.parent, fsp.parent, "parents must be byte-identical");
            // structural counters are identical; only virtual time moves
            let strip = |s: &SsspRunStats| {
                let mut s = s.clone();
                s.sim_time_s = 0.0;
                s.compute_s = 0.0;
                s.comm_s = 0.0;
                s.phases.iter_mut().for_each(|p| {
                    p.compute_s = 0.0;
                    p.comm_s = 0.0;
                });
                s
            };
            assert_eq!(strip(cst), strip(fst));
        }
    }
}
