//! Optimization toggles for the distributed kernel.

use g500_graph::Weight;

/// Relaxation direction policy for the distributed kernel's inner loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Always push: active vertices send updates along out-edges.
    Push,
    /// Always pull: the frontier is broadcast and unsettled vertices scan
    /// their (symmetric) adjacency for frontier neighbors.
    Pull,
    /// Choose per inner iteration from frontier density (the
    /// direction-optimizing heuristic).
    Hybrid,
}

/// The optimization stack of the distributed delta-stepping kernel. Each
/// field is independently toggleable so experiments can ablate one at a
/// time; [`OptConfig::all_on`] is the paper configuration and
/// [`OptConfig::all_off`] the unoptimized strawman.
#[derive(Clone, Copy, Debug)]
pub struct OptConfig {
    /// Bucket width Δ. `None` selects adaptively from graph statistics.
    pub delta: Option<Weight>,
    /// Aggregate relaxation requests per destination rank (vs one message
    /// per request).
    pub coalescing: bool,
    /// Sort outgoing requests by target and ship only the min per target.
    pub dedup: bool,
    /// Gap+varint compression of the update payload.
    pub compression: bool,
    /// Local cascading within a bucket and fusing the sparse bucket tail.
    pub bucket_fusion: bool,
    /// Push/pull/hybrid relaxation.
    pub direction: Direction,
    /// When `bucket_fusion` is on: fuse the tail once the global active
    /// vertex count drops below `tail_threshold × ranks`.
    pub tail_threshold: u64,
    /// Hybrid heuristic: pull when frontier arcs exceed `1/pull_ratio` of
    /// the remaining unsettled arcs.
    pub pull_ratio: f64,
    /// Record per-bucket phase timings (for the breakdown figure; costs a
    /// little memory, no simulated time).
    pub record_phases: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        Self::all_on()
    }
}

impl OptConfig {
    /// The full optimization stack — the paper configuration.
    pub fn all_on() -> Self {
        Self {
            delta: None,
            coalescing: true,
            dedup: true,
            compression: true,
            bucket_fusion: true,
            direction: Direction::Hybrid,
            tail_threshold: 64,
            pull_ratio: 16.0,
            record_phases: false,
        }
    }

    /// Everything off: plain bulk-synchronous delta-stepping with naive
    /// messaging (one message per relaxation) and a fixed Δ.
    pub fn all_off() -> Self {
        Self {
            delta: Some(0.1),
            coalescing: false,
            dedup: false,
            compression: false,
            bucket_fusion: false,
            direction: Direction::Push,
            tail_threshold: 64,
            pull_ratio: 16.0,
            record_phases: false,
        }
    }

    /// Baseline for ablations: everything on except naive messaging is
    /// *not* usable at scale, so ablations start from `all_on` and disable
    /// one feature. These helpers return the config with one knob flipped.
    pub fn without_coalescing(mut self) -> Self {
        self.coalescing = false;
        self
    }

    /// Disable update deduplication.
    pub fn without_dedup(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Disable payload compression.
    pub fn without_compression(mut self) -> Self {
        self.compression = false;
        self
    }

    /// Disable bucket fusion.
    pub fn without_fusion(mut self) -> Self {
        self.bucket_fusion = false;
        self
    }

    /// Force a direction policy.
    pub fn with_direction(mut self, d: Direction) -> Self {
        self.direction = d;
        self
    }

    /// Fix Δ explicitly.
    pub fn with_delta(mut self, delta: Weight) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Enable per-bucket phase recording.
    pub fn with_phases(mut self) -> Self {
        self.record_phases = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ() {
        let on = OptConfig::all_on();
        let off = OptConfig::all_off();
        assert!(on.coalescing && !off.coalescing);
        assert!(on.compression && !off.compression);
        assert_eq!(off.direction, Direction::Push);
    }

    #[test]
    fn builders_flip_single_knobs() {
        let c = OptConfig::all_on().without_dedup();
        assert!(!c.dedup && c.coalescing && c.compression);
        let c = OptConfig::all_on().with_delta(0.25);
        assert_eq!(c.delta, Some(0.25));
        let c = OptConfig::all_on().with_direction(Direction::Pull);
        assert_eq!(c.direction, Direction::Pull);
    }
}
