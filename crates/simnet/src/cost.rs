//! The network/compute cost model that turns measured traffic into
//! simulated time.
//!
//! We use the LogGP family: a message of `n` bytes from `a` to `b` costs the
//! sender `o` (send overhead) and is available to the receiver at
//! `send_time + o + L·hops(a, b) + G·n`, where `hops` comes from the
//! interconnect [`Topology`]. Compute is charged at a flat rate of abstract
//! "operations" per second, where one operation ≈ one edge relaxation or one
//! vertex scan — the natural unit of graph kernels.
//!
//! The default constants approximate one rank = one node of a Sunway-class
//! system (µs-scale MPI latency, ~10 GB/s injection bandwidth, ~1 Gops/s of
//! irregular-memory graph work per rank). Absolute values are *models*, not
//! measurements; experiments report shapes and ratios, which are insensitive
//! to moderate constant changes (EXPERIMENTS.md discusses sensitivity).

/// Interconnect topologies, used to scale per-message latency by hop count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Full crossbar: every pair one hop. The idealised baseline.
    Crossbar,
    /// A fat tree with the given switch radix; ranks are leaves. Hops =
    /// 2 × (levels to the lowest common ancestor).
    FatTree {
        /// Switch radix (children per switch), ≥ 2.
        radix: u32,
    },
    /// A 2D torus of `w × h` ranks (rank r at `(r % w, r / w)`); hop count is
    /// the Manhattan distance with wraparound. Models the Sunway-style
    /// multi-dimensional interconnect where neighbor exchanges are cheap and
    /// bisection traffic is not.
    Torus2D {
        /// Torus width.
        w: u32,
        /// Torus height.
        h: u32,
    },
    /// Dragonfly-like: ranks in groups of `group`; 1 hop within a group,
    /// 3 hops across (local–global–local).
    Dragonfly {
        /// Ranks per group, ≥ 1.
        group: u32,
    },
}

impl Topology {
    /// Number of network hops between ranks `a` and `b`.
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        if a == b {
            return 0;
        }
        match *self {
            Topology::Crossbar => 1,
            Topology::FatTree { radix } => {
                let radix = radix.max(2) as u64;
                let (mut x, mut y) = (a as u64, b as u64);
                let mut level = 0;
                while x != y {
                    x /= radix;
                    y /= radix;
                    level += 1;
                }
                2 * level
            }
            Topology::Torus2D { w, h } => {
                let (w, h) = (w.max(1) as u64, h.max(1) as u64);
                let (ax, ay) = (a as u64 % w, (a as u64 / w) % h);
                let (bx, by) = (b as u64 % w, (b as u64 / w) % h);
                let dx = ax.abs_diff(bx).min(w - ax.abs_diff(bx));
                let dy = ay.abs_diff(by).min(h - ay.abs_diff(by));
                (dx + dy).max(1) as u32
            }
            Topology::Dragonfly { group } => {
                let g = group.max(1) as usize;
                if a / g == b / g {
                    1
                } else {
                    3
                }
            }
        }
    }
}

/// LogGP-style per-message cost parameters (seconds / seconds-per-byte).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogGP {
    /// Per-hop wire latency (s).
    pub latency: f64,
    /// CPU overhead per message at each end (s).
    pub overhead: f64,
    /// Time per payload byte (s), i.e. 1 / bandwidth.
    pub per_byte: f64,
}

impl Default for LogGP {
    fn default() -> Self {
        Self {
            latency: 1.0e-6,        // 1 µs per hop
            overhead: 0.5e-6,       // 0.5 µs send/recv CPU cost
            per_byte: 1.0 / 10.0e9, // 10 GB/s injection bandwidth
        }
    }
}

impl LogGP {
    /// Time from send call to the payload being deliverable, over `hops`.
    #[inline]
    pub fn transit(&self, bytes: usize, hops: u32) -> f64 {
        self.latency * hops as f64 + self.per_byte * bytes as f64
    }
}

/// Per-rank compute throughput model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComputeModel {
    /// Abstract graph operations (edge relaxations, vertex scans) per second.
    pub ops_per_sec: f64,
}

impl Default for ComputeModel {
    fn default() -> Self {
        Self { ops_per_sec: 1.0e9 }
    }
}

impl ComputeModel {
    /// Seconds charged for `ops` operations.
    #[inline]
    pub fn seconds(&self, ops: u64) -> f64 {
        ops as f64 / self.ops_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_hops() {
        let t = Topology::Crossbar;
        assert_eq!(t.hops(3, 3), 0);
        assert_eq!(t.hops(0, 63), 1);
    }

    #[test]
    fn fat_tree_hops_grow_with_distance() {
        let t = Topology::FatTree { radix: 4 };
        assert_eq!(t.hops(0, 1), 2); // same leaf switch
        assert_eq!(t.hops(0, 4), 4); // one level up
        assert_eq!(t.hops(0, 16), 6);
        assert_eq!(t.hops(5, 5), 0);
    }

    #[test]
    fn torus_wraps_around() {
        let t = Topology::Torus2D { w: 4, h: 4 };
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(0, 3), 1); // wraparound x
        assert_eq!(t.hops(0, 12), 1); // wraparound y
        assert_eq!(t.hops(0, 5), 2); // diagonal
        assert_eq!(t.hops(0, 10), 4); // opposite corner: 2 + 2
    }

    #[test]
    fn dragonfly_local_vs_global() {
        let t = Topology::Dragonfly { group: 8 };
        assert_eq!(t.hops(0, 7), 1);
        assert_eq!(t.hops(0, 8), 3);
    }

    #[test]
    fn loggp_transit_scales() {
        let m = LogGP {
            latency: 1e-6,
            overhead: 0.0,
            per_byte: 1e-9,
        };
        assert!((m.transit(0, 1) - 1e-6).abs() < 1e-15);
        assert!((m.transit(1000, 2) - (2e-6 + 1e-6)).abs() < 1e-15);
    }

    #[test]
    fn compute_seconds() {
        let c = ComputeModel { ops_per_sec: 1e9 };
        assert!((c.seconds(1_000_000_000) - 1.0).abs() < 1e-12);
    }
}
