//! The relaxation-update message codec.
//!
//! An update is `(target vertex, new distance, parent)` — 20 raw bytes. At
//! benchmark scale the exchange volume is the dominant network load, so the
//! optimized kernel ships updates sorted by target with gap+varint coded
//! ids and varint parents (distances stay raw `f32`: Graph500 weights are
//! uniform random, there is no entropy to remove). Sortedness comes for
//! free from the dedup ("on-chip sort") stage. Experiment F6 measures the
//! achieved ratio.

use g500_graph::compress::{read_varint, write_varint};

/// One relaxation request: (global target, tentative distance, global parent).
pub type Update = (u64, f32, u64);

/// Encode updates. If `sorted_by_target` is false the slice is copied and
/// sorted first (the format requires non-decreasing targets).
pub fn encode_updates(updates: &[Update], sorted_by_target: bool) -> Vec<u8> {
    let mut storage;
    let updates = if sorted_by_target || updates.windows(2).all(|w| w[0].0 <= w[1].0) {
        updates
    } else {
        storage = updates.to_vec();
        storage.sort_unstable_by_key(|u| u.0);
        &storage[..]
    };
    let mut out = Vec::with_capacity(4 + updates.len() * 10);
    write_varint(&mut out, updates.len() as u64);
    let mut prev = 0u64;
    for &(t, _, _) in updates {
        write_varint(&mut out, t - prev);
        prev = t;
    }
    for &(_, d, _) in updates {
        out.extend_from_slice(&d.to_le_bytes());
    }
    for &(_, _, p) in updates {
        write_varint(&mut out, p);
    }
    out
}

/// Decode a buffer produced by [`encode_updates`]. `None` on malformed
/// input.
pub fn decode_updates(buf: &[u8]) -> Option<Vec<Update>> {
    let mut pos = 0;
    let n = read_varint(buf, &mut pos)? as usize;
    let mut targets = Vec::with_capacity(n);
    let mut prev = 0u64;
    for _ in 0..n {
        prev = prev.checked_add(read_varint(buf, &mut pos)?)?;
        targets.push(prev);
    }
    let mut dists = Vec::with_capacity(n);
    for _ in 0..n {
        let end = pos.checked_add(4)?;
        let bytes = buf.get(pos..end)?;
        dists.push(f32::from_le_bytes(bytes.try_into().ok()?));
        pos = end;
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let p = read_varint(buf, &mut pos)?;
        out.push((targets[i], dists[i], p));
    }
    if pos == buf.len() {
        Some(out)
    } else {
        None
    }
}

/// Sort by target and keep the minimum-distance update per target — the
/// "on-chip sort" dedup stage. Returns the number of records eliminated.
pub fn dedup_min(updates: &mut Vec<Update>) -> usize {
    if updates.len() <= 1 {
        return 0;
    }
    updates.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let before = updates.len();
    updates.dedup_by_key(|u| u.0); // keeps the first = min distance
    before - updates.len()
}

/// One lane-tagged relaxation request of the batched kernel:
/// (lane index, global target, tentative distance, global parent).
pub type TaggedUpdate = (u32, u64, f32, u64);

/// The canonical total order of tagged updates: lane, then target, then
/// distance, then parent. Dedup and the compressed wire format both sort
/// by this *full* key, so the bytes shipped (and the post-dedup apply
/// order) are a pure function of the update *set* — independent of the
/// emission interleave, which is what makes a lane inside a width-B batch
/// bitwise identical to the same lane in a width-1 batch.
#[inline]
fn tagged_key(a: &TaggedUpdate, b: &TaggedUpdate) -> std::cmp::Ordering {
    (a.0, a.1)
        .cmp(&(b.0, b.1))
        .then(a.2.total_cmp(&b.2))
        .then(a.3.cmp(&b.3))
}

/// Sort by the canonical key and keep the minimum (distance, parent) per
/// (lane, target). Returns the number of records eliminated.
pub fn dedup_min_tagged(updates: &mut Vec<TaggedUpdate>) -> usize {
    if updates.len() <= 1 {
        return 0;
    }
    updates.sort_unstable_by(tagged_key);
    let before = updates.len();
    updates.dedup_by_key(|u| (u.0, u.1)); // keeps the first = min
    before - updates.len()
}

/// Encode tagged updates: lane-grouped, each group a gap+varint target
/// block exactly like [`encode_updates`]. If `sorted` is false the slice
/// is copied and sorted by the canonical key first (the format requires
/// lane-major, non-decreasing targets within a lane).
pub fn encode_tagged(updates: &[TaggedUpdate], sorted: bool) -> Vec<u8> {
    let mut storage;
    let updates = if sorted
        || updates
            .windows(2)
            .all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1))
    {
        updates
    } else {
        storage = updates.to_vec();
        storage.sort_unstable_by(tagged_key);
        &storage[..]
    };
    let mut out = Vec::with_capacity(8 + updates.len() * 11);
    // count the lane groups first (one linear pass over the lane column)
    let groups = updates
        .iter()
        .enumerate()
        .filter(|(i, u)| *i == 0 || updates[i - 1].0 != u.0)
        .count();
    write_varint(&mut out, groups as u64);
    let mut i = 0usize;
    while i < updates.len() {
        let lane = updates[i].0;
        let j = updates[i..]
            .iter()
            .position(|u| u.0 != lane)
            .map_or(updates.len(), |off| i + off);
        let group = &updates[i..j];
        write_varint(&mut out, lane as u64);
        write_varint(&mut out, group.len() as u64);
        let mut prev = 0u64;
        for &(_, t, _, _) in group {
            write_varint(&mut out, t - prev);
            prev = t;
        }
        for &(_, _, d, _) in group {
            out.extend_from_slice(&d.to_le_bytes());
        }
        for &(_, _, _, p) in group {
            write_varint(&mut out, p);
        }
        i = j;
    }
    out
}

/// Decode a buffer produced by [`encode_tagged`]. `None` on malformed
/// input.
pub fn decode_tagged(buf: &[u8]) -> Option<Vec<TaggedUpdate>> {
    let mut pos = 0;
    let groups = read_varint(buf, &mut pos)?;
    let mut out = Vec::new();
    for _ in 0..groups {
        let lane = u32::try_from(read_varint(buf, &mut pos)?).ok()?;
        let n = read_varint(buf, &mut pos)? as usize;
        let base = out.len();
        let mut prev = 0u64;
        for _ in 0..n {
            prev = prev.checked_add(read_varint(buf, &mut pos)?)?;
            out.push((lane, prev, 0.0f32, 0u64));
        }
        for i in 0..n {
            let end = pos.checked_add(4)?;
            let bytes = buf.get(pos..end)?;
            out[base + i].2 = f32::from_le_bytes(bytes.try_into().ok()?);
            pos = end;
        }
        for i in 0..n {
            out[base + i].3 = read_varint(buf, &mut pos)?;
        }
    }
    if pos == buf.len() {
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Update> {
        vec![(5, 0.5, 100), (7, 0.25, 2), (7, 0.75, 3), (1000, 1.5, 999)]
    }

    #[test]
    fn roundtrip_sorted() {
        let u = sample();
        let enc = encode_updates(&u, true);
        assert_eq!(decode_updates(&enc), Some(u));
    }

    #[test]
    fn roundtrip_unsorted_gets_sorted() {
        let mut u = sample();
        u.reverse();
        let enc = encode_updates(&u, false);
        let dec = decode_updates(&enc).unwrap();
        assert!(dec.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(dec.len(), 4);
    }

    #[test]
    fn empty_roundtrip() {
        let enc = encode_updates(&[], true);
        assert_eq!(decode_updates(&enc), Some(vec![]));
    }

    #[test]
    fn compression_beats_raw_on_clustered_targets() {
        // targets in one rank's contiguous range — the realistic case
        let updates: Vec<Update> = (0..1000u64)
            .map(|i| (100_000 + i * 3, 0.5, 77_000 + i))
            .collect();
        let enc = encode_updates(&updates, true);
        let raw = updates.len() * 20;
        assert!(
            enc.len() * 3 < raw * 2,
            "ratio only {:.2}",
            raw as f64 / enc.len() as f64
        );
    }

    #[test]
    fn truncated_rejected() {
        let enc = encode_updates(&sample(), true);
        assert_eq!(decode_updates(&enc[..enc.len() - 1]), None);
        assert_eq!(decode_updates(&[]), None);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc = encode_updates(&sample(), true);
        enc.push(0);
        assert_eq!(decode_updates(&enc), None);
    }

    #[test]
    fn dedup_keeps_min_per_target() {
        let mut u = vec![
            (7u64, 0.75f32, 3u64),
            (5, 0.5, 100),
            (7, 0.25, 2),
            (7, 0.9, 4),
        ];
        let removed = dedup_min(&mut u);
        assert_eq!(removed, 2);
        assert_eq!(u, vec![(5, 0.5, 100), (7, 0.25, 2)]);
    }

    #[test]
    fn dedup_noop_on_unique_targets() {
        let mut u = vec![(1u64, 0.1f32, 0u64), (2, 0.2, 0)];
        assert_eq!(dedup_min(&mut u), 0);
        assert_eq!(u.len(), 2);
    }

    fn tagged_sample() -> Vec<TaggedUpdate> {
        vec![
            (0, 5, 0.5, 100),
            (0, 900, 1.5, 3),
            (2, 5, 0.25, 7),
            (2, 6, 0.75, 7),
            (7, 0, 0.0, 0),
        ]
    }

    #[test]
    fn tagged_roundtrip_sorted() {
        let u = tagged_sample();
        let enc = encode_tagged(&u, true);
        assert_eq!(decode_tagged(&enc), Some(u));
    }

    #[test]
    fn tagged_roundtrip_unsorted_gets_canonical() {
        let mut u = tagged_sample();
        u.reverse();
        let enc = encode_tagged(&u, false);
        assert_eq!(decode_tagged(&enc), Some(tagged_sample()));
    }

    #[test]
    fn tagged_empty_and_truncated() {
        let enc = encode_tagged(&[], true);
        assert_eq!(decode_tagged(&enc), Some(vec![]));
        let enc = encode_tagged(&tagged_sample(), true);
        assert_eq!(decode_tagged(&enc[..enc.len() - 1]), None);
        let mut garbled = enc.clone();
        garbled.push(0);
        assert_eq!(decode_tagged(&garbled), None);
    }

    #[test]
    fn tagged_dedup_is_input_order_independent() {
        // same multiset, two emission orders: identical survivor list
        let mut a = vec![
            (1u32, 9u64, 0.5f32, 4u64),
            (1, 9, 0.5, 2),
            (0, 9, 0.5, 8),
            (1, 9, 0.25, 6),
        ];
        let mut b = a.clone();
        b.reverse();
        dedup_min_tagged(&mut a);
        dedup_min_tagged(&mut b);
        assert_eq!(a, b);
        assert_eq!(a, vec![(0, 9, 0.5, 8), (1, 9, 0.25, 6)]);
    }

    #[test]
    fn tagged_grouping_compresses_shared_lanes() {
        let updates: Vec<TaggedUpdate> = (0..1000u64)
            .map(|i| ((i % 4) as u32, 100_000 + (i / 4) * 3, 0.5, 77_000 + i))
            .collect();
        let mut sorted = updates.clone();
        sorted.sort_unstable_by(tagged_key);
        let enc = encode_tagged(&sorted, true);
        let raw = updates.len() * 24;
        assert!(
            enc.len() * 3 < raw * 2,
            "ratio only {:.2}",
            raw as f64 / enc.len() as f64
        );
    }
}
