//! Crash-fault tolerance acceptance: seeded rank crashes recovered through
//! superstep-boundary checkpoints must be *invisible* in the results.
//!
//! The contract mirrors the link-fault one: with the same generator and
//! scheduler seeds, ANY crash schedule that stays within the recovery
//! budget (and never kills a rank together with its checkpoint buddy)
//! yields byte-identical distances, parents, and kernel counters to the
//! fault-free run — only virtual time and the crash/recovery counters in
//! NetStats move. Out-of-budget schedules end in a typed
//! [`FaultEscalation`], never a panic.

use std::process::Command;

use graph500::gen::{KroneckerGenerator, KroneckerParams};
use graph500::partition::{assemble_local_graph, Block1D};
use graph500::simnet::{Machine, MachineConfig, SchedMode};
use graph500::sssp::{try_batched_delta_stepping, BatchSpec, Grid2DSssp, OptConfig};
use graph500::validate::{validate_sssp, SsspResult};
use graph500::{
    run_sssp_benchmark, try_run_sssp_benchmark, BenchmarkConfig, CrashPlan, FaultEscalation,
};

// ---------- shared helpers ----------

fn run_1d(
    scale: u32,
    ranks: usize,
    sched: Option<u64>,
    crash: CrashPlan,
) -> graph500::BenchmarkReport {
    let mut cfg = BenchmarkConfig::quick(scale, ranks).crashes(crash);
    if let Some(seed) = sched {
        cfg = cfg.deterministic(seed);
    }
    cfg.keep_paths = true;
    run_sssp_benchmark(&cfg)
}

/// Distances, parents, and every discrete kernel counter must be bitwise
/// equal; virtual time legitimately moves (detection timeouts, respawn,
/// checkpoint traffic, replayed supersteps all cost simulated seconds).
fn assert_same_outputs(clean: &graph500::BenchmarkReport, crashy: &graph500::BenchmarkReport) {
    assert!(clean.all_validated() && crashy.all_validated());
    assert_eq!(clean.runs.len(), crashy.runs.len());
    for (a, b) in clean.runs.iter().zip(&crashy.runs) {
        assert_eq!(a.root, b.root);
        assert_eq!(a.traversed_edges, b.traversed_edges);
        let strip_time = |s: &graph500::sssp::SsspRunStats| {
            let mut s = s.clone();
            s.sim_time_s = 0.0;
            s.compute_s = 0.0;
            s.comm_s = 0.0;
            s.phases.clear();
            s
        };
        assert_eq!(
            strip_time(&a.stats),
            strip_time(&b.stats),
            "kernel counters moved under crashes (root {})",
            a.root
        );
        let (pa, pb) = (
            a.paths.as_ref().expect("kept"),
            b.paths.as_ref().expect("kept"),
        );
        for v in 0..pa.dist.len() {
            assert_eq!(
                pa.dist[v].to_bits(),
                pb.dist[v].to_bits(),
                "root {}: distance moved at vertex {v}",
                a.root
            );
        }
        assert_eq!(pa.parent, pb.parent, "root {}: parents moved", a.root);
    }
}

// ---------- byte-identity at scale 10, all three kernels ----------

/// 1D acceptance: a seeded random crash schedule is byte-identical to the
/// fault-free run under both schedulers, and the schedule provably fired.
#[test]
fn scale10_1d_crashy_matches_fault_free_both_schedulers() {
    // Seed chosen so the schedule crashes at least one rank per benchmark
    // run without ever killing a buddy pair (the schedule is a pure
    // function of (seed, rate, probe sequence), so this is stable).
    let plan = CrashPlan::random(1, 0.004)
        .with_checkpoint_interval(3)
        .with_recovery_budget(64);
    for sched in [None, Some(0)] {
        let clean = run_1d(10, 8, sched, CrashPlan::none());
        let crashy = run_1d(10, 8, sched, plan);
        assert_same_outputs(&clean, &crashy);
        assert!(
            crashy.net.crashes > 0 && crashy.net.restores > 0,
            "crash schedule never fired ({sched:?}): {:?}",
            crashy.net
        );
        assert!(crashy.net.replayed_supersteps > 0, "{:?}", crashy.net);
        assert_eq!(clean.net.crashes, 0, "clean run saw crashes");
        assert_eq!(clean.net.checkpoints, 0, "inactive plan took checkpoints");
    }
}

/// 2D acceptance: the grid kernel recovers forced crash windows and stays
/// byte-identical, under both schedulers.
#[test]
fn scale10_2d_crashy_matches_fault_free_both_schedulers() {
    let gen = KroneckerGenerator::new(KroneckerParams::graph500(10, 20220814));
    let el = gen.generate_all();
    let n = 1u64 << 10;
    let p = 4usize;
    let root = {
        let mut has_edge = vec![false; n as usize];
        for e in el.iter() {
            has_edge[e.u as usize] = true;
            has_edge[e.v as usize] = true;
        }
        (0..n).find(|&v| has_edge[v as usize]).expect("nonempty")
    };
    let run = |sched: SchedMode, crash: CrashPlan| {
        let cfg = MachineConfig::with_ranks(p).sched(sched).crashes(crash);
        let report = Machine::new(cfg).run(|ctx| {
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine = (lo..hi).map(|i| el.get(i));
            let mut g = Grid2DSssp::build(ctx, n, mine, 0.25);
            let stats = g.run(ctx, root);
            (g.gather(ctx), stats)
        });
        let net = report.total_stats();
        let (sp, stats) = report.results.into_iter().next().expect("rank 0");
        (sp, stats, net)
    };
    // Forced windows make the schedule explicit: two separated crashes,
    // never a buddy pair.
    let plan = CrashPlan::none()
        .with_forced(1, 2)
        .with_forced(3, 7)
        .with_checkpoint_interval(2);
    for sched in [SchedMode::Threads, SchedMode::Deterministic { seed: 0 }] {
        let (sp_c, st_c, net_c) = run(sched, CrashPlan::none());
        let (sp_f, st_f, net_f) = run(sched, plan);
        assert_eq!(st_c, st_f, "2D kernel counters moved under crashes");
        for v in 0..n as usize {
            assert_eq!(
                sp_c.dist[v].to_bits(),
                sp_f.dist[v].to_bits(),
                "distance moved at {v}"
            );
        }
        assert_eq!(sp_c.parent, sp_f.parent, "parents moved under crashes");
        assert_eq!(net_f.crashes, 2, "{net_f:?}");
        assert!(net_f.restores >= 2, "{net_f:?}");
        assert_eq!(net_c.crashes, 0);
        let res = SsspResult {
            root,
            dist: sp_f.dist.clone(),
            parent: sp_f.parent.clone(),
        };
        assert!(validate_sssp(n, &el, &res).ok);
    }
}

/// Batched acceptance: the multi-lane kernel (full + point-to-point lanes,
/// early retirement and all) recovers crashes byte-identically.
#[test]
fn scale10_batched_crashy_matches_fault_free() {
    let gen = KroneckerGenerator::new(KroneckerParams::graph500(10, 20220814));
    let el = gen.generate_all();
    let n = 1u64 << 10;
    let p = 4usize;
    let specs = [
        BatchSpec::full(1),
        BatchSpec::p2p(3, 200),
        BatchSpec::full(5),
        BatchSpec::p2p(7, 11).with_bound(6.0),
    ];
    let run = |crash: CrashPlan| {
        let cfg = MachineConfig::with_ranks(p).deterministic(0).crashes(crash);
        let report = Machine::new(cfg).run(|ctx| {
            let part = Block1D::new(n, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let opts = OptConfig::all_on().with_delta(0.25);
            let (md, st) = try_batched_delta_stepping(ctx, &g, &specs, &opts).expect("in budget");
            (md, st)
        });
        let net = report.total_stats();
        let (md, st) = report.results.into_iter().next().expect("rank 0");
        (md, st, net)
    };
    let plan = CrashPlan::none()
        .with_forced(0, 3)
        .with_forced(2, 9)
        .with_checkpoint_interval(2);
    let (md_c, st_c, net_c) = run(CrashPlan::none());
    let (md_f, st_f, net_f) = run(plan);
    assert_eq!(st_c, st_f, "batched kernel counters moved under crashes");
    assert_eq!(md_c.dist.len(), md_f.dist.len());
    for i in 0..md_c.dist.len() {
        assert_eq!(md_c.dist[i].to_bits(), md_f.dist[i].to_bits(), "slot {i}");
    }
    assert_eq!(md_c.parent, md_f.parent);
    assert_eq!(md_c.early_exit, md_f.early_exit);
    for s in 0..specs.len() {
        assert_eq!(
            md_c.target_dist[s].to_bits(),
            md_f.target_dist[s].to_bits(),
            "lane {s} target distance moved"
        );
    }
    assert_eq!(md_c.target_parent, md_f.target_parent);
    assert_eq!(net_f.crashes, 2, "{net_f:?}");
    assert!(
        net_f.restores >= 2 && net_f.replayed_supersteps > 0,
        "{net_f:?}"
    );
    assert_eq!(net_c.crashes, 0);
}

// ---------- crash during a collective ----------

/// A forced crash fires at the very first probe after the epoch-0
/// checkpoint, so every survivor is already blocked inside the agreement
/// collective when the victim dies: detection must deliver the identical
/// verdict to all of them mid-collective and the run must still match the
/// fault-free one.
#[test]
fn crash_during_first_collective_recovers() {
    let plan = CrashPlan::none()
        .with_forced(2, 0)
        .with_checkpoint_interval(1);
    for sched in [None, Some(0)] {
        let clean = run_1d(8, 4, sched, CrashPlan::none());
        let crashy = run_1d(8, 4, sched, plan);
        assert_same_outputs(&clean, &crashy);
        // one forced window per benchmark root (the draw counter restarts
        // with each Machine::run kernel invocation)
        assert!(crashy.net.crashes > 0, "{:?}", crashy.net);
        assert!(crashy.net.restores > 0, "{:?}", crashy.net);
    }
}

// ---------- unrecoverable schedules: typed errors, never panics ----------

/// A rank dying in the same window as its checkpoint buddy makes the
/// snapshot unrecoverable: the job must end with `CheckpointLost` on every
/// rank, not hang and not panic.
#[test]
fn buddy_pair_crash_is_checkpoint_lost() {
    // Buddy of rank 1 is rank 2 (of 4): kill both at the same probe.
    let plan = CrashPlan::none()
        .with_forced(1, 1)
        .with_forced(2, 1)
        .with_checkpoint_interval(2);
    for sched in [None, Some(0)] {
        let mut cfg = BenchmarkConfig::quick(8, 4).crashes(plan);
        if let Some(seed) = sched {
            cfg = cfg.deterministic(seed);
        }
        match try_run_sssp_benchmark(&cfg) {
            Err(FaultEscalation::CheckpointLost { rank, buddy }) => {
                assert_eq!((rank, buddy), (1, 2), "wrong pair reported ({sched:?})");
            }
            other => panic!("expected CheckpointLost, got {other:?} ({sched:?})"),
        }
    }
}

/// More crashes than the budget allows ends in `RecoveryBudgetExhausted`
/// carrying the budget and the epoch — identically under both schedulers,
/// and with the diagnosable message text preserved in `Display`.
#[test]
fn budget_exhaustion_is_typed_error_both_schedulers() {
    let plan = CrashPlan::random(0xEE, 1.0)
        .with_recovery_budget(1)
        .with_checkpoint_interval(2);
    for sched in [None, Some(0)] {
        let mut cfg = BenchmarkConfig::quick(8, 2).crashes(plan);
        if let Some(seed) = sched {
            cfg = cfg.deterministic(seed);
        }
        match try_run_sssp_benchmark(&cfg) {
            Err(e @ FaultEscalation::RecoveryBudgetExhausted { budget, .. }) => {
                assert_eq!(budget, 1);
                let msg = e.to_string();
                assert!(
                    msg.contains("recovery budget exhausted"),
                    "lost the diagnosable message: {msg}"
                );
            }
            other => panic!("expected RecoveryBudgetExhausted, got {other:?} ({sched:?})"),
        }
    }
}

// ---------- cross-process, cross-thread-count JSON identity ----------

fn run_normalized(threads: usize, args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_g500"))
        .args(args)
        .env("G500_THREADS", threads.to_string())
        .output()
        .expect("spawn g500");
    assert!(
        out.status.success(),
        "g500 {:?} failed under {} threads: {}",
        args,
        threads,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("utf8 json")
        .lines()
        .filter(|l| !l.contains("wall_time_s") && !l.contains("\"threads\""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The crash schedule is keyed to (seed, rank, probe index) — never to
/// host threads — so a crashy run's whole JSON report (distances, crash
/// counters, virtual times) is bitwise identical at any `G500_THREADS`.
#[test]
fn crashy_sssp_json_is_bitwise_identical_across_thread_counts() {
    let args = [
        "sssp",
        "--scale",
        "9",
        "--ranks",
        "4",
        "--roots",
        "4",
        "--deterministic",
        "--crash-seed",
        "49407",
        "--crash-rate",
        "0.002",
        "--checkpoint-interval",
        "3",
        "--recovery-budget",
        "64",
        "--json",
    ];
    let one = run_normalized(1, &args);
    let four = run_normalized(4, &args);
    assert!(!one.is_empty(), "empty JSON");
    assert_eq!(
        one, four,
        "crashy g500 output differs between G500_THREADS=1 and =4"
    );
    // and the run really did crash and recover
    assert!(
        one.contains("\"crash\":"),
        "report lost the crash plan echo"
    );
    assert!(
        one.contains("\"crashes\":") && !one.contains("\"crashes\": 0,"),
        "crash schedule never fired:\n{one}"
    );
}

/// A serve run whose every window is unrecoverable (rate 1.0 kills each
/// rank together with its buddy) must exit 0 with a shed-query report —
/// the acceptance criterion "never a panic".
#[test]
fn unrecoverable_serve_run_sheds_and_exits_cleanly() {
    let out = Command::new(env!("CARGO_BIN_EXE_g500"))
        .args([
            "serve",
            "--scale",
            "8",
            "--ranks",
            "2",
            "--queries",
            "6",
            "--batch",
            "3",
            "--landmarks",
            "0",
            "--lru",
            "0",
            "--crash-rate",
            "1.0",
            "--crash-seed",
            "3",
            "--json",
        ])
        .output()
        .expect("spawn g500");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "crashed serve run must degrade, not fail: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "panic leaked: {stderr}");
    let json = String::from_utf8(out.stdout).expect("utf8 json");
    assert!(
        json.contains("\"queries_shed\": 6"),
        "all six queries should be shed:\n{json}"
    );
}

/// Landmark precompute has no query stream to degrade onto: with landmarks
/// requested and an unrecoverable schedule, `serve` must exit 1 with the
/// typed error on stderr — still never a panic.
#[test]
fn unrecoverable_landmark_precompute_is_a_clean_cli_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_g500"))
        .args([
            "serve",
            "--scale",
            "8",
            "--ranks",
            "2",
            "--queries",
            "4",
            "--landmarks",
            "2",
            "--crash-rate",
            "1.0",
        ])
        .output()
        .expect("spawn g500");
    assert!(!out.status.success(), "precompute cannot have succeeded");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "panic leaked: {stderr}");
    assert!(
        stderr.contains("checkpoint lost") || stderr.contains("recovery budget exhausted"),
        "expected a typed recovery error on stderr, got: {stderr}"
    );
}
