//! Distributed Bellman-Ford: the naive distributed SSSP baseline.
//!
//! One superstep per relaxation round: every rank relaxes the out-edges of
//! its active vertices, ships `(target, dist, parent)` updates to the
//! targets' owners in a single all-to-all, applies what it receives, and
//! repeats until a global reduction says no distance changed. No buckets,
//! no priorities — every improvement propagates immediately, so deep light
//! paths are re-relaxed many times and the superstep count equals the
//! weighted-hop diameter. This is the comparison point that makes the
//! optimized delta-stepping kernel's wins legible (experiment F9).

use g500_graph::VertexId;
use g500_partition::{DistShortestPaths, LocalGraph, VertexPartition};
use simnet::RankCtx;

/// Per-relaxation update record: (global target, new distance, parent).
type Update = (u64, f32, u64);

/// Run distributed Bellman-Ford from `root`. Must be called collectively;
/// returns this rank's slice of the result plus the superstep count.
pub fn distributed_bellman_ford<P: VertexPartition>(
    ctx: &mut RankCtx,
    graph: &LocalGraph<P>,
    root: VertexId,
) -> (DistShortestPaths, u64) {
    let part = graph.part().clone();
    let me = ctx.rank();
    let p = ctx.size();
    let n_local = graph.local_vertices();
    let mut sp = DistShortestPaths::unreached(n_local);

    let mut frontier: Vec<usize> = Vec::new();
    if part.owner(root) == me {
        let l = part.to_local(root);
        sp.dist[l] = 0.0;
        sp.parent[l] = root;
        frontier.push(l);
    }

    let mut supersteps = 0u64;
    loop {
        // Relax the local frontier, bucketing updates by target owner.
        let mut out: Vec<Vec<Update>> = vec![Vec::new(); p];
        let mut relaxed = 0u64;
        for &l in &frontier {
            let du = sp.dist[l];
            let u_global = part.to_global(me, l);
            for (v, w) in graph.arcs(l) {
                out[part.owner(v)].push((v, du + w, u_global));
                relaxed += 1;
            }
        }
        ctx.charge_compute(relaxed);

        // Global termination check on the *intended* sends: if no rank has
        // anything to relax, we are done.
        let outgoing: u64 = out.iter().map(|b| b.len() as u64).sum();
        if ctx.allreduce_sum(outgoing) == 0 {
            break;
        }

        let incoming = ctx.alltoallv(out);

        // Apply updates; improved vertices form the next frontier.
        frontier.clear();
        let mut in_frontier = vec![false; n_local];
        let mut applied = 0u64;
        for block in incoming {
            for (v, nd, parent) in block {
                debug_assert_eq!(part.owner(v), me, "misrouted update");
                let l = part.to_local(v);
                if nd < sp.dist[l] {
                    sp.dist[l] = nd;
                    sp.parent[l] = parent;
                    if !in_frontier[l] {
                        in_frontier[l] = true;
                        frontier.push(l);
                    }
                }
                applied += 1;
            }
        }
        ctx.charge_compute(applied);
        supersteps += 1;
    }
    (sp, supersteps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use g500_graph::{Csr, Directedness, EdgeList};
    use g500_partition::{assemble_local_graph, Block1D};
    use simnet::{Machine, MachineConfig};

    fn run_distributed(
        el: &EdgeList,
        n: u64,
        p: usize,
        root: u64,
    ) -> Vec<(g500_graph::ShortestPaths, u64)> {
        Machine::new(MachineConfig::with_ranks(p))
            .run(|ctx| {
                let part = Block1D::new(n, p);
                let m = el.len();
                let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
                let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
                let g = assemble_local_graph(ctx, mine.into_iter(), part);
                let (sp, steps) = distributed_bellman_ford(ctx, &g, root);
                (sp.gather_to_all(ctx, g.part()), steps)
            })
            .results
    }

    #[test]
    fn matches_dijkstra_on_random_graph() {
        let el = g500_gen::simple::erdos_renyi(48, 200, 21);
        let csr = Csr::from_edges(48, &el, Directedness::Undirected);
        let exact = dijkstra(&csr, 5);
        for p in [1, 3, 4] {
            let results = run_distributed(&el, 48, p, 5);
            for (sp, _) in &results {
                assert!(sp.distances_match(&exact, 1e-4), "p={p}");
            }
        }
    }

    #[test]
    fn superstep_count_tracks_path_depth() {
        // a 16-vertex path needs ~15 rounds — the weakness of the baseline
        let el = g500_gen::simple::path(16, 1.0);
        let results = run_distributed(&el, 16, 4, 0);
        let (_, steps) = &results[0];
        assert!(
            *steps >= 15,
            "path of 16 should take >= 15 supersteps, took {steps}"
        );
    }

    #[test]
    fn star_resolves_in_two_supersteps() {
        let el = g500_gen::simple::star(32, 0.5);
        let results = run_distributed(&el, 32, 4, 0);
        let (sp, steps) = &results[0];
        assert_eq!(sp.reached_count(), 32);
        assert!(*steps <= 2, "star took {steps} supersteps");
    }

    #[test]
    fn root_on_any_rank() {
        let el = g500_gen::simple::cycle(12, 1.0);
        let csr = Csr::from_edges(12, &el, Directedness::Undirected);
        for root in [0u64, 5, 11] {
            let exact = dijkstra(&csr, root);
            let results = run_distributed(&el, 12, 3, root);
            assert!(results[0].0.distances_match(&exact, 1e-5), "root {root}");
        }
    }
}
