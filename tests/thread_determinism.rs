//! Cross-thread-count determinism: the fixed-chunk contract promises that
//! every benchmark result — distances, parents, traffic, NetStats, TEPS
//! denominators — is bitwise identical at any `G500_THREADS`. The worker
//! pool is process-global and fixed at first use, so the only honest way to
//! compare thread counts is to spawn the real `g500` binary once per count
//! and diff its `--json` output byte for byte (minus the wall-clock and
//! thread-count fields, which legitimately differ).

use std::process::Command;

/// Run the g500 binary with `G500_THREADS=<threads>` and return its JSON
/// stdout with the host-dependent lines (`wall_time_s`, `"threads"`)
/// stripped.
fn run_normalized(threads: usize, args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_g500"))
        .args(args)
        .env("G500_THREADS", threads.to_string())
        .output()
        .expect("spawn g500");
    assert!(
        out.status.success(),
        "g500 {:?} failed under {} threads: {}",
        args,
        threads,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("utf8 json")
        .lines()
        .filter(|l| !l.contains("wall_time_s") && !l.contains("\"threads\""))
        .collect::<Vec<_>>()
        .join("\n")
}

fn assert_identical(args: &[&str]) {
    let one = run_normalized(1, args);
    let four = run_normalized(4, args);
    assert!(!one.is_empty(), "empty JSON for {args:?}");
    assert_eq!(
        one, four,
        "g500 {args:?} output differs between G500_THREADS=1 and =4"
    );
}

#[test]
fn sssp_json_is_bitwise_identical_across_thread_counts() {
    assert_identical(&[
        "sssp",
        "--scale",
        "9",
        "--ranks",
        "4",
        "--roots",
        "4",
        "--deterministic",
        "--json",
    ]);
}

#[test]
fn bfs_json_is_bitwise_identical_across_thread_counts() {
    assert_identical(&[
        "bfs",
        "--scale",
        "9",
        "--ranks",
        "4",
        "--roots",
        "4",
        "--deterministic",
        "--json",
    ]);
}

#[test]
fn pull_direction_is_bitwise_identical_across_thread_counts() {
    assert_identical(&[
        "sssp",
        "--scale",
        "9",
        "--ranks",
        "4",
        "--roots",
        "2",
        "--deterministic",
        "--direction",
        "pull",
        "--json",
    ]);
}

#[test]
fn fuzzed_schedule_is_bitwise_identical_across_thread_counts() {
    // delivery-order fuzzing (--sched-seed) composes with the pool: the
    // seeded schedule fixes the simnet side, the fixed-chunk contract fixes
    // the intra-rank side.
    assert_identical(&[
        "sssp",
        "--scale",
        "9",
        "--ranks",
        "4",
        "--roots",
        "2",
        "--sched-seed",
        "7",
        "--json",
    ]);
}

#[test]
fn threads_flag_is_reported_in_json() {
    let out = Command::new(env!("CARGO_BIN_EXE_g500"))
        .args([
            "sssp",
            "--scale",
            "9",
            "--ranks",
            "2",
            "--roots",
            "1",
            "--threads",
            "2",
            "--json",
        ])
        .output()
        .expect("spawn g500");
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).expect("utf8 json");
    assert!(
        json.contains("\"threads\": 2"),
        "report should echo the configured pool size, got:\n{json}"
    );
}

/// The determinism contract survives a lossy network: the same fault
/// flags produce bitwise-identical JSON (distances, validation, and every
/// transport counter) at any thread count, because the fault schedule is
/// keyed to links, not to execution interleaving.
#[test]
fn lossy_sssp_json_is_bitwise_identical_across_thread_counts() {
    assert_identical(&[
        "sssp",
        "--scale",
        "9",
        "--ranks",
        "4",
        "--roots",
        "4",
        "--deterministic",
        "--fault-seed",
        "1",
        "--drop-rate",
        "0.05",
        "--dup-rate",
        "0.02",
        "--corrupt-rate",
        "0.01",
        "--json",
    ]);
    // and the lossy run really did exercise the transport
    let json = run_normalized(
        1,
        &[
            "sssp",
            "--scale",
            "9",
            "--ranks",
            "4",
            "--roots",
            "1",
            "--deterministic",
            "--fault-seed",
            "1",
            "--drop-rate",
            "0.05",
            "--json",
        ],
    );
    assert!(
        json.contains("\"retransmits\""),
        "lossy JSON must carry transport counters:\n{json}"
    );
}
