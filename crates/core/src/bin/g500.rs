//! `g500` — the command-line front end.
//!
//! ```text
//! g500 sssp  --scale 14 --ranks 8 [--roots 64] [--topology fat-tree|torus|crossbar|dragonfly]
//!            [--partition block|cyclic|degree-aware] [--no-validate]
//!            [--delta 0.125] [--direction push|pull|hybrid]
//!            [--no-coalescing] [--no-dedup] [--no-compression] [--no-fusion]
//! g500 bfs   --scale 14 --ranks 8 [--roots 64] [--no-validate]
//! g500 stats --scale 14
//! ```
//!
//! Argument parsing is hand-rolled (two flags' worth of logic does not
//! justify a dependency).

use graph500::gen::{KroneckerGenerator, KroneckerParams};
use graph500::graph::{component_stats, Csr, DegreeStats, Directedness};
use graph500::simnet::Topology;
use graph500::sssp::{Direction, OptConfig};
use graph500::{
    run_bfs_benchmark, try_run_query_serving_benchmark, try_run_sssp_benchmark, BenchmarkConfig,
    CrashPlan, FaultPlan, PartitionStrategy, ServeBenchConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage:\n  g500 sssp  --scale N --ranks P [--roots K] [--seed S] [--topology T] \\\n             [--partition block|cyclic|degree-aware] [--no-validate] [--delta D] \\\n             [--direction push|pull|hybrid] [--no-coalescing] [--no-dedup] \\\n             [--no-compression] [--no-fusion] [--deterministic] [--sched-seed S] \\\n             [--threads T] [--fault-seed S] [--drop-rate P] [--dup-rate P] \\\n             [--corrupt-rate P] [--reorder-rate P] [--retry-budget N] \\\n             [--crash-seed S] [--crash-rate P] [--checkpoint-interval K] \\\n             [--recovery-budget N] [--trace] [--trace-out PATH]\n  g500 bfs   --scale N --ranks P [--roots K] [--seed S] [--no-validate] [--json] \\\n             [--threads T] [--trace] [--trace-out PATH] [fault flags as above]\n  g500 serve --scale N --ranks P [--queries Q] [--batch B] [--landmarks K] \\\n             [--lru C] [--p2p PERMILLE] [--pool S] [--seed S] [--json] \\\n             [--deterministic] [--sched-seed S] [--threads T] [--deadline SEC] \\\n             [crash flags as above]\n  g500 stats --scale N [--seed S] [--threads T]\n\n  serve keeps the graph resident and answers a deterministic synthetic\n  stream of full and point-to-point SSSP queries in admission windows of\n  --batch through the batched kernel, with --landmarks triangle-bound\n  pruning and an --lru full-result cache; it reports virtual-time QPS\n  and p50/p95/p99 latency.\n  --deterministic runs the simulated machine under the seeded serialized\n  scheduler: the same --seed/--sched-seed pair replays byte-identical\n  results and NetStats. --sched-seed (default 0 = canonical order)\n  additionally fuzzes message delivery order and implies --deterministic.\n  --threads sizes the process-global worker pool (overrides G500_THREADS;\n  default: hardware parallelism). Results are bitwise identical at any\n  thread count — only wall time changes.\n  --drop-rate/--dup-rate/--corrupt-rate/--reorder-rate (all default 0)\n  inject seeded lossy-network faults, replayable from --fault-seed; the\n  reliable transport masks them, so distances and validation are\n  byte-identical to the fault-free run — only virtual time and the\n  retransmit counters change. --retry-budget (default 16) bounds\n  retransmissions per frame before a fail-stop TransportError.\n  --crash-rate (default 0) injects seeded whole-rank process crashes at\n  superstep boundaries, replayable from --crash-seed; the kernel takes\n  buddy-replicated checkpoints every --checkpoint-interval supersteps\n  (default 4) and rolls back on each crash, so distances stay\n  byte-identical to the fault-free run. --recovery-budget (default 64)\n  bounds restarts before the run ends with a typed error. Under serve,\n  an unrecoverable window is retried once and then its queries are shed\n  (reported, never a panic); --deadline SEC additionally sheds answers\n  whose virtual latency exceeds SEC.\n  --trace (or G500_TRACE=1) records a virtual-time trace: the report\n  gains a per-superstep compute/comm/wait breakdown, and --trace-out\n  PATH (default trace.json with --trace-out alone) writes Chrome\n  trace_event JSON for chrome://tracing or ui.perfetto.dev. Tracing\n  never changes results: distances, NetStats, and the untraced report\n  fields are byte-identical with tracing on or off."
    );
    std::process::exit(2)
}

struct Args {
    flags: Vec<String>,
}

impl Args {
    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.flags.get(i + 1))
            .map(String::as_str)
    }

    fn num(&self, name: &str, default: u64) -> u64 {
        match self.value(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for {name}: {v}");
                usage()
            }),
        }
    }

    fn fnum(&self, name: &str, default: f64) -> f64 {
        match self.value(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for {name}: {v}");
                usage()
            }),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|a| a == name)
    }
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().unwrap_or_else(|| usage());
    let args = Args {
        flags: argv.collect(),
    };

    // Size the worker pool before any parallel work runs (the pool is
    // process-global and fixed at first use).
    let threads = args.num("--threads", 0) as usize;
    if threads > 0 {
        graph500::rayon::configure_threads(threads);
    }

    match cmd.as_str() {
        "sssp" => cmd_sssp(&args),
        "bfs" => cmd_bfs(&args),
        "serve" => cmd_serve(&args),
        "stats" => cmd_stats(&args),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command: {other}");
            usage()
        }
    }
}

/// Parse the crash-injection flags shared by `sssp` and `serve`.
fn crash_plan(args: &Args) -> CrashPlan {
    let plan = CrashPlan::random(args.num("--crash-seed", 0), args.fnum("--crash-rate", 0.0))
        .with_checkpoint_interval(args.num("--checkpoint-interval", 4))
        .with_recovery_budget(args.num("--recovery-budget", 64) as u32);
    if let Err(e) = plan.validate() {
        eprintln!("{e}");
        usage();
    }
    plan
}

fn build_cfg(args: &Args) -> BenchmarkConfig {
    let scale = args.num("--scale", 12) as u32;
    let ranks = args.num("--ranks", 4) as usize;
    let mut cfg = BenchmarkConfig::graph500(scale, ranks);
    cfg.num_roots = args.num("--roots", 64) as usize;
    cfg.seed = args.num("--seed", cfg.seed);
    cfg.validate = !args.has("--no-validate");
    cfg.threads = args.num("--threads", 0) as usize;
    if args.has("--deterministic") || args.has("--sched-seed") {
        cfg = cfg.deterministic(args.num("--sched-seed", 0));
    }
    let fault = FaultPlan::none()
        .with_seed(args.num("--fault-seed", 0))
        .with_drop(args.fnum("--drop-rate", 0.0))
        .with_duplicate(args.fnum("--dup-rate", 0.0))
        .with_corrupt(args.fnum("--corrupt-rate", 0.0))
        .with_reorder(args.fnum("--reorder-rate", 0.0))
        .with_retry_budget(args.num("--retry-budget", 16) as u32);
    if let Err(e) = fault.validate() {
        eprintln!("{e}");
        usage();
    }
    cfg = cfg.faults(fault);
    cfg = cfg.crashes(crash_plan(args));
    let env_trace = matches!(
        std::env::var("G500_TRACE").ok().as_deref(),
        Some("1") | Some("true")
    );
    if args.has("--trace") || args.has("--trace-out") || env_trace {
        cfg = cfg.traced(true);
    }
    if let Some(t) = args.value("--topology") {
        let side = (ranks as f64).sqrt().ceil().max(1.0) as u32;
        cfg.machine = cfg.machine.topology(match t {
            "crossbar" => Topology::Crossbar,
            "fat-tree" => Topology::FatTree { radix: 4 },
            "torus" => Topology::Torus2D {
                w: side,
                h: (ranks as u32).div_ceil(side),
            },
            "dragonfly" => Topology::Dragonfly { group: side.max(2) },
            other => {
                eprintln!("unknown topology: {other}");
                usage()
            }
        });
    }
    if let Some(p) = args.value("--partition") {
        cfg.partition = match p {
            "block" => PartitionStrategy::Block,
            "cyclic" => PartitionStrategy::Cyclic,
            "degree-aware" => PartitionStrategy::DegreeAware { hub_factor: 8.0 },
            other => {
                eprintln!("unknown partition: {other}");
                usage()
            }
        };
    }
    let mut opts = OptConfig::all_on();
    if args.has("--no-coalescing") {
        opts = opts.without_coalescing();
    }
    if args.has("--no-dedup") {
        opts = opts.without_dedup();
    }
    if args.has("--no-compression") {
        opts = opts.without_compression();
    }
    if args.has("--no-fusion") {
        opts = opts.without_fusion();
    }
    if let Some(d) = args.value("--direction") {
        opts = opts.with_direction(match d {
            "push" => Direction::Push,
            "pull" => Direction::Pull,
            "hybrid" => Direction::Hybrid,
            other => {
                eprintln!("unknown direction: {other}");
                usage()
            }
        });
    }
    if let Some(d) = args.value("--delta") {
        opts = opts.with_delta(d.parse().unwrap_or_else(|_| {
            eprintln!("bad --delta: {d}");
            usage()
        }));
    }
    cfg.opts = opts;
    cfg
}

/// Write the Chrome trace file when `--trace-out` was given (defaulting to
/// `trace.json` when the flag carries no path).
fn write_trace_if_requested(args: &Args, rep: &graph500::BenchmarkReport) {
    if !args.has("--trace-out") {
        return;
    }
    let Some(trace) = rep.trace.as_ref() else {
        return;
    };
    let path = args
        .value("--trace-out")
        .filter(|v| !v.starts_with("--"))
        .unwrap_or("trace.json");
    match graph500::write_chrome_trace(std::path::Path::new(path), trace) {
        Ok(()) => eprintln!("wrote Chrome trace to {path}"),
        Err(e) => {
            eprintln!("failed to write trace to {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_sssp(args: &Args) {
    let cfg = build_cfg(args);
    eprintln!(
        "g500 sssp: scale {}, {} ranks, {} roots…",
        cfg.scale, cfg.machine.ranks, cfg.num_roots
    );
    let rep = match try_run_sssp_benchmark(&cfg) {
        Ok(rep) => rep,
        Err(e) => {
            eprintln!("g500 sssp: {e}");
            std::process::exit(1);
        }
    };
    write_trace_if_requested(args, &rep);
    if args.has("--json") {
        println!("{}", rep.to_json());
        if cfg.validate && !rep.all_validated() {
            std::process::exit(1);
        }
        return;
    }
    println!("{}", rep.render());
    if cfg.validate {
        println!("validated:             {}", rep.all_validated());
        if !rep.all_validated() {
            std::process::exit(1);
        }
    }
}

fn cmd_bfs(args: &Args) {
    let cfg = build_cfg(args);
    eprintln!(
        "g500 bfs: scale {}, {} ranks, {} roots…",
        cfg.scale, cfg.machine.ranks, cfg.num_roots
    );
    let rep = run_bfs_benchmark(&cfg);
    write_trace_if_requested(args, &rep);
    if args.has("--json") {
        println!("{}", rep.to_json());
        if cfg.validate && !rep.all_validated() {
            std::process::exit(1);
        }
        return;
    }
    println!("{}", rep.render());
    if cfg.validate {
        println!("validated:             {}", rep.all_validated());
        if !rep.all_validated() {
            std::process::exit(1);
        }
    }
}

fn cmd_serve(args: &Args) {
    let scale = args.num("--scale", 12) as u32;
    let ranks = args.num("--ranks", 4) as usize;
    let mut cfg = ServeBenchConfig::new(scale, ranks);
    cfg.num_queries = args.num("--queries", 64) as usize;
    cfg.batch_width = args.num("--batch", 16) as usize;
    cfg.num_landmarks = args.num("--landmarks", 4) as usize;
    cfg.lru_capacity = args.num("--lru", 8) as usize;
    cfg.p2p_permille = args.num("--p2p", 500);
    cfg.source_pool = args.num("--pool", 0) as usize;
    cfg.seed = args.num("--seed", cfg.seed);
    cfg.threads = args.num("--threads", 0) as usize;
    cfg.deadline_s = args.fnum("--deadline", f64::INFINITY);
    if cfg.deadline_s <= 0.0 || cfg.deadline_s.is_nan() {
        eprintln!("bad --deadline: must be a positive number of seconds");
        usage();
    }
    if args.has("--deterministic") || args.has("--sched-seed") {
        cfg = cfg.deterministic(args.num("--sched-seed", 0));
    }
    cfg = cfg.crashes(crash_plan(args));
    eprintln!(
        "g500 serve: scale {}, {} ranks, {} queries at window {}…",
        cfg.scale, cfg.machine.ranks, cfg.num_queries, cfg.batch_width
    );
    let rep = match try_run_query_serving_benchmark(&cfg) {
        Ok(rep) => rep,
        Err(e) => {
            eprintln!("g500 serve: {e}");
            std::process::exit(1);
        }
    };
    if args.has("--json") {
        println!("{}", rep.to_json());
    } else {
        println!("{}", rep.render());
    }
}

fn cmd_stats(args: &Args) {
    let scale = args.num("--scale", 12) as u32;
    let seed = args.num("--seed", 20220814);
    let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, seed));
    let el = gen.generate_all();
    let n = gen.params().num_vertices() as usize;
    let csr = Csr::from_edges(n, &el, Directedness::Undirected);
    let d = DegreeStats::from_csr(&csr);
    let cc = component_stats(n, &el);
    println!("scale:            {scale}");
    println!("vertices:         {n}");
    println!("edge records:     {}", el.len());
    println!("max degree:       {}", d.max);
    println!("mean degree:      {:.2}", d.mean);
    println!("median degree:    {}", d.median);
    println!(
        "isolated:         {} ({:.1}%)",
        d.isolated,
        100.0 * d.isolated as f64 / n as f64
    );
    println!("top-1% arc share: {:.1}%", 100.0 * d.top1pct_arc_share);
    println!("components:       {}", cc.components);
    println!(
        "giant component:  {} ({:.1}%)",
        cc.giant_size,
        100.0 * cc.giant_size as f64 / n as f64
    );
}
