//! Std-only work-stealing drop-in for the subset of `rayon` this workspace
//! uses.
//!
//! The build environment is fully offline (no crates.io mirror), so the
//! workspace compiles from std alone — but since PR 3 this crate is a *real*
//! thread pool, not a sequential shim: `par_iter`, `into_par_iter`,
//! `par_sort_unstable*`, `join` and `scope` all execute on a lazily-started,
//! process-global pool. Since PR 6 the pool is a deque-based work-stealing
//! scheduler: per-worker cache-line-padded deques (LIFO local, FIFO steal),
//! batched chunk claiming (one deque op + one atomic retires a whole run of
//! chunks), and exponential-backoff idle spinning before parking — see
//! `pool.rs` and DESIGN.md "Work-stealing & the determinism contract".
//!
//! ## Pool sizing
//!
//! One pool serves the whole process (simnet runs one OS thread per rank;
//! per-rank pools would oversubscribe the host `ranks × threads`-fold). The
//! size is chosen at first use from, in priority order:
//! [`configure_threads`] (the `--threads` CLI flag), the `G500_THREADS`
//! environment variable, then `std::thread::available_parallelism`. With one
//! thread, every operation runs inline on the caller — exactly the old
//! sequential shim.
//!
//! ## The fixed-chunk determinism contract
//!
//! Work is split into chunks whose boundaries are a pure function of the
//! input length (and `with_min_len`/`with_max_len`), **never** of the thread
//! count; chunks are claimed dynamically for load balance, but per-chunk
//! results are combined sequentially in chunk order. `par_sort_unstable*` is
//! a fixed-midpoint merge sort with a left-preferential merge. Net effect:
//! every operation returns bitwise identical results at any thread count,
//! so the deterministic-replay / conformance / schedule-fuzz guarantees
//! from PR 1 hold unchanged whether `G500_THREADS` is 1 or 64. See
//! `iter.rs` for the rules kernel authors must follow to keep this true.
//!
//! Swapping this crate back for upstream `rayon` requires no source changes
//! in the rest of the workspace — the trait and function names match.

mod iter;
mod pool;
mod sort;

pub use iter::{
    Chunks, Copied, Filter, FlatMapIter, Fold, FromParallelIterator, IndexedParallelIterator,
    IntoParallelIterator, Map, ParallelIterator, ParallelSlice, ParallelSliceMut, RangeIter,
    SliceChunks, SliceIter, SliceIterMut, VecIter, WithHints,
};
pub use pool::{configure_threads, current_num_threads, join, pool_stats, scope, PoolStats, Scope};

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator, ParallelIterator,
        ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_range_exactly() {
        let chunks: Vec<Vec<usize>> = (0..10usize).into_par_iter().chunks(4).collect();
        assert_eq!(chunks, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]);
    }

    #[test]
    fn slice_ops_match_std() {
        let v = vec![3u64, 1, 2];
        let total: u64 = v.par_iter().copied().sum();
        assert_eq!(total, 6);
        let mut s = v.clone();
        s.par_sort_unstable();
        assert_eq!(s, vec![1, 2, 3]);
        let mut by_key = v.clone();
        by_key.par_sort_unstable_by_key(|&x| std::cmp::Reverse(x));
        assert_eq!(by_key, vec![3, 2, 1]);
    }

    #[test]
    fn flat_map_iter_matches_flat_map() {
        let out: Vec<u32> = [1u32, 3]
            .par_iter()
            .flat_map_iter(|&x| [x, x + 1])
            .collect();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn collect_preserves_order_across_many_chunks() {
        // Force many chunks so parallel execution actually reorders work.
        let out: Vec<usize> = (0..100_000usize)
            .into_par_iter()
            .with_max_len(64)
            .map(|i| i * 2)
            .collect();
        assert!(out.iter().copied().eq((0..100_000).map(|i| i * 2)));
    }

    #[test]
    fn filter_and_count_match_sequential() {
        let par: Vec<u64> = (0..50_000u64)
            .into_par_iter()
            .with_max_len(128)
            .filter(|&x| x % 7 == 0)
            .collect();
        let seq: Vec<u64> = (0..50_000u64).filter(|&x| x % 7 == 0).collect();
        assert_eq!(par, seq);
        let n = (0..50_000u64)
            .into_par_iter()
            .with_max_len(128)
            .filter(|&x| x % 7 == 0)
            .count();
        assert_eq!(n, seq.len());
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let v: Vec<String> = (0..5000).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v
            .into_par_iter()
            .with_max_len(64)
            .map(|s| s.len())
            .collect();
        assert_eq!(lens.len(), 5000);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[4999], 4);
    }

    #[test]
    fn undriven_vec_iter_drops_cleanly() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let it = v.into_par_iter();
        drop(it); // must drop the strings, not leak or double-free
    }

    #[test]
    fn fold_reduce_matches_sequential_sum() {
        let total = (0..10_000u64)
            .into_par_iter()
            .with_max_len(97)
            .fold(|| 0u64, |acc, x| acc + x)
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(total, (0..10_000u64).sum());
    }

    #[test]
    fn max_matches_sequential() {
        let v: Vec<u64> = (0..9999u64).map(|i| (i * 2654435761) % 100_000).collect();
        assert_eq!(v.par_iter().copied().max(), v.iter().copied().max());
        let empty: Vec<u64> = Vec::new();
        assert_eq!(empty.par_iter().copied().max(), None);
    }

    #[test]
    fn par_iter_mut_writes_every_slot() {
        let mut v = vec![0u32; 70_000];
        v.par_iter_mut().for_each(|x| *x = 1);
        assert_eq!(v.iter().map(|&x| x as u64).sum::<u64>(), 70_000);
    }

    #[test]
    fn par_chunks_sees_all_windows() {
        let v: Vec<u32> = (0..10_000).collect();
        let sums: Vec<u64> = v
            .par_chunks(256)
            .map(|c| c.iter().map(|&x| x as u64).sum())
            .collect();
        assert_eq!(sums.len(), 10_000usize.div_ceil(256));
        assert_eq!(sums.iter().sum::<u64>(), (0..10_000u64).sum());
    }

    #[test]
    fn sort_matches_std_on_large_random_input() {
        // xorshift for a deterministic "random" input larger than the leaf
        // cutoff, so the parallel merge path actually runs.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut v: Vec<u64> = (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        v.par_sort_unstable();
        assert_eq!(v, expect);
    }

    #[test]
    fn sort_by_key_handles_duplicate_keys_deterministically() {
        let input: Vec<(u32, u32)> = (0..50_000u32).map(|i| (i % 16, i)).collect();
        let mut a = input.clone();
        a.par_sort_unstable_by_key(|&(k, _)| k);
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        // same multiset as the input
        let mut expect = input.clone();
        expect.sort_unstable();
        let mut got = a.clone();
        got.sort_unstable();
        assert_eq!(got, expect);
        // deterministic: a second run permutes equal keys identically
        let mut b = input;
        b.par_sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(a, b);
    }

    #[test]
    fn join_returns_results_in_position() {
        let (a, b) = crate::join(|| 1 + 1, || "right");
        assert_eq!(a, 2);
        assert_eq!(b, "right");
    }

    #[test]
    fn join_nests() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = crate::join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn join_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            crate::join(|| 7, || panic!("right side exploded"));
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "right side exploded");
    }

    #[test]
    fn for_each_panic_propagates_from_worker_chunk() {
        let caught = std::panic::catch_unwind(|| {
            (0..100_000usize)
                .into_par_iter()
                .with_max_len(64)
                .for_each(|i| {
                    if i == 31_337 {
                        panic!("chunk body panicked");
                    }
                });
        });
        assert!(caught.is_err());
        // the pool must remain usable after a poisoned task
        let s: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(s, 499_500);
    }

    #[test]
    fn scope_runs_all_spawned_jobs_including_nested() {
        let counter = AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..64 {
                s.spawn(|s2| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    s2.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 128);
    }

    #[test]
    fn scope_propagates_job_panics() {
        let caught = std::panic::catch_unwind(|| {
            crate::scope(|s| {
                s.spawn(|_| panic!("spawned job panicked"));
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn skewed_workload_completes_with_balanced_claiming() {
        // One chunk is ~1000x heavier than the rest; dynamic claiming must
        // still retire everything (and, with >1 thread, light chunks are
        // stolen while the heavy one runs).
        let done = AtomicUsize::new(0);
        (0..256usize).into_par_iter().with_max_len(1).for_each(|i| {
            let spins = if i == 0 { 200_000 } else { 200 };
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
            done.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(done.load(Ordering::SeqCst), 256);
    }

    #[test]
    fn collect_into_vec_reuses_capacity_and_matches_collect() {
        let mut arena: Vec<u64> = Vec::new();
        for round in 0..3u64 {
            (0..50_000u64)
                .into_par_iter()
                .with_max_len(128)
                .map(|i| i * 3 + round)
                .collect_into_vec(&mut arena);
            let expect: Vec<u64> = (0..50_000u64).map(|i| i * 3 + round).collect();
            assert_eq!(arena, expect);
        }
        let cap = arena.capacity();
        (0..10u64).into_par_iter().collect_into_vec(&mut arena);
        assert_eq!(arena, (0..10u64).collect::<Vec<_>>());
        assert_eq!(arena.capacity(), cap, "arena capacity must be retained");
    }

    #[test]
    fn steal_heavy_skewed_workload_balances() {
        // A geometric skew: chunk 0 dwarfs everything. The splitter parks
        // the back half of every range in a deque, so with >1 thread the
        // light runs must be stolen while the heavy chunk executes; at 1
        // thread everything runs inline. Either way the sum is exact.
        let total = std::sync::atomic::AtomicU64::new(0);
        (0..512usize).into_par_iter().with_max_len(1).for_each(|i| {
            let spins = if i % 64 == 0 { 100_000u64 } else { 50 };
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..512u64).sum());
    }

    #[test]
    fn nested_join_inside_stolen_chunks() {
        // Each outer chunk opens nested joins (a recursive sort), so stolen
        // chunks submit sub-tasks from worker threads; the help-loop must
        // keep every level live without deadlock.
        let outs: Vec<Vec<u32>> = (0..32usize)
            .into_par_iter()
            .with_max_len(1)
            .map(|i| {
                let mut v: Vec<u32> = (0..20_000u32)
                    .map(|k| k.wrapping_mul(2654435761) ^ i as u32)
                    .collect();
                v.par_sort_unstable();
                v
            })
            .collect();
        for v in outs {
            assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn scope_jobs_nest_under_stealing() {
        let counter = AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..128 {
                s.spawn(|s2| {
                    // nested parallel region inside a scope job
                    let n: u64 = (0..10_000u64).into_par_iter().with_max_len(512).sum();
                    assert_eq!(n, 49_995_000);
                    counter.fetch_add(1, Ordering::SeqCst);
                    s2.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 256);
    }

    #[test]
    fn panic_in_stolen_chunk_propagates_and_pool_survives() {
        // Many tiny chunks guarantee splits land in worker deques, so with
        // >1 thread the panicking chunk is very likely stolen; the payload
        // must still surface on the submitting thread.
        for round in 0..4 {
            let caught = std::panic::catch_unwind(|| {
                (0..4096usize)
                    .into_par_iter()
                    .with_max_len(1)
                    .for_each(|i| {
                        if i == 2048 + round {
                            panic!("stolen chunk panicked");
                        }
                    });
            });
            let payload = caught.expect_err("panic must propagate");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
            assert_eq!(msg, "stolen chunk panicked");
            // pool stays healthy between rounds
            let s: u64 = (0..1000u64).into_par_iter().with_max_len(16).sum();
            assert_eq!(s, 499_500);
        }
    }

    #[test]
    fn pool_stats_are_monotonic() {
        let before = crate::pool_stats();
        assert!(before.threads >= 1);
        let _: u64 = (0..100_000u64).into_par_iter().with_max_len(64).sum();
        let after = crate::pool_stats();
        assert!(after.local_runs >= before.local_runs);
        assert!(after.steals >= before.steals);
        assert!(after.parks >= before.parks);
    }

    #[test]
    fn auto_sequential_cutoff_matches_parallel_results() {
        // A two-chunk region takes the inline path; forcing more chunks
        // takes the pool path. Same chunk geometry rules, same results.
        let v: Vec<f32> = (0..4096).map(|i| (i % 97) as f32 * 0.125).collect();
        let small: f64 = v[..2000].par_iter().map(|&x| x as f64).sum();
        let seq: f64 = v[..2000].iter().map(|&x| x as f64).sum();
        assert_eq!(small.to_bits(), seq.to_bits());
    }

    #[test]
    fn sum_is_identical_regardless_of_claim_order() {
        // f64 chunk sums are combined sequentially in chunk order, so two
        // runs (with arbitrary thread interleavings) must agree bitwise.
        let v: Vec<f32> = (0..200_000)
            .map(|i| ((i * 2654435761u64 as usize) % 1000) as f32 * 1e-3)
            .collect();
        let run = || -> f64 { v.par_iter().map(|&w| w as f64).sum() };
        let a = run();
        let b = run();
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
