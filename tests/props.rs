//! Property-based tests (proptest) on the workspace's core invariants:
//! every SSSP implementation equals Dijkstra on arbitrary random graphs;
//! codecs round-trip arbitrary data; partitions are bijections for
//! arbitrary shapes; the generator is splittable at arbitrary cut points.

use graph500::baselines::{bellman_ford, dijkstra, near_far};
use graph500::gen::{KroneckerGenerator, KroneckerParams};
use graph500::graph::{
    compress, BitMixPermutation, Csr, Directedness, EdgeList, WEdge,
};
use graph500::partition::{
    assemble_local_graph, Block1D, Cyclic1D, HybridPartition, VertexPartition,
};
use graph500::simnet::{wire, Machine, MachineConfig};
use graph500::sssp::codec::{decode_updates, dedup_min, encode_updates, Update};
use graph500::sssp::{delta_stepping, distributed_delta_stepping, OptConfig};
use proptest::prelude::*;

/// Arbitrary small weighted multigraph as (n, edges).
fn arb_graph() -> impl Strategy<Value = (u64, Vec<(u64, u64, f32)>)> {
    (2u64..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n, 0..n, 0.0f32..1.0),
            0..120,
        );
        (Just(n), edges)
    })
}

fn to_el(edges: &[(u64, u64, f32)]) -> EdgeList {
    EdgeList::from_edges(edges.iter().map(|&(u, v, w)| WEdge::new(u, v, w)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_sssp_algorithms_equal_dijkstra((n, edges) in arb_graph(), root_pick in 0u64..40, delta in 0.01f32..2.0) {
        let root = root_pick % n;
        let el = to_el(&edges);
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, root);
        prop_assert!(delta_stepping(&csr, root, delta).distances_match(&oracle, 1e-4));
        prop_assert!(near_far(&csr, root, delta).distances_match(&oracle, 1e-4));
        prop_assert!(bellman_ford(&csr, root).distances_match(&oracle, 1e-4));
    }

    #[test]
    fn distributed_delta_equals_dijkstra((n, edges) in arb_graph(), root_pick in 0u64..40, p in 1usize..5) {
        let root = root_pick % n;
        let el = to_el(&edges);
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, root);
        let got = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(n, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let (sp, _) = distributed_delta_stepping(ctx, &g, root, &OptConfig::all_on());
            sp.gather_to_all(ctx, g.part())
        }).results.pop().expect("rank");
        prop_assert!(got.distances_match(&oracle, 1e-4));
    }

    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        compress::write_varint(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(compress::read_varint(&buf, &mut pos), Some(v));
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn adjacency_codec_roundtrip(mut ids in proptest::collection::vec(any::<u64>(), 0..200)) {
        ids.sort_unstable();
        let enc = compress::encode_adjacency(&ids);
        prop_assert_eq!(compress::decode_adjacency(&enc), Some(ids));
    }

    #[test]
    fn update_codec_roundtrip(mut ups in proptest::collection::vec((any::<u64>(), 0.0f32..100.0, any::<u64>()), 0..200)) {
        ups.sort_unstable_by_key(|u| u.0);
        let enc = encode_updates(&ups, true);
        prop_assert_eq!(decode_updates(&enc), Some(ups));
    }

    #[test]
    fn dedup_min_keeps_true_minimum(ups in proptest::collection::vec((0u64..20, 0.0f32..10.0, any::<u64>()), 1..100)) {
        let mut work: Vec<Update> = ups.clone();
        dedup_min(&mut work);
        // unique targets, and each carries the true min over the input
        for w in work.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        for &(t, d, _) in &work {
            let true_min = ups.iter().filter(|u| u.0 == t).map(|u| u.1).fold(f32::INFINITY, f32::min);
            prop_assert_eq!(d, true_min);
        }
    }

    #[test]
    fn wire_tuple_roundtrip(recs in proptest::collection::vec((any::<u64>(), any::<f32>(), any::<u32>()), 0..100)) {
        let buf = wire::encode_slice(&recs);
        let back = wire::decode_vec::<(u64, f32, u32)>(&buf);
        prop_assert!(back.is_some());
        let back = back.expect("checked");
        prop_assert_eq!(back.len(), recs.len());
        for (a, b) in recs.iter().zip(&back) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            prop_assert_eq!(a.2, b.2);
        }
    }

    #[test]
    fn partitions_are_bijections(n in 0u64..3000, p in 1usize..17, hubs in 0u64..100) {
        let hubs = hubs.min(n);
        fn check<P: VertexPartition>(part: &P, n: u64) {
            let total: usize = (0..part.num_ranks()).map(|r| part.local_count(r)).sum();
            assert_eq!(total as u64, n);
            for v in (0..n).step_by(7) {
                let r = part.owner(v);
                let l = part.to_local(v);
                assert_eq!(part.to_global(r, l), v);
            }
        }
        check(&Block1D::new(n, p), n);
        check(&Cyclic1D::new(n, p), n);
        check(&HybridPartition::new(n, p, hubs), n);
    }

    #[test]
    fn bitmix_permutation_is_invertible(scale in 1u32..40, v in any::<u64>(), seed in any::<u64>()) {
        let p = BitMixPermutation::new(scale, seed);
        let v = v & (p.domain() - 1);
        let s = p.apply(v);
        prop_assert!(s < p.domain());
        prop_assert_eq!(p.invert(s), v);
    }

    #[test]
    fn multi_source_equals_dijkstra_per_source((n, edges) in arb_graph(), p in 1usize..4) {
        let el = to_el(&edges);
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let roots: Vec<u64> = vec![0, n / 2, n - 1];
        let results = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(n, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let (md, _) = graph500::sssp::multi_source_delta_stepping(ctx, &g, &roots, 0.25);
            (0..roots.len())
                .map(|s| {
                    graph500::partition::DistShortestPaths {
                        dist: md.dist[s].clone(),
                        parent: md.parent[s].clone(),
                    }
                    .gather_to_all(ctx, g.part())
                })
                .collect::<Vec<_>>()
        }).results.pop().expect("rank");
        for (s, &root) in roots.iter().enumerate() {
            let oracle = dijkstra(&csr, root);
            prop_assert!(results[s].distances_match(&oracle, 1e-4), "source {s}");
        }
    }

    #[test]
    fn bfs_levels_equal_unit_weight_distances((n, edges) in arb_graph(), dir_pick in 0u8..3) {
        // replace all weights with 1.0: BFS levels == shortest distances
        let unit: Vec<(u64, u64, f32)> = edges.iter().map(|&(u, v, _)| (u, v, 1.0)).collect();
        let el = to_el(&unit);
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, 0);
        let dir = match dir_pick {
            0 => graph500::sssp::Direction::Push,
            1 => graph500::sssp::Direction::Pull,
            _ => graph500::sssp::Direction::Hybrid,
        };
        let p = 3;
        let (level, parent) = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(n, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let (res, _) = graph500::sssp::distributed_bfs(ctx, &g, 0, dir);
            res.gather_to_all(ctx, g.part())
        }).results.pop().expect("rank");
        for v in 0..n as usize {
            if oracle.dist[v].is_finite() {
                prop_assert_eq!(level[v], oracle.dist[v] as i64, "vertex {}", v);
            } else {
                prop_assert_eq!(level[v], -1, "vertex {}", v);
                prop_assert_eq!(parent[v], u64::MAX);
            }
        }
    }

    #[test]
    fn generator_blocks_are_independent(scale in 4u32..10, seed in any::<u64>(), cut_frac in 0.0f64..1.0) {
        let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, seed));
        let m = gen.params().num_edges();
        let cut = ((m as f64 * cut_frac) as u64).min(m);
        let window = 64.min(m - cut);
        let from_block = gen.edge_block(cut..cut + window);
        for i in 0..window {
            prop_assert_eq!(from_block.get(i as usize), gen.edge(cut + i));
        }
    }
}
