//! Adjacency and integer compression codecs.
//!
//! At 140 trillion edges the CSR target array dominates memory and network
//! traffic, so the paper's system family compresses adjacency with
//! delta + variable-length encoding (sorted neighbor lists have small gaps on
//! a scrambled Kronecker graph's dense blocks). The same varint primitives
//! are reused by the SSSP message codec for the payload-compression
//! optimization ablated in experiment T3/F6.

use crate::csr::Csr;
use crate::types::{VertexId, Weight};

/// Append `v` to `out` as LEB128 (7 bits per byte, MSB = continuation).
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode one LEB128 varint from `buf[*pos..]`, advancing `*pos`.
///
/// Returns `None` on truncated input or overlong (> 10 byte) encodings.
#[inline]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Encode a *sorted* neighbor list as gap-coded varints: first id absolute,
/// then successive gaps. Panics in debug builds if the list is unsorted.
pub fn encode_adjacency(sorted: &[VertexId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(sorted.len() + 4);
    write_varint(&mut out, sorted.len() as u64);
    let mut prev = 0u64;
    for (i, &v) in sorted.iter().enumerate() {
        if i == 0 {
            write_varint(&mut out, v);
        } else {
            debug_assert!(v >= prev, "adjacency must be sorted");
            write_varint(&mut out, v - prev);
        }
        prev = v;
    }
    out
}

/// Inverse of [`encode_adjacency`]. Returns `None` on malformed input.
pub fn decode_adjacency(buf: &[u8]) -> Option<Vec<VertexId>> {
    let mut pos = 0;
    let len = read_varint(buf, &mut pos)? as usize;
    let mut out = Vec::with_capacity(len);
    let mut prev = 0u64;
    for i in 0..len {
        let d = read_varint(buf, &mut pos)?;
        let v = if i == 0 { d } else { prev.checked_add(d)? };
        out.push(v);
        prev = v;
    }
    Some(out)
}

/// A CSR whose neighbor lists are stored gap+varint compressed.
///
/// Weights stay uncompressed (`f32` raw) — Graph500 weights are uniform
/// random so entropy coding gains nothing; the id stream is where the
/// redundancy lives.
#[derive(Clone, Debug)]
pub struct CompressedCsr {
    n: usize,
    /// Byte offset of each vertex's encoded block in `blob` (n + 1 entries).
    byte_offsets: Vec<u64>,
    blob: Vec<u8>,
    /// Arc offset of each vertex into `weights` (n + 1 entries).
    arc_offsets: Vec<u64>,
    /// Flat weights in the same order as the decoded ids.
    weights: Vec<Weight>,
    arcs: usize,
}

impl CompressedCsr {
    /// Compress `csr`. Adjacency lists are sorted internally first (the
    /// codec requires sorted ids; weights are permuted alongside).
    pub fn from_csr(csr: &Csr) -> Self {
        let mut sorted = csr.clone();
        sorted.sort_adjacency();
        let n = sorted.num_vertices();
        let mut byte_offsets = Vec::with_capacity(n + 1);
        let mut blob = Vec::new();
        byte_offsets.push(0);
        for u in 0..n {
            let enc = encode_adjacency(sorted.neighbors(u));
            blob.extend_from_slice(&enc);
            byte_offsets.push(blob.len() as u64);
        }
        Self {
            n,
            byte_offsets,
            blob,
            arc_offsets: sorted.offsets().to_vec(),
            weights: sorted.weights_flat().to_vec(),
            arcs: sorted.num_arcs(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.arcs
    }

    /// Decode the neighbor list of `u`.
    pub fn neighbors(&self, u: usize) -> Vec<VertexId> {
        let lo = self.byte_offsets[u] as usize;
        let hi = self.byte_offsets[u + 1] as usize;
        decode_adjacency(&self.blob[lo..hi]).expect("self-produced encoding is well-formed")
    }

    /// Weights parallel to [`Self::neighbors`] (weights are stored raw —
    /// uniform random floats have no redundancy to remove).
    pub fn edge_weights(&self, u: usize) -> &[Weight] {
        &self.weights[self.arc_offsets[u] as usize..self.arc_offsets[u + 1] as usize]
    }

    /// Decoded `(neighbor, weight)` pairs of `u`.
    pub fn arcs(&self, u: usize) -> Vec<(VertexId, Weight)> {
        self.neighbors(u)
            .into_iter()
            .zip(self.edge_weights(u).iter().copied())
            .collect()
    }

    /// Bytes used by the compressed id stream.
    pub fn compressed_id_bytes(&self) -> usize {
        self.blob.len()
    }

    /// Bytes an uncompressed `u64` id stream would use.
    pub fn raw_id_bytes(&self) -> usize {
        self.arcs * std::mem::size_of::<VertexId>()
    }

    /// Compression ratio of the id stream (raw / compressed; > 1 is a win).
    pub fn id_compression_ratio(&self) -> f64 {
        if self.blob.is_empty() {
            1.0
        } else {
            self.raw_id_bytes() as f64 / self.blob.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Directedness;
    use crate::edgelist::EdgeList;
    use crate::types::WEdge;

    #[test]
    fn varint_roundtrip_edges_of_ranges() {
        let cases = [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for &v in &cases {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1_000_000);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn varint_rejects_overlong() {
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn adjacency_roundtrip() {
        let adj: Vec<u64> = vec![3, 7, 8, 100, 1_000_000, 1_000_001];
        let enc = encode_adjacency(&adj);
        assert_eq!(decode_adjacency(&enc), Some(adj));
    }

    #[test]
    fn adjacency_empty() {
        let enc = encode_adjacency(&[]);
        assert_eq!(decode_adjacency(&enc), Some(vec![]));
    }

    #[test]
    fn gap_coding_beats_raw_on_clustered_ids() {
        let adj: Vec<u64> = (1000..2000).collect();
        let enc = encode_adjacency(&adj);
        assert!(
            enc.len() < adj.len() * 8 / 4,
            "expected ≥4x ratio, got {} bytes",
            enc.len()
        );
    }

    #[test]
    fn compressed_csr_matches_plain() {
        let el = EdgeList::from_edges([
            WEdge::new(0, 5, 0.1),
            WEdge::new(0, 1, 0.2),
            WEdge::new(0, 3, 0.3),
            WEdge::new(2, 4, 0.4),
        ]);
        let csr = Csr::from_edges(6, &el, Directedness::Undirected);
        let c = CompressedCsr::from_csr(&csr);
        assert_eq!(c.num_vertices(), 6);
        assert_eq!(c.num_arcs(), 8);
        assert_eq!(c.neighbors(0), vec![1, 3, 5]);
        assert_eq!(c.neighbors(2), vec![4]);
        assert_eq!(c.neighbors(4), vec![2]);
        assert!(c.id_compression_ratio() > 1.0);
    }

    #[test]
    fn compressed_csr_weights_follow_sorted_ids() {
        let el = EdgeList::from_edges([WEdge::new(0, 2, 0.2), WEdge::new(0, 1, 0.1)]);
        let csr = Csr::from_edges(3, &el, Directedness::Undirected);
        let c = CompressedCsr::from_csr(&csr);
        assert_eq!(c.arcs(0), vec![(1, 0.1), (2, 0.2)]);
        assert_eq!(c.edge_weights(1), &[0.1]);
        assert_eq!(c.arcs(2), vec![(0, 0.2)]);
    }
}
