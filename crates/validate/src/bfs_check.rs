//! BFS (Graph500 kernel 2) validation.
//!
//! The BFS checker mirrors the SSSP one with hop counts in place of
//! distances: levels across any edge differ by at most one, every parent is
//! exactly one level up, and the parent pointers form a tree on the reached
//! component.

use g500_graph::{Csr, Directedness, EdgeList, VertexId};

/// Sentinel level for unreached vertices.
pub const UNREACHED: i64 = -1;

/// Validate a BFS tree: `level[v]` in hops (−1 unreached), `parent[v]`
/// (`u64::MAX` unreached, root self-parented). Returns `Ok(traversed_edges)`
/// or the first violations.
pub fn validate_bfs(
    n: u64,
    edges: &EdgeList,
    root: VertexId,
    level: &[i64],
    parent: &[u64],
) -> Result<u64, Vec<String>> {
    let n = n as usize;
    let mut errors = Vec::new();
    assert_eq!(level.len(), n);
    assert_eq!(parent.len(), n);

    if level[root as usize] != 0 {
        errors.push(format!("root level is {} not 0", level[root as usize]));
    }
    if parent[root as usize] != root {
        errors.push("root is not its own parent".into());
    }

    for v in 0..n {
        let reached = level[v] >= 0;
        if reached != (parent[v] != u64::MAX) {
            errors.push(format!("vertex {v}: level/parent reachability mismatch"));
        }
    }

    // Parent levels: parent must be exactly one level up, and the edge must
    // exist. One CSR lookup per reached non-root vertex.
    let csr = Csr::from_edges(n, edges, Directedness::Undirected);
    for v in 0..n {
        if level[v] <= 0 {
            continue;
        }
        let p = parent[v];
        if p == u64::MAX || p as usize >= n {
            continue;
        }
        if level[p as usize] != level[v] - 1 {
            errors.push(format!(
                "vertex {v} at level {} has parent {p} at level {}",
                level[v], level[p as usize]
            ));
        }
        if !csr.neighbors(p as usize).contains(&(v as u64)) {
            errors.push(format!("tree edge ({p}, {v}) not in the graph"));
        }
    }

    // Edge rule: levels differ by at most 1; no boundary-spanning edges.
    let mut traversed = 0u64;
    for e in edges.iter() {
        let (lu, lv) = (level[e.u as usize], level[e.v as usize]);
        if lu >= 0 || lv >= 0 {
            traversed += 1;
        }
        match (lu >= 0, lv >= 0) {
            (true, true) => {
                if (lu - lv).abs() > 1 {
                    errors.push(format!(
                        "edge ({}, {}) spans levels {lu} and {lv}",
                        e.u, e.v
                    ));
                }
            }
            (false, false) => {}
            _ => errors.push(format!(
                "edge ({}, {}) spans the reached/unreached boundary",
                e.u, e.v
            )),
        }
        if errors.len() > 8 {
            break;
        }
    }

    if errors.is_empty() {
        Ok(traversed)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_bfs() -> (EdgeList, Vec<i64>, Vec<u64>) {
        let el = g500_gen::simple::path(4, 1.0);
        (el, vec![0, 1, 2, 3], vec![0, 0, 1, 2])
    }

    #[test]
    fn correct_tree_validates() {
        let (el, level, parent) = path_bfs();
        assert_eq!(validate_bfs(4, &el, 0, &level, &parent), Ok(3));
    }

    #[test]
    fn level_skip_rejected() {
        let (el, mut level, parent) = path_bfs();
        level[2] = 3;
        level[3] = 4;
        assert!(validate_bfs(4, &el, 0, &level, &parent).is_err());
    }

    #[test]
    fn wrong_parent_level_rejected() {
        let (el, level, mut parent) = path_bfs();
        parent[3] = 1; // level 1, but v is level 3
        assert!(validate_bfs(4, &el, 0, &level, &parent).is_err());
    }

    #[test]
    fn phantom_tree_edge_rejected() {
        let el = g500_gen::simple::path(4, 1.0);
        // claim parent(3) = 0 at level 1... edge (0,3) missing
        let level = vec![0, 1, 1, 1];
        let parent = vec![0, 0, 0, 0];
        assert!(validate_bfs(4, &el, 0, &level, &parent).is_err());
    }

    #[test]
    fn unreached_component_ok() {
        let el = g500_gen::simple::path(2, 1.0); // vertices 2,3 isolated
        let level = vec![0, 1, UNREACHED, UNREACHED];
        let parent = vec![0, 0, u64::MAX, u64::MAX];
        assert_eq!(validate_bfs(4, &el, 0, &level, &parent), Ok(1));
    }
}
