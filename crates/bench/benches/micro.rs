//! Criterion microbenchmarks for the hot kernels: generator throughput,
//! CSR construction, bucket-queue operations, the update codec, sequential
//! SSSP kernels, and simnet collectives.
//!
//! These complement the experiment harnesses (`src/bin/*`): the harnesses
//! measure *simulated* time on the modeled machine, these measure *host*
//! time of the real Rust kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use g500_baselines::dijkstra;
use g500_gen::{KroneckerGenerator, KroneckerParams};
use g500_graph::{compress, Csr, Directedness};
use g500_sssp::codec::{decode_updates, dedup_min, encode_updates, Update};
use g500_sssp::{delta_stepping, parallel_delta_stepping, BucketQueue};
use graph500::simnet::{Machine, MachineConfig};
use std::hint::black_box;

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("generator");
    g.sample_size(10);
    for scale in [14u32, 16] {
        let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, 1));
        let m = gen.params().num_edges();
        g.throughput(Throughput::Elements(m));
        g.bench_with_input(BenchmarkId::new("kronecker_all", scale), &gen, |b, gen| {
            b.iter(|| black_box(gen.generate_all().len()))
        });
    }
    g.finish();
}

fn bench_csr_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("csr");
    g.sample_size(10);
    for scale in [14u32, 16] {
        let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, 1));
        let el = gen.generate_all();
        let n = gen.params().num_vertices() as usize;
        g.throughput(Throughput::Elements(el.len() as u64));
        g.bench_with_input(BenchmarkId::new("build_undirected", scale), &el, |b, el| {
            b.iter(|| black_box(Csr::from_edges(n, el, Directedness::Undirected).num_arcs()))
        });
    }
    g.finish();
}

fn bench_bucket_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("bucket_queue");
    g.sample_size(20);
    let n = 100_000u32;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("insert_drain_100k", |b| {
        b.iter(|| {
            let mut q = BucketQueue::new(0.1);
            for i in 0..n {
                q.insert(i, (i % 977) as f32 * 0.01);
            }
            let mut popped = 0usize;
            while let Some(k) = q.min_bucket() {
                popped += q.take_bucket(k).len();
            }
            black_box(popped)
        })
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("update_codec");
    let updates: Vec<Update> =
        (0..10_000u64).map(|i| (1_000_000 + i * 3, 0.5 + (i % 7) as f32, i)).collect();
    g.throughput(Throughput::Elements(updates.len() as u64));
    g.bench_function("encode_10k", |b| {
        b.iter(|| black_box(encode_updates(&updates, true).len()))
    });
    let enc = encode_updates(&updates, true);
    g.bench_function("decode_10k", |b| {
        b.iter(|| black_box(decode_updates(&enc).expect("well-formed").len()))
    });
    g.bench_function("dedup_10k_half_dup", |b| {
        b.iter_with_setup(
            || {
                let mut v = updates.clone();
                v.extend(updates.iter().map(|&(t, d, p)| (t, d + 0.1, p)));
                v
            },
            |mut v| black_box(dedup_min(&mut v)),
        )
    });
    g.finish();
}

fn bench_varint(c: &mut Criterion) {
    let mut g = c.benchmark_group("varint");
    let adj: Vec<u64> = (0..10_000u64).map(|i| i * 7 + 1_000_000).collect();
    g.throughput(Throughput::Elements(adj.len() as u64));
    g.bench_function("encode_adjacency_10k", |b| {
        b.iter(|| black_box(compress::encode_adjacency(&adj).len()))
    });
    let enc = compress::encode_adjacency(&adj);
    g.bench_function("decode_adjacency_10k", |b| {
        b.iter(|| black_box(compress::decode_adjacency(&enc).expect("well-formed").len()))
    });
    g.finish();
}

fn bench_sssp_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("sssp_seq");
    g.sample_size(10);
    let gen = KroneckerGenerator::new(KroneckerParams::graph500(14, 1));
    let el = gen.generate_all();
    let n = gen.params().num_vertices() as usize;
    let csr = Csr::from_edges(n, &el, Directedness::Undirected);
    let root = (0..n).find(|&v| csr.degree(v) > 0).unwrap_or(0) as u64;
    g.throughput(Throughput::Elements(el.len() as u64));
    g.bench_function("dijkstra_s14", |b| b.iter(|| black_box(dijkstra(&csr, root).reached_count())));
    g.bench_function("delta_stepping_s14", |b| {
        b.iter(|| black_box(delta_stepping(&csr, root, 0.125).reached_count()))
    });
    g.bench_function("parallel_delta_s14", |b| {
        b.iter(|| black_box(parallel_delta_stepping(&csr, root, 0.125).reached_count()))
    });
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet_collectives");
    g.sample_size(10);
    for ranks in [4usize, 16] {
        g.bench_with_input(BenchmarkId::new("allreduce_x100", ranks), &ranks, |b, &p| {
            b.iter(|| {
                Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
                    let mut acc = 0u64;
                    for i in 0..100 {
                        acc += ctx.allreduce_sum(i);
                    }
                    black_box(acc)
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("alltoallv_1k_records", ranks), &ranks, |b, &p| {
            b.iter(|| {
                Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
                    let out: Vec<Vec<u64>> =
                        (0..ctx.size()).map(|d| vec![d as u64; 1024 / ctx.size()]).collect();
                    black_box(ctx.alltoallv(out).len())
                })
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_generator,
    bench_csr_build,
    bench_bucket_queue,
    bench_codec,
    bench_varint,
    bench_sssp_kernels,
    bench_collectives
);
criterion_main!(benches);
