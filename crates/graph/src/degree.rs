//! Degree statistics.
//!
//! Kronecker graphs are heavily skewed; the degree distribution (experiment
//! F7) is what motivates the degree-aware partitioner. This module computes
//! summary statistics and the log-binned CCDF the figure plots.

use crate::csr::Csr;
use rayon::prelude::*;

/// Summary statistics of an out-degree sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Vertex count.
    pub n: usize,
    /// Arc count (sum of degrees).
    pub arcs: usize,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// 99th-percentile degree.
    pub p99: usize,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
    /// Fraction of all arcs incident to the top 1% highest-degree vertices —
    /// the skew measure that justifies hub extraction.
    pub top1pct_arc_share: f64,
}

impl DegreeStats {
    /// Compute statistics from an explicit degree sequence.
    pub fn from_degrees(degrees: &[usize]) -> Self {
        let n = degrees.len();
        if n == 0 {
            return Self {
                n: 0,
                arcs: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0,
                p99: 0,
                isolated: 0,
                top1pct_arc_share: 0.0,
            };
        }
        let arcs: usize = degrees.par_iter().sum();
        let mut sorted = degrees.to_vec();
        sorted.par_sort_unstable();
        let isolated = sorted.iter().take_while(|&&d| d == 0).count();
        let top = (n / 100).max(1);
        let top_arcs: usize = sorted[n - top..].iter().sum();
        Self {
            n,
            arcs,
            min: sorted[0],
            max: sorted[n - 1],
            mean: arcs as f64 / n as f64,
            median: sorted[n / 2],
            p99: sorted[(n as f64 * 0.99) as usize % n],
            isolated,
            top1pct_arc_share: if arcs == 0 {
                0.0
            } else {
                top_arcs as f64 / arcs as f64
            },
        }
    }

    /// Compute statistics for a CSR's out-degrees.
    pub fn from_csr(csr: &Csr) -> Self {
        let degrees: Vec<usize> = (0..csr.num_vertices()).map(|u| csr.degree(u)).collect();
        Self::from_degrees(&degrees)
    }
}

/// `(degree, count-of-vertices-with->=-degree)` points on power-of-two
/// boundaries — the complementary CDF a log-log degree plot uses.
pub fn ccdf_pow2(degrees: &[usize]) -> Vec<(usize, usize)> {
    let max = degrees.iter().copied().max().unwrap_or(0);
    let mut out = Vec::new();
    let mut d = 1usize;
    while d <= max.max(1) {
        let count = degrees.iter().filter(|&&x| x >= d).count();
        out.push((d, count));
        if d > max {
            break;
        }
        d *= 2;
    }
    out
}

/// Least-squares slope of `log(ccdf)` vs `log(degree)` — the (negative)
/// power-law exponent estimate printed by experiment F7.
pub fn powerlaw_slope(ccdf: &[(usize, usize)]) -> f64 {
    let pts: Vec<(f64, f64)> = ccdf
        .iter()
        .filter(|&&(d, c)| d > 0 && c > 0)
        .map(|&(d, c)| ((d as f64).ln(), (c as f64).ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return 0.0;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Directedness;
    use crate::edgelist::EdgeList;
    use crate::types::WEdge;

    #[test]
    fn stats_on_simple_sequence() {
        let s = DegreeStats::from_degrees(&[0, 1, 2, 3, 4]);
        assert_eq!(s.n, 5);
        assert_eq!(s.arcs, 10);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 4);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2);
        assert_eq!(s.isolated, 1);
    }

    #[test]
    fn stats_empty() {
        let s = DegreeStats::from_degrees(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.arcs, 0);
    }

    #[test]
    fn star_graph_is_maximally_skewed() {
        let mut el = EdgeList::new();
        for i in 1..101 {
            el.push(WEdge::new(0, i, 1.0));
        }
        let csr = Csr::from_edges(101, &el, Directedness::Undirected);
        let s = DegreeStats::from_csr(&csr);
        assert_eq!(s.max, 100);
        assert_eq!(s.median, 1);
        // hub (top 1% = 1 vertex of 101) owns half of all arcs
        assert!(s.top1pct_arc_share > 0.49, "share {}", s.top1pct_arc_share);
    }

    #[test]
    fn ccdf_monotone_nonincreasing() {
        let degrees = vec![1usize, 1, 2, 3, 8, 16, 16, 100];
        let ccdf = ccdf_pow2(&degrees);
        assert_eq!(ccdf[0], (1, 8));
        for w in ccdf.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
    }

    #[test]
    fn powerlaw_slope_of_exact_powerlaw() {
        // ccdf(d) = 1024 / d  → slope -1
        let ccdf: Vec<(usize, usize)> = (0..10).map(|i| (1usize << i, 1024usize >> i)).collect();
        let slope = powerlaw_slope(&ccdf);
        assert!((slope + 1.0).abs() < 1e-9, "slope {slope}");
    }
}
