//! The near-far worklist method (Davidson et al.).
//!
//! A two-bucket relative of delta-stepping: maintain a *near* worklist of
//! vertices whose tentative distance falls below a moving threshold and a
//! *far* list for the rest. Drain near to fixpoint, then advance the
//! threshold by Δ and split far again. With an infinite Δ this degenerates
//! to Bellman-Ford; with Δ → 0 it approaches Dijkstra — bracketing exactly
//! the trade-off the Δ-sweep experiment (F3) explores for the real kernel.

use g500_graph::{Csr, ShortestPaths, VertexId, Weight};

/// Near-far single-source shortest paths with threshold step `delta`.
pub fn near_far(graph: &Csr, root: VertexId, delta: Weight) -> ShortestPaths {
    assert!(delta > 0.0, "delta must be positive");
    let n = graph.num_vertices();
    let mut sp = ShortestPaths::with_root(n, root);
    let mut threshold = delta;
    let mut near: Vec<usize> = vec![root as usize];
    let mut far: Vec<usize> = Vec::new();

    loop {
        // Drain the near set to fixpoint under the current threshold.
        while let Some(u) = near.pop() {
            let du = sp.dist[u];
            if du >= threshold {
                far.push(u); // demoted: improved past the threshold earlier
                continue;
            }
            for (v, w) in graph.arcs(u) {
                let v = v as usize;
                let nd = du + w;
                if nd < sp.dist[v] {
                    sp.dist[v] = nd;
                    sp.parent[v] = u as u64;
                    if nd < threshold {
                        near.push(v);
                    } else {
                        far.push(v);
                    }
                }
            }
        }
        if far.is_empty() {
            return sp;
        }
        // Advance the threshold and split the far list. Entries are stale
        // (a vertex may appear multiple times or have improved); filter by the
        // *current* distance.
        let min_far = far
            .iter()
            .map(|&v| sp.dist[v])
            .fold(f32::INFINITY, f32::min);
        threshold = (min_far + delta).max(threshold + delta);
        let mut new_far = Vec::with_capacity(far.len());
        for v in far.drain(..) {
            if sp.dist[v] < threshold {
                near.push(v);
            } else {
                new_far.push(v);
            }
        }
        far = new_far;
        if near.is_empty() && far.is_empty() {
            return sp;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use g500_graph::Directedness;

    #[test]
    fn matches_dijkstra_across_deltas() {
        let el = g500_gen::simple::erdos_renyi(80, 400, 11);
        let g = Csr::from_edges(80, &el, Directedness::Undirected);
        let exact = dijkstra(&g, 0);
        for delta in [0.01f32, 0.1, 0.5, 10.0] {
            let nf = near_far(&g, 0, delta);
            assert!(nf.distances_match(&exact, 1e-5), "delta {delta}");
        }
    }

    #[test]
    fn path_graph_small_delta() {
        let el = g500_gen::simple::path(20, 0.3);
        let g = Csr::from_edges(20, &el, Directedness::Undirected);
        let sp = near_far(&g, 0, 0.1);
        for v in 0..20 {
            assert!((sp.dist[v] - 0.3 * v as f32).abs() < 1e-4);
        }
    }

    #[test]
    fn star_graph_one_round() {
        let el = g500_gen::simple::star(50, 0.9);
        let g = Csr::from_edges(50, &el, Directedness::Undirected);
        let sp = near_far(&g, 0, 1.0);
        assert_eq!(sp.reached_count(), 50);
        assert!(sp.dist[1..].iter().all(|&d| (d - 0.9).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn zero_delta_rejected() {
        let el = g500_gen::simple::path(2, 1.0);
        let g = Csr::from_edges(2, &el, Directedness::Undirected);
        near_far(&g, 0, 0.0);
    }
}
