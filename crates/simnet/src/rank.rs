//! Per-rank execution context: mailboxes, virtual clock, point-to-point
//! messaging.
//!
//! A [`RankCtx`] is handed to the SPMD closure for each rank. It owns the
//! rank's receive channel, sender handles to every peer, the rank's virtual
//! clock, and its traffic counters. Message *matching* follows MPI: a
//! receive names `(source, tag)` and non-matching envelopes are parked in a
//! pending queue — this is what keeps back-to-back collectives from stealing
//! each other's traffic even when ranks run arbitrarily skewed.

use crate::cost::{ComputeModel, LogGP, Topology};
use crate::stats::NetStats;
use crate::wire::{decode_vec, encode_slice, Wire};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Message tag. Application tags must be `< TAG_COLLECTIVE_BASE`.
pub type Tag = u64;

/// Tags at or above this value are reserved for internal collectives.
pub const TAG_COLLECTIVE_BASE: Tag = 1 << 48;

#[derive(Debug)]
pub(crate) struct Envelope {
    pub src: usize,
    pub tag: Tag,
    /// Virtual time at which the payload is available at the receiver.
    pub arrive: f64,
    pub payload: Vec<u8>,
}

/// Which accounting bucket a send belongs to.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum TrafficClass {
    User,
    Collective,
}

/// The per-rank handle: identity, clock, mailbox, counters.
pub struct RankCtx {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    pending: VecDeque<Envelope>,
    now: f64,
    loggp: LogGP,
    topo: Topology,
    compute: ComputeModel,
    stats: NetStats,
    pub(crate) coll_seq: u64,
    subcomm_counter: u64,
    /// Set when any rank panics; waiting ranks notice and abort too, so a
    /// single fault fail-stops the whole job instead of deadlocking it.
    abort: Arc<AtomicBool>,
}

impl RankCtx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Envelope>>,
        rx: Receiver<Envelope>,
        loggp: LogGP,
        topo: Topology,
        compute: ComputeModel,
        abort: Arc<AtomicBool>,
    ) -> Self {
        Self {
            rank,
            size,
            senders,
            rx,
            pending: VecDeque::new(),
            now: 0.0,
            loggp,
            topo,
            compute,
            stats: NetStats::default(),
            coll_seq: 0,
            subcomm_counter: 0,
            abort,
        }
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The rank's virtual clock, in simulated seconds since launch.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Snapshot of the traffic counters so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    pub(crate) fn into_stats(self) -> (NetStats, f64) {
        (self.stats, self.now)
    }

    pub(crate) fn bump_collective(&mut self) {
        self.stats.collectives += 1;
    }

    pub(crate) fn bump_barrier(&mut self) {
        self.stats.barriers += 1;
    }

    /// Allocate the next sub-communicator namespace id. SPMD programs call
    /// `split` in the same order everywhere, so ids agree globally.
    pub(crate) fn next_subcomm_id(&mut self) -> u64 {
        let id = self.subcomm_counter;
        self.subcomm_counter += 1;
        id
    }

    /// Charge `ops` abstract compute operations (edge relaxations, vertex
    /// scans) against the virtual clock.
    pub fn charge_compute(&mut self, ops: u64) {
        let dt = self.compute.seconds(ops);
        self.now += dt;
        self.stats.compute_s += dt;
    }

    /// Charge an explicit number of simulated seconds of compute (for costs
    /// that are not op-shaped, e.g. a modeled sort).
    pub fn charge_seconds(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0);
        self.now += dt;
        self.stats.compute_s += dt;
    }

    pub(crate) fn send_bytes_class(
        &mut self,
        dest: usize,
        tag: Tag,
        payload: Vec<u8>,
        class: TrafficClass,
    ) {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        let bytes = payload.len() as u64;
        match class {
            TrafficClass::User => {
                debug_assert!(tag < TAG_COLLECTIVE_BASE, "tag collides with collective space");
                self.stats.user_msgs += 1;
                self.stats.user_bytes += bytes;
            }
            TrafficClass::Collective => {
                self.stats.coll_msgs += 1;
                self.stats.coll_bytes += bytes;
            }
        }
        // Sender-side overhead.
        self.now += self.loggp.overhead;
        self.stats.comm_s += self.loggp.overhead;
        let hops = self.topo.hops(self.rank, dest);
        let arrive = self.now + self.loggp.transit(payload.len(), hops);
        let env = Envelope { src: self.rank, tag, arrive, payload };
        self.senders[dest].send(env).expect("peer rank hung up (panicked?)");
    }

    /// Send a raw byte payload to `dest` with `tag`.
    pub fn send_bytes(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) {
        self.send_bytes_class(dest, tag, payload, TrafficClass::User);
    }

    /// Send a slice of typed records.
    pub fn send<T: Wire>(&mut self, dest: usize, tag: Tag, items: &[T]) {
        self.send_bytes(dest, tag, encode_slice(items));
    }

    pub(crate) fn recv_bytes_class(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        // First look in the pending queue.
        if let Some(idx) = self.pending.iter().position(|e| e.src == src && e.tag == tag) {
            let env = self.pending.remove(idx).expect("index just found");
            return self.consume(env);
        }
        // Otherwise pull from the channel, parking non-matching envelopes.
        // Poll with a timeout so a fault elsewhere (abort flag) is noticed
        // instead of waiting forever on a message that will never come.
        loop {
            match self.rx.recv_timeout(Duration::from_millis(5)) {
                Ok(env) => {
                    if env.src == src && env.tag == tag {
                        return self.consume(env);
                    }
                    self.pending.push_back(env);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.abort.load(Ordering::Acquire) {
                        panic!(
                            "rank {}: job aborted — another rank failed while this rank \
                             was waiting for ({src}, tag {tag})",
                            self.rank
                        );
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!(
                        "rank {}: all peers hung up while waiting for ({src}, tag {tag})",
                        self.rank
                    );
                }
            }
        }
    }

    fn consume(&mut self, env: Envelope) -> Vec<u8> {
        // Wait until the payload has arrived in virtual time, then pay the
        // receiver-side overhead.
        if env.arrive > self.now {
            self.stats.comm_s += env.arrive - self.now;
            self.now = env.arrive;
        }
        self.now += self.loggp.overhead;
        self.stats.comm_s += self.loggp.overhead;
        env.payload
    }

    /// Receive the raw payload of the next message from `(src, tag)`.
    /// Blocks (in host time) until it arrives.
    pub fn recv_bytes(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        self.recv_bytes_class(src, tag)
    }

    /// Receive a slice of typed records from `(src, tag)`.
    ///
    /// Panics if the payload does not decode as a whole number of `T`s —
    /// that is always a program bug (mismatched send/recv types), not a
    /// runtime condition.
    pub fn recv<T: Wire>(&mut self, src: usize, tag: Tag) -> Vec<T> {
        decode_vec(&self.recv_bytes(src, tag))
            .expect("payload does not decode as the receiver's record type")
    }

    /// Convenience: send a single record.
    pub fn send_one<T: Wire>(&mut self, dest: usize, tag: Tag, item: T) {
        self.send(dest, tag, &[item]);
    }

    /// Convenience: receive exactly one record.
    pub fn recv_one<T: Wire>(&mut self, src: usize, tag: Tag) -> T {
        let mut v = self.recv::<T>(src, tag);
        assert_eq!(v.len(), 1, "expected exactly one record");
        v.pop().expect("length checked")
    }
}
