//! Machine construction and SPMD launch.

use crate::cost::{ComputeModel, LogGP, Topology};
use crate::rank::{Envelope, RankCtx};
use crate::stats::NetStats;
use crossbeam::channel::unbounded;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Configuration of a simulated machine.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Number of ranks (processes) in the job.
    pub ranks: usize,
    /// Per-message cost parameters.
    pub loggp: LogGP,
    /// Interconnect topology.
    pub topology: Topology,
    /// Per-rank compute throughput.
    pub compute: ComputeModel,
}

impl MachineConfig {
    /// `ranks` ranks on a crossbar with default LogGP/compute constants.
    pub fn with_ranks(ranks: usize) -> Self {
        Self {
            ranks,
            loggp: LogGP::default(),
            topology: Topology::Crossbar,
            compute: ComputeModel::default(),
        }
    }

    /// Builder-style topology override.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Builder-style LogGP override.
    pub fn loggp(mut self, l: LogGP) -> Self {
        self.loggp = l;
        self
    }

    /// Builder-style compute-model override.
    pub fn compute(mut self, c: ComputeModel) -> Self {
        self.compute = c;
        self
    }
}

/// What a run produced: per-rank results and accounting.
#[derive(Debug)]
pub struct SimReport<R> {
    /// Return value of the SPMD closure on each rank, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank traffic/time counters, indexed by rank.
    pub stats: Vec<NetStats>,
    /// Simulated job time: the maximum final virtual clock over ranks.
    pub sim_time_s: f64,
    /// Host wall-clock seconds the simulation itself took.
    pub wall_time_s: f64,
}

impl<R> SimReport<R> {
    /// Aggregate traffic over all ranks.
    pub fn total_stats(&self) -> NetStats {
        crate::stats::aggregate(&self.stats)
    }
}

/// A simulated machine, ready to run SPMD jobs.
pub struct Machine {
    cfg: MachineConfig,
}

impl Machine {
    /// Build a machine from `cfg`. Panics if `cfg.ranks == 0`.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.ranks > 0, "a machine needs at least one rank");
        Machine { cfg }
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Run `f` as an SPMD program: one OS thread per rank, each receiving
    /// its own [`RankCtx`]. Returns when every rank's closure returns.
    ///
    /// A panic on any rank propagates out of `run` (with the rank id in the
    /// message), mirroring a fail-stop job abort.
    pub fn run<R, F>(&self, f: F) -> SimReport<R>
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        let p = self.cfg.ranks;
        let start = std::time::Instant::now();
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..p).map(|_| unbounded::<Envelope>()).unzip();
        let abort = Arc::new(AtomicBool::new(false));

        let outcome: Vec<(R, NetStats, f64)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let senders = senders.clone();
                let cfg = self.cfg;
                let f = &f;
                let abort = Arc::clone(&abort);
                let h = std::thread::Builder::new()
                    .name(format!("simnet-rank-{rank}"))
                    .spawn_scoped(scope, move || {
                        let mut ctx = RankCtx::new(
                            rank,
                            p,
                            senders,
                            rx,
                            cfg.loggp,
                            cfg.topology,
                            cfg.compute,
                            Arc::clone(&abort),
                        );
                        // Fail-stop semantics: a panic on one rank raises the
                        // abort flag so peers blocked in recv abort too,
                        // instead of deadlocking the job.
                        let r = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || f(&mut ctx),
                        )) {
                            Ok(r) => r,
                            Err(payload) => {
                                abort.store(true, Ordering::Release);
                                std::panic::resume_unwind(payload);
                            }
                        };
                        let (stats, now) = ctx.into_stats();
                        (r, stats, now)
                    })
                    .expect("spawning a rank thread");
                handles.push(h);
            }
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| {
                    h.join().unwrap_or_else(|payload| {
                        // surface the original panic text so job aborts are
                        // debuggable from the top-level message
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic payload>".into());
                        panic!("rank {rank} panicked: {msg}")
                    })
                })
                .collect()
        });

        let mut results = Vec::with_capacity(p);
        let mut stats = Vec::with_capacity(p);
        let mut sim_time_s: f64 = 0.0;
        for (r, s, now) in outcome {
            results.push(r);
            stats.push(s);
            sim_time_s = sim_time_s.max(now);
        }
        SimReport { results, stats, sim_time_s, wall_time_s: start.elapsed().as_secs_f64() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let rep = Machine::new(MachineConfig::with_ranks(1)).run(|ctx| {
            ctx.charge_compute(1_000_000);
            ctx.rank()
        });
        assert_eq!(rep.results, vec![0]);
        assert!(rep.sim_time_s > 0.0);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let rep = Machine::new(MachineConfig::with_ranks(2)).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, &[1u64, 2, 3]);
                ctx.recv::<u64>(1, 8)
            } else {
                let got = ctx.recv::<u64>(0, 7);
                ctx.send(0, 8, &[got.iter().sum::<u64>()]);
                got
            }
        });
        assert_eq!(rep.results[0], vec![6]);
        assert_eq!(rep.results[1], vec![1, 2, 3]);
        // one user message each way
        assert_eq!(rep.stats[0].user_msgs, 1);
        assert_eq!(rep.stats[1].user_msgs, 1);
    }

    #[test]
    fn tag_matching_reorders() {
        // Rank 0 sends tag 2 then tag 1; rank 1 receives tag 1 first.
        let rep = Machine::new(MachineConfig::with_ranks(2)).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send_one(1, 2, 222u64);
                ctx.send_one(1, 1, 111u64);
                0
            } else {
                let first: u64 = ctx.recv_one(0, 1);
                let second: u64 = ctx.recv_one(0, 2);
                assert_eq!((first, second), (111, 222));
                1
            }
        });
        assert_eq!(rep.results, vec![0, 1]);
    }

    #[test]
    fn virtual_time_accounts_for_transit() {
        let cfg = MachineConfig::with_ranks(2);
        let rep = Machine::new(cfg).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send_one(1, 1, 42u64);
            } else {
                let _: u64 = ctx.recv_one(0, 1);
            }
            ctx.now()
        });
        // receiver's clock must include latency + overheads
        assert!(rep.results[1] >= cfg.loggp.latency);
        assert!(rep.sim_time_s >= rep.results[1]);
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn rank_panic_propagates() {
        // Rank 1 fails; ranks that would wait on it must not deadlock.
        Machine::new(MachineConfig::with_ranks(2)).run(|ctx| {
            if ctx.rank() == 1 {
                panic!("injected fault");
            }
            // rank 0 blocks on a message that will never come; the channel
            // disconnect from rank 1's teardown unblocks it with a panic.
            ctx.recv::<u64>(1, 9);
        });
    }

    #[test]
    fn results_are_rank_ordered() {
        let rep = Machine::new(MachineConfig::with_ranks(8)).run(|ctx| ctx.rank() * 10);
        assert_eq!(rep.results, (0..8).map(|r| r * 10).collect::<Vec<_>>());
    }
}
