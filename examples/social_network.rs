//! Social-network analysis: the workload class Graph500 models.
//!
//! Kronecker graphs mimic social networks: power-law degrees, tiny
//! diameter, one giant component. This example runs the kind of analysis a
//! downstream user would: profile the degree skew, find the hubs, and
//! measure "degrees of separation" (BFS levels) and weighted reach (SSSP)
//! from a hub versus from a peripheral user.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use g500_gen::{KroneckerGenerator, KroneckerParams};
use g500_graph::degree::{ccdf_pow2, powerlaw_slope};
use g500_graph::{Csr, DegreeStats, Directedness};
use g500_sssp::{delta_stepping, suggest_delta};

fn main() {
    let scale = 14u32; // 16k "users", ~260k "friendships"
    let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, 7));
    let el = gen.generate_all();
    let n = gen.params().num_vertices() as usize;
    let csr = Csr::from_edges(n, &el, Directedness::Undirected);

    // --- degree profile ---
    let degrees: Vec<usize> = (0..n).map(|v| csr.degree(v)).collect();
    let stats = DegreeStats::from_degrees(&degrees);
    let slope = powerlaw_slope(&ccdf_pow2(&degrees));
    println!("network: {} users, {} friendships", n, el.len());
    println!(
        "degree:  mean {:.1}, median {}, max {} — power-law slope {:.2}",
        stats.mean, stats.median, stats.max, slope
    );
    println!(
        "skew:    top 1% of users hold {:.0}% of all connections\n",
        100.0 * stats.top1pct_arc_share
    );

    // --- hubs vs periphery ---
    let hub = (0..n).max_by_key(|&v| degrees[v]).expect("non-empty");
    let leaf = (0..n).find(|&v| degrees[v] == 1).unwrap_or(0);
    println!("hub user:        {} ({} connections)", hub, degrees[hub]);
    println!("peripheral user: {} ({} connection)\n", leaf, degrees[leaf]);

    // --- weighted reach (tie strength = edge weight) ---
    let delta = suggest_delta(stats.mean, 0.5);
    for (label, start) in [("hub", hub), ("periphery", leaf)] {
        let sp = delta_stepping(&csr, start as u64, delta);
        let reached = sp.reached_count();
        let dists: Vec<f32> = sp.dist.iter().copied().filter(|d| d.is_finite()).collect();
        let mean_d = dists.iter().map(|&d| d as f64).sum::<f64>() / dists.len() as f64;
        let max_d = dists.iter().copied().fold(0.0f32, f32::max);
        println!(
            "from {label:>9}: reaches {reached} users, mean tie-distance {mean_d:.3}, eccentricity {max_d:.3}"
        );
    }

    // --- degrees of separation (unweighted levels via unit weights) ---
    let unit_el: g500_graph::EdgeList = el
        .iter()
        .map(|mut e| {
            e.w = 1.0;
            e
        })
        .collect();
    let unit = Csr::from_edges(n, &unit_el, Directedness::Undirected);
    let sp = delta_stepping(&unit, hub as u64, 1.0);
    let mut histogram = std::collections::BTreeMap::<u32, usize>::new();
    for &d in &sp.dist {
        if d.is_finite() {
            *histogram.entry(d as u32).or_insert(0) += 1;
        }
    }
    println!("\ndegrees of separation from the hub:");
    for (hops, count) in &histogram {
        println!(
            "  {hops} hops: {count:>6} users {}",
            "*".repeat((*count / 200).min(60))
        );
    }
    let diameter = histogram.keys().max().copied().unwrap_or(0);
    println!(
        "effective diameter from hub: {diameter} hops — the small world the benchmark stresses"
    );
}
