//! F4 — Per-bucket time breakdown: where an SSSP run spends its life.
//!
//! One root, per-bucket phase records: frontier volume, compute seconds,
//! communication seconds. The early buckets carry almost all the work
//! (dense frontiers); the long tail of late buckets is tiny but each still
//! pays full superstep latency — the figure that motivates bucket fusion.
//! Printed twice: fusion off (the problem) and fusion on (the fix).
//!
//! Overrides: `G500_SCALE` (15), `G500_RANKS` (8).

use g500_bench::{banner, param, secs, Table};
use g500_sssp::OptConfig;
use graph500::{run_sssp_benchmark, BenchmarkConfig};

fn show(label: &str, opts: OptConfig, scale: u32, ranks: usize) {
    let mut cfg = BenchmarkConfig::graph500(scale, ranks);
    cfg.num_roots = 1;
    cfg.validate = false;
    cfg.opts = opts.with_phases();
    let rep = run_sssp_benchmark(&cfg);
    let run = &rep.runs[0];
    println!(
        "--- {label}: {} supersteps, {} buckets ---",
        run.stats.supersteps, run.stats.buckets
    );
    let t = Table::new(&["bucket", "frontier", "compute", "comm", "comm_share%"]);
    let phases = &run.stats.phases;
    // print the first 8 buckets and aggregate the tail
    for ph in phases.iter().take(8) {
        let total = ph.compute_s + ph.comm_s;
        t.row(&[
            ph.bucket.to_string(),
            ph.frontier.to_string(),
            secs(ph.compute_s),
            secs(ph.comm_s),
            format!(
                "{:.1}",
                if total > 0.0 {
                    100.0 * ph.comm_s / total
                } else {
                    0.0
                }
            ),
        ]);
    }
    if phases.len() > 8 {
        let (f, c, m) = phases.iter().skip(8).fold((0u64, 0.0, 0.0), |acc, p| {
            (acc.0 + p.frontier, acc.1 + p.compute_s, acc.2 + p.comm_s)
        });
        let total = c + m;
        t.row(&[
            format!("tail({})", phases.len() - 8),
            f.to_string(),
            secs(c),
            secs(m),
            format!("{:.1}", if total > 0.0 { 100.0 * m / total } else { 0.0 }),
        ]);
    }
    println!();
}

fn main() {
    let scale = param("G500_SCALE", 15) as u32;
    let ranks = param("G500_RANKS", 8) as usize;
    banner(
        "F4",
        "per-bucket time breakdown",
        &[("scale", scale.to_string()), ("ranks", ranks.to_string())],
    );

    show(
        "fusion OFF",
        OptConfig::all_on().without_fusion(),
        scale,
        ranks,
    );
    show("fusion ON", OptConfig::all_on(), scale, ranks);
    println!("expected shape: early buckets compute-heavy; the tail is comm/sync-dominated and fusion collapses it");
}
