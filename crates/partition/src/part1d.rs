//! One-dimensional vertex partitions: contiguous blocks and cyclic striping.

use crate::VertexPartition;
use g500_graph::VertexId;

/// Balanced contiguous blocks: rank `r` owns an interval of vertices, with
/// the first `n mod p` ranks owning one extra. Preserves locality of id
/// ranges (good for compression), but concentrates hubs if labels correlate
/// with degree — which is why the hybrid partition exists.
#[derive(Clone, Copy, Debug)]
pub struct Block1D {
    n: u64,
    p: usize,
}

impl Block1D {
    /// Partition `n` vertices over `p` ranks.
    pub fn new(n: u64, p: usize) -> Self {
        assert!(p > 0, "need at least one rank");
        Self { n, p }
    }

    #[inline]
    fn base(&self) -> u64 {
        self.n / self.p as u64
    }

    #[inline]
    fn rem(&self) -> u64 {
        self.n % self.p as u64
    }

    /// First global id owned by `rank`.
    #[inline]
    pub fn start_of(&self, rank: usize) -> u64 {
        let r = rank as u64;
        self.base() * r + r.min(self.rem())
    }
}

impl VertexPartition for Block1D {
    fn num_ranks(&self) -> usize {
        self.p
    }

    fn num_vertices(&self) -> u64 {
        self.n
    }

    fn owner(&self, v: VertexId) -> usize {
        debug_assert!(v < self.n);
        let base = self.base();
        let rem = self.rem();
        let big = rem * (base + 1); // ids covered by the size-(base+1) ranks
        if v < big {
            (v / (base + 1)) as usize
        } else {
            (rem + (v - big) / base.max(1)) as usize
        }
    }

    fn to_local(&self, v: VertexId) -> usize {
        (v - self.start_of(self.owner(v))) as usize
    }

    fn to_global(&self, rank: usize, local: usize) -> VertexId {
        self.start_of(rank) + local as u64
    }

    fn local_count(&self, rank: usize) -> usize {
        (self.base() + ((rank as u64) < self.rem()) as u64) as usize
    }
}

/// Cyclic striping: vertex `v` lives on rank `v mod p` at local index
/// `v div p`. Spreads consecutive ids — and therefore hubs clustered by a
/// degree-descending relabel — uniformly over ranks.
#[derive(Clone, Copy, Debug)]
pub struct Cyclic1D {
    n: u64,
    p: usize,
}

impl Cyclic1D {
    /// Partition `n` vertices over `p` ranks.
    pub fn new(n: u64, p: usize) -> Self {
        assert!(p > 0, "need at least one rank");
        Self { n, p }
    }
}

impl VertexPartition for Cyclic1D {
    fn num_ranks(&self) -> usize {
        self.p
    }

    fn num_vertices(&self) -> u64 {
        self.n
    }

    fn owner(&self, v: VertexId) -> usize {
        debug_assert!(v < self.n);
        (v % self.p as u64) as usize
    }

    fn to_local(&self, v: VertexId) -> usize {
        (v / self.p as u64) as usize
    }

    fn to_global(&self, rank: usize, local: usize) -> VertexId {
        local as u64 * self.p as u64 + rank as u64
    }

    fn local_count(&self, rank: usize) -> usize {
        let p = self.p as u64;
        let r = rank as u64;
        (self.n / p + ((self.n % p) > r) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bijection<P: VertexPartition>(part: &P) {
        let n = part.num_vertices();
        let p = part.num_ranks();
        let total: usize = (0..p).map(|r| part.local_count(r)).sum();
        assert_eq!(total as u64, n, "local counts must cover the vertex set");
        for v in 0..n {
            let r = part.owner(v);
            assert!(r < p);
            let l = part.to_local(v);
            assert!(
                l < part.local_count(r),
                "local {l} vs count {}",
                part.local_count(r)
            );
            assert_eq!(part.to_global(r, l), v);
        }
        for r in 0..p {
            for l in 0..part.local_count(r) {
                let v = part.to_global(r, l);
                assert_eq!(part.owner(v), r);
                assert_eq!(part.to_local(v), l);
            }
        }
    }

    #[test]
    fn block_bijection_even_and_ragged() {
        check_bijection(&Block1D::new(100, 4));
        check_bijection(&Block1D::new(101, 4));
        check_bijection(&Block1D::new(7, 3));
        check_bijection(&Block1D::new(3, 8)); // more ranks than vertices
        check_bijection(&Block1D::new(0, 2));
    }

    #[test]
    fn cyclic_bijection() {
        check_bijection(&Cyclic1D::new(100, 4));
        check_bijection(&Cyclic1D::new(101, 4));
        check_bijection(&Cyclic1D::new(3, 8));
        check_bijection(&Cyclic1D::new(0, 2));
    }

    #[test]
    fn block_is_contiguous() {
        let part = Block1D::new(10, 3); // sizes 4, 3, 3
        assert_eq!(part.local_count(0), 4);
        assert_eq!(part.local_count(1), 3);
        assert_eq!(part.start_of(1), 4);
        assert_eq!(part.owner(3), 0);
        assert_eq!(part.owner(4), 1);
    }

    #[test]
    fn cyclic_spreads_consecutive_ids() {
        let part = Cyclic1D::new(100, 4);
        let owners: Vec<_> = (0..8).map(|v| part.owner(v)).collect();
        assert_eq!(owners, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }
}
