//! Microbenchmarks for the hot kernels: generator throughput, CSR
//! construction, bucket-queue operations, the update codec, sequential SSSP
//! kernels, and simnet collectives.
//!
//! These complement the experiment harnesses (`src/bin/*`): the harnesses
//! measure *simulated* time on the modeled machine, these measure *host*
//! time of the real Rust kernels. The harness is a self-contained timing
//! loop (`harness = false`): the workspace is offline and carries no
//! criterion, and a median-of-samples loop is enough to spot order-of-
//! magnitude regressions. Run with `cargo bench -p g500-bench`.
//!
//! Besides the text table, the run finishes with a thread-count sweep over
//! the pool-parallel hot kernels (re-exec'd children under
//! `G500_THREADS ∈ {1,2,4}`, since the pool is fixed at first use) and
//! writes the medians to `results/bench_micro.json` at the workspace root.

use g500_baselines::dijkstra;
use g500_bench::micro;
use g500_gen::{KroneckerGenerator, KroneckerParams};
use g500_graph::{compress, Csr, Directedness};
use g500_sssp::codec::{decode_updates, dedup_min, encode_updates, Update};
use g500_sssp::{delta_stepping, parallel_delta_stepping, BucketQueue};
use graph500::simnet::{Machine, MachineConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Run `f` `samples` times and report the median wall time, scaled by
/// `elements` into a throughput figure.
fn bench(name: &str, elements: u64, samples: usize, mut f: impl FnMut()) {
    // one warmup to populate caches / page in data
    f();
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    let rate = if median > 0.0 {
        elements as f64 / median
    } else {
        f64::INFINITY
    };
    println!(
        "{name:<40} {:>12.3} ms   {:>12.3e} elem/s",
        median * 1e3,
        rate
    );
}

fn bench_generator() {
    for scale in [14u32, 16] {
        let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, 1));
        let m = gen.params().num_edges();
        bench(&format!("generator/kronecker_all/{scale}"), m, 5, || {
            black_box(gen.generate_all().len());
        });
    }
}

fn bench_csr_build() {
    for scale in [14u32, 16] {
        let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, 1));
        let el = gen.generate_all();
        let n = gen.params().num_vertices() as usize;
        bench(
            &format!("csr/build_undirected/{scale}"),
            el.len() as u64,
            5,
            || {
                black_box(Csr::from_edges(n, &el, Directedness::Undirected).num_arcs());
            },
        );
    }
}

fn bench_bucket_queue() {
    let n = 100_000u32;
    bench("bucket_queue/insert_drain_100k", n as u64, 10, || {
        let mut q = BucketQueue::new(0.1);
        for i in 0..n {
            q.insert(i, (i % 977) as f32 * 0.01);
        }
        let mut popped = 0usize;
        while let Some(k) = q.min_bucket() {
            popped += q.take_bucket(k).len();
        }
        black_box(popped);
    });
}

fn bench_codec() {
    let updates: Vec<Update> = (0..10_000u64)
        .map(|i| (1_000_000 + i * 3, 0.5 + (i % 7) as f32, i))
        .collect();
    bench("update_codec/encode_10k", updates.len() as u64, 20, || {
        black_box(encode_updates(&updates, true).len());
    });
    let enc = encode_updates(&updates, true);
    bench("update_codec/decode_10k", updates.len() as u64, 20, || {
        black_box(decode_updates(&enc).expect("well-formed").len());
    });
    bench(
        "update_codec/dedup_10k_half_dup",
        updates.len() as u64,
        20,
        || {
            let mut v = updates.clone();
            v.extend(updates.iter().map(|&(t, d, p)| (t, d + 0.1, p)));
            black_box(dedup_min(&mut v));
        },
    );
}

fn bench_varint() {
    let adj: Vec<u64> = (0..10_000u64).map(|i| i * 7 + 1_000_000).collect();
    bench("varint/encode_adjacency_10k", adj.len() as u64, 20, || {
        black_box(compress::encode_adjacency(&adj).len());
    });
    let enc = compress::encode_adjacency(&adj);
    bench("varint/decode_adjacency_10k", adj.len() as u64, 20, || {
        black_box(compress::decode_adjacency(&enc).expect("well-formed").len());
    });
}

fn bench_sssp_kernels() {
    let gen = KroneckerGenerator::new(KroneckerParams::graph500(14, 1));
    let el = gen.generate_all();
    let n = gen.params().num_vertices() as usize;
    let csr = Csr::from_edges(n, &el, Directedness::Undirected);
    let root = (0..n).find(|&v| csr.degree(v) > 0).unwrap_or(0) as u64;
    let m = el.len() as u64;
    bench("sssp_seq/dijkstra_s14", m, 5, || {
        black_box(dijkstra(&csr, root).reached_count());
    });
    bench("sssp_seq/delta_stepping_s14", m, 5, || {
        black_box(delta_stepping(&csr, root, 0.125).reached_count());
    });
    bench("sssp_seq/parallel_delta_s14", m, 5, || {
        black_box(parallel_delta_stepping(&csr, root, 0.125).reached_count());
    });
}

fn bench_collectives() {
    for ranks in [4usize, 16] {
        bench(&format!("simnet/allreduce_x100/{ranks}"), 100, 5, || {
            Machine::new(MachineConfig::with_ranks(ranks)).run(|ctx| {
                let mut acc = 0u64;
                for i in 0..100 {
                    acc += ctx.allreduce_sum(i);
                }
                black_box(acc)
            });
        });
        bench(
            &format!("simnet/alltoallv_1k_records/{ranks}"),
            1024,
            5,
            || {
                Machine::new(MachineConfig::with_ranks(ranks)).run(|ctx| {
                    let out: Vec<Vec<u64>> = (0..ctx.size())
                        .map(|d| vec![d as u64; 1024 / ctx.size()])
                        .collect();
                    black_box(ctx.alltoallv(out).len())
                });
            },
        );
    }
}

// ---------------------------------------------------------------------------
// Thread-count sweep → results/bench_micro.json
//
// The heavy lifting lives in `g500_bench::micro`, shared with the CI perf
// gate (`src/bin/perf_gate.rs`): the pool is process-global and fixed at
// first use, so the sweep re-execs this binary once per thread count in
// `micro::SWEEP_THREADS` with `G500_BENCH_CHILD=1` set; the children run
// `micro::run_kernels()` and the parent collects their medians/p10/p90 into
// JSON. Determinism contract: the *results* of every kernel are bitwise
// identical across the sweep — only the times differ.
// ---------------------------------------------------------------------------

/// Parent half of the sweep: orchestrate children, write JSON, print a
/// human-readable speedup table.
fn bench_thread_sweep() {
    let exe = match std::env::current_exe() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("sweep: cannot locate own executable ({e}); skipping JSON emission");
            return;
        }
    };
    let sweep = micro::run_sweep(&exe);
    if sweep.is_empty() {
        eprintln!("sweep: no child runs succeeded; skipping JSON emission");
        return;
    }
    let out: PathBuf = micro::results_dir().join("bench_micro.json");
    match micro::write_sweep_json(&out, &micro::git_rev(), &sweep) {
        Ok(()) => println!("\nwrote {}", out.display()),
        Err(e) => eprintln!("sweep: could not write {}: {e}", out.display()),
    }
    // speedup table relative to the 1-thread run
    let base = sweep.iter().find(|(t, _)| *t == 1);
    println!(
        "\n{:<40} {}",
        "thread sweep (median ms)",
        sweep
            .iter()
            .map(|(t, _)| format!("{:>10}", format!("T={t}")))
            .collect::<String>()
    );
    if let Some((_, base_rows)) = base {
        for (name, base_stats) in base_rows {
            let mut row = format!("{name:<40} ");
            for (_, rows) in &sweep {
                match rows.iter().find(|(n, _)| n == name) {
                    Some((_, s)) => row.push_str(&format!("{:>10.2}", s.median_ns as f64 / 1e6)),
                    None => row.push_str(&format!("{:>10}", "-")),
                }
            }
            if let Some((_, s)) = sweep
                .iter()
                .rev()
                .find_map(|(t, rows)| (*t > 1).then(|| rows.iter().find(|(n, _)| n == name))?)
            {
                row.push_str(&format!(
                    "   ({:.2}x)",
                    base_stats.median_ns as f64 / s.median_ns as f64
                ));
            }
            println!("{row}");
        }
    }
}

fn main() {
    if std::env::var_os(micro::CHILD_ENV).is_some() {
        micro::child_main();
        return;
    }
    println!("{:<40} {:>15} {:>18}", "benchmark", "median", "throughput");
    bench_generator();
    bench_csr_build();
    bench_bucket_queue();
    bench_codec();
    bench_varint();
    bench_sssp_kernels();
    bench_collectives();
    bench_thread_sweep();
}
