//! Quickstart: run the full Graph500 SSSP benchmark on a small simulated
//! machine and print the official-style result block.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use graph500::{run_sssp_benchmark, BenchmarkConfig};

fn main() {
    // Scale 12 (4096 vertices, 65536 edges) on 4 simulated ranks, 8 roots.
    let mut cfg = BenchmarkConfig::graph500(12, 4);
    cfg.num_roots = 8;

    println!(
        "running Graph500 SSSP: scale {}, {} ranks, {} roots…\n",
        cfg.scale, cfg.machine.ranks, cfg.num_roots
    );
    let report = run_sssp_benchmark(&cfg);

    println!("{}", report.render());
    println!("all runs validated: {}", report.all_validated());
    println!(
        "simulated job time:  {:.3} ms  (host wall clock: {:.0} ms)",
        (report.construction_time_s + report.runs.iter().map(|r| r.sim_time_s).sum::<f64>()) * 1e3,
        report.wall_time_s * 1e3
    );

    // The per-root details the summary is built from:
    println!("\nper-root runs:");
    for run in &report.runs {
        println!(
            "  root {:>6}: {:>8} edges traversed in {:.3} ms simulated ({} supersteps, {} buckets)",
            run.root,
            run.traversed_edges,
            run.sim_time_s * 1e3,
            run.stats.supersteps,
            run.stats.buckets,
        );
    }
}
