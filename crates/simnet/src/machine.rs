//! Machine construction and SPMD launch.

use crate::cost::{ComputeModel, LogGP, Topology};
use crate::fault::{CrashPlan, FaultPlan};
use crate::rank::{Envelope, RankCtx, Tag, Transport};
use crate::recovery::FaultEscalation;
use crate::sched::{SchedCore, SchedMode};
use crate::stats::NetStats;
use crate::trace::{TraceBuf, TraceConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

/// Configuration of a simulated machine.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Number of ranks (processes) in the job.
    pub ranks: usize,
    /// Per-message cost parameters.
    pub loggp: LogGP,
    /// Interconnect topology.
    pub topology: Topology,
    /// Per-rank compute throughput.
    pub compute: ComputeModel,
    /// Execution scheduling: free threads or deterministic replay.
    pub sched: SchedMode,
    /// Seeded lossy-network fault injection; [`FaultPlan::none`] (the
    /// default) is a perfect network and bypasses the reliable transport.
    pub fault: FaultPlan,
    /// Seeded process-crash injection with checkpoint/restart recovery;
    /// [`CrashPlan::none`] (the default) takes no checkpoints and draws no
    /// crash lotteries.
    pub crash: CrashPlan,
    /// Virtual-time tracing; [`TraceConfig::off`] (the default) records
    /// nothing and costs a `None` branch per instrumentation site.
    pub trace: TraceConfig,
    /// When true, a job that completes while undelivered (orphan) messages
    /// remain panics with a diagnostic listing them — this is how misrouted
    /// messages surface in tests. Authoritative under
    /// [`SchedMode::Deterministic`]; best-effort under threads.
    pub debug_checks: bool,
}

impl MachineConfig {
    /// `ranks` ranks on a crossbar with default LogGP/compute constants,
    /// threaded scheduling, and debug checks on.
    pub fn with_ranks(ranks: usize) -> Self {
        Self {
            ranks,
            loggp: LogGP::default(),
            topology: Topology::Crossbar,
            compute: ComputeModel::default(),
            sched: SchedMode::Threads,
            fault: FaultPlan::none(),
            crash: CrashPlan::none(),
            trace: TraceConfig::off(),
            debug_checks: true,
        }
    }

    /// Builder-style topology override.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Builder-style LogGP override.
    pub fn loggp(mut self, l: LogGP) -> Self {
        self.loggp = l;
        self
    }

    /// Builder-style compute-model override.
    pub fn compute(mut self, c: ComputeModel) -> Self {
        self.compute = c;
        self
    }

    /// Builder-style scheduling-mode override.
    pub fn sched(mut self, s: SchedMode) -> Self {
        self.sched = s;
        self
    }

    /// Switch to the deterministic scheduler with `seed`. Seed 0 is the
    /// canonical schedule; any other seed fuzzes delivery order.
    pub fn deterministic(mut self, seed: u64) -> Self {
        self.sched = SchedMode::Deterministic { seed };
        self
    }

    /// Builder-style fault-injection override. Panics on an invalid plan
    /// (rates outside `[0, 1]`, zero MTU) — misconfigured fault plumbing
    /// should fail at machine construction, not mid-run.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        self.fault = plan;
        self
    }

    /// Builder-style crash-injection override. Panics on an invalid plan
    /// (rate outside `[0, 1]`, zero checkpoint interval) — misconfigured
    /// crash plumbing should fail at machine construction, not mid-run.
    pub fn crashes(mut self, plan: CrashPlan) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid crash plan: {e}");
        }
        self.crash = plan;
        self
    }

    /// Builder-style tracing override.
    pub fn traced(mut self, on: bool) -> Self {
        self.trace = if on {
            TraceConfig::on()
        } else {
            TraceConfig::off()
        };
        self
    }

    /// Builder-style debug-check (orphan detection) override.
    pub fn debug_checks(mut self, on: bool) -> Self {
        self.debug_checks = on;
        self
    }
}

/// What a run produced: per-rank results and accounting.
#[derive(Debug)]
pub struct SimReport<R> {
    /// Return value of the SPMD closure on each rank, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank traffic/time counters, indexed by rank.
    pub stats: Vec<NetStats>,
    /// Simulated job time: the maximum final virtual clock over ranks.
    pub sim_time_s: f64,
    /// Host wall-clock seconds the simulation itself took.
    pub wall_time_s: f64,
    /// Per-rank trace buffers, indexed by rank; empty when tracing is off.
    pub traces: Vec<TraceBuf>,
}

impl<R> SimReport<R> {
    /// Aggregate traffic over all ranks.
    pub fn total_stats(&self) -> NetStats {
        crate::stats::aggregate(&self.stats)
    }
}

/// A simulated machine, ready to run SPMD jobs.
pub struct Machine {
    cfg: MachineConfig,
}

/// What each rank thread hands back: its result, traffic counters, final
/// simulated clock, (threads mode) any messages left undelivered in its
/// mailbox — `(src, tag, seq)` per leftover, for the orphan check — and its
/// trace buffer when tracing was on.
type RankOutcome<R> = (
    R,
    NetStats,
    f64,
    Vec<(usize, Tag, u64)>,
    Option<Box<TraceBuf>>,
);

impl Machine {
    /// Build a machine from `cfg`. Panics if `cfg.ranks == 0`.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.ranks > 0, "a machine needs at least one rank");
        Machine { cfg }
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Run `f` as an SPMD program: one OS thread per rank, each receiving
    /// its own [`RankCtx`]. Returns when every rank's closure returns.
    ///
    /// A panic on any rank propagates out of `run` (with the rank id in the
    /// message), mirroring a fail-stop job abort; a typed
    /// [`FaultEscalation`] raised inside the simulation is re-panicked with
    /// its `Display` text so the diagnosable message survives. Use
    /// [`Machine::try_run`] to receive the escalation as an `Err` instead.
    /// Under [`SchedMode::Deterministic`] a deadlocked job aborts
    /// immediately with the wait-for list instead of hanging, and (with
    /// `debug_checks`) leftover undelivered messages fail the run.
    pub fn run<R, F>(&self, f: F) -> SimReport<R>
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        match self.run_inner(f) {
            Ok(report) => report,
            Err((rank, e)) => panic!("rank {rank} panicked: {e}"),
        }
    }

    /// Like [`Machine::run`], but a [`FaultEscalation`] raised on any rank
    /// (transport retry-budget exhaustion, recovery-budget exhaustion, a
    /// lost checkpoint) comes back as `Err` instead of a panic, so drivers
    /// can degrade gracefully. Non-escalation panics still propagate.
    pub fn try_run<R, F>(&self, f: F) -> Result<SimReport<R>, FaultEscalation>
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        self.run_inner(f).map_err(|(_, e)| e)
    }

    fn run_inner<R, F>(&self, f: F) -> Result<SimReport<R>, (usize, FaultEscalation)>
    where
        R: Send,
        F: Fn(&mut RankCtx) -> R + Sync,
    {
        let p = self.cfg.ranks;
        let start = std::time::Instant::now();

        // Shared infrastructure for whichever transport this run uses.
        let core = match self.cfg.sched {
            SchedMode::Deterministic { seed } => Some(Arc::new(SchedCore::new(p, seed))),
            SchedMode::Threads => None,
        };
        let (senders, mut receivers): (Vec<_>, Vec<_>) = if core.is_none() {
            (0..p).map(|_| mpsc::channel::<Envelope>()).unzip()
        } else {
            (Vec::new(), Vec::new())
        };
        let abort = Arc::new(AtomicBool::new(false));

        // Per-rank join result: the outcome, a typed escalation, or an
        // opaque panic message. Collected (not short-circuited) because the
        // rank carrying the typed payload is not necessarily rank 0 — its
        // peers die with abort-flag string panics that must not shadow it.
        enum Joined<R> {
            Done(RankOutcome<R>),
            Escalated(FaultEscalation),
            Panicked(String),
        }

        let joined: Vec<Joined<R>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for rank in 0..p {
                let transport = match &core {
                    Some(core) => Transport::Det {
                        core: Arc::clone(core),
                    },
                    None => Transport::Threads {
                        senders: senders.clone(),
                        rx: receivers.remove(0),
                        pending: Default::default(),
                        abort: Arc::clone(&abort),
                        seq: 0,
                    },
                };
                let cfg = self.cfg;
                let f = &f;
                let abort = Arc::clone(&abort);
                let core = core.clone();
                let h = std::thread::Builder::new()
                    .name(format!("simnet-rank-{rank}"))
                    .spawn_scoped(scope, move || {
                        if let Some(core) = &core {
                            core.acquire(rank);
                        }
                        let mut ctx = RankCtx::new(rank, p, transport, &cfg);
                        // Fail-stop semantics: a panic on one rank raises
                        // the abort flag so peers blocked in recv abort
                        // too, instead of deadlocking the job.
                        let r = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            f(&mut ctx)
                        })) {
                            Ok(r) => r,
                            Err(payload) => {
                                abort.store(true, Ordering::Release);
                                if let Some(core) = &core {
                                    core.abort_all();
                                }
                                std::panic::resume_unwind(payload);
                            }
                        };
                        let (stats, now, leftovers, trace) = ctx.into_parts();
                        (r, stats, now, leftovers, trace)
                    })
                    .expect("spawning a rank thread");
                handles.push(h);
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(outcome) => Joined::Done(outcome),
                    Err(payload) => match payload.downcast_ref::<FaultEscalation>() {
                        Some(e) => Joined::Escalated(e.clone()),
                        None => {
                            // surface the original panic text so job aborts
                            // are debuggable from the top-level message
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "<non-string panic payload>".into());
                            Joined::Panicked(msg)
                        }
                    },
                })
                .collect()
        });

        // A typed escalation wins over the collateral string panics of the
        // peers it aborted; it also skips the orphan check — an aborted job
        // legitimately leaves messages in flight.
        for (rank, j) in joined.iter().enumerate() {
            if let Joined::Escalated(e) = j {
                return Err((rank, e.clone()));
            }
        }
        let outcome: Vec<RankOutcome<R>> = joined
            .into_iter()
            .enumerate()
            .map(|(rank, j)| match j {
                Joined::Done(o) => o,
                Joined::Panicked(msg) => panic!("rank {rank} panicked: {msg}"),
                Joined::Escalated(_) => unreachable!("escalations returned above"),
            })
            .collect();

        if self.cfg.debug_checks {
            // Orphan detection: a finished job must have consumed every
            // message it sent; leftovers mean a misroute or forgotten recv.
            let mut orphans: Vec<String> = Vec::new();
            if let Some(core) = &core {
                if !core.is_aborted() {
                    for (dest, src, tag, seq) in core.orphans() {
                        orphans.push(format!(
                            "rank {dest} never received (src {src}, tag {tag:#x}, seq {seq})"
                        ));
                    }
                }
            } else {
                for (dest, (_, _, _, leftovers, _)) in outcome.iter().enumerate() {
                    for (src, tag, seq) in leftovers {
                        orphans.push(format!(
                            "rank {dest} never received (src {src}, tag {tag:#x}, seq {seq})"
                        ));
                    }
                }
            }
            assert!(
                orphans.is_empty(),
                "orphan message(s) left in mailboxes at job end — misrouted send or missing \
                 recv: {}",
                orphans.join("; ")
            );
        }

        let mut results = Vec::with_capacity(p);
        let mut stats = Vec::with_capacity(p);
        let mut traces = Vec::new();
        let mut sim_time_s: f64 = 0.0;
        for (r, s, now, _, trace) in outcome {
            results.push(r);
            stats.push(s);
            if let Some(buf) = trace {
                traces.push(*buf);
            }
            sim_time_s = sim_time_s.max(now);
        }
        Ok(SimReport {
            results,
            stats,
            sim_time_s,
            wall_time_s: start.elapsed().as_secs_f64(),
            traces,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let rep = Machine::new(MachineConfig::with_ranks(1)).run(|ctx| {
            ctx.charge_compute(1_000_000);
            ctx.rank()
        });
        assert_eq!(rep.results, vec![0]);
        assert!(rep.sim_time_s > 0.0);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let rep = Machine::new(MachineConfig::with_ranks(2)).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, &[1u64, 2, 3]);
                ctx.recv::<u64>(1, 8)
            } else {
                let got = ctx.recv::<u64>(0, 7);
                ctx.send(0, 8, &[got.iter().sum::<u64>()]);
                got
            }
        });
        assert_eq!(rep.results[0], vec![6]);
        assert_eq!(rep.results[1], vec![1, 2, 3]);
        // one user message each way
        assert_eq!(rep.stats[0].user_msgs, 1);
        assert_eq!(rep.stats[1].user_msgs, 1);
    }

    #[test]
    fn tag_matching_reorders() {
        // Rank 0 sends tag 2 then tag 1; rank 1 receives tag 1 first.
        let rep = Machine::new(MachineConfig::with_ranks(2)).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send_one(1, 2, 222u64);
                ctx.send_one(1, 1, 111u64);
                0
            } else {
                let first: u64 = ctx.recv_one(0, 1);
                let second: u64 = ctx.recv_one(0, 2);
                assert_eq!((first, second), (111, 222));
                1
            }
        });
        assert_eq!(rep.results, vec![0, 1]);
    }

    #[test]
    fn virtual_time_accounts_for_transit() {
        let cfg = MachineConfig::with_ranks(2);
        let rep = Machine::new(cfg).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send_one(1, 1, 42u64);
            } else {
                let _: u64 = ctx.recv_one(0, 1);
            }
            ctx.now()
        });
        // receiver's clock must include latency + overheads
        assert!(rep.results[1] >= cfg.loggp.latency);
        assert!(rep.sim_time_s >= rep.results[1]);
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn rank_panic_propagates() {
        // Rank 1 fails; ranks that would wait on it must not deadlock.
        Machine::new(MachineConfig::with_ranks(2)).run(|ctx| {
            if ctx.rank() == 1 {
                panic!("injected fault");
            }
            // rank 0 blocks on a message that will never come; the abort
            // flag raised by rank 1's teardown unblocks it with a panic.
            ctx.recv::<u64>(1, 9);
        });
    }

    #[test]
    fn results_are_rank_ordered() {
        let rep = Machine::new(MachineConfig::with_ranks(8)).run(|ctx| ctx.rank() * 10);
        assert_eq!(rep.results, (0..8).map(|r| r * 10).collect::<Vec<_>>());
    }

    // ---- deterministic scheduler ----

    fn det(ranks: usize, seed: u64) -> Machine {
        Machine::new(MachineConfig::with_ranks(ranks).deterministic(seed))
    }

    #[test]
    fn deterministic_roundtrip_matches_threads() {
        let prog = |ctx: &mut RankCtx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, &[1u64, 2, 3]);
                ctx.recv::<u64>(1, 8)
            } else {
                let got = ctx.recv::<u64>(0, 7);
                ctx.send(0, 8, &[got.iter().sum::<u64>()]);
                got
            }
        };
        let threaded = Machine::new(MachineConfig::with_ranks(2)).run(prog);
        let canonical = det(2, 0).run(prog);
        assert_eq!(threaded.results, canonical.results);
        assert_eq!(threaded.stats, canonical.stats);
        assert_eq!(threaded.sim_time_s, canonical.sim_time_s);
    }

    #[test]
    fn same_seed_replays_identically() {
        let prog = |ctx: &mut RankCtx| {
            let p = ctx.size();
            let mut acc = ctx.rank() as u64;
            for round in 0..3 {
                for d in 0..p {
                    if d != ctx.rank() {
                        ctx.send_one(d, 10 + round, acc);
                    }
                }
                for s in 0..p {
                    if s != ctx.rank() {
                        acc = acc.wrapping_add(ctx.recv_one::<u64>(s, 10 + round));
                    }
                }
            }
            (acc, ctx.now())
        };
        let a = det(4, 0xFEED).run(prog);
        let b = det(4, 0xFEED).run(prog);
        assert_eq!(a.results, b.results);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.sim_time_s, b.sim_time_s);
    }

    #[test]
    fn different_seeds_same_values() {
        let prog = |ctx: &mut RankCtx| {
            if ctx.rank() == 0 {
                (1..ctx.size())
                    .map(|s| ctx.recv_one::<u64>(s, 3))
                    .sum::<u64>()
            } else {
                ctx.send_one(0, 3, ctx.rank() as u64);
                0
            }
        };
        let vals: Vec<u64> = (0..8u64)
            .map(|seed| det(5, seed).run(prog).results[0])
            .collect();
        assert!(vals.iter().all(|&v| v == 1 + 2 + 3 + 4));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deterministic_deadlock_is_detected() {
        // Rank 0 waits for a message rank 1 never sends; rank 1 finishes.
        det(2, 0).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.recv::<u64>(1, 9);
            }
        });
    }

    #[test]
    #[should_panic(expected = "orphan")]
    fn misrouted_message_is_caught() {
        // Rank 0 sends to rank 1 with a tag nobody receives; the job
        // completes, and teardown flags the orphan envelope.
        det(2, 0).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send_one(1, 0x77, 1u64);
            }
        });
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn deterministic_rank_panic_propagates() {
        det(2, 0).run(|ctx| {
            if ctx.rank() == 1 {
                panic!("injected fault");
            }
            ctx.recv::<u64>(1, 9);
        });
    }

    #[test]
    fn delivery_order_is_identity_for_seed_zero_and_threads() {
        let rep = Machine::new(MachineConfig::with_ranks(1)).run(|ctx| ctx.delivery_order(5));
        assert_eq!(rep.results[0], vec![0, 1, 2, 3, 4]);
        let rep = det(1, 0).run(|ctx| ctx.delivery_order(5));
        assert_eq!(rep.results[0], vec![0, 1, 2, 3, 4]);
    }

    // ---- fault injection ----

    /// A little all-pairs exchange whose result depends on every payload.
    fn exchange_prog(ctx: &mut RankCtx) -> u64 {
        let p = ctx.size();
        let me = ctx.rank();
        let vals: Vec<u64> = (0..64).map(|i| (me as u64) << 32 | i).collect();
        for d in 0..p {
            if d != me {
                ctx.send(d, 5, &vals);
            }
        }
        let mut acc = vals.iter().sum::<u64>();
        for s in 0..p {
            if s != me {
                acc = acc.wrapping_add(ctx.recv::<u64>(s, 5).iter().sum::<u64>());
            }
        }
        acc
    }

    #[test]
    fn lossy_network_is_masked_by_reliable_transport() {
        let clean = Machine::new(MachineConfig::with_ranks(4)).run(exchange_prog);
        let plan = crate::fault::FaultPlan::lossy(0xBAD_5EED, 0.2, 0.1, 0.1);
        let lossy = Machine::new(MachineConfig::with_ranks(4).faults(plan)).run(exchange_prog);
        assert_eq!(
            clean.results, lossy.results,
            "faults must not change values"
        );
        assert!(
            lossy.total_stats().saw_faults(),
            "a 20% drop rate must exercise the transport: {:?}",
            lossy.total_stats()
        );
        // message/byte accounting counts application payloads, not frames
        assert_eq!(
            clean.total_stats().user_bytes,
            lossy.total_stats().user_bytes
        );
        assert_eq!(clean.total_stats().user_msgs, lossy.total_stats().user_msgs);
        // retransmissions cost virtual time
        assert!(lossy.sim_time_s > clean.sim_time_s);
    }

    #[test]
    fn fault_schedule_is_identical_across_sched_modes() {
        let plan = crate::fault::FaultPlan::lossy(42, 0.15, 0.05, 0.05);
        let threads = Machine::new(MachineConfig::with_ranks(4).faults(plan)).run(exchange_prog);
        let canon = Machine::new(MachineConfig::with_ranks(4).faults(plan).deterministic(0))
            .run(exchange_prog);
        assert_eq!(threads.results, canon.results);
        assert_eq!(
            threads.stats, canon.stats,
            "per-rank fault counters must not depend on the scheduler"
        );
        assert_eq!(threads.sim_time_s, canon.sim_time_s);
    }

    #[test]
    fn same_fault_seed_replays_identically() {
        let plan = crate::fault::FaultPlan::lossy(9, 0.3, 0.1, 0.1).with_stalls(2, 1e-4, 16);
        let a = Machine::new(MachineConfig::with_ranks(3).faults(plan)).run(exchange_prog);
        let b = Machine::new(MachineConfig::with_ranks(3).faults(plan)).run(exchange_prog);
        assert_eq!(a.results, b.results);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.sim_time_s.to_bits(), b.sim_time_s.to_bits());
    }

    #[test]
    #[should_panic(expected = "retry budget exhausted on link")]
    fn retry_budget_exhaustion_fails_stop() {
        // drop rate 1.0: no frame ever gets through; the transport must
        // escalate to a structured TransportError instead of hanging
        let plan = crate::fault::FaultPlan::lossy(1, 1.0, 0.0, 0.0).with_retry_budget(3);
        Machine::new(MachineConfig::with_ranks(2).faults(plan)).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send_one(1, 5, 7u64);
            } else {
                let _: u64 = ctx.recv_one(0, 5);
            }
        });
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn invalid_fault_plan_rejected_at_construction() {
        let _ = MachineConfig::with_ranks(2).faults(crate::fault::FaultPlan::none().with_drop(2.0));
    }

    #[test]
    fn try_run_returns_typed_transport_escalation() {
        // same scenario as retry_budget_exhaustion_fails_stop, but via
        // try_run: the escalation arrives as a typed Err, not a panic
        let plan = crate::fault::FaultPlan::lossy(1, 1.0, 0.0, 0.0).with_retry_budget(3);
        let res = Machine::new(MachineConfig::with_ranks(2).faults(plan)).try_run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send_one(1, 5, 7u64);
            } else {
                let _: u64 = ctx.recv_one(0, 5);
            }
        });
        match res {
            Err(FaultEscalation::Transport(e)) => {
                assert!(format!("{e}").contains("retry budget exhausted on link"));
            }
            Err(other) => panic!("wrong escalation: {other:?}"),
            Ok(_) => panic!("a 100% drop rate cannot succeed"),
        }
    }

    #[test]
    fn try_run_succeeds_on_clean_network() {
        let res = Machine::new(MachineConfig::with_ranks(2)).try_run(|ctx| ctx.rank());
        assert_eq!(res.unwrap().results, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "invalid crash plan")]
    fn invalid_crash_plan_rejected_at_construction() {
        let _ =
            MachineConfig::with_ranks(2).crashes(crate::fault::CrashPlan::none().with_rate(1.5));
    }

    #[test]
    fn delivery_order_is_a_seeded_permutation() {
        let perm_for =
            |seed: u64| det(1, seed).run(|ctx| ctx.delivery_order(16)).results[0].clone();
        let a = perm_for(1);
        let b = perm_for(1);
        assert_eq!(a, b, "same seed must replay the same permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "must be a permutation");
        let c = perm_for(2);
        assert_ne!(a, c, "different seeds should permute differently");
    }
}
