//! Vertex permutations and relabelings.
//!
//! Two kinds are provided:
//!
//! * [`Permutation`] — an explicit array permutation, used for
//!   degree-descending relabeling (hub clustering) on graphs that fit one
//!   rank's memory;
//! * [`BitMixPermutation`] — a *functional*, invertible permutation of the
//!   `2^scale` id space computed in O(1) per id with no table. This is how
//!   the Graph500 generator "scrambles" vertex ids so the Kronecker
//!   structure can't be exploited — a table of 2^42 entries would never fit,
//!   so the scrambler must be a closed-form bijection.

use crate::hash::splitmix64;
use crate::types::VertexId;
use rayon::prelude::*;

/// An explicit permutation of `0..n` with its inverse.
#[derive(Clone, Debug)]
pub struct Permutation {
    fwd: Vec<VertexId>,
    inv: Vec<VertexId>,
}

impl Permutation {
    /// Identity permutation on `n` ids.
    pub fn identity(n: usize) -> Self {
        let fwd: Vec<VertexId> = (0..n as VertexId).collect();
        Self {
            inv: fwd.clone(),
            fwd,
        }
    }

    /// Build from a forward map (`map[i]` = new label of old id `i`).
    ///
    /// Panics if `map` is not a permutation of `0..map.len()`.
    pub fn from_forward(map: Vec<VertexId>) -> Self {
        let n = map.len();
        let mut inv = vec![VertexId::MAX; n];
        for (old, &new) in map.iter().enumerate() {
            assert!((new as usize) < n, "label {new} out of range");
            assert_eq!(inv[new as usize], VertexId::MAX, "duplicate label {new}");
            inv[new as usize] = old as VertexId;
        }
        Self { fwd: map, inv }
    }

    /// A pseudo-random permutation of `0..n` seeded deterministically
    /// (Fisher-Yates driven by splitmix64).
    pub fn random(n: usize, seed: u64) -> Self {
        let mut fwd: Vec<VertexId> = (0..n as VertexId).collect();
        for i in (1..n).rev() {
            let j = (splitmix64(seed ^ i as u64) % (i as u64 + 1)) as usize;
            fwd.swap(i, j);
        }
        Self::from_forward(fwd)
    }

    /// Relabel so vertices are ordered by descending `degree`.
    ///
    /// High-degree "hub" vertices end up with the smallest labels, which (a)
    /// clusters them on rank 0 under block partitioning — the configuration
    /// the degree-aware partitioner then spreads — and (b) shrinks their gap
    /// codes. Ties broken by old id for determinism.
    pub fn by_degree_desc(degrees: &[usize]) -> Self {
        let mut order: Vec<u64> = (0..degrees.len() as u64).collect();
        order.par_sort_unstable_by_key(|&v| (usize::MAX - degrees[v as usize], v));
        // order[new] = old  → that is the inverse map
        let n = degrees.len();
        let mut fwd = vec![0 as VertexId; n];
        for (new, &old) in order.iter().enumerate() {
            fwd[old as usize] = new as VertexId;
        }
        Self::from_forward(fwd)
    }

    /// New label of `old`.
    #[inline]
    pub fn apply(&self, old: VertexId) -> VertexId {
        self.fwd[old as usize]
    }

    /// Old id of `new`.
    #[inline]
    pub fn invert(&self, new: VertexId) -> VertexId {
        self.inv[new as usize]
    }

    /// Domain size.
    #[inline]
    pub fn len(&self) -> usize {
        self.fwd.len()
    }

    /// True if the domain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fwd.is_empty()
    }
}

/// Closed-form invertible permutation of the `2^scale` id space.
///
/// Composition of invertible steps, all modulo `2^scale`:
/// odd-constant multiply → xor-shift → odd-constant multiply → bit-reversal
/// of the low `scale` bits. Each step is a bijection on `scale`-bit words,
/// so the whole is; [`Self::invert`] applies the inverse steps in reverse.
#[derive(Clone, Copy, Debug)]
pub struct BitMixPermutation {
    scale: u32,
    mask: u64,
    mul1: u64,
    mul2: u64,
    /// Modular inverses of `mul1`/`mul2` modulo 2^scale.
    inv1: u64,
    inv2: u64,
    shift: u32,
}

/// Modular inverse of odd `a` modulo 2^64 by Newton iteration.
fn inv_mod_pow2(a: u64) -> u64 {
    debug_assert!(a & 1 == 1);
    let mut x = a; // correct to 3 bits
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    x
}

impl BitMixPermutation {
    /// Build a scrambler for `scale`-bit ids (1 ≤ scale ≤ 63), seeded.
    pub fn new(scale: u32, seed: u64) -> Self {
        assert!((1..=63).contains(&scale), "scale out of range: {scale}");
        let mask = (1u64 << scale) - 1;
        let mul1 = splitmix64(seed) | 1;
        let mul2 = splitmix64(seed ^ 0xDEAD_BEEF) | 1;
        let shift = (scale / 2).max(1);
        Self {
            scale,
            mask,
            mul1,
            mul2,
            inv1: inv_mod_pow2(mul1),
            inv2: inv_mod_pow2(mul2),
            shift,
        }
    }

    /// The id-space size, `2^scale`.
    #[inline]
    pub fn domain(&self) -> u64 {
        self.mask + 1
    }

    #[inline]
    fn rev_bits(&self, v: u64) -> u64 {
        v.reverse_bits() >> (64 - self.scale)
    }

    /// Scramble `v` (must be `< 2^scale`).
    #[inline]
    pub fn apply(&self, v: VertexId) -> VertexId {
        debug_assert!(v <= self.mask);
        let mut x = v.wrapping_mul(self.mul1) & self.mask;
        x ^= x >> self.shift;
        x = x.wrapping_mul(self.mul2) & self.mask;
        self.rev_bits(x)
    }

    /// Inverse of [`Self::apply`].
    #[inline]
    pub fn invert(&self, v: VertexId) -> VertexId {
        debug_assert!(v <= self.mask);
        let mut x = self.rev_bits(v);
        x = x.wrapping_mul(self.inv2) & self.mask;
        // invert x ^= x >> shift (xorshift inverse: iterate)
        let mut y = x;
        let mut s = self.shift;
        while s < self.scale {
            y = x ^ (y >> self.shift);
            s += self.shift;
        }
        x = y;
        x.wrapping_mul(self.inv1) & self.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let p = Permutation::identity(5);
        for i in 0..5 {
            assert_eq!(p.apply(i), i);
            assert_eq!(p.invert(i), i);
        }
    }

    #[test]
    fn random_is_bijective_and_inverse_consistent() {
        let p = Permutation::random(1000, 7);
        let mut seen = vec![false; 1000];
        for i in 0..1000 {
            let j = p.apply(i);
            assert!(!seen[j as usize]);
            seen[j as usize] = true;
            assert_eq!(p.invert(j), i);
        }
    }

    #[test]
    fn random_permutations_differ_by_seed() {
        let a = Permutation::random(100, 1);
        let b = Permutation::random(100, 2);
        assert!((0..100).any(|i| a.apply(i) != b.apply(i)));
    }

    #[test]
    fn degree_desc_orders_hubs_first() {
        let degrees = vec![1usize, 10, 3, 10, 0];
        let p = Permutation::by_degree_desc(&degrees);
        // vertices 1 and 3 (deg 10) get labels 0 and 1, tie broken by id
        assert_eq!(p.apply(1), 0);
        assert_eq!(p.apply(3), 1);
        assert_eq!(p.apply(2), 2);
        assert_eq!(p.apply(0), 3);
        assert_eq!(p.apply(4), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn from_forward_rejects_non_permutation() {
        Permutation::from_forward(vec![0, 0, 1]);
    }

    #[test]
    fn inv_mod_pow2_works() {
        for a in [1u64, 3, 5, 0xBF58_476D_1CE4_E5B9 | 1] {
            assert_eq!(a.wrapping_mul(inv_mod_pow2(a)), 1);
        }
    }

    #[test]
    fn bitmix_is_bijective_small_scale() {
        for scale in [1u32, 2, 5, 10] {
            let p = BitMixPermutation::new(scale, 42);
            let n = 1u64 << scale;
            let mut seen = vec![false; n as usize];
            for v in 0..n {
                let s = p.apply(v);
                assert!(s < n, "scale {scale}: {s} out of domain");
                assert!(!seen[s as usize], "scale {scale}: collision at {v}");
                seen[s as usize] = true;
                assert_eq!(p.invert(s), v, "scale {scale}: inverse failed at {v}");
            }
        }
    }

    #[test]
    fn bitmix_large_scale_inverse_spotcheck() {
        let p = BitMixPermutation::new(42, 123);
        for v in [0u64, 1, 12345, (1 << 42) - 1, 0x3_FFFF_0000] {
            assert_eq!(p.invert(p.apply(v)), v);
        }
    }

    #[test]
    fn bitmix_actually_scrambles() {
        let p = BitMixPermutation::new(20, 9);
        let moved = (0..1000u64).filter(|&v| p.apply(v) != v).count();
        assert!(moved > 990, "only {moved} of 1000 ids moved");
    }
}
