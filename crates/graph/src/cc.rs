//! Connected components (union-find).
//!
//! Kronecker graphs at edgefactor 16 have one giant component plus dust;
//! the construction-phase statistics (experiment T1) and the root sampler
//! both care about which vertices live in it. Union-find with path
//! halving + union by size gives effectively-linear component detection
//! without touching the traversal kernels being benchmarked.

use crate::edgelist::EdgeList;

/// Union-find over `0..n` with path halving and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    /// Parent pointer, or self for roots.
    parent: Vec<u32>,
    /// Component size, valid at roots.
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton components.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind is u32-indexed");
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `v`'s component (with path halving).
    pub fn find(&mut self, mut v: usize) -> usize {
        loop {
            let p = self.parent[v] as usize;
            if p == v {
                return v;
            }
            let gp = self.parent[p];
            self.parent[v] = gp; // halve
            v = gp as usize;
        }
    }

    /// Merge the components of `a` and `b`; returns true if they were
    /// separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// True if `a` and `b` share a component.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of components (isolated vertices count as components).
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of `v`'s component.
    pub fn component_size(&mut self, v: usize) -> usize {
        let r = self.find(v);
        self.size[r] as usize
    }
}

/// Summary of a graph's component structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentStats {
    /// Total components over `n` vertices (isolated vertices included).
    pub components: usize,
    /// Vertices in the largest component.
    pub giant_size: usize,
    /// Components of size ≥ 2.
    pub nontrivial_components: usize,
}

/// Compute component statistics of an edge list over `n` vertices.
pub fn component_stats(n: usize, edges: &EdgeList) -> ComponentStats {
    let mut uf = UnionFind::new(n);
    for e in edges.iter() {
        if !e.is_loop() {
            uf.union(e.u as usize, e.v as usize);
        }
    }
    let mut giant = 0usize;
    let mut nontrivial = 0usize;
    let mut seen_roots = std::collections::HashSet::new();
    for v in 0..n {
        let r = uf.find(v);
        if seen_roots.insert(r) {
            let s = uf.component_size(r);
            giant = giant.max(s);
            if s >= 2 {
                nontrivial += 1;
            }
        }
    }
    ComponentStats {
        components: uf.num_components(),
        giant_size: giant,
        nontrivial_components: nontrivial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::WEdge;

    #[test]
    fn singletons_then_union() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already merged
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.component_size(1), 3);
    }

    #[test]
    fn path_is_one_component() {
        let el: EdgeList = (1..100u64).map(|i| WEdge::new(i - 1, i, 1.0)).collect();
        let s = component_stats(100, &el);
        assert_eq!(s.components, 1);
        assert_eq!(s.giant_size, 100);
        assert_eq!(s.nontrivial_components, 1);
    }

    #[test]
    fn disjoint_pieces_counted() {
        let el = EdgeList::from_edges([
            WEdge::new(0, 1, 1.0),
            WEdge::new(2, 3, 1.0),
            WEdge::new(3, 4, 1.0),
            WEdge::new(9, 9, 1.0), // self-loop: no merge
        ]);
        let s = component_stats(10, &el);
        // {0,1}, {2,3,4}, and 5 singletons (5,6,7,8,9)
        assert_eq!(s.components, 7);
        assert_eq!(s.giant_size, 3);
        assert_eq!(s.nontrivial_components, 2);
    }

    #[test]
    fn empty_graph() {
        let s = component_stats(4, &EdgeList::new());
        assert_eq!(s.components, 4);
        assert_eq!(s.giant_size, 1);
        assert_eq!(s.nontrivial_components, 0);
    }

    #[test]
    fn union_by_size_keeps_depth_small() {
        let mut uf = UnionFind::new(1000);
        for i in 1..1000 {
            uf.union(0, i);
        }
        assert_eq!(uf.num_components(), 1);
        assert_eq!(uf.component_size(999), 1000);
    }
}
