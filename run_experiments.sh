#!/usr/bin/env bash
# Run every experiment harness and archive outputs under results/.
# Parameters here are the defaults recorded in EXPERIMENTS.md; override
# with G500_* environment variables for bigger sweeps.
set -u
cd "$(dirname "$0")"
mkdir -p results
BIN=target/release

# `./run_experiments.sh perf` — instead of the experiment suite, thread-sweep
# the host-time microbench kernels (T ∈ {1,2,4}, re-exec'd children) and
# print a per-kernel speedup table against results/bench_baseline.json.
# The same binary gates CI; see README "Microbenchmarks & the perf gate".
if [ "${1:-}" = "perf" ]; then
  echo "=== perf: microbench thread sweep vs checked-in baseline ==="
  cargo build --release -p g500-bench --bin perf_gate || exit 1
  exec "$BIN/perf_gate" --report
fi

run() {
  local name="$1"
  echo "=== running $name ==="
  local start=$SECONDS
  if "$BIN/$name" >"results/$name.txt" 2>&1; then
    echo "  ok in $((SECONDS - start))s"
  else
    echo "FAILED: $name (see results/$name.txt)"
  fi
}

# Fault-injection defaults: perfect network (all rates zero/off). Set e.g.
# G500_DROP_RATE=0.05 G500_FAULT_SEED=1 to re-run any sweep over a lossy
# network — results must be identical; only retransmit counters and
# simulated time change.
export G500_FAULT_SEED="${G500_FAULT_SEED:-0}"
export G500_DROP_RATE="${G500_DROP_RATE:-0}"
export G500_DUP_RATE="${G500_DUP_RATE:-0}"
export G500_CORRUPT_RATE="${G500_CORRUPT_RATE:-0}"
export G500_REORDER_RATE="${G500_REORDER_RATE:-0}"
export G500_RETRY_BUDGET="${G500_RETRY_BUDGET:-16}"

# Recorded-run parameters: chosen so the full suite completes in tens of
# minutes on one host core; every binary accepts larger G500_* overrides.
run t1_graph_stats
G500_SCALE_PER_RANK=14 G500_MAX_RANKS=32 G500_ROOTS=4 run t2_headline
run t3_ablation
G500_SCALE_PER_RANK=13 G500_MAX_RANKS=32 G500_ROOTS=3 run f1_weak_scaling
G500_SCALE=15 G500_MAX_RANKS=32 G500_ROOTS=3 run f2_strong_scaling
run f3_delta_sweep
run f4_breakdown
G500_MAX_SCALE=16 G500_ROOTS=2 run f5_algo_compare
run f6_comm_volume
run f7_degree_dist
run f8_direction
run f9_dist_compare
run f10_bfs_vs_sssp
run f11_batching
run f12_partition_balance
run f13_2d_fanout
G500_MAX_SCALE=13 run f14_dist2d
run f15_weight_dist
G500_SCALE=14 G500_RANKS=4 run f16_query_serving
echo "all experiments done"
