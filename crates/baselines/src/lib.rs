//! # g500-baselines — reference shortest-path algorithms
//!
//! The paper's contribution is an optimized distributed delta-stepping; its
//! evaluation (and any honest reproduction) needs the algorithms it is
//! measured against:
//!
//! * [`dijkstra`] — the exact sequential oracle (binary heap with lazy
//!   deletion). Every other implementation in the workspace is
//!   property-tested against it.
//! * [`bellman_ford`] — round-based relaxation, sequential and
//!   shared-memory parallel; the asymptotically wasteful extreme.
//! * [`nearfar`] — the near-far worklist method, a delta-stepping relative
//!   with exactly two buckets; locates delta-stepping in its design space.
//! * [`dist_bf`] — *distributed* Bellman-Ford over `simnet`: the naive
//!   one-frontier-superstep-per-round baseline the optimized kernel is
//!   compared to in experiment F9.
//! * [`radix_heap`] — monotone radix-heap Dijkstra over `u64` distance
//!   keys; same answers as [`dijkstra`], bucket-based extraction.
//! * [`bmssp`] — the bounded multi-source shortest path recursion of Duan
//!   et al. (arXiv:2504.17033): pivot reduction + partial-order pull
//!   structure + truncated-Dijkstra base case, `O(m log^{2/3} n)`.
//!
//! All baselines share one unreachable convention: distances are
//! [`g500_graph::INF_WEIGHT`] in the `f32` domain and [`INF_KEY`]
//! (`u64::MAX / 4`) in the key domain — `tests/cross_impl.rs` pins it.
#![warn(missing_docs)]

pub mod bellman_ford;
pub mod bmssp;
pub mod dijkstra;
pub mod dist_bf;
pub mod nearfar;
pub mod pull;
pub mod radix_heap;

pub use bellman_ford::{bellman_ford, bellman_ford_parallel};
pub use bmssp::bmssp;
pub use dijkstra::dijkstra;
pub use dist_bf::distributed_bellman_ford;
pub use nearfar::near_far;
pub use radix_heap::{dijkstra_radix_heap, key_to_weight, weight_to_key, RadixHeap, INF_KEY};
