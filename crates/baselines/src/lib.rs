//! # g500-baselines — reference shortest-path algorithms
//!
//! The paper's contribution is an optimized distributed delta-stepping; its
//! evaluation (and any honest reproduction) needs the algorithms it is
//! measured against:
//!
//! * [`dijkstra`] — the exact sequential oracle (binary heap with lazy
//!   deletion). Every other implementation in the workspace is
//!   property-tested against it.
//! * [`bellman_ford`] — round-based relaxation, sequential and
//!   shared-memory parallel; the asymptotically wasteful extreme.
//! * [`nearfar`] — the near-far worklist method, a delta-stepping relative
//!   with exactly two buckets; locates delta-stepping in its design space.
//! * [`dist_bf`] — *distributed* Bellman-Ford over `simnet`: the naive
//!   one-frontier-superstep-per-round baseline the optimized kernel is
//!   compared to in experiment F9.
#![warn(missing_docs)]

pub mod bellman_ford;
pub mod dijkstra;
pub mod dist_bf;
pub mod nearfar;

pub use bellman_ford::{bellman_ford, bellman_ford_parallel};
pub use dijkstra::dijkstra;
pub use dist_bf::distributed_bellman_ford;
pub use nearfar::near_far;
