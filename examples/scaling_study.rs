//! Scaling study: how would *your* cluster run this?
//!
//! The public API exposes the whole simulated machine, so capacity
//! planning questions — "what does SSSP throughput look like on 16 nodes
//! of a fat-tree vs a torus?", "what if my network had 4x the latency?" —
//! become a few lines of code. This example sweeps machine size, topology
//! and network quality on a fixed-per-rank workload.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use graph500::simnet::{LogGP, Topology};
use graph500::{run_sssp_benchmark, BenchmarkConfig};

fn point(scale: u32, ranks: usize, topo: Topology, loggp: LogGP) -> f64 {
    let mut cfg = BenchmarkConfig::graph500(scale, ranks);
    cfg.num_roots = 3;
    cfg.validate = false;
    cfg.machine = cfg.machine.topology(topo).loggp(loggp);
    run_sssp_benchmark(&cfg).teps.harmonic_mean
}

fn main() {
    let spr = 13u32; // 2^13 vertices per rank

    println!("weak scaling, 2^{spr} vertices/rank, GTEPS (simulated):\n");
    println!(
        "{:>6} | {:>10} | {:>12} | {:>10}",
        "ranks", "crossbar", "fat-tree(4)", "torus2d"
    );
    println!("{}", "-".repeat(50));
    for p in [1usize, 2, 4, 8, 16] {
        let scale = spr + p.trailing_zeros();
        let w = (p as f64).sqrt().ceil() as u32;
        let xbar = point(scale, p, Topology::Crossbar, LogGP::default());
        let ftree = point(scale, p, Topology::FatTree { radix: 4 }, LogGP::default());
        let torus = point(
            scale,
            p,
            Topology::Torus2D {
                w: w.max(1),
                h: (p as u32).div_ceil(w.max(1)),
            },
            LogGP::default(),
        );
        println!(
            "{:>6} | {:>10.3} | {:>12.3} | {:>10.3}",
            p,
            xbar / 1e9,
            ftree / 1e9,
            torus / 1e9
        );
    }

    println!("\nnetwork sensitivity at 8 ranks (fat-tree), GTEPS:\n");
    let base = LogGP::default();
    let cases = [
        ("baseline (1us, 10GB/s)", base),
        (
            "4x latency",
            LogGP {
                latency: base.latency * 4.0,
                ..base
            },
        ),
        (
            "1/4 bandwidth",
            LogGP {
                per_byte: base.per_byte * 4.0,
                ..base
            },
        ),
        (
            "4x overhead",
            LogGP {
                overhead: base.overhead * 4.0,
                ..base
            },
        ),
    ];
    for (name, loggp) in cases {
        let g = point(spr + 3, 8, Topology::FatTree { radix: 4 }, loggp);
        println!("  {:<26} {:>8.3}", name, g / 1e9);
    }
    println!("\ntakeaway: latency and per-message overhead dominate — exactly why the paper coalesces and fuses buckets.");
}
