//! F15 — Weight-distribution sensitivity of Δ selection.
//!
//! Same Kronecker topology, three weight laws (uniform — the Graph500
//! default; exponential — light-edge-heavy; bimodal — road-like). For each
//! law, compare the adaptive Δ (which measures the weight profile at
//! startup) against a Δ hard-coded for the uniform default. Adaptive
//! should be competitive everywhere; the hard-coded value should visibly
//! lose off-distribution — the robustness claim behind adaptive Δ.
//!
//! Overrides: `G500_SCALE` (14), `G500_RANKS` (8), `G500_ROOTS` (2).

use g500_bench::{banner, param, secs, Table};
use g500_gen::{reweight, KroneckerGenerator, KroneckerParams, WeightDist};
use g500_graph::EdgeList;
use g500_partition::{assemble_local_graph, Block1D};
use g500_sssp::{distributed_delta_stepping, OptConfig};
use graph500::simnet::{Machine, MachineConfig};

fn measure(el: &EdgeList, n: u64, ranks: usize, roots: &[u64], opts: OptConfig) -> (f64, u64) {
    let rep = Machine::new(MachineConfig::with_ranks(ranks)).run(|ctx| {
        let part = Block1D::new(n, ranks);
        let m = el.len();
        let (lo, hi) = (ctx.rank() * m / ranks, (ctx.rank() + 1) * m / ranks);
        let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
        let g = assemble_local_graph(ctx, mine.into_iter(), part);
        let mut total = 0.0;
        let mut steps = 0u64;
        for &r in roots {
            let (_, s) = distributed_delta_stepping(ctx, &g, r, &opts);
            total += ctx.allreduce(s.sim_time_s, |a, b| if a > b { *a } else { *b });
            steps += s.supersteps;
        }
        (total / roots.len() as f64, steps / roots.len() as u64)
    });
    rep.results[0]
}

fn main() {
    let scale = param("G500_SCALE", 14) as u32;
    let ranks = param("G500_RANKS", 8) as usize;
    let nroots = param("G500_ROOTS", 2) as usize;
    banner(
        "F15",
        "weight-distribution sensitivity",
        &[("scale", scale.to_string())],
    );

    let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, 9));
    let n = gen.params().num_vertices();
    let base = gen.generate_all();
    let roots: Vec<u64> = {
        let mut seen = vec![false; n as usize];
        for e in base.iter() {
            seen[e.u as usize] = true;
            seen[e.v as usize] = true;
        }
        (0..n)
            .filter(|&v| seen[v as usize])
            .step_by(131)
            .take(nroots)
            .collect()
    };

    let dists: Vec<(&str, WeightDist)> = vec![
        ("uniform (spec)", WeightDist::Uniform),
        ("exponential m=0.5", WeightDist::Exponential { mean: 0.5 }),
        (
            "bimodal 20% heavy",
            WeightDist::Bimodal {
                heavy_frac: 0.2,
                heavy: 4.0,
            },
        ),
    ];

    let t = Table::new(&[
        "weights",
        "delta_policy",
        "mean_time",
        "supersteps",
        "vs_adaptive",
    ]);
    for (name, dist) in dists {
        let el = reweight(&base, dist, 77);
        let (t_adapt, s_adapt) = measure(&el, n, ranks, &roots, OptConfig::all_on());
        let (t_fixed, s_fixed) =
            measure(&el, n, ranks, &roots, OptConfig::all_on().with_delta(0.125));
        t.row(&[
            name.to_string(),
            "adaptive".into(),
            secs(t_adapt),
            s_adapt.to_string(),
            "1.00x".into(),
        ]);
        t.row(&[
            name.to_string(),
            "fixed 0.125".into(),
            secs(t_fixed),
            s_fixed.to_string(),
            format!("{:.2}x", t_fixed / t_adapt),
        ]);
    }
    println!("\nexpected shape: adaptive within noise of fixed on the uniform law it was tuned for, and clearly better off-distribution");
}
