//! Alternative edge-weight distributions.
//!
//! Graph500 prescribes uniform `[0, 1)` weights, but delta-stepping's
//! behaviour — and the adaptive-Δ rule — depends on the weight profile:
//! an exponential distribution front-loads light edges (deep cascades per
//! bucket), a bimodal road-like profile separates cleanly into light/heavy
//! classes. These transformers rewrite a generated edge list's weights
//! deterministically so the weight-sensitivity experiment (F15) can hold
//! topology fixed while sweeping the weight law.

use crate::rng::CounterRng;
use g500_graph::EdgeList;

/// Supported weight laws.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightDist {
    /// Uniform on `[0, 1)` — the Graph500 default.
    Uniform,
    /// Exponential with the given mean (clamped to ≤ 64·mean to keep
    /// distances finite-friendly).
    Exponential {
        /// Mean of the distribution.
        mean: f32,
    },
    /// Road-network-like: mostly light local streets, a `heavy_frac`
    /// fraction of heavy arterials of weight `heavy`.
    Bimodal {
        /// Fraction of heavy edges, in `[0, 1]`.
        heavy_frac: f32,
        /// Weight of the heavy class (light class is uniform `[0, 0.1)`).
        heavy: f32,
    },
}

impl WeightDist {
    /// Draw the weight for edge index `i` under `seed`.
    pub fn sample(&self, rng: &CounterRng, i: u64) -> f32 {
        match *self {
            WeightDist::Uniform => rng.unit_f32(2 * i),
            WeightDist::Exponential { mean } => {
                let u = rng.unit_f64(2 * i);
                let w = -(mean as f64) * (1.0 - u).ln();
                (w as f32).min(mean * 64.0)
            }
            WeightDist::Bimodal { heavy_frac, heavy } => {
                if rng.unit_f32(2 * i) < heavy_frac {
                    heavy
                } else {
                    0.1 * rng.unit_f32(2 * i + 1)
                }
            }
        }
    }

    /// The distribution's mean (used by the adaptive-Δ rule in tests).
    pub fn mean(&self) -> f64 {
        match *self {
            WeightDist::Uniform => 0.5,
            WeightDist::Exponential { mean } => mean as f64,
            WeightDist::Bimodal { heavy_frac, heavy } => {
                heavy_frac as f64 * heavy as f64 + (1.0 - heavy_frac as f64) * 0.05
            }
        }
    }
}

/// Rewrite the weights of `el` under `dist`, deterministically in `seed`.
/// Topology (endpoints, edge order) is untouched.
pub fn reweight(el: &EdgeList, dist: WeightDist, seed: u64) -> EdgeList {
    let rng = CounterRng::new(seed, 42);
    el.iter()
        .enumerate()
        .map(|(i, mut e)| {
            e.w = dist.sample(&rng, i as u64);
            e
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::erdos_renyi;

    #[test]
    fn reweight_preserves_topology() {
        let el = erdos_renyi(50, 200, 1);
        let rw = reweight(&el, WeightDist::Exponential { mean: 0.25 }, 7);
        assert_eq!(rw.len(), el.len());
        for i in 0..el.len() {
            assert_eq!(rw.get(i).u, el.get(i).u);
            assert_eq!(rw.get(i).v, el.get(i).v);
        }
    }

    #[test]
    fn reweight_is_deterministic() {
        let el = erdos_renyi(50, 200, 1);
        let a = reweight(&el, WeightDist::Uniform, 3);
        let b = reweight(&el, WeightDist::Uniform, 3);
        for i in 0..a.len() {
            assert_eq!(a.get(i), b.get(i));
        }
    }

    #[test]
    fn exponential_mean_approximately_right() {
        let el = erdos_renyi(100, 20_000, 2);
        let rw = reweight(&el, WeightDist::Exponential { mean: 0.25 }, 5);
        let mean: f64 = rw.weights().iter().map(|&w| w as f64).sum::<f64>() / rw.len() as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
        assert!(rw.weights().iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn bimodal_fractions_respected() {
        let d = WeightDist::Bimodal {
            heavy_frac: 0.2,
            heavy: 5.0,
        };
        let el = erdos_renyi(100, 20_000, 2);
        let rw = reweight(&el, d, 5);
        let heavy = rw.weights().iter().filter(|&&w| w == 5.0).count();
        let frac = heavy as f64 / rw.len() as f64;
        assert!((frac - 0.2).abs() < 0.02, "heavy frac {frac}");
        assert!(rw.weights().iter().all(|&w| w == 5.0 || w < 0.1));
        // declared mean matches the empirical one
        let mean: f64 = rw.weights().iter().map(|&w| w as f64).sum::<f64>() / rw.len() as f64;
        assert!((mean - d.mean()).abs() < 0.05);
    }
}
