//! Sequential drop-in for the subset of `rayon` this workspace uses.
//!
//! The build environment is fully offline (no crates.io mirror), so the
//! workspace must compile from std alone. This shim keeps every call site
//! (`par_iter`, `into_par_iter`, `par_sort_unstable*`, `chunks`,
//! `flat_map_iter`, `current_num_threads`) compiling against plain
//! sequential std iterators. Sequential execution is also exactly what the
//! deterministic replay harness wants: a given seed replays bit-identically,
//! with no dependence on the host thread scheduler.
//!
//! Swapping this crate back for real `rayon` requires no source changes in
//! the rest of the workspace — the trait and function names match.

pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// Number of worker threads. The shim executes sequentially, so always 1;
/// callers only use this to size work chunks.
pub fn current_num_threads() -> usize {
    1
}

/// Sequential stand-in for rayon's `ParallelIterator`. Every std iterator
/// qualifies; the rayon-only adapters are provided as real methods.
pub trait ParallelIterator: Iterator + Sized {
    /// rayon's `flat_map_iter` — identical to `flat_map` when sequential.
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }

    /// rayon's `chunks`: yields `Vec`s of up to `n` consecutive items.
    fn chunks(self, n: usize) -> Chunks<Self> {
        assert!(n > 0, "chunk size must be positive");
        Chunks { it: self, n }
    }

    /// Scheduling hint; a no-op sequentially.
    fn with_min_len(self, _n: usize) -> Self {
        self
    }

    /// Scheduling hint; a no-op sequentially.
    fn with_max_len(self, _n: usize) -> Self {
        self
    }
}

impl<I: Iterator> ParallelIterator for I {}

/// Marker mirroring rayon's indexed-iterator trait; sequentially every
/// iterator yields items in order, so every iterator qualifies.
pub trait IndexedParallelIterator: ParallelIterator {}

impl<I: Iterator> IndexedParallelIterator for I {}

/// Iterator over owned chunks, mirroring rayon's `chunks` adapter.
pub struct Chunks<I: Iterator> {
    it: I,
    n: usize,
}

impl<I: Iterator> Iterator for Chunks<I> {
    type Item = Vec<I::Item>;

    fn next(&mut self) -> Option<Vec<I::Item>> {
        let out: Vec<I::Item> = self.it.by_ref().take(self.n).collect();
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

/// `into_par_iter` for anything iterable (ranges, vectors, ...).
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// Shared-slice views (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
    fn par_chunks(&self, n: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }

    fn par_chunks(&self, n: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(n)
    }
}

/// Mutable-slice operations (`par_iter_mut`, `par_sort_unstable*`).
pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering;
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering,
    {
        self.sort_unstable_by(cmp);
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K,
    {
        self.sort_unstable_by_key(key);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_cover_range_exactly() {
        let chunks: Vec<Vec<usize>> = (0..10).into_par_iter().chunks(4).collect();
        assert_eq!(chunks, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]);
    }

    #[test]
    fn slice_ops_match_std() {
        let v = vec![3u64, 1, 2];
        let total: u64 = v.par_iter().sum();
        assert_eq!(total, 6);
        let mut s = v.clone();
        s.par_sort_unstable();
        assert_eq!(s, vec![1, 2, 3]);
        let mut by_key = v.clone();
        by_key.par_sort_unstable_by_key(|&x| std::cmp::Reverse(x));
        assert_eq!(by_key, vec![3, 2, 1]);
    }

    #[test]
    fn flat_map_iter_matches_flat_map() {
        let out: Vec<u32> = [1u32, 3]
            .par_iter()
            .flat_map_iter(|&x| [x, x + 1])
            .collect();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }
}
