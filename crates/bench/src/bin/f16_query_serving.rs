//! F16 — Query serving: latency and QPS under admission batching.
//!
//! A closed-loop load generator drives the query engine with a
//! deterministic mixed stream (full single-source + point-to-point) over
//! a resident scale-18 graph, sweeping the admission window width
//! `B ∈ {1, 4, 16, 64}`. B = 1 is the sequential baseline — every query
//! its own kernel run; the headline claim is B = 64 achieving ≥ 2× its
//! QPS in virtual time. Landmark bounds and the result LRU stay on (this
//! is the *service* configuration; F11 isolates pure batching).
//!
//! The stream is 128 queries over a fixed 16-source hot pool, so the
//! widest window still sees a multi-window stream (at B = 64 a single
//! 64-query stream would be exactly one window and the LRU could never
//! fire — no real service warms its cache inside one batch).
//!
//! Overrides: `G500_SCALE` (18), `G500_RANKS` (8), `G500_QUERIES` (128),
//! `G500_POOL` (16), `G500_LANDMARKS` (4), `G500_LRU` (8),
//! `G500_P2P` (permille, 500).

use g500_bench::{banner, param, secs, Table};
use graph500::{run_query_serving_benchmark, ServeBenchConfig};

fn main() {
    let scale = param("G500_SCALE", 18) as u32;
    let ranks = param("G500_RANKS", 8) as usize;
    let queries = param("G500_QUERIES", 128) as usize;
    let pool = param("G500_POOL", 16) as usize;
    let landmarks = param("G500_LANDMARKS", 4) as usize;
    let lru = param("G500_LRU", 8) as usize;
    let p2p = param("G500_P2P", 500);
    banner(
        "F16",
        "query serving: latency/QPS vs admission width",
        &[
            ("scale", scale.to_string()),
            ("ranks", ranks.to_string()),
            ("queries", queries.to_string()),
            ("pool", pool.to_string()),
            ("landmarks", landmarks.to_string()),
            ("lru", lru.to_string()),
            ("p2p_permille", p2p.to_string()),
        ],
    );

    let t = Table::new(&[
        "B",
        "qps",
        "speedup",
        "p50",
        "p95",
        "p99",
        "hits",
        "early",
        "supersteps",
    ]);
    // The acceptance baseline: sequential back-to-back single-source
    // service — one query per batch, no LRU, no landmarks. Every sweep
    // row's speedup is against this.
    let mut base = ServeBenchConfig::new(scale, ranks).deterministic(0);
    base.num_queries = queries;
    base.source_pool = pool;
    base.batch_width = 1;
    base.num_landmarks = 0;
    base.lru_capacity = 0;
    base.p2p_permille = p2p;
    let base_rep = run_query_serving_benchmark(&base);
    let base_qps = base_rep.qps;
    t.row(&[
        "seq".to_string(),
        format!("{:.2}", base_qps),
        "1.00x".to_string(),
        secs(base_rep.p50_ms / 1e3),
        secs(base_rep.p95_ms / 1e3),
        secs(base_rep.p99_ms / 1e3),
        base_rep.cache_hits.to_string(),
        base_rep.early_exits.to_string(),
        base_rep.supersteps.to_string(),
    ]);
    let mut last_speedup = 0.0f64;
    for batch in [1usize, 4, 16, 64] {
        let mut cfg = ServeBenchConfig::new(scale, ranks).deterministic(0);
        cfg.num_queries = queries;
        cfg.source_pool = pool;
        cfg.batch_width = batch;
        cfg.num_landmarks = landmarks;
        cfg.lru_capacity = lru;
        cfg.p2p_permille = p2p;
        let rep = run_query_serving_benchmark(&cfg);
        last_speedup = rep.qps / base_qps;
        t.row(&[
            batch.to_string(),
            format!("{:.2}", rep.qps),
            format!("{:.2}x", last_speedup),
            secs(rep.p50_ms / 1e3),
            secs(rep.p95_ms / 1e3),
            secs(rep.p99_ms / 1e3),
            rep.cache_hits.to_string(),
            rep.early_exits.to_string(),
            rep.supersteps.to_string(),
        ]);
    }
    println!(
        "\nexpected shape: QPS rises with B (shared supersteps amortize per-step fixed \
         costs, the LRU absorbs repeats, p2p lanes retire early); latency percentiles \
         rise with B because a query's result lands when its shared window drains — \
         the classic throughput/latency trade of admission batching"
    );
    if last_speedup < 2.0 {
        println!("WARNING: B=64 speedup {last_speedup:.2}x below the 2x acceptance line");
        std::process::exit(1);
    }
}
