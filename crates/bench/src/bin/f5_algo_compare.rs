//! F5 — Single-node algorithm comparison (host wall-clock).
//!
//! Sequential Dijkstra vs Bellman-Ford vs near-far vs delta-stepping, plus
//! the shared-memory parallel kernels, on Kronecker graphs across scales.
//! This is the one experiment measured in *host* time (it benchmarks real
//! Rust kernels, not the simulated machine), locating delta-stepping in
//! its sequential design space before the distributed experiments build
//! on it.
//!
//! Overrides: `G500_MAX_SCALE` (17), `G500_ROOTS` (3).

use g500_baselines::{
    bellman_ford, bellman_ford_parallel, bmssp, dijkstra, dijkstra_radix_heap, near_far,
};
use g500_bench::{banner, param, secs, Table};
use g500_gen::{KroneckerGenerator, KroneckerParams};
use g500_graph::{Csr, Directedness, ShortestPaths};
use g500_sssp::{delta_stepping, parallel_delta_stepping, suggest_delta};
use std::time::Instant;

fn timed<F: FnMut() -> ShortestPaths>(mut f: F) -> (ShortestPaths, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

fn main() {
    let max_scale = param("G500_MAX_SCALE", 17) as u32;
    let roots = param("G500_ROOTS", 3);
    banner(
        "F5",
        "sequential/shared-memory algorithm comparison",
        &[("scales", format!("14..={max_scale}"))],
    );

    let t = Table::new(&["scale", "algorithm", "time", "MTEPS", "vs_dijkstra"]);
    for scale in (14..=max_scale).step_by(1) {
        let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, 3));
        let el = gen.generate_all();
        let n = gen.params().num_vertices() as usize;
        let csr = Csr::from_edges(n, &el, Directedness::Undirected);
        let delta = suggest_delta(
            csr.num_arcs() as f64 / n as f64,
            csr.total_weight() / csr.num_arcs() as f64,
        );
        let root = (0..n as u64)
            .find(|&v| csr.degree(v as usize) > 0)
            .unwrap_or(0);
        let m_eff = el.len() as f64;

        type Solver<'a> = Box<dyn FnMut() -> ShortestPaths + 'a>;
        let algos: Vec<(&str, Solver)> = vec![
            ("dijkstra", Box::new(|| dijkstra(&csr, root))),
            (
                "dijkstra-radix",
                Box::new(|| dijkstra_radix_heap(&csr, root)),
            ),
            ("bmssp", Box::new(|| bmssp(&csr, root))),
            ("bellman-ford", Box::new(|| bellman_ford(&csr, root))),
            ("near-far", Box::new(|| near_far(&csr, root, delta))),
            (
                "delta-stepping",
                Box::new(|| delta_stepping(&csr, root, delta)),
            ),
            (
                "bf-parallel",
                Box::new(|| bellman_ford_parallel(&csr, root)),
            ),
            (
                "delta-parallel",
                Box::new(|| parallel_delta_stepping(&csr, root, delta)),
            ),
        ];

        let mut dijkstra_t = 0.0f64;
        let mut oracle: Option<ShortestPaths> = None;
        for (name, mut f) in algos {
            // best of `roots` repetitions to de-noise the host measurement
            let mut best = f64::INFINITY;
            let mut out = None;
            for _ in 0..roots {
                let (sp, dt) = timed(&mut f);
                best = best.min(dt);
                out = Some(sp);
            }
            let sp = out.expect("at least one repetition");
            match &oracle {
                None => {
                    dijkstra_t = best;
                    oracle = Some(sp);
                }
                Some(o) => assert!(
                    sp.distances_match(o, 1e-4),
                    "{name} diverged from Dijkstra at scale {scale}"
                ),
            }
            t.row(&[
                scale.to_string(),
                name.to_string(),
                secs(best),
                format!("{:.1}", m_eff / best / 1e6),
                format!("{:.2}x", dijkstra_t / best),
            ]);
        }
    }
    println!("\nexpected shape: Dijkstra competitive at small scale; delta-stepping overtakes as graphs grow; Bellman-Ford trails");
}
