//! Shared plumbing for the host-time microbenchmarks and the CI perf gate.
//!
//! Three consumers:
//!
//! * `benches/micro.rs` (`cargo bench -p g500-bench`) — the human-facing
//!   run: text tables plus the thread sweep written to
//!   `results/bench_micro.json`;
//! * `src/bin/perf_gate.rs` — the CI gate: runs the same sweep, compares
//!   against the blessed `results/bench_baseline.json`, and fails the build
//!   on regression;
//! * `run_experiments.sh perf` — the gate's `--report` mode, a per-kernel
//!   speedup table against the baseline.
//!
//! The worker pool is process-global and fixed at first use, so a sweep
//! over thread counts must re-exec: the parent spawns itself once per count
//! in [`SWEEP_THREADS`] with [`CHILD_ENV`]`=1` and `G500_THREADS=<t>` set;
//! the child runs only the pool-parallel hot kernels ([`run_kernels`]) and
//! prints one machine-readable `G500_BENCH\t<kernel>\t<median>\t<p10>\t<p90>`
//! line each (nanoseconds), which the parent collects into JSON.
//!
//! Determinism contract: the *results* of every benched kernel are bitwise
//! identical across the sweep — only the times differ. The JSON is written
//! and parsed by hand (the workspace is offline and carries no serde); the
//! tiny parser in [`json`] understands just enough of the grammar for these
//! files.

use g500_gen::{KroneckerGenerator, KroneckerParams};
use g500_graph::{Csr, Directedness};
use g500_partition::{assemble_local_graph, Block1D};
use g500_sssp::codec::{encode_tagged, encode_updates, TaggedUpdate, Update};
use g500_sssp::{
    distributed_delta_stepping, parallel_delta_stepping, Direction, Grid2DSssp, OptConfig, Query,
    QueryEngine, ServeConfig,
};
use rayon::prelude::*;
use simnet::{CrashPlan, Machine, MachineConfig};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

/// Environment variable marking a re-exec'd sweep child.
pub const CHILD_ENV: &str = "G500_BENCH_CHILD";

/// Thread counts swept by the benchmark and gated by CI.
pub const SWEEP_THREADS: [usize; 3] = [1, 2, 4];

/// Name of the calibration pseudo-kernel measured first in every child: a
/// fixed single-threaded SplitMix64 spin that never touches the pool or
/// the allocator. Shared and virtualized hosts drift in absolute speed by
/// tens of percent over minutes, which would trip any wall-clock
/// threshold; the perf gate therefore compares *calibration-normalized*
/// medians (`kernel / calibration`, measured in the same process), so a
/// uniform host-speed shift cancels while a real kernel regression — which
/// does not slow the spin — still shows.
pub const CALIBRATION_KERNEL: &str = "_calibration/spin";

/// The calibration workload: `iters` SplitMix64 steps over one u64.
fn calibration_spin(iters: u64) -> u64 {
    let mut x = 0x0123_4567_89AB_CDEFu64;
    for _ in 0..iters {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        black_box(z ^ (z >> 31));
    }
    x
}

/// Robust summary of one kernel's sample distribution, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stats {
    /// Median wall time.
    pub median_ns: u64,
    /// 10th-percentile wall time (the near-best sample).
    pub p10_ns: u64,
    /// 90th-percentile wall time (the near-worst sample).
    pub p90_ns: u64,
    /// Median of the [`CALIBRATION_KERNEL`] spin measured by the *same
    /// child process*, stamped in by the sweep parent (`0` = unknown, e.g.
    /// a baseline blessed before calibration existed). Pairing every
    /// measurement with a same-process, same-window yardstick is what lets
    /// comparisons cancel host-speed drift: the pairing must survive
    /// min-merging across cycles, so it lives on the cell, not the row.
    pub calib_ns: u64,
}

impl Stats {
    /// Summarize a raw sample vector (need not be sorted).
    pub fn from_samples(mut ns: Vec<u64>) -> Self {
        assert!(!ns.is_empty(), "no samples");
        ns.sort_unstable();
        let q = |p: usize| ns[(ns.len() - 1) * p / 100];
        Stats {
            median_ns: q(50),
            p10_ns: q(10),
            p90_ns: q(90),
            calib_ns: 0,
        }
    }

    /// This cell's calibration-normalized median: `median / calibration`
    /// from the same process, or `None` without a calibration stamp.
    pub fn normalized(&self) -> Option<f64> {
        (self.calib_ns > 0).then(|| self.median_ns as f64 / self.calib_ns as f64)
    }
}

/// Does `a` beat `b` under calibration normalization? Compares
/// `a.median/a.calib < b.median/b.calib` by cross-multiplication; falls
/// back to the raw medians when either side lacks a calibration stamp.
fn normalized_faster(a: &Stats, b: &Stats) -> bool {
    if a.calib_ns > 0 && b.calib_ns > 0 {
        (a.median_ns as u128) * (b.calib_ns as u128) < (b.median_ns as u128) * (a.calib_ns as u128)
    } else {
        a.median_ns < b.median_ns
    }
}

/// Time `samples` runs of `f` (after one warmup) and summarize.
pub fn measure(samples: usize, mut f: impl FnMut()) -> Stats {
    f();
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_nanos() as u64);
    }
    Stats::from_samples(times)
}

/// Run every gated kernel under the current pool configuration and return
/// `(name, stats)` pairs in registry order. This is the sweep child's whole
/// job; the kernel set is the contract between the bench, the gate, and the
/// checked-in baseline — extend it here and re-bless.
pub fn run_kernels() -> Vec<(&'static str, Stats)> {
    let mut out = Vec::new();

    // Calibration first, so every child carries its own yardstick.
    out.push((
        CALIBRATION_KERNEL,
        measure(5, || {
            black_box(calibration_spin(8_000_000));
        }),
    ));

    // Generator + CSR build at scale 14 (262 144 edges).
    let gen = KroneckerGenerator::new(KroneckerParams::graph500(14, 1));
    let el = gen.generate_all();
    let n = gen.params().num_vertices() as usize;
    out.push((
        "generator/kronecker_s14",
        measure(5, || {
            black_box(gen.generate_all().len());
        }),
    ));
    out.push((
        "csr/build_undirected_s14",
        measure(5, || {
            black_box(Csr::from_edges(n, &el, Directedness::Undirected).num_arcs());
        }),
    ));

    // Shared-memory delta-stepping over that CSR.
    let csr = Csr::from_edges(n, &el, Directedness::Undirected);
    let root = (0..n).find(|&v| csr.degree(v) > 0).unwrap_or(0) as u64;
    out.push((
        "sssp/parallel_delta_s14",
        measure(5, || {
            black_box(parallel_delta_stepping(&csr, root, 0.125).reached_count());
        }),
    ));

    // Distributed kernels at scale 12 on a 4-rank simulated machine: the
    // 1D kernel forced to pull (times the broadcast-pull wave scan) and
    // the 2D grid relax. Host time includes assembly; that is fine — the
    // gate compares like against like.
    let gen12 = KroneckerGenerator::new(KroneckerParams::graph500(12, 1));
    let n12 = gen12.params().num_vertices();
    let m12 = gen12.params().num_edges();
    let root12 = gen12.edge_block(0..16).iter().next().map_or(0, |e| e.u);
    let ranks = 4usize;
    let slice = |r: usize| {
        let lo = r as u64 * m12 / ranks as u64;
        let hi = (r as u64 + 1) * m12 / ranks as u64;
        lo..hi
    };
    let pull_opts = OptConfig::all_on().with_direction(Direction::Pull);
    out.push((
        "sssp/pull_1d_s12",
        measure(5, || {
            let reached = Machine::new(MachineConfig::with_ranks(ranks)).run(|ctx| {
                let part = Block1D::new(n12, ranks);
                let mine = gen12.edge_block(slice(ctx.rank()));
                let g = assemble_local_graph(ctx, mine.iter(), part);
                let (sp, _) = distributed_delta_stepping(ctx, &g, root12, &pull_opts);
                sp.reached_local()
            });
            black_box(reached.results.iter().sum::<u64>());
        }),
    ));
    out.push((
        "sssp/relax_2d_s12",
        measure(5, || {
            let relaxed = Machine::new(MachineConfig::with_ranks(ranks)).run(|ctx| {
                let mine = gen12.edge_block(slice(ctx.rank()));
                let mut g = Grid2DSssp::build(ctx, n12, mine.iter(), 0.125);
                let s = g.run(ctx, root12);
                s.relaxations
            });
            black_box(relaxed.results.iter().sum::<u64>());
        }),
    ));

    // Sequential baselines over the same s14 CSR: the radix-heap Dijkstra
    // and the BMSSP recursion, timed against each other and the bucket
    // kernels above.
    out.push((
        "baselines/dijkstra_radix_s14",
        measure(5, || {
            black_box(g500_baselines::dijkstra_radix_heap(&csr, root).reached_count());
        }),
    ));
    out.push((
        "baselines/bmssp_s14",
        measure(5, || {
            black_box(g500_baselines::bmssp(&csr, root).reached_count());
        }),
    ));

    // The radix-indexed bucket queue alone: a 100k-entry insert + ordered
    // drain with a sparse far tail, the access pattern the occupancy
    // bitmap exists for.
    out.push((
        "bucket/radix_drain_100k",
        measure(10, || {
            let mut q = g500_sssp::BucketQueue::new(0.125);
            let mut x = 1u64;
            for v in 0..100_000u32 {
                x = x
                    .wrapping_add(0x9E37_79B9_7F4A_7C15)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                // mostly near distances, occasional far bucket
                let d = if x.is_multiple_of(64) {
                    (x % 100_000) as f32 * 0.01
                } else {
                    (x % 512) as f32 * 0.03
                };
                q.insert(v, d);
            }
            let mut popped = 0usize;
            while let Some(k) = q.min_bucket() {
                popped += q.take_bucket(k).len();
            }
            black_box(popped);
        }),
    ));

    // Exchange encode: dedup+gap+varint coding of a 10k-update bucket,
    // the per-destination inner loop of every superstep's alltoallv.
    let updates: Vec<Update> = (0..10_000u64)
        .map(|i| (1_000_000 + i * 3, 0.5 + (i % 7) as f32, i))
        .collect();
    out.push((
        "exchange/encode_10k",
        measure(20, || {
            black_box(encode_updates(&updates, true).len());
        }),
    ));

    // Lane-tagged variant of the same bucket: 16 interleaved lanes, the
    // wire format of every batched superstep.
    let tagged: Vec<TaggedUpdate> = (0..10_000u64)
        .map(|i| ((i % 16) as u32, 1_000_000 + i * 3, 0.5 + (i % 7) as f32, i))
        .collect();
    out.push((
        "exchange/tagged_encode_10k",
        measure(20, || {
            black_box(encode_tagged(&tagged, false).len());
        }),
    ));

    // The batched query engine end to end at scale 12 on the 4-rank
    // machine: a 16-wide admission window of full single-source queries
    // through the shared-superstep kernel (caches off — the micro gate
    // times the kernel path, F16 covers the service config).
    let serve_queries: Vec<Query> = (0..16u64)
        .map(|i| Query::full((i * n12 / 16).min(n12 - 1)))
        .collect();
    out.push((
        "serve/batch16_s12",
        measure(5, || {
            let reached = Machine::new(MachineConfig::with_ranks(ranks)).run(|ctx| {
                let part = Block1D::new(n12, ranks);
                let mine = gen12.edge_block(slice(ctx.rank()));
                let g = assemble_local_graph(ctx, mine.iter(), part);
                let cfg = ServeConfig {
                    batch_width: 16,
                    opts: OptConfig::all_on().with_delta(0.125),
                    num_landmarks: 0,
                    lru_capacity: 0,
                    keep_paths: false,
                    deadline_s: f64::INFINITY,
                };
                let mut engine = QueryEngine::new(ctx, &g, cfg);
                let outs = engine.serve(ctx, &serve_queries);
                outs.len() as u64 + engine.stats().relaxations
            });
            black_box(reached.results.iter().sum::<u64>());
        }),
    ));

    // The recovery subsystem under load: the 1D kernel at scale 12 with
    // checkpoints every other superstep and one forced crash — times the
    // Checkpoint codec, buddy replication, and a restore + replay cycle
    // on top of the kernel itself.
    out.push((
        "recovery/checkpoint_s12",
        measure(5, || {
            let plan = CrashPlan::none()
                .with_forced(1, 4)
                .with_checkpoint_interval(2);
            let reached = Machine::new(MachineConfig::with_ranks(ranks).crashes(plan)).run(|ctx| {
                let part = Block1D::new(n12, ranks);
                let mine = gen12.edge_block(slice(ctx.rank()));
                let g = assemble_local_graph(ctx, mine.iter(), part);
                let (sp, _) = distributed_delta_stepping(ctx, &g, root12, &OptConfig::all_on());
                sp.reached_local()
            });
            black_box(reached.results.iter().sum::<u64>());
        }),
    ));

    // Pool-parallel merge sort over 1M keys.
    let keys: Vec<u64> = (0..1_000_000u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    out.push((
        "rayon/par_sort_1m",
        measure(5, || {
            let mut v = keys.clone();
            v.par_sort_unstable();
            black_box(v[0]);
        }),
    ));

    out
}

/// Child mode: run the kernels under whatever `G500_THREADS` the parent
/// set and emit the parse-friendly `G500_BENCH` lines.
pub fn child_main() {
    for (name, s) in run_kernels() {
        println!(
            "G500_BENCH\t{name}\t{}\t{}\t{}",
            s.median_ns, s.p10_ns, s.p90_ns
        );
    }
}

/// One sweep point: a thread count and its per-kernel stats.
pub type SweepPoint = (usize, Vec<(String, Stats)>);

/// Re-exec `exe` once per thread count in [`SWEEP_THREADS`] and collect
/// the child lines. Failed spawns are reported and skipped.
pub fn run_sweep(exe: &Path) -> Vec<SweepPoint> {
    run_sweep_cycles(exe, 1)
}

/// Run `cycles` interleaved sweeps (T1, T2, T4, T1, T2, T4, …) and keep,
/// per `(kernel, threads)`, the stats of the cycle with the smallest
/// median. Shared/virtualized hosts drift in performance over the minutes
/// a sweep takes; a slow window then inflates whichever thread count it
/// happens to cover and fakes an overhead regression. Interleaving spreads
/// any window across all thread counts, and the min keeps the
/// best-observed run — a kernel that ran fast once can run that fast, so
/// slowness beyond it is environmental, not algorithmic.
pub fn run_sweep_cycles(exe: &Path, cycles: usize) -> Vec<SweepPoint> {
    let mut best: Vec<SweepPoint> = Vec::new();
    for sweep in run_sweep_each(exe, cycles) {
        merge_min(&mut best, sweep);
    }
    // keep the canonical T order regardless of which cycles succeeded
    best.sort_by_key(|(t, _)| *t);
    best
}

/// Like [`run_sweep_cycles`] but return every cycle's sweep separately
/// instead of min-merging them. The perf gate judges each cycle on its
/// own — a cycle's thread counts run back-to-back, so within-cycle ratios
/// see far less host drift than ratios between minima that may come from
/// different windows — and only fails a violation that reproduces in
/// every cycle.
pub fn run_sweep_each(exe: &Path, cycles: usize) -> Vec<Vec<SweepPoint>> {
    (0..cycles)
        .map(|cycle| run_sweep_once(exe, cycle))
        .collect()
}

/// Fold one sweep into `best`, keeping per-`(kernel, threads)` the stats
/// with the smaller *calibration-normalized* median (raw median when a
/// stamp is missing). The whole [`Stats`] cell moves together, so the
/// winning measurement keeps the calibration of its own process — taking
/// per-cell raw minima would let a kernel min from one host window pair
/// with a calibration min from another and distort the normalized ratio.
/// Public so the perf gate's retry can pool its re-measurement with the
/// first sweep instead of judging it in isolation.
pub fn merge_min(best: &mut Vec<SweepPoint>, sweep: Vec<SweepPoint>) {
    for (t, kernels) in sweep {
        match best.iter_mut().find(|(bt, _)| *bt == t) {
            None => best.push((t, kernels)),
            Some((_, rows)) => {
                for (name, s) in kernels {
                    match rows.iter_mut().find(|(n, _)| *n == name) {
                        None => rows.push((name, s)),
                        Some((_, b)) if normalized_faster(&s, b) => *b = s,
                        Some(_) => {}
                    }
                }
            }
        }
    }
}

fn run_sweep_once(exe: &Path, cycle: usize) -> Vec<SweepPoint> {
    let mut sweep = Vec::new();
    for t in SWEEP_THREADS {
        eprintln!("sweep: cycle {cycle}: re-exec with G500_THREADS={t}…");
        let out = match Command::new(exe)
            .env(CHILD_ENV, "1")
            .env("G500_THREADS", t.to_string())
            .output()
        {
            Ok(o) => o,
            Err(e) => {
                eprintln!("sweep: failed to spawn child for {t} threads: {e}; skipping");
                continue;
            }
        };
        if !out.status.success() {
            eprintln!(
                "sweep: child for {t} threads exited with {}; skipping",
                out.status
            );
            continue;
        }
        sweep.push((t, parse_child_stdout(&String::from_utf8_lossy(&out.stdout))));
    }
    sweep
}

/// Parse one child's `G500_BENCH` lines, then stamp every row with the
/// calibration median that same child measured (see [`Stats::calib_ns`]).
fn parse_child_stdout(stdout: &str) -> Vec<(String, Stats)> {
    let mut kernels: Vec<(String, Stats)> = Vec::new();
    for line in stdout.lines() {
        let mut parts = line.split('\t');
        if parts.next() != Some("G500_BENCH") {
            continue;
        }
        let (Some(name), Some(med), Some(p10), Some(p90)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let (Ok(median_ns), Ok(p10_ns), Ok(p90_ns)) = (med.parse(), p10.parse(), p90.parse())
        else {
            continue;
        };
        kernels.push((
            name.to_string(),
            Stats {
                median_ns,
                p10_ns,
                p90_ns,
                calib_ns: 0,
            },
        ));
    }
    let calib = kernels
        .iter()
        .find(|(n, _)| n == CALIBRATION_KERNEL)
        .map_or(0, |(_, s)| s.median_ns);
    for (_, s) in &mut kernels {
        s.calib_ns = calib;
    }
    kernels
}

/// `git rev-parse --short HEAD` of the workspace, or `"unknown"` when git
/// is unavailable (e.g. a source tarball).
pub fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The workspace-root `results/` directory (relative to this crate).
pub fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Serialize a sweep into the bench JSON schema: metadata plus
/// kernel × thread-count × {median, p10, p90} ns.
pub fn sweep_to_json(git_rev: &str, sweep: &[SweepPoint]) -> String {
    // kernel names in first-seen order
    let mut kernels: Vec<&str> = Vec::new();
    for (_, rows) in sweep {
        for (name, _) in rows {
            if !kernels.contains(&name.as_str()) {
                kernels.push(name);
            }
        }
    }
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"micro\",\n");
    s.push_str("  \"unit\": \"ns\",\n");
    s.push_str(&format!("  \"git_rev\": \"{git_rev}\",\n"));
    s.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    s.push_str(&format!(
        "  \"thread_counts\": [{}],\n",
        sweep
            .iter()
            .map(|(t, _)| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str("  \"kernels\": [\n");
    for (ki, name) in kernels.iter().enumerate() {
        let cells: Vec<String> = sweep
            .iter()
            .filter_map(|(t, rows)| {
                rows.iter().find(|(n, _)| n == name).map(|(_, st)| {
                    format!(
                        "\"{t}\": {{\"median_ns\": {}, \"p10_ns\": {}, \"p90_ns\": {}, \"calib_ns\": {}}}",
                        st.median_ns, st.p10_ns, st.p90_ns, st.calib_ns
                    )
                })
            })
            .collect();
        s.push_str(&format!(
            "    {{\"name\": \"{name}\", \"stats\": {{{}}}}}{}\n",
            cells.join(", "),
            if ki + 1 < kernels.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Write a sweep as JSON at `path`, creating parent directories.
pub fn write_sweep_json(path: &Path, git_rev: &str, sweep: &[SweepPoint]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, sweep_to_json(git_rev, sweep))
}

/// A parsed bench JSON file (either `bench_micro.json` or the baseline).
#[derive(Clone, Debug)]
pub struct BenchFile {
    /// Git revision recorded at measurement time.
    pub git_rev: String,
    /// Thread counts present in the sweep.
    pub thread_counts: Vec<usize>,
    /// Per-kernel stats by thread count, in file order.
    pub kernels: Vec<(String, BTreeMap<usize, Stats>)>,
}

impl BenchFile {
    /// Stats of `kernel` at `threads`, if recorded.
    pub fn stats(&self, kernel: &str, threads: usize) -> Option<Stats> {
        self.kernels
            .iter()
            .find(|(n, _)| n == kernel)
            .and_then(|(_, by_t)| by_t.get(&threads).copied())
    }
}

/// Parse a bench JSON file produced by [`sweep_to_json`] (tolerates
/// reordered/extra fields). Errors carry a human-readable reason.
pub fn parse_bench_file(text: &str) -> Result<BenchFile, String> {
    let v = json::parse(text)?;
    let git_rev = v
        .get("git_rev")
        .and_then(json::Value::as_str)
        .unwrap_or("unknown")
        .to_string();
    let thread_counts = v
        .get("thread_counts")
        .and_then(json::Value::as_array)
        .ok_or("missing thread_counts")?
        .iter()
        .filter_map(|t| t.as_u64().map(|t| t as usize))
        .collect();
    let mut kernels = Vec::new();
    for k in v
        .get("kernels")
        .and_then(json::Value::as_array)
        .ok_or("missing kernels")?
    {
        let name = k
            .get("name")
            .and_then(json::Value::as_str)
            .ok_or("kernel without name")?
            .to_string();
        let stats_obj = k
            .get("stats")
            .and_then(json::Value::as_object)
            .ok_or_else(|| format!("kernel {name} without stats"))?;
        let mut by_t = BTreeMap::new();
        for (t, st) in stats_obj {
            let t: usize = t.parse().map_err(|_| format!("bad thread key {t:?}"))?;
            let field = |f: &str| {
                st.get(f)
                    .and_then(json::Value::as_u64)
                    .ok_or_else(|| format!("kernel {name} T={t}: missing {f}"))
            };
            by_t.insert(
                t,
                Stats {
                    median_ns: field("median_ns")?,
                    p10_ns: field("p10_ns")?,
                    p90_ns: field("p90_ns")?,
                    // optional: baselines blessed before calibration lack it
                    calib_ns: st
                        .get("calib_ns")
                        .and_then(json::Value::as_u64)
                        .unwrap_or(0),
                },
            );
        }
        kernels.push((name, by_t));
    }
    Ok(BenchFile {
        git_rev,
        thread_counts,
        kernels,
    })
}

/// A just-enough JSON parser for the bench files: objects, arrays,
/// strings (no escapes beyond `\"` and `\\`), integers and floats, plus
/// the literals. The workspace carries no serde; this keeps the perf gate
/// dependency-free.
pub mod json {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (kept as f64; bench values are small integers).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, preserving key order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The string payload, if a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric payload as u64, if a non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }

        /// The array payload, if an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The object payload as key/value pairs, if an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let b = text.as_bytes();
        let mut pos = 0;
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && b[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        _ => return Err(format!("unsupported escape \\{}", esc as char)),
                    }
                }
                _ => out.push(c as char),
            }
        }
        Err("unterminated string".into())
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            let k = string(b, pos)?;
            expect(b, pos, b':')?;
            fields.push((k, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_percentiles() {
        let s = Stats::from_samples(vec![50, 10, 30, 20, 40]);
        assert_eq!(s.median_ns, 30);
        assert_eq!(s.p10_ns, 10);
        assert_eq!(s.p90_ns, 40);
        let one = Stats::from_samples(vec![7]);
        assert_eq!((one.p10_ns, one.median_ns, one.p90_ns), (7, 7, 7));
    }

    #[test]
    fn json_roundtrip_through_parser() {
        let sweep: Vec<SweepPoint> = vec![
            (
                1,
                vec![
                    (
                        "a/k1".to_string(),
                        Stats {
                            median_ns: 100,
                            p10_ns: 90,
                            p90_ns: 110,
                            calib_ns: 50,
                        },
                    ),
                    (
                        "b/k2".to_string(),
                        Stats {
                            median_ns: 5,
                            p10_ns: 4,
                            p90_ns: 6,
                            calib_ns: 50,
                        },
                    ),
                ],
            ),
            (
                4,
                vec![(
                    "a/k1".to_string(),
                    Stats {
                        median_ns: 104,
                        p10_ns: 95,
                        p90_ns: 120,
                        calib_ns: 55,
                    },
                )],
            ),
        ];
        let text = sweep_to_json("abc1234", &sweep);
        let parsed = parse_bench_file(&text).expect("parse");
        assert_eq!(parsed.git_rev, "abc1234");
        assert_eq!(parsed.thread_counts, vec![1, 4]);
        assert_eq!(
            parsed.stats("a/k1", 4),
            Some(Stats {
                median_ns: 104,
                p10_ns: 95,
                p90_ns: 120,
                calib_ns: 55
            })
        );
        assert_eq!(parsed.stats("b/k2", 4), None);
        assert_eq!(parsed.stats("b/k2", 1).map(|s| s.median_ns), Some(5));
    }

    #[test]
    fn merge_min_keeps_fastest_cycle_per_cell() {
        let st = |m| Stats {
            median_ns: m,
            p10_ns: m,
            p90_ns: m,
            calib_ns: 0,
        };
        let mut best = Vec::new();
        merge_min(
            &mut best,
            vec![
                (1, vec![("k".to_string(), st(100))]),
                (4, vec![("k".to_string(), st(300))]),
            ],
        );
        // second cycle: T=1 slower (ignored), T=4 faster (kept), new kernel appears
        merge_min(
            &mut best,
            vec![
                (
                    1,
                    vec![("k".to_string(), st(150)), ("j".to_string(), st(7))],
                ),
                (4, vec![("k".to_string(), st(120))]),
            ],
        );
        let get = |t: usize, n: &str| {
            best.iter()
                .find(|(bt, _)| *bt == t)
                .and_then(|(_, rows)| rows.iter().find(|(bn, _)| bn == n))
                .map(|(_, s)| s.median_ns)
        };
        assert_eq!(get(1, "k"), Some(100));
        assert_eq!(get(4, "k"), Some(120));
        assert_eq!(get(1, "j"), Some(7));
    }

    #[test]
    fn merge_min_compares_calibration_normalized_and_keeps_the_pair() {
        let st = |m, c| Stats {
            median_ns: m,
            p10_ns: m,
            p90_ns: m,
            calib_ns: c,
        };
        // Cycle 0 ran in a slow window: kernel 200ns, calibration 100ns
        // (normalized 2.0). Cycle 1's window is fast: kernel 150ns looks
        // better raw, but calibration 50ns says normalized 3.0 — the
        // kernel genuinely got slower relative to the host, so the slow
        // window's measurement must win and keep ITS calibration.
        let mut best = vec![(1, vec![("k".to_string(), st(200, 100))])];
        merge_min(&mut best, vec![(1, vec![("k".to_string(), st(150, 50))])]);
        assert_eq!(best[0].1[0].1, st(200, 100));
        // A normalized improvement replaces the whole cell, stamp included.
        merge_min(&mut best, vec![(1, vec![("k".to_string(), st(190, 100))])]);
        assert_eq!(best[0].1[0].1, st(190, 100));
        // Without stamps the comparison falls back to raw medians.
        let mut raw = vec![(1, vec![("k".to_string(), st(200, 0))])];
        merge_min(&mut raw, vec![(1, vec![("k".to_string(), st(150, 50))])]);
        assert_eq!(raw[0].1[0].1.median_ns, 150);
    }

    #[test]
    fn child_stdout_rows_are_stamped_with_their_own_calibration() {
        let out = format!(
            "noise line\nG500_BENCH\t{CALIBRATION_KERNEL}\t40\t39\t41\n\
             G500_BENCH\ta/k1\t100\t90\t110\nG500_BENCH\tb/k2\t5\t4\t6\n"
        );
        let rows = parse_child_stdout(&out);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|(_, s)| s.calib_ns == 40));
        assert_eq!(rows[1].1.normalized(), Some(2.5));
        // no calibration line → no stamps, normalized() is None
        let rows = parse_child_stdout("G500_BENCH\ta/k1\t100\t90\t110\n");
        assert_eq!(rows[0].1.calib_ns, 0);
        assert_eq!(rows[0].1.normalized(), None);
    }

    #[test]
    fn json_parser_rejects_malformed() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("{}x").is_err());
        assert!(json::parse("[1, ]").is_err());
        assert!(parse_bench_file("{\"kernels\": []}").is_err()); // no thread_counts
    }

    #[test]
    fn json_parser_accepts_the_grammar_we_emit() {
        let v = json::parse(r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&json::Value::Bool(true)));
    }
}
