//! Deterministic auxiliary generators.
//!
//! These produce graphs whose shortest-path structure is known in closed
//! form (paths, grids, stars) or statistically controlled (Erdős–Rényi),
//! which unit, property and integration tests use as oracles against the
//! Kronecker-driven benchmarks.

use crate::rng::CounterRng;
use g500_graph::{EdgeList, WEdge};

/// A path `0 — 1 — … — n-1` with the given constant weight.
pub fn path(n: u64, w: f32) -> EdgeList {
    let mut el = EdgeList::with_capacity(n.saturating_sub(1) as usize);
    for i in 1..n {
        el.push(WEdge::new(i - 1, i, w));
    }
    el
}

/// A cycle over `n` vertices with constant weight.
pub fn cycle(n: u64, w: f32) -> EdgeList {
    let mut el = path(n, w);
    if n > 1 {
        el.push(WEdge::new(n - 1, 0, w));
    }
    el
}

/// A star: center `0` joined to `1..n`, constant weight.
pub fn star(n: u64, w: f32) -> EdgeList {
    let mut el = EdgeList::with_capacity(n.saturating_sub(1) as usize);
    for i in 1..n {
        el.push(WEdge::new(0, i, w));
    }
    el
}

/// A complete graph on `n` vertices, constant weight.
pub fn complete(n: u64, w: f32) -> EdgeList {
    let mut el = EdgeList::new();
    for i in 0..n {
        for j in (i + 1)..n {
            el.push(WEdge::new(i, j, w));
        }
    }
    el
}

/// A `w × h` 4-neighbor grid; vertex `(x, y)` is `y * w + x`. Unit weights.
pub fn grid2d(w: u64, h: u64) -> EdgeList {
    let mut el = EdgeList::new();
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if x + 1 < w {
                el.push(WEdge::new(v, v + 1, 1.0));
            }
            if y + 1 < h {
                el.push(WEdge::new(v, v + w, 1.0));
            }
        }
    }
    el
}

/// `G(n, m)` Erdős–Rényi multigraph: `m` edges with independently uniform
/// endpoints and uniform `[0,1)` weights, deterministic in `seed`.
pub fn erdos_renyi(n: u64, m: u64, seed: u64) -> EdgeList {
    assert!(n > 0);
    let ends = CounterRng::new(seed, 10);
    let ws = CounterRng::new(seed, 11);
    let mut el = EdgeList::with_capacity(m as usize);
    for i in 0..m {
        el.push(WEdge::new(
            ends.below(2 * i, n),
            ends.below(2 * i + 1, n),
            ws.unit_f32(i),
        ));
    }
    el
}

/// Barabási–Albert preferential attachment: each new vertex attaches `k`
/// edges to existing vertices chosen proportionally to their current
/// degree; weights uniform `[0,1)`. Produces a connected scale-free graph
/// — the *other* standard heavy-tail model, used to check that kernels'
/// behaviour on Kronecker graphs is about the degree profile rather than
/// the Kronecker construction specifically.
///
/// Implementation uses the classic repeated-endpoints trick: sampling a
/// uniform position in the running edge-endpoint list is exactly
/// degree-proportional sampling.
pub fn barabasi_albert(n: u64, k: u64, seed: u64) -> EdgeList {
    assert!(k >= 1, "attachment count must be >= 1");
    assert!(n > k, "need more vertices than attachments");
    let rng = CounterRng::new(seed, 30);
    let ws = CounterRng::new(seed, 31);
    let mut el = EdgeList::with_capacity(((n - k - 1) * k + k) as usize);
    // endpoint multiset: each edge contributes both ends
    let mut ends: Vec<u64> = Vec::new();
    // seed clique-ish core: vertex i in 1..=k attaches to i-1
    for i in 1..=k {
        el.push(WEdge::new(i - 1, i, ws.unit_f32(i)));
        ends.push(i - 1);
        ends.push(i);
    }
    let mut ctr = 0u64;
    for v in (k + 1)..n {
        let mut chosen: Vec<u64> = Vec::with_capacity(k as usize);
        let mut attempts = 0;
        while (chosen.len() as u64) < k && attempts < 32 * k {
            let t = ends[rng.below(ctr, ends.len() as u64) as usize];
            ctr += 1;
            attempts += 1;
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for (j, t) in chosen.into_iter().enumerate() {
            el.push(WEdge::new(v, t, ws.unit_f32(n + v * k + j as u64)));
            ends.push(v);
            ends.push(t);
        }
    }
    el
}

/// A uniformly random spanning tree on `n` vertices (each vertex `i > 0`
/// attaches to a uniform earlier vertex), weights uniform `[0,1)`.
///
/// Guaranteed connected — useful for tests that need full reachability.
pub fn random_tree(n: u64, seed: u64) -> EdgeList {
    let parents = CounterRng::new(seed, 20);
    let ws = CounterRng::new(seed, 21);
    let mut el = EdgeList::with_capacity(n.saturating_sub(1) as usize);
    for i in 1..n {
        el.push(WEdge::new(parents.below(i, i), i, ws.unit_f32(i)));
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let el = path(5, 2.0);
        assert_eq!(el.len(), 4);
        assert_eq!(el.get(0), WEdge::new(0, 1, 2.0));
        assert_eq!(el.get(3), WEdge::new(3, 4, 2.0));
    }

    #[test]
    fn cycle_closes() {
        let el = cycle(4, 1.0);
        assert_eq!(el.len(), 4);
        assert_eq!(el.get(3), WEdge::new(3, 0, 1.0));
        assert_eq!(cycle(1, 1.0).len(), 0);
    }

    #[test]
    fn star_degrees() {
        let el = star(6, 1.0);
        assert_eq!(el.len(), 5);
        assert!(el.iter().all(|e| e.u == 0));
    }

    #[test]
    fn complete_edge_count() {
        assert_eq!(complete(6, 1.0).len(), 15);
        assert_eq!(complete(1, 1.0).len(), 0);
    }

    #[test]
    fn grid_edge_count() {
        // w*h grid has w*(h-1) + h*(w-1) edges
        let el = grid2d(4, 3);
        assert_eq!(el.len(), 4 * 2 + 3 * 3);
        assert_eq!(el.vertex_count(), 12);
    }

    #[test]
    fn erdos_renyi_deterministic_and_in_range() {
        let a = erdos_renyi(100, 500, 7);
        let b = erdos_renyi(100, 500, 7);
        assert_eq!(a.len(), 500);
        for i in 0..500 {
            assert_eq!(a.get(i), b.get(i));
            assert!(a.get(i).u < 100 && a.get(i).v < 100);
        }
    }

    #[test]
    fn barabasi_albert_is_scale_free_ish() {
        let n = 2000u64;
        let el = barabasi_albert(n, 3, 7);
        // connected by construction: every vertex > 0 has an edge
        let mut deg = vec![0u64; n as usize];
        for e in el.iter() {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        assert!(deg.iter().all(|&d| d > 0), "isolated vertex in BA graph");
        // heavy tail: max degree far above the mean
        let mean = 2.0 * el.len() as f64 / n as f64;
        let max = *deg.iter().max().expect("nonempty") as f64;
        assert!(max > 8.0 * mean, "max {max} vs mean {mean:.1}");
        // early vertices should be the hubs (rich get richer)
        let early_max = *deg[..20].iter().max().expect("nonempty");
        let late_max = *deg[(n as usize - 20)..].iter().max().expect("nonempty");
        assert!(early_max > late_max, "no preferential attachment signal");
    }

    #[test]
    fn barabasi_albert_deterministic() {
        let a = barabasi_albert(100, 2, 5);
        let b = barabasi_albert(100, 2, 5);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.get(i), b.get(i));
        }
    }

    #[test]
    #[should_panic(expected = "more vertices than attachments")]
    fn barabasi_albert_rejects_tiny_n() {
        barabasi_albert(3, 3, 1);
    }

    #[test]
    fn random_tree_is_connected_dag_shape() {
        let el = random_tree(50, 3);
        assert_eq!(el.len(), 49);
        // edge i connects vertex i+1 to some earlier vertex → connected
        for (k, e) in el.iter().enumerate() {
            assert_eq!(e.v, k as u64 + 1);
            assert!(e.u < e.v);
        }
    }
}
