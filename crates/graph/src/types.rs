//! Primitive vertex/edge/weight types shared by the whole workspace.

/// Global vertex identifier.
///
/// Graph500 scales reach 2^42+ vertices, so global ids are 64-bit. Per-rank
/// *local* indices (after partitioning) fit in `u32`/`usize` and are plain
/// integers, not this type.
pub type VertexId = u64;

/// Edge weight. The Graph500 SSSP benchmark draws weights uniformly from
/// `[0, 1)` as single-precision floats; distances accumulate in `f32` too,
/// matching the official reference implementation.
pub type Weight = f32;

/// Sentinel "unreached" distance.
pub const INF_WEIGHT: Weight = f32::INFINITY;

/// Sentinel "no parent" entry in shortest-path trees.
pub const NO_PARENT: u64 = u64::MAX;

/// The output of a single-source shortest-path computation over the global
/// vertex set: per-vertex tentative distance and tree parent. Shared by
/// every SSSP implementation in the workspace so results are directly
/// comparable and validatable.
#[derive(Clone, Debug, PartialEq)]
pub struct ShortestPaths {
    /// `dist[v]`: shortest distance from the root, `INF_WEIGHT` if unreached.
    pub dist: Vec<Weight>,
    /// `parent[v]`: tree parent, `NO_PARENT` if unreached; root self-parented.
    pub parent: Vec<u64>,
}

impl ShortestPaths {
    /// All-unreached state over `n` vertices.
    pub fn unreached(n: usize) -> Self {
        Self {
            dist: vec![INF_WEIGHT; n],
            parent: vec![NO_PARENT; n],
        }
    }

    /// Initial state with `root` settled at distance 0.
    pub fn with_root(n: usize, root: VertexId) -> Self {
        let mut sp = Self::unreached(n);
        sp.dist[root as usize] = 0.0;
        sp.parent[root as usize] = root;
        sp
    }

    /// Number of reached vertices.
    pub fn reached_count(&self) -> u64 {
        self.dist.iter().filter(|d| d.is_finite()).count() as u64
    }

    /// Compare two results for semantic equality: same reachability and
    /// distances within `tol` (parents may legitimately differ between
    /// algorithms when shortest paths tie).
    pub fn distances_match(&self, other: &Self, tol: Weight) -> bool {
        self.dist.len() == other.dist.len()
            && self
                .dist
                .iter()
                .zip(&other.dist)
                .all(|(&a, &b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() <= tol)
    }
}

/// A weighted directed edge `u --w--> v` with global endpoints.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WEdge {
    /// Source endpoint.
    pub u: VertexId,
    /// Destination endpoint.
    pub v: VertexId,
    /// Non-negative weight.
    pub w: Weight,
}

impl WEdge {
    /// Construct an edge.
    #[inline]
    pub fn new(u: VertexId, v: VertexId, w: Weight) -> Self {
        Self { u, v, w }
    }

    /// The same edge pointing the other way (weights are symmetric in
    /// Graph500 graphs, which are undirected).
    #[inline]
    pub fn reversed(self) -> Self {
        Self {
            u: self.v,
            v: self.u,
            w: self.w,
        }
    }

    /// True for self-loops, which SSSP kernels may skip.
    #[inline]
    pub fn is_loop(self) -> bool {
        self.u == self.v
    }
}

/// Interpret a non-negative `f32` as a totally ordered `u32` key.
///
/// IEEE-754 orders non-negative floats identically to their bit patterns,
/// which lets atomics (`AtomicU32`) implement `fetch_min` on distances — the
/// trick the shared-memory delta-stepping kernel relies on. Graph500 weights
/// and therefore distances are always `>= 0`, so the precondition holds.
#[inline]
pub fn weight_to_bits(w: Weight) -> u32 {
    debug_assert!(
        w >= 0.0 || w.is_nan(),
        "negative weights are not orderable via bits"
    );
    w.to_bits()
}

/// Inverse of [`weight_to_bits`].
#[inline]
pub fn bits_to_weight(b: u32) -> Weight {
    f32::from_bits(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_reversal_swaps_endpoints() {
        let e = WEdge::new(3, 9, 0.5);
        let r = e.reversed();
        assert_eq!(r.u, 9);
        assert_eq!(r.v, 3);
        assert_eq!(r.w, 0.5);
        assert_eq!(r.reversed(), e);
    }

    #[test]
    fn loop_detection() {
        assert!(WEdge::new(4, 4, 0.1).is_loop());
        assert!(!WEdge::new(4, 5, 0.1).is_loop());
    }

    #[test]
    fn weight_bits_preserve_order() {
        let samples = [0.0f32, 1e-30, 0.001, 0.5, 0.999, 1.0, 7.25, f32::INFINITY];
        for w in samples.windows(2) {
            assert!(
                weight_to_bits(w[0]) < weight_to_bits(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        for &w in &samples {
            assert_eq!(bits_to_weight(weight_to_bits(w)), w);
        }
    }
}
