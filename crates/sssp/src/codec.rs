//! The relaxation-update message codec.
//!
//! An update is `(target vertex, new distance, parent)` — 20 raw bytes. At
//! benchmark scale the exchange volume is the dominant network load, so the
//! optimized kernel ships updates sorted by target with gap+varint coded
//! ids and varint parents (distances stay raw `f32`: Graph500 weights are
//! uniform random, there is no entropy to remove). Sortedness comes for
//! free from the dedup ("on-chip sort") stage. Experiment F6 measures the
//! achieved ratio.

use g500_graph::compress::{read_varint, write_varint};

/// One relaxation request: (global target, tentative distance, global parent).
pub type Update = (u64, f32, u64);

/// Encode updates. If `sorted_by_target` is false the slice is copied and
/// sorted first (the format requires non-decreasing targets).
pub fn encode_updates(updates: &[Update], sorted_by_target: bool) -> Vec<u8> {
    let mut storage;
    let updates = if sorted_by_target || updates.windows(2).all(|w| w[0].0 <= w[1].0) {
        updates
    } else {
        storage = updates.to_vec();
        storage.sort_unstable_by_key(|u| u.0);
        &storage[..]
    };
    let mut out = Vec::with_capacity(4 + updates.len() * 10);
    write_varint(&mut out, updates.len() as u64);
    let mut prev = 0u64;
    for &(t, _, _) in updates {
        write_varint(&mut out, t - prev);
        prev = t;
    }
    for &(_, d, _) in updates {
        out.extend_from_slice(&d.to_le_bytes());
    }
    for &(_, _, p) in updates {
        write_varint(&mut out, p);
    }
    out
}

/// Decode a buffer produced by [`encode_updates`]. `None` on malformed
/// input.
pub fn decode_updates(buf: &[u8]) -> Option<Vec<Update>> {
    let mut pos = 0;
    let n = read_varint(buf, &mut pos)? as usize;
    let mut targets = Vec::with_capacity(n);
    let mut prev = 0u64;
    for _ in 0..n {
        prev = prev.checked_add(read_varint(buf, &mut pos)?)?;
        targets.push(prev);
    }
    let mut dists = Vec::with_capacity(n);
    for _ in 0..n {
        let end = pos.checked_add(4)?;
        let bytes = buf.get(pos..end)?;
        dists.push(f32::from_le_bytes(bytes.try_into().ok()?));
        pos = end;
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let p = read_varint(buf, &mut pos)?;
        out.push((targets[i], dists[i], p));
    }
    if pos == buf.len() {
        Some(out)
    } else {
        None
    }
}

/// Sort by target and keep the minimum-distance update per target — the
/// "on-chip sort" dedup stage. Returns the number of records eliminated.
pub fn dedup_min(updates: &mut Vec<Update>) -> usize {
    if updates.len() <= 1 {
        return 0;
    }
    updates.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let before = updates.len();
    updates.dedup_by_key(|u| u.0); // keeps the first = min distance
    before - updates.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Update> {
        vec![(5, 0.5, 100), (7, 0.25, 2), (7, 0.75, 3), (1000, 1.5, 999)]
    }

    #[test]
    fn roundtrip_sorted() {
        let u = sample();
        let enc = encode_updates(&u, true);
        assert_eq!(decode_updates(&enc), Some(u));
    }

    #[test]
    fn roundtrip_unsorted_gets_sorted() {
        let mut u = sample();
        u.reverse();
        let enc = encode_updates(&u, false);
        let dec = decode_updates(&enc).unwrap();
        assert!(dec.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(dec.len(), 4);
    }

    #[test]
    fn empty_roundtrip() {
        let enc = encode_updates(&[], true);
        assert_eq!(decode_updates(&enc), Some(vec![]));
    }

    #[test]
    fn compression_beats_raw_on_clustered_targets() {
        // targets in one rank's contiguous range — the realistic case
        let updates: Vec<Update> = (0..1000u64)
            .map(|i| (100_000 + i * 3, 0.5, 77_000 + i))
            .collect();
        let enc = encode_updates(&updates, true);
        let raw = updates.len() * 20;
        assert!(
            enc.len() * 3 < raw * 2,
            "ratio only {:.2}",
            raw as f64 / enc.len() as f64
        );
    }

    #[test]
    fn truncated_rejected() {
        let enc = encode_updates(&sample(), true);
        assert_eq!(decode_updates(&enc[..enc.len() - 1]), None);
        assert_eq!(decode_updates(&[]), None);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc = encode_updates(&sample(), true);
        enc.push(0);
        assert_eq!(decode_updates(&enc), None);
    }

    #[test]
    fn dedup_keeps_min_per_target() {
        let mut u = vec![
            (7u64, 0.75f32, 3u64),
            (5, 0.5, 100),
            (7, 0.25, 2),
            (7, 0.9, 4),
        ];
        let removed = dedup_min(&mut u);
        assert_eq!(removed, 2);
        assert_eq!(u, vec![(5, 0.5, 100), (7, 0.25, 2)]);
    }

    #[test]
    fn dedup_noop_on_unique_targets() {
        let mut u = vec![(1u64, 0.1f32, 0u64), (2, 0.2, 0)];
        assert_eq!(dedup_min(&mut u), 0);
        assert_eq!(u.len(), 2);
    }
}
