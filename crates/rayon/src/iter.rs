//! Parallel iterators over fixed, thread-count-independent chunks.
//!
//! ## The determinism contract
//!
//! Every iterator here is a *chunk producer*: it knows its base length and
//! can emit the items of any index range `[lo, hi)` in order. Terminal
//! operations split `0..len` into chunks whose boundaries are a pure
//! function of `len` and the `with_min_len`/`with_max_len` hints — never of
//! the pool size — run the chunks on the pool in any order, and combine the
//! per-chunk results **sequentially in chunk order**. Consequently every
//! terminal (`collect`, `sum`, `fold`+`reduce`, `max`, ...) returns bitwise
//! identical results at any thread count, which is what lets the PR-1
//! deterministic-replay and conformance guarantees survive real parallelism.
//!
//! Kernel authors: never branch on `current_num_threads()` to decide *what*
//! to compute — only to bound scratch allocation, or to pick chunk counts
//! for merges that are provably order- and partition-insensitive (integer
//! degree counts, index-pure edge blocks).

use crate::pool::run_parallel;
use std::cell::UnsafeCell;
use std::iter::Sum;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};

/// Default target number of chunks per parallel region. Larger than any
/// plausible pool size so dynamic claiming can balance skew, small enough
/// that per-chunk overhead stays negligible.
const DEFAULT_TARGET_CHUNKS: usize = 64;
/// Default minimum items per chunk; below this, spawning is pure overhead.
const DEFAULT_MIN_CHUNK: usize = 1024;

/// The fixed chunk size for a region of `len` items: depends only on `len`
/// and the hints, never on the thread count.
fn fixed_chunk_size(len: usize, min_len: usize, max_len: usize) -> usize {
    len.div_ceil(DEFAULT_TARGET_CHUNKS)
        .max(min_len)
        .min(max_len)
        .max(1)
}

/// A parallel iterator: a producer that can emit the items of any index
/// range of its base domain, in order. See the module docs for the
/// determinism contract.
///
/// `Sync` is required because terminals share `&self` across pool threads.
pub trait ParallelIterator: Sized + Sync {
    type Item: Send;

    /// Length of the base index domain. For position-changing adapters
    /// (`filter`, `flat_map_iter`) this is the *input* length; the number of
    /// emitted items may differ.
    fn base_len(&self) -> usize;

    /// Emit the items of base range `[lo, hi)`, in order, into `sink`.
    fn for_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(Self::Item));

    /// Called once, before any `for_chunk`, when a terminal starts driving.
    /// Consuming sources (e.g. [`VecIter`]) flip ownership here.
    fn begin_drive(&self) {}

    /// Minimum items per chunk (see `with_min_len`).
    fn min_chunk_hint(&self) -> usize {
        DEFAULT_MIN_CHUNK
    }

    /// Maximum items per chunk (see `with_max_len`).
    fn max_chunk_hint(&self) -> usize {
        usize::MAX
    }

    // ---- adapters -------------------------------------------------------

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    fn filter<F>(self, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        Filter { base: self, pred }
    }

    /// Map each item to a sequential iterator and emit its items in place.
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        FlatMapIter { base: self, f }
    }

    /// Copy out of `&T` items (mirrors `Iterator::copied`).
    fn copied<'a, T>(self) -> Copied<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Copy + Send + Sync + 'a,
    {
        Copied { base: self }
    }

    /// Group items into `Vec`s of up to `n` consecutive items.
    fn chunks(self, n: usize) -> Chunks<Self> {
        assert!(n > 0, "chunk size must be positive");
        Chunks { base: self, n }
    }

    /// Set the minimum number of items a chunk may hold. Part of the fixed
    /// chunk geometry: affects results of non-associative combines (e.g.
    /// float sums) identically at every thread count.
    fn with_min_len(self, n: usize) -> WithHints<Self> {
        let max = self.max_chunk_hint();
        WithHints {
            base: self,
            min: n.max(1),
            max,
        }
    }

    /// Set the maximum number of items a chunk may hold.
    fn with_max_len(self, n: usize) -> WithHints<Self> {
        let min = self.min_chunk_hint();
        WithHints {
            base: self,
            min,
            max: n.max(1),
        }
    }

    /// Fold each fixed chunk into an accumulator; yields one accumulator per
    /// chunk (in chunk order), as a parallel iterator for further reduction.
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, Self::Item) -> T + Sync,
    {
        Fold {
            base: self,
            identity,
            fold_op,
        }
    }

    // ---- terminals ------------------------------------------------------

    /// Run `f` on every item. Chunks run concurrently; items within a chunk
    /// run in order.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        drive_chunks(&self, |it, lo, hi| it.for_chunk(lo, hi, &mut |x| f(x)));
    }

    /// Collect into a container; per-chunk buffers are concatenated in chunk
    /// order, so the result order matches sequential execution.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Collect into a caller-owned `Vec`, reusing its capacity: the vector
    /// is cleared, then per-chunk buffers are appended in chunk order. The
    /// contents end up identical to [`collect`](Self::collect); hot kernels
    /// use this to keep one scratch arena alive across waves instead of
    /// reallocating every wave.
    fn collect_into_vec(self, out: &mut Vec<Self::Item>) {
        out.clear();
        let parts = drive_chunks(&self, |it, lo, hi| {
            let mut buf: Vec<Self::Item> = Vec::with_capacity(hi - lo);
            it.for_chunk(lo, hi, &mut |x| buf.push(x));
            buf
        });
        let total = parts.iter().map(Vec::len).sum();
        out.reserve(total);
        for mut p in parts {
            out.append(&mut p);
        }
    }

    /// Sum the items: each chunk is summed in order, then the per-chunk sums
    /// are summed sequentially in chunk order.
    fn sum<S>(self) -> S
    where
        S: Sum<Self::Item> + Sum<S> + Send,
    {
        let partials = drive_chunks(&self, |it, lo, hi| {
            let mut buf: Vec<Self::Item> = Vec::with_capacity(hi - lo);
            it.for_chunk(lo, hi, &mut |x| buf.push(x));
            buf.into_iter().sum::<S>()
        });
        partials.into_iter().sum()
    }

    /// Count the emitted items.
    fn count(self) -> usize {
        let partials = drive_chunks(&self, |it, lo, hi| {
            let mut c = 0usize;
            it.for_chunk(lo, hi, &mut |_| c += 1);
            c
        });
        partials.into_iter().sum()
    }

    /// Maximum item, or `None` if empty. Ties resolve toward the later
    /// chunk / later item, matching `Iterator::max`.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        let partials = drive_chunks(&self, |it, lo, hi| {
            let mut best: Option<Self::Item> = None;
            it.for_chunk(lo, hi, &mut |x| {
                best = match best.take() {
                    None => Some(x),
                    Some(b) => Some(std::cmp::max(b, x)),
                };
            });
            best
        });
        partials.into_iter().flatten().reduce(std::cmp::max)
    }

    /// Reduce the items with `op`, seeding each chunk with `identity()` and
    /// combining the per-chunk results sequentially in chunk order.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let partials = drive_chunks(&self, |it, lo, hi| {
            let mut acc = identity();
            it.for_chunk(lo, hi, &mut |x| {
                acc = op(std::mem::replace(&mut acc, identity()), x);
            });
            acc
        });
        partials.into_iter().fold(identity(), &op)
    }
}

/// Marker for iterators whose emitted items correspond 1:1 (in order) with
/// base indices — `filter`/`flat_map_iter` lose it.
pub trait IndexedParallelIterator: ParallelIterator {}

/// Write-once result slots, one per chunk; each slot is written by exactly
/// the thread that claimed the chunk, so the raw access is race-free.
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(n: usize) -> Slots<T> {
        Slots((0..n).map(|_| UnsafeCell::new(None)).collect())
    }
    /// SAFETY: each index must be written at most once, by one thread.
    unsafe fn put(&self, i: usize, v: T) {
        unsafe { *self.0[i].get() = Some(v) };
    }
    fn into_vec(self) -> Vec<T> {
        self.0
            .into_iter()
            .map(|c| c.into_inner().expect("chunk slot unfilled"))
            .collect()
    }
}

/// Drive a parallel iterator: split its base domain into fixed chunks, run
/// `per_chunk` on each across the pool, and return the results in chunk
/// order.
///
/// Auto-sequential cutoff: a region of at most two chunks runs inline on
/// the caller, in chunk order, without touching the pool. The chunks (and
/// therefore all results) are exactly the ones pooled execution would
/// produce — only the executing thread changes — so the cutoff is free to
/// exist without weakening the determinism contract, and sub-threshold
/// waves never pay scheduler overhead.
fn drive_chunks<I, T, F>(it: &I, per_chunk: F) -> Vec<T>
where
    I: ParallelIterator,
    T: Send,
    F: Fn(&I, usize, usize) -> T + Sync,
{
    let len = it.base_len();
    if len == 0 {
        return Vec::new();
    }
    it.begin_drive();
    let cs = fixed_chunk_size(len, it.min_chunk_hint(), it.max_chunk_hint());
    let nchunks = len.div_ceil(cs);
    if nchunks <= 2 {
        return (0..nchunks)
            .map(|i| per_chunk(it, i * cs, ((i + 1) * cs).min(len)))
            .collect();
    }
    let slots: Slots<T> = Slots::new(nchunks);
    run_parallel(nchunks, &|i| {
        let lo = i * cs;
        let hi = ((i + 1) * cs).min(len);
        let v = per_chunk(it, lo, hi);
        // SAFETY: the pool claims each chunk index exactly once.
        unsafe { slots.put(i, v) };
    });
    slots.into_vec()
}

/// Conversion from a parallel iterator (rayon's `FromParallelIterator`).
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Vec<T> {
        let parts = drive_chunks(&it, |it, lo, hi| {
            let mut buf: Vec<T> = Vec::with_capacity(hi - lo);
            it.for_chunk(lo, hi, &mut |x| buf.push(x));
            buf
        });
        let total = parts.iter().map(Vec::len).sum();
        let mut out: Vec<T> = Vec::with_capacity(total);
        for mut p in parts {
            out.append(&mut p);
        }
        out
    }
}

// ---- adapters -----------------------------------------------------------

pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;
    fn base_len(&self) -> usize {
        self.base.base_len()
    }
    fn for_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(R)) {
        self.base.for_chunk(lo, hi, &mut |x| sink((self.f)(x)));
    }
    fn begin_drive(&self) {
        self.base.begin_drive();
    }
    fn min_chunk_hint(&self) -> usize {
        self.base.min_chunk_hint()
    }
    fn max_chunk_hint(&self) -> usize {
        self.base.max_chunk_hint()
    }
}

impl<I, R, F> IndexedParallelIterator for Map<I, F>
where
    I: IndexedParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
}

pub struct Filter<I, F> {
    base: I,
    pred: F,
}

impl<I, F> ParallelIterator for Filter<I, F>
where
    I: ParallelIterator,
    F: Fn(&I::Item) -> bool + Sync,
{
    type Item = I::Item;
    fn base_len(&self) -> usize {
        self.base.base_len()
    }
    fn for_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(I::Item)) {
        self.base.for_chunk(lo, hi, &mut |x| {
            if (self.pred)(&x) {
                sink(x)
            }
        });
    }
    fn begin_drive(&self) {
        self.base.begin_drive();
    }
    fn min_chunk_hint(&self) -> usize {
        self.base.min_chunk_hint()
    }
    fn max_chunk_hint(&self) -> usize {
        self.base.max_chunk_hint()
    }
}

pub struct FlatMapIter<I, F> {
    base: I,
    f: F,
}

impl<I, U, F> ParallelIterator for FlatMapIter<I, F>
where
    I: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(I::Item) -> U + Sync,
{
    type Item = U::Item;
    fn base_len(&self) -> usize {
        self.base.base_len()
    }
    fn for_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(U::Item)) {
        self.base.for_chunk(lo, hi, &mut |x| {
            for y in (self.f)(x) {
                sink(y);
            }
        });
    }
    fn begin_drive(&self) {
        self.base.begin_drive();
    }
    fn min_chunk_hint(&self) -> usize {
        self.base.min_chunk_hint()
    }
    fn max_chunk_hint(&self) -> usize {
        self.base.max_chunk_hint()
    }
}

pub struct Copied<I> {
    base: I,
}

impl<'a, I, T> ParallelIterator for Copied<I>
where
    I: ParallelIterator<Item = &'a T>,
    T: Copy + Send + Sync + 'a,
{
    type Item = T;
    fn base_len(&self) -> usize {
        self.base.base_len()
    }
    fn for_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(T)) {
        self.base.for_chunk(lo, hi, &mut |x| sink(*x));
    }
    fn begin_drive(&self) {
        self.base.begin_drive();
    }
    fn min_chunk_hint(&self) -> usize {
        self.base.min_chunk_hint()
    }
    fn max_chunk_hint(&self) -> usize {
        self.base.max_chunk_hint()
    }
}

impl<'a, I, T> IndexedParallelIterator for Copied<I>
where
    I: IndexedParallelIterator<Item = &'a T>,
    T: Copy + Send + Sync + 'a,
{
}

/// Groups of up to `n` consecutive base items; one group per own-index.
pub struct Chunks<I> {
    base: I,
    n: usize,
}

impl<I> ParallelIterator for Chunks<I>
where
    I: ParallelIterator,
{
    type Item = Vec<I::Item>;
    fn base_len(&self) -> usize {
        self.base.base_len().div_ceil(self.n)
    }
    fn for_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(Vec<I::Item>)) {
        let base_len = self.base.base_len();
        for g in lo..hi {
            let b_lo = g * self.n;
            let b_hi = ((g + 1) * self.n).min(base_len);
            let mut buf = Vec::with_capacity(b_hi - b_lo);
            self.base.for_chunk(b_lo, b_hi, &mut |x| buf.push(x));
            sink(buf);
        }
    }
    fn begin_drive(&self) {
        self.base.begin_drive();
    }
    /// Each emitted group already covers `n` base items, so one group per
    /// pool chunk is the right granularity.
    fn min_chunk_hint(&self) -> usize {
        1
    }
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Chunks<I> {}

pub struct WithHints<I> {
    base: I,
    min: usize,
    max: usize,
}

impl<I: ParallelIterator> ParallelIterator for WithHints<I> {
    type Item = I::Item;
    fn base_len(&self) -> usize {
        self.base.base_len()
    }
    fn for_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(I::Item)) {
        self.base.for_chunk(lo, hi, sink);
    }
    fn begin_drive(&self) {
        self.base.begin_drive();
    }
    fn min_chunk_hint(&self) -> usize {
        self.min
    }
    fn max_chunk_hint(&self) -> usize {
        self.max
    }
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for WithHints<I> {}

/// Per-chunk accumulators (see [`ParallelIterator::fold`]). Own index `i`
/// is the `i`-th fixed chunk of the base iterator.
pub struct Fold<I, ID, F> {
    base: I,
    identity: ID,
    fold_op: F,
}

impl<I, T, ID, F> Fold<I, ID, F>
where
    I: ParallelIterator,
    T: Send,
    ID: Fn() -> T + Sync,
    F: Fn(T, I::Item) -> T + Sync,
{
    fn base_chunk_size(&self) -> usize {
        fixed_chunk_size(
            self.base.base_len(),
            self.base.min_chunk_hint(),
            self.base.max_chunk_hint(),
        )
    }
}

impl<I, T, ID, F> ParallelIterator for Fold<I, ID, F>
where
    I: ParallelIterator,
    T: Send,
    ID: Fn() -> T + Sync,
    F: Fn(T, I::Item) -> T + Sync,
{
    type Item = T;
    fn base_len(&self) -> usize {
        let len = self.base.base_len();
        if len == 0 {
            0
        } else {
            len.div_ceil(self.base_chunk_size())
        }
    }
    fn for_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(T)) {
        let cs = self.base_chunk_size();
        let base_len = self.base.base_len();
        for g in lo..hi {
            let mut acc = Some((self.identity)());
            self.base
                .for_chunk(g * cs, ((g + 1) * cs).min(base_len), &mut |x| {
                    acc = Some((self.fold_op)(acc.take().expect("fold accumulator"), x));
                });
            sink(acc.take().expect("fold accumulator"));
        }
    }
    fn begin_drive(&self) {
        self.base.begin_drive();
    }
    fn min_chunk_hint(&self) -> usize {
        1
    }
}

// ---- sources ------------------------------------------------------------

/// Conversion into a parallel iterator (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

macro_rules! range_source {
    ($t:ty) => {
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            fn base_len(&self) -> usize {
                self.len
            }
            fn for_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut($t)) {
                for i in lo..hi {
                    sink(self.start + i as $t);
                }
            }
        }
        impl IndexedParallelIterator for RangeIter<$t> {}

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;
            fn into_par_iter(self) -> RangeIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter {
                    start: self.start,
                    len,
                }
            }
        }
    };
}

range_source!(usize);
range_source!(u64);
range_source!(u32);

/// Owning parallel iterator over a `Vec`. Items are moved out by raw reads
/// from disjoint chunk ranges. If a terminal starts driving but panics
/// mid-way, the remaining items are *leaked* (never double-dropped); on a
/// clean run or an undriven drop, everything is freed normally.
pub struct VecIter<T> {
    data: std::mem::ManuallyDrop<Vec<T>>,
    consumed: AtomicBool,
}

unsafe impl<T: Send> Sync for VecIter<T> {}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn base_len(&self) -> usize {
        self.data.len()
    }
    fn for_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(T)) {
        let ptr = self.data.as_ptr();
        for i in lo..hi {
            // SAFETY: terminals request disjoint ranges, each exactly once
            // per drive, and a VecIter is driven at most once.
            sink(unsafe { std::ptr::read(ptr.add(i)) });
        }
    }
    fn begin_drive(&self) {
        self.consumed.store(true, Ordering::SeqCst);
    }
}

impl<T: Send> IndexedParallelIterator for VecIter<T> {}

impl<T> Drop for VecIter<T> {
    fn drop(&mut self) {
        if self.consumed.load(Ordering::SeqCst) {
            // Items were (conceptually) moved out; free only the buffer.
            // SAFETY: len 0 ⇒ no element drops; ManuallyDrop suppressed the
            // normal Vec drop, so this is the only deallocation.
            unsafe {
                self.data.set_len(0);
                std::mem::ManuallyDrop::drop(&mut self.data);
            }
        } else {
            // Never driven: drop the Vec normally, elements included.
            unsafe { std::mem::ManuallyDrop::drop(&mut self.data) };
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter {
            data: std::mem::ManuallyDrop::new(self),
            consumed: AtomicBool::new(false),
        }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct SliceIter<'a, T> {
    s: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn base_len(&self) -> usize {
        self.s.len()
    }
    fn for_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(&'a T)) {
        for x in &self.s[lo..hi] {
            sink(x);
        }
    }
}

impl<'a, T: Sync> IndexedParallelIterator for SliceIter<'a, T> {}

/// Parallel iterator over `&[T]` windows of up to `n` items.
pub struct SliceChunks<'a, T> {
    s: &'a [T],
    n: usize,
}

impl<'a, T: Sync> ParallelIterator for SliceChunks<'a, T> {
    type Item = &'a [T];
    fn base_len(&self) -> usize {
        self.s.len().div_ceil(self.n)
    }
    fn for_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(&'a [T])) {
        for g in lo..hi {
            let b_lo = g * self.n;
            let b_hi = ((g + 1) * self.n).min(self.s.len());
            sink(&self.s[b_lo..b_hi]);
        }
    }
    fn min_chunk_hint(&self) -> usize {
        1
    }
}

impl<'a, T: Sync> IndexedParallelIterator for SliceChunks<'a, T> {}

/// Mutably-borrowing parallel iterator over a slice. Disjoint chunk ranges
/// hand out non-aliasing `&mut` references.
pub struct SliceIterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: chunk ranges are disjoint, so each element's &mut is created on
// exactly one thread; T: Send makes that hand-off sound.
unsafe impl<'a, T: Send> Sync for SliceIterMut<'a, T> {}
unsafe impl<'a, T: Send> Send for SliceIterMut<'a, T> {}

impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    fn base_len(&self) -> usize {
        self.len
    }
    fn for_chunk(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(&'a mut T)) {
        for i in lo..hi {
            // SAFETY: disjoint ranges ⇒ no aliasing; index is in bounds.
            sink(unsafe { &mut *self.ptr.add(i) });
        }
    }
}

impl<'a, T: Send> IndexedParallelIterator for SliceIterMut<'a, T> {}

/// Shared-slice views (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> SliceIter<'_, T>;
    fn par_chunks(&self, n: usize) -> SliceChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { s: self }
    }
    fn par_chunks(&self, n: usize) -> SliceChunks<'_, T> {
        assert!(n > 0, "chunk size must be positive");
        SliceChunks { s: self, n }
    }
}

/// Mutable-slice operations (`par_iter_mut`, `par_sort_unstable*`).
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T>;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T> {
        SliceIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        crate::sort::par_merge_sort_by(self, &T::cmp);
    }
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        crate::sort::par_merge_sort_by(self, &cmp);
    }
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        crate::sort::par_merge_sort_by(self, &|a: &T, b: &T| key(a).cmp(&key(b)));
    }
}
