//! Distributed SSSP validation — how the real benchmark checks a result
//! that no single node could hold.
//!
//! The host-side checker ([`crate::sssp_check`]) assumes the whole graph
//! and result fit in one address space; at 2^42 vertices they do not, so
//! the record run's validation is itself a distributed program. This
//! module implements that program over `simnet`:
//!
//! * **ghost exchange** — every rank collects the distance of each remote
//!   vertex its edges reference, via one request/reply all-to-all pair;
//! * **edge rule** — `|dist(u) − dist(v)| ≤ w` and the
//!   reached/unreached-boundary rule, checked locally against ghosts;
//! * **tree-edge rule** — checked from the *child's parent's* side: the
//!   rank owning `u` scans its arcs `(u → v, w)` and certifies `v` when
//!   `parent(v) = u` and `dist(u) + w = dist(v)`; certificates flow back
//!   to the children's owners, who require one for every reached
//!   non-root vertex;
//! * **tree connectivity** — pointer doubling: every reached vertex chases
//!   `parent^(2^k)` for ⌈log₂ n⌉ + 1 rounds of all-to-all lookups; anyone
//!   not at the root by then sits on a cycle or a broken chain.
//!
//! Each rank validates exactly its own vertices and its own generated edge
//! slice; no rank ever materialises global state.

use g500_graph::{VertexId, WEdge, INF_WEIGHT, NO_PARENT};
use g500_partition::{DistShortestPaths, LocalGraph, VertexPartition};
use simnet::RankCtx;
use std::collections::HashMap;

fn tol(a: f32, b: f32) -> f32 {
    1e-4_f32.max(1e-4 * a.abs().max(b.abs()))
}

/// Outcome of a distributed validation (mirrors the host-side report).
#[derive(Clone, Debug)]
pub struct DistValidation {
    /// All rules passed on all ranks.
    pub ok: bool,
    /// This rank's violations (first few).
    pub errors: Vec<String>,
    /// Global reached-vertex count.
    pub reached: u64,
    /// Global traversed-edge count (TEPS numerator), over `my_edges` slices.
    pub traversed_edges: u64,
}

/// Fetch `dist` of arbitrary global vertices: one request all-to-all, one
/// reply all-to-all. Returns a map global id → dist (INF if unreached).
fn fetch_ghost_dists<P: VertexPartition>(
    ctx: &mut RankCtx,
    part: &P,
    sp: &DistShortestPaths,
    wanted: impl Iterator<Item = VertexId>,
) -> HashMap<VertexId, f32> {
    let p = ctx.size();
    let me = ctx.rank();
    let mut req: Vec<Vec<u64>> = vec![Vec::new(); p];
    let mut seen = std::collections::HashSet::new();
    for v in wanted {
        if seen.insert(v) {
            req[part.owner(v)].push(v);
        }
    }
    // dedup requests per destination
    for r in req.iter_mut() {
        r.sort_unstable();
        r.dedup();
    }
    let incoming = ctx.alltoallv(req);
    ctx.charge_compute(incoming.iter().map(|b| b.len() as u64).sum());
    // answer
    let replies: Vec<Vec<(u64, f32)>> = incoming
        .into_iter()
        .map(|block| {
            block
                .into_iter()
                .map(|v| {
                    debug_assert_eq!(part.owner(v), me);
                    (v, sp.dist[part.to_local(v)])
                })
                .collect()
        })
        .collect();
    let answered = ctx.alltoallv(replies);
    answered.into_iter().flatten().collect()
}

/// Validate a distributed SSSP result in place. Collective. `my_edges` is
/// this rank's slice of the *generated* edge list (for the edge rule and
/// the traversed-edge count); `graph` supplies this rank's out-arcs for
/// the tree-certificate pass.
pub fn distributed_validate_sssp<P: VertexPartition>(
    ctx: &mut RankCtx,
    graph: &LocalGraph<P>,
    my_edges: &[WEdge],
    root: VertexId,
    sp: &DistShortestPaths,
) -> DistValidation {
    let p = ctx.size();
    let me = ctx.rank();
    let part = graph.part();
    let n_local = graph.local_vertices();
    let mut errors: Vec<String> = Vec::new();
    let err = |errors: &mut Vec<String>, e: String| {
        if errors.len() < 8 {
            errors.push(e);
        }
    };

    // ---- rule 1: root, on its owner ----
    if part.owner(root) == me {
        let l = part.to_local(root);
        if sp.dist[l] != 0.0 {
            err(&mut errors, format!("root dist {}", sp.dist[l]));
        }
        if sp.parent[l] != root {
            err(&mut errors, "root not self-parented".into());
        }
    }

    // ---- rule 2: dist/parent agreement, locally ----
    for l in 0..n_local {
        if (sp.dist[l] < INF_WEIGHT) != (sp.parent[l] != NO_PARENT) {
            err(
                &mut errors,
                format!("vertex {}: dist/parent mismatch", part.to_global(me, l)),
            );
        }
    }

    // ---- ghost distances for everything my edge slice touches ----
    let ghosts = fetch_ghost_dists(ctx, part, sp, my_edges.iter().flat_map(|e| [e.u, e.v]));
    let dist_of = |v: VertexId| -> f32 { ghosts.get(&v).copied().unwrap_or(INF_WEIGHT) };

    // ---- rule 5 + boundary rule + traversed count over my edge slice ----
    let mut traversed_local = 0u64;
    for e in my_edges {
        let (du, dv) = (dist_of(e.u), dist_of(e.v));
        let (ru, rv) = (du < INF_WEIGHT, dv < INF_WEIGHT);
        if ru || rv {
            traversed_local += 1;
        }
        if ru != rv {
            err(
                &mut errors,
                format!("edge ({}, {}) spans boundary", e.u, e.v),
            );
        } else if ru && (du - dv).abs() > e.w + tol(du, dv) {
            err(
                &mut errors,
                format!("edge ({}, {}) w={} relaxable: {du} vs {dv}", e.u, e.v, e.w),
            );
        }
    }
    ctx.charge_compute(my_edges.len() as u64);

    // ---- rule 4 via certificates: I scan my out-arcs and certify remote
    // children whose recorded parent is my vertex with a matching weight ----
    // First learn each child's (parent, dist): ship (child, parent, dist)
    // for all my reached vertices to the ranks owning arcs *into* them? The
    // cheaper direction: every rank requests (parent, dist) of its arcs'
    // targets... we already have ghost dists for the edge slice; for the
    // certificate pass we need parent values of *my local* vertices only
    // (locally known) and the dist of arc targets. Fetch ghosts for arc
    // targets, plus each target's parent — one more request/reply pair
    // carrying (dist, parent).
    let mut req: Vec<Vec<u64>> = vec![Vec::new(); p];
    for l in 0..n_local {
        for (v, _) in graph.arcs(l) {
            req[part.owner(v)].push(v);
        }
    }
    for r in req.iter_mut() {
        r.sort_unstable();
        r.dedup();
    }
    let incoming = ctx.alltoallv(req);
    let replies: Vec<Vec<(u64, f32, u64)>> = incoming
        .into_iter()
        .map(|block| {
            block
                .into_iter()
                .map(|v| {
                    let l = part.to_local(v);
                    (v, sp.dist[l], sp.parent[l])
                })
                .collect()
        })
        .collect();
    let target_info: HashMap<u64, (f32, u64)> = ctx
        .alltoallv(replies)
        .into_iter()
        .flatten()
        .map(|(v, d, pa)| (v, (d, pa)))
        .collect();
    ctx.charge_compute(target_info.len() as u64);

    // certify children
    let mut certs: Vec<Vec<u64>> = vec![Vec::new(); p];
    let mut scanned = 0u64;
    for l in 0..n_local {
        let u_global = part.to_global(me, l);
        let du = sp.dist[l];
        for (v, w) in graph.arcs(l) {
            scanned += 1;
            if let Some(&(dv, pv)) = target_info.get(&v) {
                if pv == u_global && du.is_finite() && (du + w - dv).abs() <= tol(du + w, dv) {
                    certs[part.owner(v)].push(v);
                }
            }
        }
    }
    ctx.charge_compute(scanned);
    let cert_blocks = ctx.alltoallv(certs);
    let mut certified = vec![false; n_local];
    for block in cert_blocks {
        for v in block {
            certified[part.to_local(v)] = true;
        }
    }
    for (l, &cert) in certified.iter().enumerate() {
        let v_global = part.to_global(me, l);
        if sp.dist[l].is_finite() && v_global != root && !cert {
            err(
                &mut errors,
                format!("vertex {v_global}: no tree edge certifies its parent/dist"),
            );
        }
    }

    // ---- tree connectivity by pointer doubling ----
    // `anc[l]` starts at the 1-step parent; in round k every rank asks the
    // owner of its current ancestor for *that vertex's current* `anc`
    // (itself a 2^k-step pointer), so pointers double each round: after
    // ⌈log₂ n⌉ + 1 rounds, every chain that reaches the root has collapsed
    // onto it. Crucially the replies are computed from the pre-update
    // array (BSP), which is what makes the doubling argument valid.
    let n_global = part.num_vertices().max(2);
    let rounds = 64 - (n_global - 1).leading_zeros() + 1;
    let mut anc: Vec<u64> = (0..n_local)
        .map(|l| {
            if sp.dist[l].is_finite() {
                sp.parent[l]
            } else {
                NO_PARENT
            }
        })
        .collect();
    for _ in 0..rounds {
        let mut req: Vec<Vec<u64>> = vec![Vec::new(); p];
        for &a in &anc {
            if a != NO_PARENT && a != root {
                req[part.owner(a)].push(a);
            }
        }
        for r in req.iter_mut() {
            r.sort_unstable();
            r.dedup();
        }
        let incoming = ctx.alltoallv(req);
        // answer from the CURRENT anc array (pre-update this round)
        let replies: Vec<Vec<(u64, u64)>> = incoming
            .into_iter()
            .map(|block| {
                block
                    .into_iter()
                    .map(|v| (v, anc[part.to_local(v)]))
                    .collect()
            })
            .collect();
        let jump: HashMap<u64, u64> = ctx.alltoallv(replies).into_iter().flatten().collect();
        ctx.charge_compute(anc.len() as u64);
        for a in anc.iter_mut() {
            if *a != NO_PARENT && *a != root {
                *a = jump.get(a).copied().unwrap_or(NO_PARENT);
            }
        }
    }
    for (l, &a) in anc.iter().enumerate() {
        if sp.dist[l].is_finite() && a != root {
            err(
                &mut errors,
                format!(
                    "vertex {}: parent chain does not reach the root (stuck at {a})",
                    part.to_global(me, l)
                ),
            );
        }
    }

    // ---- global aggregation ----
    let reached = ctx.allreduce_sum(sp.reached_local());
    let traversed_edges = ctx.allreduce_sum(traversed_local);
    let ok = ctx.allreduce_and(errors.is_empty());
    DistValidation {
        ok,
        errors,
        reached,
        traversed_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g500_graph::EdgeList;
    use g500_partition::{assemble_local_graph, Block1D};
    use simnet::{Machine, MachineConfig};

    /// Run SSSP-by-hand (correct dist/parent laid out distributedly) and
    /// validate; optionally corrupt one rank's state first.
    fn validate_path(corrupt: impl Fn(usize, &mut DistShortestPaths) + Sync) -> (bool, u64, u64) {
        let el = g500_gen::simple::path(9, 0.5);
        let p = 3;
        let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(9, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<WEdge> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.clone().into_iter(), part);
            // hand-build the correct result: dist(v) = 0.5 v, parent v-1
            let mut sp = DistShortestPaths::unreached(g.local_vertices());
            for l in 0..g.local_vertices() {
                let v = part.to_global(ctx.rank(), l);
                sp.dist[l] = 0.5 * v as f32;
                sp.parent[l] = if v == 0 { 0 } else { v - 1 };
            }
            corrupt(ctx.rank(), &mut sp);
            let rep = distributed_validate_sssp(ctx, &g, &mine, 0, &sp);
            (rep.ok, rep.reached, rep.traversed_edges)
        });
        rep.results[0]
    }

    #[test]
    fn correct_result_validates_everywhere() {
        let (ok, reached, traversed) = validate_path(|_, _| {});
        assert!(ok);
        assert_eq!(reached, 9);
        assert_eq!(traversed, 8);
    }

    #[test]
    fn remote_corruption_detected() {
        // corrupt a vertex on rank 2; ranks 0/1 must still learn via the
        // global all-reduce that the job failed validation
        let (ok, _, _) = validate_path(|rank, sp| {
            if rank == 2 && !sp.dist.is_empty() {
                sp.dist[0] += 0.2;
            }
        });
        assert!(!ok);
    }

    #[test]
    fn parent_cycle_detected_distributedly() {
        // make two vertices on different ranks point at each other:
        // 4 (rank 1) <-> 6 (rank 2) with plausible dists
        let (ok, _, _) = validate_path(|rank, sp| {
            if rank == 1 {
                sp.parent[1] = 6; // global 4's parent := 6
            }
            if rank == 2 {
                sp.parent[0] = 4; // global 6's parent := 4
            }
        });
        assert!(!ok);
    }

    #[test]
    fn false_unreachable_detected() {
        let (ok, _, _) = validate_path(|rank, sp| {
            if rank == 2 {
                for l in 0..sp.dist.len() {
                    sp.dist[l] = INF_WEIGHT;
                    sp.parent[l] = NO_PARENT;
                }
            }
        });
        assert!(!ok);
    }

    #[test]
    fn agrees_with_real_kernel_on_kronecker() {
        let gen = g500_gen::KroneckerGenerator::new(g500_gen::KroneckerParams::graph500(8, 12));
        let el: EdgeList = gen.generate_all();
        let p = 4;
        let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(256, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<WEdge> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.clone().into_iter(), part);
            // run the naive-but-correct distributed relaxation to produce a
            // result without depending on the sssp crate (no dep cycle):
            // repeated full relaxation = Bellman-Ford fixpoint
            let mut sp = DistShortestPaths::unreached(g.local_vertices());
            if part.owner(1) == ctx.rank() {
                let l = part.to_local(1);
                sp.dist[l] = 0.0;
                sp.parent[l] = 1;
            }
            loop {
                let mut out: Vec<Vec<(u64, f32, u64)>> = vec![Vec::new(); p];
                for l in 0..g.local_vertices() {
                    if !sp.dist[l].is_finite() {
                        continue;
                    }
                    let ug = part.to_global(ctx.rank(), l);
                    for (v, w) in g.arcs(l) {
                        out[part.owner(v)].push((v, sp.dist[l] + w, ug));
                    }
                }
                let incoming = ctx.alltoallv(out);
                let mut changed = 0u64;
                for block in incoming {
                    for (v, nd, pa) in block {
                        let l = part.to_local(v);
                        if nd < sp.dist[l] {
                            sp.dist[l] = nd;
                            sp.parent[l] = pa;
                            changed += 1;
                        }
                    }
                }
                if ctx.allreduce_sum(changed) == 0 {
                    break;
                }
            }
            let rep = distributed_validate_sssp(ctx, &g, &mine, 1, &sp);
            (rep.ok, rep.errors.clone())
        });
        for (ok, errors) in rep.results {
            assert!(ok, "{errors:?}");
        }
    }
}
