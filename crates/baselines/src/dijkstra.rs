//! Sequential Dijkstra — the exactness oracle.

use g500_graph::{Csr, ShortestPaths, VertexId, Weight};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Totally ordered wrapper so `f32` distances can live in a `BinaryHeap`.
/// Graph500 weights are non-negative and never NaN, which `total_cmp`
/// handles without panics either way.
#[derive(PartialEq)]
struct OrdW(Weight);

impl Eq for OrdW {}

impl PartialOrd for OrdW {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdW {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Exact single-source shortest paths with a binary heap and lazy deletion.
///
/// `O((n + m) log n)`; the gold standard the benchmark kernels are verified
/// against. `graph` must contain both directions of each undirected edge.
pub fn dijkstra(graph: &Csr, root: VertexId) -> ShortestPaths {
    let n = graph.num_vertices();
    let mut sp = ShortestPaths::with_root(n, root);
    let mut heap: BinaryHeap<Reverse<(OrdW, VertexId)>> = BinaryHeap::new();
    heap.push(Reverse((OrdW(0.0), root)));
    let mut settled = vec![false; n];

    while let Some(Reverse((OrdW(d), u))) = heap.pop() {
        let u_idx = u as usize;
        if settled[u_idx] {
            continue; // lazy deletion: stale heap entry
        }
        settled[u_idx] = true;
        debug_assert!(d >= sp.dist[u_idx], "heap entry fresher than dist array");
        for (v, w) in graph.arcs(u_idx) {
            let v_idx = v as usize;
            let nd = d + w;
            if nd < sp.dist[v_idx] {
                sp.dist[v_idx] = nd;
                sp.parent[v_idx] = u;
                heap.push(Reverse((OrdW(nd), v)));
            }
        }
    }
    sp
}

#[cfg(test)]
mod tests {
    use super::*;
    use g500_graph::{Directedness, EdgeList, WEdge, INF_WEIGHT};

    fn csr(edges: &[(u64, u64, f32)], n: usize) -> Csr {
        let el = EdgeList::from_edges(edges.iter().map(|&(u, v, w)| WEdge::new(u, v, w)));
        Csr::from_edges(n, &el, Directedness::Undirected)
    }

    #[test]
    fn path_distances() {
        let g = csr(&[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)], 4);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist, vec![0.0, 1.0, 3.0, 6.0]);
        assert_eq!(sp.parent, vec![0, 0, 1, 2]);
    }

    #[test]
    fn shortcut_is_taken() {
        // direct edge 0-2 is heavier than the two-hop path
        let g = csr(&[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 3.0)], 3);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[2], 2.0);
        assert_eq!(sp.parent[2], 1);
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let g = csr(&[(0, 1, 1.0)], 4);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[2], INF_WEIGHT);
        assert_eq!(sp.reached_count(), 2);
    }

    #[test]
    fn zero_weight_edges() {
        let g = csr(&[(0, 1, 0.0), (1, 2, 0.0)], 3);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn root_choice_matters() {
        let g = csr(&[(0, 1, 1.0), (1, 2, 1.0)], 3);
        let sp = dijkstra(&g, 2);
        assert_eq!(sp.dist, vec![2.0, 1.0, 0.0]);
        assert_eq!(sp.parent[2], 2);
    }

    #[test]
    fn parallel_edges_use_lightest() {
        let g = csr(&[(0, 1, 5.0), (0, 1, 2.0)], 2);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[1], 2.0);
    }

    #[test]
    fn self_loop_harmless() {
        let g = csr(&[(0, 0, 0.5), (0, 1, 1.0)], 2);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist, vec![0.0, 1.0]);
    }
}
