//! F7 — Degree distribution of the Kronecker graph (log-log CCDF).
//!
//! The skew figure: complementary CDF of vertex degree on power-of-two
//! bins, with the fitted power-law slope and the hub concentration numbers
//! that justify degree-aware partitioning. Rendered as an ASCII log-log
//! plot plus the raw table.
//!
//! Overrides: `G500_SCALE` (16), `G500_SEED` (1).

use g500_bench::{banner, param, Table};
use g500_gen::{KroneckerGenerator, KroneckerParams};
use g500_graph::degree::{ccdf_pow2, powerlaw_slope};
use g500_graph::{Csr, DegreeStats, Directedness};

fn main() {
    let scale = param("G500_SCALE", 16) as u32;
    let seed = param("G500_SEED", 1);
    banner(
        "F7",
        "Kronecker degree distribution",
        &[("scale", scale.to_string())],
    );

    let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, seed));
    let el = gen.generate_all();
    let n = gen.params().num_vertices() as usize;
    let csr = Csr::from_edges(n, &el, Directedness::Undirected);
    let degrees: Vec<usize> = (0..n).map(|v| csr.degree(v)).collect();
    let stats = DegreeStats::from_degrees(&degrees);
    let ccdf = ccdf_pow2(&degrees);
    let slope = powerlaw_slope(&ccdf);

    let t = Table::new(&["degree>=", "vertices", "fraction", "loglog_bar"]);
    for &(d, c) in &ccdf {
        let frac = c as f64 / n as f64;
        let bar_len = if c > 0 {
            ((c as f64).log2().max(0.0)) as usize
        } else {
            0
        };
        t.row(&[
            d.to_string(),
            c.to_string(),
            format!("{frac:.5}"),
            "#".repeat(bar_len),
        ]);
    }
    println!("\nmax degree:        {}", stats.max);
    println!("mean degree:       {:.1}", stats.mean);
    println!("median degree:     {}", stats.median);
    println!(
        "isolated vertices: {} ({:.1}%)",
        stats.isolated,
        100.0 * stats.isolated as f64 / n as f64
    );
    println!("top-1% arc share:  {:.1}%", 100.0 * stats.top1pct_arc_share);
    println!("fitted CCDF slope: {slope:.2} (power law)");
    println!("\nexpected shape: near-straight log-log CCDF; top-1% of vertices carry a large multiple of 1% of arcs");
}
