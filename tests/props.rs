//! Property-based tests on the workspace's core invariants: every SSSP
//! implementation equals Dijkstra on arbitrary random graphs; codecs
//! round-trip arbitrary data; partitions are bijections for arbitrary
//! shapes; the generator is splittable at arbitrary cut points; the
//! bucket queue pops in monotone bucket order.
//!
//! Cases come from the in-repo seeded generator in `tests/common` (the
//! workspace builds offline, with no proptest); every run is deterministic
//! and failures print a replay seed.

mod common;

use common::{arb_graph, for_cases};
use graph500::baselines::{bellman_ford, dijkstra, near_far};
use graph500::gen::{KroneckerGenerator, KroneckerParams};
use graph500::graph::{compress, BitMixPermutation, Csr, Directedness, EdgeList, WEdge};
use graph500::partition::{
    assemble_local_graph, Block1D, Cyclic1D, HybridPartition, VertexPartition,
};
use graph500::simnet::{wire, Machine, MachineConfig};
use graph500::sssp::codec::{decode_updates, dedup_min, encode_updates, Update};
use graph500::sssp::{delta_stepping, distributed_delta_stepping, BucketQueue, OptConfig};

fn to_el(edges: &[(u64, u64, f32)]) -> EdgeList {
    EdgeList::from_edges(edges.iter().map(|&(u, v, w)| WEdge::new(u, v, w)))
}

#[test]
fn all_sssp_algorithms_equal_dijkstra() {
    for_cases(0xA11A, 64, |rng| {
        let (n, edges) = arb_graph(rng);
        let root = rng.range(0, n);
        let delta = rng.f32(0.01, 2.0);
        let el = to_el(&edges);
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, root);
        assert!(delta_stepping(&csr, root, delta).distances_match(&oracle, 1e-4));
        assert!(near_far(&csr, root, delta).distances_match(&oracle, 1e-4));
        assert!(bellman_ford(&csr, root).distances_match(&oracle, 1e-4));
    });
}

#[test]
fn distributed_delta_equals_dijkstra() {
    for_cases(0xD157, 32, |rng| {
        let (n, edges) = arb_graph(rng);
        let root = rng.range(0, n);
        let p = rng.usize(1, 5);
        let el = to_el(&edges);
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, root);
        let got = Machine::new(MachineConfig::with_ranks(p))
            .run(|ctx| {
                let part = Block1D::new(n, p);
                let m = el.len();
                let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
                let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
                let g = assemble_local_graph(ctx, mine.into_iter(), part);
                let (sp, _) = distributed_delta_stepping(ctx, &g, root, &OptConfig::all_on());
                sp.gather_to_all(ctx, g.part())
            })
            .results
            .pop()
            .expect("rank");
        assert!(got.distances_match(&oracle, 1e-4));
    });
}

#[test]
fn varint_roundtrip() {
    for_cases(0x7A21, 256, |rng| {
        // stress every length class: mask to a random bit width
        let width = rng.range(1, 65) as u32;
        let v = rng.next_u64() >> (64 - width);
        let mut buf = Vec::new();
        compress::write_varint(&mut buf, v);
        let mut pos = 0;
        assert_eq!(compress::read_varint(&buf, &mut pos), Some(v));
        assert_eq!(pos, buf.len());
    });
}

#[test]
fn adjacency_codec_roundtrip() {
    for_cases(0xAD3A, 64, |rng| {
        let m = rng.usize(0, 200);
        let mut ids: Vec<u64> = (0..m).map(|_| rng.next_u64()).collect();
        ids.sort_unstable();
        let enc = compress::encode_adjacency(&ids);
        assert_eq!(compress::decode_adjacency(&enc), Some(ids));
    });
}

#[test]
fn update_codec_roundtrip() {
    for_cases(0x0DEC, 64, |rng| {
        let m = rng.usize(0, 200);
        let mut ups: Vec<Update> = (0..m)
            .map(|_| (rng.next_u64(), rng.f32(0.0, 100.0), rng.next_u64()))
            .collect();
        ups.sort_unstable_by_key(|u| u.0);
        let enc = encode_updates(&ups, true);
        assert_eq!(decode_updates(&enc), Some(ups));
    });
}

#[test]
fn dedup_min_keeps_true_minimum() {
    for_cases(0xDED0, 64, |rng| {
        let m = rng.usize(1, 100);
        let ups: Vec<Update> = (0..m)
            .map(|_| (rng.range(0, 20), rng.f32(0.0, 10.0), rng.next_u64()))
            .collect();
        let mut work = ups.clone();
        dedup_min(&mut work);
        // unique targets, and each carries the true min over the input
        for w in work.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for &(t, d, _) in &work {
            let true_min = ups
                .iter()
                .filter(|u| u.0 == t)
                .map(|u| u.1)
                .fold(f32::INFINITY, f32::min);
            assert_eq!(d, true_min);
        }
    });
}

#[test]
fn bucket_queue_pops_monotone_buckets() {
    // satellite property: min_bucket() over an arbitrary insert stream is
    // non-decreasing (for items not re-inserted below the current bucket),
    // every inserted vertex comes out exactly once, and each comes out of
    // the bucket its priority maps to.
    for_cases(0xB0CE, 64, |rng| {
        let delta = rng.f32(0.05, 1.5);
        let m = rng.usize(1, 300);
        let items: Vec<(u32, f32)> = (0..m as u32).map(|v| (v, rng.f32(0.0, 40.0))).collect();
        let mut q = BucketQueue::new(delta);
        for &(v, d) in &items {
            q.insert(v, d);
        }
        assert_eq!(q.len(), m);
        let mut last = 0usize;
        let mut seen = vec![false; m];
        while let Some(k) = q.min_bucket() {
            assert!(k >= last, "bucket order went backwards: {k} after {last}");
            last = k;
            for v in q.take_bucket(k) {
                let (_, d) = items[v as usize];
                assert_eq!(
                    q.bucket_of(d),
                    k,
                    "vertex {v} (d={d}) popped from bucket {k}"
                );
                assert!(!seen[v as usize], "vertex {v} popped twice");
                seen[v as usize] = true;
            }
        }
        assert!(q.is_empty());
        assert!(seen.iter().all(|&s| s), "some vertex never popped");
    });
}

#[test]
fn radix_heap_pops_in_monotone_key_order() {
    // arbitrary interleavings of monotone pushes and pops match a sorted
    // model: keys come out non-decreasing and nothing is lost
    use graph500::baselines::RadixHeap;
    for_cases(0x4AD1, 64, |rng| {
        let mut heap: RadixHeap<u64> = RadixHeap::new();
        let mut pending: Vec<u64> = Vec::new();
        let mut popped: Vec<u64> = Vec::new();
        let mut floor = 0u64;
        for _ in 0..rng.usize(1, 200) {
            if rng.range(0, 3) < 2 || heap.is_empty() {
                // push: any key >= the monotone floor, with a bias toward
                // keys near the floor and occasional far-away bits
                let spread = 1u64 << rng.range(1, 50);
                let key = floor.saturating_add(rng.range(0, spread));
                heap.push(key, key);
                pending.push(key);
            } else {
                let (k, v) = heap.pop_min().expect("non-empty");
                assert_eq!(k, v, "payload must ride with its key");
                floor = k;
                popped.push(k);
            }
        }
        while let Some((k, _)) = heap.pop_min() {
            popped.push(k);
        }
        // monotone: the full pop sequence never decreases
        for w in popped.windows(2) {
            assert!(w[0] <= w[1], "pop order went backwards");
        }
        // conservation: the popped multiset is exactly the pushed multiset
        pending.sort_unstable();
        let mut sorted_popped = popped.clone();
        sorted_popped.sort_unstable();
        assert_eq!(sorted_popped, pending);
    });
}

#[test]
fn radix_dijkstra_and_bmssp_bitwise_equal_dijkstra() {
    // the new baselines must agree with the binary-heap oracle to the bit
    // on arbitrary random multigraphs (self-loops, duplicate edges, any
    // root) — not just within tolerance
    use graph500::baselines::{bmssp, dijkstra_radix_heap};
    for_cases(0xB1D6, 64, |rng| {
        let (n, edges) = arb_graph(rng);
        let root = rng.range(0, n);
        let csr = Csr::from_edges(n as usize, &to_el(&edges), Directedness::Undirected);
        let oracle = dijkstra(&csr, root);
        let radix = dijkstra_radix_heap(&csr, root);
        let bm = bmssp(&csr, root);
        for v in 0..n as usize {
            assert_eq!(
                oracle.dist[v].to_bits(),
                radix.dist[v].to_bits(),
                "radix heap at vertex {v}"
            );
            assert_eq!(
                oracle.dist[v].to_bits(),
                bm.dist[v].to_bits(),
                "bmssp at vertex {v}"
            );
        }
    });
}

#[test]
fn bucket_queue_radix_layout_matches_naive_model() {
    // the radix occupancy index must be observationally identical to the
    // old linear-scan layout: same min_bucket, same bucket contents in the
    // same order, over arbitrary op streams (including far-away sparse
    // buckets that cross bitmap words)
    for_cases(0xBADC, 64, |rng| {
        let delta = rng.f32(0.05, 1.5);
        let mut q = BucketQueue::new(delta);
        let mut model: Vec<Vec<u32>> = Vec::new();
        let mut scan_from = 0usize; // the old layout's cursor
        for i in 0..rng.usize(1, 250) {
            let d = if rng.range(0, 20) == 0 {
                rng.f32(100.0, 5000.0) // sparse far bucket
            } else {
                rng.f32(0.0, 30.0)
            };
            q.insert(i as u32, d);
            let k = q.bucket_of(d);
            if k >= model.len() {
                model.resize_with(k + 1, Vec::new);
            }
            model[k].push(i as u32);
            scan_from = scan_from.min(k);
            if rng.range(0, 3) == 0 {
                let got = q.min_bucket();
                let want = (scan_from..model.len()).find(|&k| !model[k].is_empty());
                assert_eq!(got, want, "min_bucket diverged from linear scan");
                if let Some(k) = got {
                    scan_from = k;
                    assert_eq!(q.bucket_len(k), model[k].len());
                    assert_eq!(
                        q.take_bucket(k),
                        std::mem::take(&mut model[k]),
                        "bucket {k} contents/order diverged"
                    );
                }
            }
        }
        let expect: Vec<u32> = model[scan_from.min(model.len())..]
            .iter()
            .flatten()
            .copied()
            .collect();
        assert_eq!(q.drain_all(), expect, "drain_all diverged");
        assert!(q.is_empty());
    });
}

#[test]
fn bucket_queue_reinsert_lowers_bucket() {
    // delta-stepping relies on re-inserting a settled-lower vertex into an
    // earlier (but not-yet-passed) bucket; the queue must serve the lower
    // copy in its proper bucket.
    let mut q = BucketQueue::new(0.5);
    q.insert(0, 2.4); // bucket 4
    q.insert(1, 0.2); // bucket 0
    assert_eq!(q.min_bucket(), Some(0));
    assert_eq!(q.take_bucket(0), vec![1]);
    q.insert(0, 0.9); // improved: bucket 1
    assert_eq!(q.min_bucket(), Some(1));
    assert_eq!(q.take_bucket(1), vec![0]);
}

#[test]
fn wire_tuple_roundtrip() {
    for_cases(0x3172, 64, |rng| {
        let m = rng.usize(0, 100);
        let recs: Vec<(u64, f32, u32)> = (0..m)
            .map(|_| {
                (
                    rng.next_u64(),
                    f32::from_bits(rng.next_u64() as u32),
                    rng.next_u64() as u32,
                )
            })
            .collect();
        let buf = wire::encode_slice(&recs);
        let back = wire::decode_vec::<(u64, f32, u32)>(&buf);
        assert!(back.is_some());
        let back = back.expect("checked");
        assert_eq!(back.len(), recs.len());
        for (a, b) in recs.iter().zip(&back) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
            assert_eq!(a.2, b.2);
        }
    });
}

#[test]
fn partitions_are_bijections() {
    for_cases(0xB17E, 64, |rng| {
        let n = rng.range(0, 3000);
        let p = rng.usize(1, 17);
        let hubs = rng.range(0, 100).min(n);
        fn check<P: VertexPartition>(part: &P, n: u64) {
            let total: usize = (0..part.num_ranks()).map(|r| part.local_count(r)).sum();
            assert_eq!(total as u64, n);
            for v in (0..n).step_by(7) {
                let r = part.owner(v);
                let l = part.to_local(v);
                assert_eq!(part.to_global(r, l), v);
            }
        }
        check(&Block1D::new(n, p), n);
        check(&Cyclic1D::new(n, p), n);
        check(&HybridPartition::new(n, p, hubs), n);
    });
}

#[test]
fn bitmix_permutation_is_invertible() {
    for_cases(0xB177, 128, |rng| {
        let scale = rng.range(1, 40) as u32;
        let seed = rng.next_u64();
        let p = BitMixPermutation::new(scale, seed);
        let v = rng.next_u64() & (p.domain() - 1);
        let s = p.apply(v);
        assert!(s < p.domain());
        assert_eq!(p.invert(s), v);
    });
}

#[test]
fn multi_source_equals_dijkstra_per_source() {
    for_cases(0x3504, 16, |rng| {
        let (n, edges) = arb_graph(rng);
        let p = rng.usize(1, 4);
        let el = to_el(&edges);
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let roots: Vec<u64> = vec![0, n / 2, n - 1];
        let results = Machine::new(MachineConfig::with_ranks(p))
            .run(|ctx| {
                let part = Block1D::new(n, p);
                let m = el.len();
                let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
                let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
                let g = assemble_local_graph(ctx, mine.into_iter(), part);
                let (md, _) = graph500::sssp::multi_source_delta_stepping(ctx, &g, &roots, 0.25);
                (0..roots.len())
                    .map(|s| md.lane_paths(s).gather_to_all(ctx, g.part()))
                    .collect::<Vec<_>>()
            })
            .results
            .pop()
            .expect("rank");
        for (s, &root) in roots.iter().enumerate() {
            let oracle = dijkstra(&csr, root);
            assert!(results[s].distances_match(&oracle, 1e-4), "source {s}");
        }
    });
}

#[test]
fn bfs_levels_equal_unit_weight_distances() {
    for_cases(0xBF51, 16, |rng| {
        let (n, edges) = arb_graph(rng);
        // replace all weights with 1.0: BFS levels == shortest distances
        let unit: Vec<(u64, u64, f32)> = edges.iter().map(|&(u, v, _)| (u, v, 1.0)).collect();
        let el = to_el(&unit);
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, 0);
        let dir = match rng.range(0, 3) {
            0 => graph500::sssp::Direction::Push,
            1 => graph500::sssp::Direction::Pull,
            _ => graph500::sssp::Direction::Hybrid,
        };
        let p = 3;
        let (level, parent) = Machine::new(MachineConfig::with_ranks(p))
            .run(|ctx| {
                let part = Block1D::new(n, p);
                let m = el.len();
                let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
                let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
                let g = assemble_local_graph(ctx, mine.into_iter(), part);
                let (res, _) = graph500::sssp::distributed_bfs(ctx, &g, 0, dir);
                res.gather_to_all(ctx, g.part())
            })
            .results
            .pop()
            .expect("rank");
        for v in 0..n as usize {
            if oracle.dist[v].is_finite() {
                assert_eq!(level[v], oracle.dist[v] as i64, "vertex {v}");
            } else {
                assert_eq!(level[v], -1, "vertex {v}");
                assert_eq!(parent[v], u64::MAX);
            }
        }
    });
}

#[test]
fn generator_blocks_are_independent() {
    for_cases(0x6E4B, 32, |rng| {
        let scale = rng.range(4, 10) as u32;
        let seed = rng.next_u64();
        let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, seed));
        let m = gen.params().num_edges();
        let cut = ((m as f64 * rng.f64_unit()) as u64).min(m);
        let window = 64.min(m - cut);
        let from_block = gen.edge_block(cut..cut + window);
        for i in 0..window {
            assert_eq!(from_block.get(i as usize), gen.edge(cut + i));
        }
    });
}

// ---- reliable transport framing (fault-injection tentpole) ----

#[test]
fn frame_roundtrip_arbitrary_payloads() {
    use graph500::simnet::transport::Frame;
    for_cases(0xF4A3, 128, |rng| {
        let len = rng.usize(0, 300);
        let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let f = Frame {
            src: rng.next_u64() as u32,
            dst: rng.next_u64() as u32,
            tag: rng.next_u64(),
            seq: rng.next_u64(),
            payload,
        };
        let enc = f.encode();
        assert_eq!(Frame::decode(&enc).expect("round-trip"), f);
    });
}

#[test]
fn burst_corruption_is_always_detected() {
    // the fault injector flips a burst of 1–32 contiguous bits; CRC32
    // detects every burst of ≤ 32 bits, so detection is a guarantee here,
    // not a probability — any seed that slips a corrupt frame past the
    // check is a real bug
    use graph500::simnet::transport::{corrupt_burst, Frame};
    for_cases(0xC0DE, 512, |rng| {
        let len = rng.usize(0, 200);
        let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let f = Frame {
            src: 3,
            dst: 1,
            tag: 0x42,
            seq: rng.next_u64(),
            payload,
        };
        let enc = f.encode();
        let mut bad = enc.clone();
        corrupt_burst(&mut bad, rng.next_u64());
        assert_ne!(bad, enc, "corruption must flip at least one bit");
        assert!(
            Frame::decode(&bad).is_err(),
            "undetected burst corruption of a {}-byte frame",
            enc.len()
        );
    });
}

#[test]
fn crc_differs_for_any_single_bit_flip() {
    use graph500::simnet::transport::crc32;
    for_cases(0xCC32, 64, |rng| {
        let len = rng.usize(1, 128);
        let buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let base = crc32(&buf);
        let bit = rng.usize(0, len * 8);
        let mut flipped = buf.clone();
        flipped[bit / 8] ^= 1 << (bit % 8);
        assert_ne!(crc32(&flipped), base, "bit {bit} of {len} bytes");
    });
}

#[test]
fn reassembler_is_order_and_duplicate_insensitive() {
    use graph500::simnet::transport::{Frame, Reassembler};
    for_cases(0x5EA5, 128, |rng| {
        let k = rng.usize(1, 12);
        let base_seq = rng.next_u64() >> 1; // headroom for +k
        let chunks: Vec<Vec<u8>> = (0..k)
            .map(|_| {
                let l = rng.usize(0, 40);
                (0..l).map(|_| rng.next_u64() as u8).collect()
            })
            .collect();
        // arrival schedule: every fragment at least once, plus random
        // duplicates, in a seeded shuffle
        let mut arrivals: Vec<usize> = (0..k).collect();
        for _ in 0..rng.usize(0, 2 * k) {
            arrivals.push(rng.usize(0, k));
        }
        for i in (1..arrivals.len()).rev() {
            let j = rng.usize(0, i + 1);
            arrivals.swap(i, j);
        }
        let mut r = Reassembler::new(base_seq);
        for &i in &arrivals {
            let _ = r.offer(Frame {
                src: 0,
                dst: 1,
                tag: 7,
                seq: base_seq + i as u64,
                payload: chunks[i].clone(),
            });
        }
        assert!(r.is_complete(base_seq + k as u64));
        let expect: Vec<u8> = chunks.concat();
        assert_eq!(r.into_payload(), expect);
    });
}

// ---- virtual-time tracing (observability tentpole) ----

use graph500::simnet::trace::TraceCode;
use graph500::simnet::{TraceBuf, TraceEvent, TraceKind};

/// Every valid `TraceCode`, recovered through the public decoder.
fn all_trace_codes() -> Vec<TraceCode> {
    (0u16..512).filter_map(TraceCode::from_u16).collect()
}

fn arb_event(rng: &mut common::Rng, codes: &[TraceCode], t_s: f64) -> TraceEvent {
    let code = codes[rng.usize(0, codes.len())];
    let kind = if code.is_span() {
        if rng.range(0, 2) == 0 {
            TraceKind::Begin
        } else {
            TraceKind::End
        }
    } else {
        TraceKind::Count
    };
    TraceEvent {
        t_s,
        kind,
        code,
        a: rng.next_u64(),
        b: rng.next_u64(),
    }
}

#[test]
fn trace_event_codec_roundtrip() {
    let codes = all_trace_codes();
    for_cases(0x7AC3, 128, |rng| {
        let n = rng.usize(0, 60);
        let mut buf = TraceBuf::new(rng.usize(0, 1000));
        let mut t = 0.0f64;
        for _ in 0..n {
            t += rng.f64_unit() * 1e-3;
            let e = arb_event(rng, &codes, t);
            buf.record(e.t_s, e.kind, e.code, e.a, e.b);
        }
        let enc = buf.encode();
        let back = TraceBuf::decode(&enc).expect("self-produced encoding decodes");
        assert_eq!(back.rank, buf.rank);
        assert_eq!(back.events.len(), buf.events.len());
        for (a, b) in buf.events.iter().zip(&back.events) {
            assert_eq!(a.t_s.to_bits(), b.t_s.to_bits());
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.code, b.code);
            assert_eq!(a.a, b.a);
            assert_eq!(a.b, b.b);
        }
    });
}

#[test]
fn merged_trace_timestamps_are_monotone_per_rank() {
    use graph500::simnet::Trace;
    let codes = all_trace_codes();
    for_cases(0x70E0, 64, |rng| {
        let ranks = rng.usize(1, 6);
        let bufs: Vec<TraceBuf> = (0..ranks)
            .map(|r| {
                let mut b = TraceBuf::new(r);
                // per-rank virtual clocks only move forward
                let mut t = 0.0f64;
                for _ in 0..rng.usize(0, 40) {
                    t += rng.f64_unit() * 1e-4;
                    let e = arb_event(rng, &codes, t);
                    b.record(e.t_s, e.kind, e.code, e.a, e.b);
                }
                b
            })
            .collect();
        let merged = Trace::merge(bufs);
        // global order is non-decreasing in time, and within a rank the
        // original (monotone) order is preserved
        let mut last_t = 0.0f64;
        let mut last_per_rank: Vec<f64> = vec![0.0; ranks];
        for (rank, ev) in &merged.events {
            assert!(ev.t_s >= last_t, "merge broke global time order");
            last_t = ev.t_s;
            assert!(
                ev.t_s >= last_per_rank[*rank as usize],
                "merge broke rank {rank}'s clock order"
            );
            last_per_rank[*rank as usize] = ev.t_s;
        }
    });
}

#[test]
fn traced_runs_have_balanced_spans() {
    // On a real (fuzz-scheduled) traced run, every span Begin has a
    // matching End on the same rank and nesting never goes negative.
    for_cases(0x5BA1, 8, |rng| {
        let (n, edges) = arb_graph(rng);
        let root = rng.range(0, n);
        let p = rng.usize(1, 5);
        let sched_seed = rng.next_u64();
        let el = to_el(&edges);
        let report = Machine::new(
            MachineConfig::with_ranks(p)
                .deterministic(sched_seed)
                .traced(true),
        )
        .run(|ctx| {
            let part = Block1D::new(n, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let (sp, _) = distributed_delta_stepping(ctx, &g, root, &OptConfig::all_on());
            sp.gather_to_all(ctx, g.part())
        });
        for buf in &report.traces {
            let mut depth: std::collections::HashMap<TraceCode, i64> =
                std::collections::HashMap::new();
            for ev in &buf.events {
                match ev.kind {
                    TraceKind::Begin => *depth.entry(ev.code).or_insert(0) += 1,
                    TraceKind::End => {
                        let d = depth.entry(ev.code).or_insert(0);
                        *d -= 1;
                        assert!(
                            *d >= 0,
                            "rank {}: End without Begin for {:?}",
                            buf.rank,
                            ev.code
                        );
                    }
                    TraceKind::Count => {}
                }
            }
            for (code, d) in depth {
                assert_eq!(d, 0, "rank {}: unbalanced span {:?}", buf.rank, code);
            }
        }
    });
}

#[test]
fn tagged_codec_roundtrips_arbitrary_updates() {
    use graph500::sssp::codec::{decode_tagged, dedup_min_tagged, encode_tagged, TaggedUpdate};
    for_cases(0x7A66, 128, |rng| {
        let n = rng.usize(0, 200);
        let mut updates: Vec<TaggedUpdate> = (0..n)
            .map(|_| {
                (
                    rng.range(0, 8) as u32,
                    rng.range(0, 1 << 20),
                    rng.f32(0.0, 100.0),
                    rng.next_u64() >> rng.range(0, 60),
                )
            })
            .collect();
        // the encoder canonicalizes unsorted input, and decode inverts it
        let enc = encode_tagged(&updates, false);
        let dec = decode_tagged(&enc).expect("well-formed buffer");
        let mut canon = updates.clone();
        canon.sort_unstable_by(|a, b| {
            (a.0, a.1)
                .cmp(&(b.0, b.1))
                .then(a.2.total_cmp(&b.2))
                .then(a.3.cmp(&b.3))
        });
        assert_eq!(dec, canon);

        // dedup survivors are a pure function of the update SET
        let mut rev = updates.clone();
        rev.reverse();
        dedup_min_tagged(&mut updates);
        dedup_min_tagged(&mut rev);
        assert_eq!(updates, rev, "dedup depended on emission order");
    });
}

#[test]
fn landmark_bound_never_below_true_distance() {
    use graph500::sssp::triangle_bound;
    for_cases(0x1A4D, 48, |rng| {
        let (n, edges) = arb_graph(rng);
        let el = to_el(&edges);
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let landmarks: Vec<u64> = (0..rng.usize(1, 5)).map(|_| rng.range(0, n)).collect();
        let from_l: Vec<_> = landmarks.iter().map(|&l| dijkstra(&csr, l)).collect();
        let s = rng.range(0, n);
        let t = rng.range(0, n);
        let ls: Vec<f32> = from_l.iter().map(|d| d.dist[s as usize]).collect();
        let lt: Vec<f32> = from_l.iter().map(|d| d.dist[t as usize]).collect();
        let bound = triangle_bound(&ls, &lt);
        let true_d = dijkstra(&csr, s).dist[t as usize];
        if bound.is_finite() {
            assert!(
                true_d <= bound,
                "bound {bound} below true distance {true_d} (s={s}, t={t})"
            );
        }
    });
}

#[test]
fn lru_invariants_hold_under_random_ops() {
    use graph500::sssp::Lru;
    for_cases(0x14C8, 64, |rng| {
        let cap = rng.usize(1, 6);
        let mut lru: Lru<u64, u64> = Lru::new(cap);
        let mut last_value: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut last_inserted = None;
        for i in 0..rng.usize(1, 64) {
            let k = rng.range(0, 8);
            if rng.range(0, 2) == 0 {
                let v = i as u64;
                lru.insert(k, v);
                last_value.insert(k, v);
                last_inserted = Some(k);
            } else if let Some(&v) = lru.get(&k) {
                // a hit always returns the most recently inserted value
                assert_eq!(Some(&v), last_value.get(&k));
            }
            assert!(lru.len() <= cap, "capacity exceeded");
            if let Some(k) = last_inserted {
                assert!(lru.keys().any(|&ek| ek == k), "most recent insert evicted");
            }
        }
    });
}

#[test]
fn checkpoint_codec_roundtrips_arbitrary_state() {
    // The recovery codec must round-trip any state a kernel checkpoint can
    // hold — including NaN/∞ payloads in the f64 lanes (times), empty
    // slices, and interleavings of every primitive — and consume the
    // buffer exactly (a length mismatch is how `Checkpoint::load` detects
    // a codec drift).
    use graph500::simnet::recovery::codec;
    for_cases(0xC8EC, 96, |rng| {
        let mut u64s = Vec::new();
        let mut f64s = Vec::new();
        let mut u64_slices = Vec::new();
        let mut u32_slices = Vec::new();
        let mut f64_slices = Vec::new();
        let mut bool_slices = Vec::new();
        let mut ops = Vec::new();
        let mut buf = Vec::new();
        for _ in 0..rng.usize(1, 24) {
            match rng.range(0, 6) {
                0 => {
                    let x = rng.next_u64();
                    codec::put_u64(&mut buf, x);
                    u64s.push(x);
                    ops.push(0);
                }
                1 => {
                    let x = match rng.range(0, 8) {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        2 => 0.0,
                        _ => rng.f64_unit() * 1e9 - 5e8,
                    };
                    codec::put_f64(&mut buf, x);
                    f64s.push(x);
                    ops.push(1);
                }
                2 => {
                    let xs: Vec<u64> = (0..rng.usize(0, 40)).map(|_| rng.next_u64()).collect();
                    codec::put_u64_slice(&mut buf, &xs);
                    u64_slices.push(xs);
                    ops.push(2);
                }
                3 => {
                    let xs: Vec<u32> = (0..rng.usize(0, 40))
                        .map(|_| rng.next_u64() as u32)
                        .collect();
                    codec::put_u32_slice(&mut buf, &xs);
                    u32_slices.push(xs);
                    ops.push(3);
                }
                4 => {
                    let xs: Vec<f64> = (0..rng.usize(0, 40)).map(|_| rng.f64_unit()).collect();
                    codec::put_f64_slice(&mut buf, &xs);
                    f64_slices.push(xs);
                    ops.push(4);
                }
                _ => {
                    let xs: Vec<bool> = (0..rng.usize(0, 40))
                        .map(|_| rng.range(0, 2) == 0)
                        .collect();
                    codec::put_bool_slice(&mut buf, &xs);
                    bool_slices.push(xs);
                    ops.push(5);
                }
            }
        }
        let mut pos = 0usize;
        let (mut iu, mut ifl, mut ius, mut i32s, mut ifs, mut ibs) = (0, 0, 0, 0, 0, 0);
        for op in &ops {
            match op {
                0 => {
                    assert_eq!(codec::get_u64(&buf, &mut pos), u64s[iu]);
                    iu += 1;
                }
                1 => {
                    let got = codec::get_f64(&buf, &mut pos);
                    assert_eq!(got.to_bits(), f64s[ifl].to_bits(), "f64 not bitwise");
                    ifl += 1;
                }
                2 => {
                    assert_eq!(codec::get_u64_vec(&buf, &mut pos), u64_slices[ius]);
                    ius += 1;
                }
                3 => {
                    assert_eq!(codec::get_u32_vec(&buf, &mut pos), u32_slices[i32s]);
                    i32s += 1;
                }
                4 => {
                    let got = codec::get_f64_vec(&buf, &mut pos);
                    let want = &f64_slices[ifs];
                    assert_eq!(got.len(), want.len());
                    for (a, b) in got.iter().zip(want) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                    ifs += 1;
                }
                _ => {
                    assert_eq!(codec::get_bool_vec(&buf, &mut pos), bool_slices[ibs]);
                    ibs += 1;
                }
            }
        }
        assert_eq!(pos, buf.len(), "codec under- or over-consumed the buffer");
    });
}
