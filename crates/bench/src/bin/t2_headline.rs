//! T2 — Headline result: weak-scaled SSSP TEPS and the extrapolation to
//! the paper's 140-trillion-edge configuration.
//!
//! Holds work per rank constant (`G500_SCALE_PER_RANK`, default 2^15
//! vertices/rank) while growing the machine, reports validated harmonic-
//! mean TEPS per point, then extrapolates the measured per-rank throughput
//! and its efficiency trend to the paper's machine size (~160k processes,
//! scale 42, 140T edges). The absolute numbers are cost-model artifacts;
//! the *shape* — near-flat weak scaling sustained by the optimization
//! stack — is the claim under test.
//!
//! Overrides: `G500_SCALE_PER_RANK`, `G500_MAX_RANKS` (default 32),
//! `G500_ROOTS` (default 8).

use g500_bench::{banner, fault_banner_params, fault_plan_from_env, gteps, param, secs, Table};
use graph500::{run_sssp_benchmark, BenchmarkConfig};

fn main() {
    let scale_per_rank = param("G500_SCALE_PER_RANK", 15) as u32;
    let max_ranks = param("G500_MAX_RANKS", 32) as usize;
    let roots = param("G500_ROOTS", 8) as usize;
    let fault = fault_plan_from_env();
    let mut params = vec![
        ("vertices/rank", format!("2^{scale_per_rank}")),
        ("ranks", format!("1..={max_ranks}")),
        ("roots", roots.to_string()),
    ];
    params.extend(fault_banner_params(&fault));
    banner("T2", "headline weak scaling + extrapolation", &params);

    let t = Table::new(&[
        "ranks",
        "scale",
        "edges",
        "hmean_GTEPS",
        "GTEPS/rank",
        "efficiency%",
        "median_t",
        "validated",
    ]);
    let mut points: Vec<(usize, f64)> = Vec::new();
    let mut ranks = 1usize;
    let mut base_per_rank = 0.0f64;
    let mut retransmits = 0u64;
    while ranks <= max_ranks {
        let scale = scale_per_rank + ranks.trailing_zeros();
        let mut cfg = BenchmarkConfig::graph500(scale, ranks).faults(fault);
        cfg.num_roots = roots;
        let rep = run_sssp_benchmark(&cfg);
        retransmits += rep.net.retransmits;
        let g = rep.teps.harmonic_mean;
        let per_rank = g / ranks as f64;
        if ranks == 1 {
            base_per_rank = per_rank;
        }
        points.push((ranks, per_rank));
        t.row(&[
            ranks.to_string(),
            scale.to_string(),
            rep.m.to_string(),
            gteps(g),
            gteps(per_rank),
            format!("{:.1}", 100.0 * per_rank / base_per_rank),
            secs(rep.teps.median.recip() * rep.runs[0].traversed_edges as f64),
            rep.all_validated().to_string(),
        ]);
        ranks *= 2;
    }
    if fault.is_active() {
        println!("\nlossy network: {retransmits} retransmissions masked by the reliable transport (all points still validated)");
    }

    // Extrapolation: fit efficiency e(P) = max(0, 1 − b·log2 P) on measured
    // points, evaluate at the paper's machine size.
    let b = points
        .iter()
        .skip(1)
        .map(|&(p, v)| (1.0 - v / base_per_rank) / (p as f64).log2())
        .fold(0.0f64, f64::max);
    let paper_ranks = 160_000f64;
    let eff = (1.0 - b * paper_ranks.log2()).max(0.05);
    let projected = base_per_rank * paper_ranks * eff;
    println!("\nextrapolation (cost-model, not a measurement):");
    println!("  efficiency decay fit: e(P) = 1 - {b:.4}*log2(P)");
    println!(
        "  at {} ranks (scale 42, ~140T edges): projected {} GTEPS (efficiency {:.0}%)",
        paper_ranks as u64,
        gteps(projected),
        eff * 100.0
    );
    println!("expected shape: per-rank GTEPS near-flat; projection lands in the >10^4 GTEPS class of the record run");
}
