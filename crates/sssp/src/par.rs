//! Shared-memory parallel delta-stepping.
//!
//! This is the *intra-rank* kernel: on the real machine each process drives
//! hundreds of cores, and the bucket's frontier is relaxed in parallel.
//! Each wave runs in two phases:
//!
//! 1. **Scan** (parallel): the frontier's edges are scanned against a
//!    *frozen* distance array — no writes happen during the scan, so every
//!    read is stable — and improving candidates `(target, new_dist, source)`
//!    are collected in (source, arc) order via fixed-chunk `flat_map_iter`.
//! 2. **Commit** (sequential): candidates are re-checked and applied in that
//!    order, updating distances/parents and bucket insertions.
//!
//! Because the scan only reads and the commit order is fixed, the result —
//! distances, parents, and the exact bucket schedule — is bitwise identical
//! at any `G500_THREADS`, unlike an atomic `fetch_min` race which settles
//! ties (and parent choices) by scheduling. A source improved mid-bucket is
//! re-inserted and re-scanned with its better distance on the next inner
//! wave, which is the usual delta-stepping self-correction.

use crate::bucket::BucketQueue;
use g500_graph::{Csr, ShortestPaths, VertexId, Weight};
use rayon::prelude::*;

/// One committed wave of the shared-memory kernel, for tracing: which
/// bucket it served, its ordinal within the run, the frontier it scanned,
/// how many improving candidates the scan produced, and whether it was the
/// bucket's heavy pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaveRecord {
    /// Bucket index the wave served.
    pub bucket: usize,
    /// Ordinal of the wave within the whole run (0-based).
    pub wave: u64,
    /// Sources scanned this wave.
    pub frontier: u64,
    /// Improving candidates the scan emitted (pre-commit re-check).
    pub candidates: u64,
    /// True for the once-per-bucket heavy pass.
    pub heavy: bool,
}

/// Shared-memory parallel delta-stepping from `root` with width `delta`.
pub fn parallel_delta_stepping(graph: &Csr, root: VertexId, delta: Weight) -> ShortestPaths {
    run_delta_stepping(graph, root, delta, None)
}

/// As [`parallel_delta_stepping`], additionally recording one
/// [`WaveRecord`] per scan/commit wave. Recording reads only values the
/// untraced run computes anyway, so the returned paths are bitwise
/// identical to the untraced variant.
pub fn parallel_delta_stepping_traced(
    graph: &Csr,
    root: VertexId,
    delta: Weight,
) -> (ShortestPaths, Vec<WaveRecord>) {
    let mut waves = Vec::new();
    let sp = run_delta_stepping(graph, root, delta, Some(&mut waves));
    (sp, waves)
}

fn run_delta_stepping(
    graph: &Csr,
    root: VertexId,
    delta: Weight,
    mut waves: Option<&mut Vec<WaveRecord>>,
) -> ShortestPaths {
    let n = graph.num_vertices();
    let mut dist: Vec<f32> = vec![f32::INFINITY; n];
    let mut parent: Vec<u64> = vec![u64::MAX; n];
    dist[root as usize] = 0.0;
    parent[root as usize] = root;

    let mut buckets = BucketQueue::new(delta);
    buckets.insert(root as u32, 0.0);
    let mut settled: Vec<u32> = Vec::new();
    let mut wave_no = 0u64;
    // Wave-scratch arenas, reused across every wave of the run: the
    // frontier list and the candidate buffer would otherwise be
    // reallocated (and re-grown) once per wave.
    let mut frontier: Vec<u32> = Vec::new();
    let mut candidates: Vec<(u32, f32, u32)> = Vec::new();

    while let Some(k) = buckets.min_bucket() {
        settled.clear();
        loop {
            frontier.clear();
            frontier.extend(buckets.take_bucket(k).into_iter().filter(|&v| {
                let d = dist[v as usize];
                d.is_finite() && buckets.bucket_of(d) == k
            }));
            if frontier.is_empty() {
                break;
            }
            settled.extend_from_slice(&frontier);
            // Parallel light-edge scan over the frozen distances, then an
            // ordered sequential commit.
            scan_wave(graph, &dist, &frontier, |w| w < delta, &mut candidates);
            if let Some(w) = waves.as_deref_mut() {
                w.push(WaveRecord {
                    bucket: k,
                    wave: wave_no,
                    frontier: frontier.len() as u64,
                    candidates: candidates.len() as u64,
                    heavy: false,
                });
            }
            wave_no += 1;
            commit_wave(&mut dist, &mut parent, &mut buckets, &candidates);
        }
        // Heavy phase over the settled set, once per bucket.
        scan_wave(graph, &dist, &settled, |w| w >= delta, &mut candidates);
        if let Some(w) = waves.as_deref_mut() {
            w.push(WaveRecord {
                bucket: k,
                wave: wave_no,
                frontier: settled.len() as u64,
                candidates: candidates.len() as u64,
                heavy: true,
            });
        }
        wave_no += 1;
        commit_wave(&mut dist, &mut parent, &mut buckets, &candidates);
    }

    ShortestPaths { dist, parent }
}

/// Below this many frontier sources a wave is scanned sequentially: the
/// scan of a small frontier is sub-pool-overhead work, and the sequential
/// loop emits the exact same candidates in the exact same (source, arc)
/// order, so results are bitwise unaffected by which path runs.
const SEQ_SCAN_CUTOFF: usize = 1024;

/// Scan the out-edges of one source against the frozen `dist` array. The
/// two CSR accessors return contiguous slices of one adjacency range, and
/// the zip collapses to a single counted, bounds-check-free loop — the
/// branch-light inner relaxation loop both scan paths share.
#[inline]
fn scan_source(
    graph: &Csr,
    dist: &[f32],
    u: u32,
    keep: &(impl Fn(Weight) -> bool + Sync),
    out: &mut Vec<(u32, f32, u32)>,
) {
    let du = dist[u as usize];
    let vs = graph.neighbors(u as usize);
    let ws = graph.edge_weights(u as usize);
    for (&v, &w) in vs.iter().zip(ws) {
        let nd = du + w;
        if keep(w) && nd < dist[v as usize] {
            out.push((v as u32, nd, u));
        }
    }
}

/// Phase 1: scan the out-edges of `sources` (weights filtered by `keep`)
/// against the frozen `dist` array, collecting improving candidates in
/// (source, arc) order into the caller's reusable arena.
fn scan_wave(
    graph: &Csr,
    dist: &[f32],
    sources: &[u32],
    keep: impl Fn(Weight) -> bool + Sync,
    out: &mut Vec<(u32, f32, u32)>,
) {
    if sources.len() <= SEQ_SCAN_CUTOFF {
        out.clear();
        for &u in sources {
            scan_source(graph, dist, u, &keep, out);
        }
        return;
    }
    let keep = &keep;
    sources
        .par_iter()
        .with_min_len(64)
        .flat_map_iter(|&u| {
            let du = dist[u as usize];
            let vs = graph.neighbors(u as usize);
            let ws = graph.edge_weights(u as usize);
            vs.iter().zip(ws).filter_map(move |(&v, &w)| {
                let nd = du + w;
                (keep(w) && nd < dist[v as usize]).then_some((v as u32, nd, u))
            })
        })
        .collect_into_vec(out);
}

/// Phase 2: apply candidates in order. The re-check against the (now
/// mutating) distances keeps only still-improving updates; each winner
/// records its parent and bucket insertion.
fn commit_wave(
    dist: &mut [f32],
    parent: &mut [u64],
    buckets: &mut BucketQueue,
    candidates: &[(u32, f32, u32)],
) {
    for &(v, nd, u) in candidates {
        if nd < dist[v as usize] {
            dist[v as usize] = nd;
            parent[v as usize] = u as u64;
            buckets.insert(v, nd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g500_baselines::dijkstra;
    use g500_graph::Directedness;

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..4 {
            let el = g500_gen::simple::erdos_renyi(100, 600, seed);
            let g = Csr::from_edges(100, &el, Directedness::Undirected);
            let exact = dijkstra(&g, 7);
            let par = parallel_delta_stepping(&g, 7, 0.15);
            assert!(par.distances_match(&exact, 1e-4), "seed {seed}");
        }
    }

    #[test]
    fn matches_on_kronecker() {
        let gen = g500_gen::KroneckerGenerator::new(g500_gen::KroneckerParams::graph500(9, 3));
        let el = gen.generate_all();
        let g = Csr::from_edges(512, &el, Directedness::Undirected);
        let exact = dijkstra(&g, 2);
        let par = parallel_delta_stepping(&g, 2, 0.125);
        assert!(par.distances_match(&exact, 1e-4));
    }

    #[test]
    fn parent_tree_is_usable() {
        let el = g500_gen::simple::erdos_renyi(50, 250, 1);
        let g = Csr::from_edges(50, &el, Directedness::Undirected);
        let sp = parallel_delta_stepping(&g, 0, 0.2);
        // every reached non-root vertex has a reached parent at lower-or-
        // equal distance
        for v in 0..50 {
            if v != 0 && sp.dist[v].is_finite() {
                let p = sp.parent[v];
                assert_ne!(p, u64::MAX);
                assert!(sp.dist[p as usize] <= sp.dist[v] + 1e-6);
            }
        }
    }

    #[test]
    fn single_vertex_graph() {
        let g = Csr::from_edges(1, &g500_graph::EdgeList::new(), Directedness::Directed);
        let sp = parallel_delta_stepping(&g, 0, 0.5);
        assert_eq!(sp.dist, vec![0.0]);
        assert_eq!(sp.parent, vec![0]);
    }

    #[test]
    fn result_is_identical_across_repeated_runs() {
        // The two-phase wave is deterministic: distances AND parents must be
        // byte-identical run to run (and, via the fixed-chunk contract, at
        // any thread count).
        let gen = g500_gen::KroneckerGenerator::new(g500_gen::KroneckerParams::graph500(9, 5));
        let el = gen.generate_all();
        let g = Csr::from_edges(512, &el, Directedness::Undirected);
        let a = parallel_delta_stepping(&g, 2, 0.125);
        let b = parallel_delta_stepping(&g, 2, 0.125);
        let bits = |sp: &ShortestPaths| -> (Vec<u32>, Vec<u64>) {
            (
                sp.dist.iter().map(|d| d.to_bits()).collect(),
                sp.parent.clone(),
            )
        };
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn traced_variant_matches_untraced_and_is_deterministic() {
        let gen = g500_gen::KroneckerGenerator::new(g500_gen::KroneckerParams::graph500(9, 5));
        let el = gen.generate_all();
        let g = Csr::from_edges(512, &el, Directedness::Undirected);
        let plain = parallel_delta_stepping(&g, 2, 0.125);
        let (traced, waves_a) = parallel_delta_stepping_traced(&g, 2, 0.125);
        let (_, waves_b) = parallel_delta_stepping_traced(&g, 2, 0.125);
        assert_eq!(
            plain.dist.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            traced.dist.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
        );
        assert_eq!(plain.parent, traced.parent);
        assert_eq!(waves_a, waves_b);
        assert!(!waves_a.is_empty());
        // waves are numbered consecutively, one heavy pass per bucket
        for (i, w) in waves_a.iter().enumerate() {
            assert_eq!(w.wave, i as u64);
        }
        assert!(waves_a.iter().any(|w| w.heavy));
    }
}
