//! Small, fast, dependency-free mixing functions.
//!
//! The generator, the vertex scrambler and the partitioners all need a
//! high-quality 64-bit mixer that is *stateless* (counter-based), so any
//! block of random draws can be reproduced independently on any rank — the
//! property that lets the real benchmark generate 140 trillion edges with no
//! communication. We use the finalizer from SplitMix64 / MurmurHash3.

/// SplitMix64 finalizer: a bijective 64-bit mix with full avalanche.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combine a seed and a counter into one mixed word.
#[inline]
pub fn mix2(seed: u64, counter: u64) -> u64 {
    splitmix64(seed ^ splitmix64(counter))
}

/// Combine a seed and two counters (e.g. edge index + draw index).
#[inline]
pub fn mix3(seed: u64, a: u64, b: u64) -> u64 {
    splitmix64(seed ^ splitmix64(a ^ splitmix64(b)))
}

/// Map a mixed 64-bit word to a uniform `f64` in `[0, 1)`.
///
/// Uses the top 53 bits so the result is an exactly representable dyadic
/// rational; this is the standard bit-twiddling construction.
#[inline]
pub fn to_unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map a mixed word to a uniform `f32` in `[0, 1)` (24 mantissa bits).
#[inline]
pub fn to_unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // successive counters should differ in many bits (avalanche sanity)
        let d = (splitmix64(7) ^ splitmix64(8)).count_ones();
        assert!(d > 16, "poor avalanche: {d} bits");
    }

    #[test]
    fn unit_floats_in_range() {
        for i in 0..10_000u64 {
            let f = to_unit_f64(splitmix64(i));
            assert!((0.0..1.0).contains(&f));
            let g = to_unit_f32(splitmix64(i));
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| to_unit_f64(mix2(42, i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn mix3_differs_in_each_argument() {
        assert_ne!(mix3(1, 2, 3), mix3(1, 2, 4));
        assert_ne!(mix3(1, 2, 3), mix3(1, 3, 3));
        assert_ne!(mix3(1, 2, 3), mix3(2, 2, 3));
    }
}
