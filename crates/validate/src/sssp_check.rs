//! SSSP validation per the Graph500 specification.
//!
//! Given the *input* edge list (not the kernel's internal structures), a
//! root, and the kernel's `(distance, parent)` arrays, the checker verifies:
//!
//! 1. the root has distance 0 and is its own parent;
//! 2. reachability is consistent: a vertex has a distance iff it has a
//!    parent, and every edge connects two reached or two unreached vertices;
//! 3. the parent array encodes a tree: following parents from any reached
//!    vertex terminates at the root within `n` steps;
//! 4. every tree edge exists in the graph and satisfies
//!    `dist[v] = dist[parent[v]] + w(parent[v], v)` up to float tolerance;
//! 5. no edge is left relaxable: `|dist[u] − dist[v]| ≤ w(u, v)` for every
//!    edge, up to tolerance.
//!
//! Distances accumulate in `f32` along paths of up to thousands of hops, so
//! the checker uses a relative-plus-absolute tolerance (the official code
//! does the same with a fixed slack).

use g500_graph::{Csr, Directedness, EdgeList, VertexId, Weight, INF_WEIGHT};

/// Sentinel for "no parent" in parent arrays.
pub const NO_PARENT: u64 = u64::MAX;

/// The output of one SSSP run over the whole graph, gathered to one place
/// for validation.
#[derive(Clone, Debug)]
pub struct SsspResult {
    /// Root vertex of the search.
    pub root: VertexId,
    /// `dist[v]` = shortest distance found, `INF_WEIGHT` if unreached.
    pub dist: Vec<Weight>,
    /// `parent[v]` = tree parent, `NO_PARENT` if unreached; root points at
    /// itself.
    pub parent: Vec<u64>,
}

/// The checker's verdict plus the statistics TEPS needs.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// All rules passed.
    pub ok: bool,
    /// Human-readable descriptions of the first few violations.
    pub errors: Vec<String>,
    /// Number of reached vertices (including the root).
    pub reached: u64,
    /// Input edges with at least one endpoint reached — the numerator of
    /// the TEPS metric per the specification.
    pub traversed_edges: u64,
}

const MAX_ERRORS: usize = 8;

fn tol(a: Weight, b: Weight) -> f32 {
    1e-4_f32.max(1e-4 * a.abs().max(b.abs()))
}

/// Validate one SSSP result against the input edge list.
///
/// `edges` is the raw generated list (one record per undirected edge,
/// possibly with self-loops and duplicates, exactly as Graph500 hands it to
/// the validator). `n` is the global vertex count.
pub fn validate_sssp(n: u64, edges: &EdgeList, res: &SsspResult) -> ValidationReport {
    let n = n as usize;
    let mut errors = Vec::new();
    let err = |e: String, errors: &mut Vec<String>| {
        if errors.len() < MAX_ERRORS {
            errors.push(e);
        }
    };

    assert_eq!(res.dist.len(), n, "dist array sized to the vertex set");
    assert_eq!(res.parent.len(), n, "parent array sized to the vertex set");

    // Rule 1: root.
    if res.dist[res.root as usize] != 0.0 {
        err(
            format!("root distance is {} not 0", res.dist[res.root as usize]),
            &mut errors,
        );
    }
    if res.parent[res.root as usize] != res.root {
        err("root is not its own parent".into(), &mut errors);
    }

    // Rule 2a: dist and parent agree on reachability.
    let reached_v: Vec<bool> = (0..n).map(|v| res.dist[v] < INF_WEIGHT).collect();
    for (v, &reached) in reached_v.iter().enumerate() {
        let has_parent = res.parent[v] != NO_PARENT;
        if reached != has_parent {
            err(
                format!(
                    "vertex {v}: dist {} but parent {}",
                    res.dist[v],
                    if has_parent { "set" } else { "unset" }
                ),
                &mut errors,
            );
        }
        if res.dist[v] < 0.0 {
            err(
                format!("vertex {v}: negative distance {}", res.dist[v]),
                &mut errors,
            );
        }
    }

    // Rule 3: parents form a tree rooted at `root`. Memoised walk: depth[v]
    // is found by following parents, failing on > n steps (cycle).
    let mut state = vec![0u8; n]; // 0 = unknown, 1 = on-ok-path, 2 = bad
    state[res.root as usize] = 1;
    for v0 in 0..n {
        if !reached_v[v0] || state[v0] != 0 {
            continue;
        }
        let mut chain = Vec::new();
        let mut v = v0;
        let verdict = loop {
            if state[v] == 1 {
                break 1;
            }
            if state[v] == 2 || !reached_v[v] || chain.len() > n {
                break 2;
            }
            chain.push(v);
            state[v] = 3; // visiting marker
            let p = res.parent[v];
            if p == NO_PARENT || p as usize >= n {
                break 2;
            }
            let p = p as usize;
            if state[p] == 3 {
                break 2; // cycle
            }
            v = p;
        };
        if verdict == 2 {
            err(
                format!("vertex {v0}: parent chain does not reach the root"),
                &mut errors,
            );
        }
        for c in chain {
            state[c] = verdict;
        }
    }

    // Build a CSR for tree-edge lookup (rule 4).
    let csr = Csr::from_edges(n, edges, Directedness::Undirected);
    for (v, &reached) in reached_v.iter().enumerate() {
        if !reached || v as u64 == res.root {
            continue;
        }
        let p = res.parent[v];
        if p == NO_PARENT {
            continue; // already reported by rule 2
        }
        // find an edge (p, v) whose weight matches the distance delta
        let dv = res.dist[v];
        let dp = res.dist[p as usize];
        let ok = csr
            .arcs(p as usize)
            .any(|(t, w)| t == v as u64 && (dp + w - dv).abs() <= tol(dp + w, dv));
        if !ok {
            err(
                format!(
                    "vertex {v}: no edge from parent {p} with weight {} - {} = {}",
                    dv,
                    dp,
                    dv - dp
                ),
                &mut errors,
            );
        }
    }

    // Rule 5 + rule 2b: scan every input edge once.
    let mut traversed = 0u64;
    for e in edges.iter() {
        let (u, v) = (e.u as usize, e.v as usize);
        let ru = reached_v[u];
        let rv = reached_v[v];
        if ru || rv {
            traversed += 1;
        }
        if ru != rv {
            err(
                format!(
                    "edge ({}, {}) spans the reached/unreached boundary",
                    e.u, e.v
                ),
                &mut errors,
            );
            continue;
        }
        if ru && rv {
            let (du, dv) = (res.dist[u], res.dist[v]);
            if (du - dv).abs() > e.w + tol(du, dv) {
                err(
                    format!(
                        "edge ({}, {}) w={} violates |{} - {}| <= w",
                        e.u, e.v, e.w, du, dv
                    ),
                    &mut errors,
                );
            }
        }
    }

    let reached = reached_v.iter().filter(|&&r| r).count() as u64;
    ValidationReport {
        ok: errors.is_empty(),
        errors,
        reached,
        traversed_edges: traversed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g500_graph::WEdge;

    /// dist/parent for the path 0-1-2-3 with unit weights.
    fn path_result() -> (EdgeList, SsspResult) {
        let el = g500_gen::simple::path(4, 1.0);
        let res = SsspResult {
            root: 0,
            dist: vec![0.0, 1.0, 2.0, 3.0],
            parent: vec![0, 0, 1, 2],
        };
        (el, res)
    }

    #[test]
    fn correct_result_validates() {
        let (el, res) = path_result();
        let rep = validate_sssp(4, &el, &res);
        assert!(rep.ok, "{:?}", rep.errors);
        assert_eq!(rep.reached, 4);
        assert_eq!(rep.traversed_edges, 3);
    }

    #[test]
    fn wrong_root_distance_rejected() {
        let (el, mut res) = path_result();
        res.dist[0] = 0.5;
        assert!(!validate_sssp(4, &el, &res).ok);
    }

    #[test]
    fn non_optimal_distance_rejected() {
        // dist[2] too large → edge (1,2) still relaxable
        let (el, mut res) = path_result();
        res.dist[2] = 2.5;
        res.dist[3] = 3.5;
        assert!(!validate_sssp(4, &el, &res).ok);
    }

    #[test]
    fn parent_cycle_rejected() {
        let (el, mut res) = path_result();
        res.parent[1] = 2;
        res.parent[2] = 1;
        assert!(!validate_sssp(4, &el, &res).ok);
    }

    #[test]
    fn phantom_tree_edge_rejected() {
        // parent claims an edge (0, 3) that is not in the graph
        let (el, mut res) = path_result();
        res.parent[3] = 0;
        res.dist[3] = 1.0;
        let rep = validate_sssp(4, &el, &res);
        assert!(!rep.ok);
    }

    #[test]
    fn boundary_spanning_edge_rejected() {
        // vertex 3 marked unreached but edge (2,3) exists
        let (el, mut res) = path_result();
        res.dist[3] = INF_WEIGHT;
        res.parent[3] = NO_PARENT;
        let rep = validate_sssp(4, &el, &res);
        assert!(!rep.ok);
        assert!(rep.errors.iter().any(|e| e.contains("boundary")));
    }

    #[test]
    fn disconnected_component_accepted() {
        // two disjoint edges; root side reached, far side untouched
        let el = EdgeList::from_edges([WEdge::new(0, 1, 0.5), WEdge::new(2, 3, 0.5)]);
        let res = SsspResult {
            root: 0,
            dist: vec![0.0, 0.5, INF_WEIGHT, INF_WEIGHT],
            parent: vec![0, 0, NO_PARENT, NO_PARENT],
        };
        let rep = validate_sssp(4, &el, &res);
        assert!(rep.ok, "{:?}", rep.errors);
        assert_eq!(rep.reached, 2);
        assert_eq!(rep.traversed_edges, 1);
    }

    #[test]
    fn dist_parent_mismatch_rejected() {
        let (el, mut res) = path_result();
        res.parent[3] = NO_PARENT; // but dist[3] finite
        assert!(!validate_sssp(4, &el, &res).ok);
    }

    #[test]
    fn multigraph_duplicate_edges_ok() {
        // duplicate (0,1) with different weights: lighter one determines dist
        let el = EdgeList::from_edges([
            WEdge::new(0, 1, 0.9),
            WEdge::new(0, 1, 0.3),
            WEdge::new(1, 1, 0.2), // self-loop must be ignored gracefully
        ]);
        let res = SsspResult {
            root: 0,
            dist: vec![0.0, 0.3],
            parent: vec![0, 0],
        };
        let rep = validate_sssp(2, &el, &res);
        assert!(rep.ok, "{:?}", rep.errors);
        assert_eq!(rep.traversed_edges, 3);
    }

    #[test]
    fn float_tolerance_accepts_accumulated_error() {
        let el = g500_gen::simple::path(3, 0.1);
        // 0.1 + 0.1 in f32 is not exactly 0.2
        let res = SsspResult {
            root: 0,
            dist: vec![0.0, 0.1, 0.1 + 0.1],
            parent: vec![0, 0, 1],
        };
        assert!(validate_sssp(3, &el, &res).ok);
    }
}
