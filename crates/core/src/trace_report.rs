//! Trace export helpers: write a merged [`Trace`] where external tools can
//! read it.
//!
//! The Chrome `trace_event` JSON produced here loads directly into
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev): each simulated
//! rank appears as one named track, span events nest (root run → bucket →
//! superstep → exchange → task wave), and counter events show up as instant
//! markers carrying their value. Timestamps are *virtual* microseconds —
//! the LogGP clock, not wall time — so the viewer shows the machine the
//! simulator modeled, at any host thread count.

use simnet::Trace;
use std::io::Write;
use std::path::Path;

/// Write `trace` to `path` as Chrome `trace_event` JSON.
pub fn write_chrome_trace(path: &Path, trace: &Trace) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(trace.to_chrome_json().as_bytes())?;
    Ok(())
}
