//! Tiny self-contained property-testing toolkit shared by the integration
//! tests. The workspace builds offline (no proptest), so randomized tests
//! run a fixed number of cases from a seeded SplitMix64 stream: failures
//! print the case seed, and rerunning is always deterministic.

// Different test binaries use different subsets of this module.
#![allow(dead_code)]

/// SplitMix64 — tiny, seedable, and statistically fine for test-case
/// generation. Same constants as `simnet::sched::splitmix64`.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`; requires `hi > lo`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }

    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// Uniform f32 in `[lo, hi)`.
    pub fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32 * (hi - lo)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Arbitrary small weighted multigraph: `(n, edges)` with `n` in `[2, 40)`,
/// up to 120 edges (self-loops and duplicates allowed — the kernels must
/// cope), weights in `(0, 1]`.
pub fn arb_graph(rng: &mut Rng) -> (u64, Vec<(u64, u64, f32)>) {
    let n = rng.range(2, 40);
    let m = rng.usize(0, 120);
    let edges = (0..m)
        .map(|_| (rng.range(0, n), rng.range(0, n), rng.f32(1e-3, 1.0)))
        .collect();
    (n, edges)
}

/// Run `f` over `cases` deterministic seeds derived from `base_seed`,
/// reporting the failing case seed on panic so it can be replayed alone.
pub fn for_cases(base_seed: u64, cases: usize, f: impl Fn(&mut Rng) + std::panic::RefUnwindSafe) {
    for case in 0..cases {
        let seed = base_seed ^ (case as u64).wrapping_mul(0xD134_2543_DE82_EF95);
        let result = std::panic::catch_unwind(|| {
            let mut rng = Rng::new(seed);
            f(&mut rng);
        });
        if let Err(e) = result {
            eprintln!("property failed on case {case} (replay seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

/// Build a [`graph500::FaultPlan`] from the `G500_*` fault environment
/// variables, mirroring the experiment harnesses. Inactive (perfect
/// network) when unset, so default test runs are unchanged; CI's lossy
/// profile exports the variables to re-run whole suites over a faulty
/// network and prove the results don't move.
pub fn fault_overlay() -> graph500::FaultPlan {
    fn env_f64(name: &str) -> f64 {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0)
    }
    fn env_u64(name: &str, default: u64) -> u64 {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
    let plan = graph500::FaultPlan::none()
        .with_seed(env_u64("G500_FAULT_SEED", 0))
        .with_drop(env_f64("G500_DROP_RATE"))
        .with_duplicate(env_f64("G500_DUP_RATE"))
        .with_corrupt(env_f64("G500_CORRUPT_RATE"))
        .with_reorder(env_f64("G500_REORDER_RATE"))
        .with_retry_budget(env_u64("G500_RETRY_BUDGET", 16) as u32);
    plan.validate().expect("bad G500_* fault environment");
    plan
}
