//! Sub-communicators (the `MPI_Comm_split` of the simulated machine).
//!
//! 2D-partitioned graph kernels communicate within process-grid *rows* and
//! *columns*; that requires collectives scoped to a subset of ranks. A
//! [`SubComm`] is created collectively by [`RankCtx::split`]: ranks passing
//! the same `color` form one group, ordered by `(key, global rank)`.
//!
//! Collectives on a subgroup are the same explicit message schedules as the
//! global ones (binomial reduce/bcast, ring allgather, direct all-to-all),
//! with sub-ranks translated through the membership table and tags drawn
//! from a per-communicator namespace so concurrent subgroups never collide.

use crate::rank::{RankCtx, Tag, TrafficClass};
use crate::trace::TraceCode;
use crate::transport::TransportError;
use crate::wire::{decode_vec_checked, encode_slice, Wire};

/// Tags at or above this value are reserved for sub-communicator traffic
/// (disjoint from both user tags and global-collective tags).
const TAG_SUBCOMM_BASE: Tag = 1 << 52;

/// A subgroup of ranks with its own rank numbering and collective tag space.
#[derive(Clone, Debug)]
pub struct SubComm {
    /// Global rank of each member, ordered by (key, global rank).
    members: Vec<usize>,
    /// This rank's index within `members`.
    me: usize,
    /// Namespace id, identical on all members of this communicator.
    comm_id: u64,
    /// Per-communicator collective sequence counter.
    seq: u64,
}

impl RankCtx {
    /// Collectively split the job into subgroups by `color`; within a
    /// group, ranks are ordered by `(key, global rank)`. Every rank must
    /// call; returns this rank's group.
    pub fn split(&mut self, color: u64, key: u64) -> SubComm {
        let me = self.rank();
        let triples = self.allgatherv(&[(color, key, me as u64)]);
        let comm_id = self.next_subcomm_id();
        let mut mine: Vec<(u64, u64)> = Vec::new();
        for block in triples {
            for (c, k, r) in block {
                if c == color {
                    mine.push((k, r));
                }
            }
        }
        mine.sort_unstable();
        let members: Vec<usize> = mine.iter().map(|&(_, r)| r as usize).collect();
        let my_index = members
            .iter()
            .position(|&r| r == me)
            .expect("caller is a member of its own color group");
        // Groups born from the same split share a namespace safely: their
        // member sets are disjoint, so their messages can never meet.
        SubComm {
            members,
            me: my_index,
            comm_id,
            seq: 0,
        }
    }
}

impl SubComm {
    /// This rank's index within the subgroup.
    pub fn rank(&self) -> usize {
        self.me
    }

    /// Subgroup size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Global rank of subgroup member `i`.
    pub fn global_rank(&self, i: usize) -> usize {
        self.members[i]
    }

    fn tag(&self, round: u64) -> Tag {
        debug_assert!(round < 1 << 16, "collective round overflow");
        // seq wraps at 2^16: safe because rank skew within one communicator
        // is bounded by a single collective, so a wrapped tag can never
        // still be in flight.
        TAG_SUBCOMM_BASE | (self.comm_id << 32) | ((self.seq & 0xFFFF) << 16) | round
    }

    fn next(&mut self) {
        self.seq += 1;
    }

    fn send<T: Wire>(&self, ctx: &mut RankCtx, dest: usize, tag: Tag, items: &[T]) {
        ctx.send_bytes_class(
            self.members[dest],
            tag,
            encode_slice(items),
            TrafficClass::Collective,
        );
    }

    fn recv<T: Wire>(&self, ctx: &mut RankCtx, src: usize, tag: Tag) -> Vec<T> {
        let buf = ctx.recv_bytes_class(self.members[src], tag);
        decode_vec_checked(&buf).unwrap_or_else(|e| {
            panic!(
                "rank {}: subcomm payload type mismatch: {}",
                ctx.rank(),
                TransportError::Decode {
                    src: self.members[src],
                    dst: ctx.rank(),
                    tag,
                    len: e.len,
                    elem_size: e.elem_size,
                }
            )
        })
    }

    fn recv_one<T: Wire>(&self, ctx: &mut RankCtx, src: usize, tag: Tag) -> T {
        let mut v = self.recv::<T>(ctx, src, tag);
        assert_eq!(v.len(), 1);
        v.pop().expect("length checked")
    }

    /// Allreduce within the subgroup (binomial reduce to sub-root 0, then
    /// binomial bcast).
    pub fn allreduce<T: Wire + Clone>(
        &mut self,
        ctx: &mut RankCtx,
        value: T,
        combine: impl Fn(&T, &T) -> T,
    ) -> T {
        let p = self.size();
        let me = self.me;
        ctx.trace_begin(TraceCode::Allreduce, self.seq, self.comm_id);
        // reduce
        let mut acc = Some(value);
        let mut round = 0u64;
        let mut step = 1usize;
        while step < p {
            let tag = self.tag(round);
            if let Some(v) = acc.clone() {
                if me & step != 0 {
                    self.send(ctx, me - step, tag, &[v]);
                    acc = None;
                } else if me + step < p {
                    let other: T = self.recv_one(ctx, me + step, tag);
                    acc = Some(combine(&v, &other));
                }
            }
            step <<= 1;
            round += 1;
        }
        // bcast
        let mut top = 1usize;
        while top < p {
            top <<= 1;
        }
        let mut have = if me == 0 { acc } else { None };
        let mut step = top;
        loop {
            let tag = self.tag(round);
            if let Some(v) = have.clone() {
                let dest = me + step;
                if me.is_multiple_of(step * 2) && dest < p {
                    self.send(ctx, dest, tag, &[v]);
                }
            } else if me % (step * 2) == step {
                have = Some(self.recv_one(ctx, me - step, tag));
            }
            if step == 1 {
                break;
            }
            step >>= 1;
            round += 1;
        }
        self.next();
        ctx.bump_collective();
        ctx.trace_end(TraceCode::Allreduce, self.seq, self.comm_id);
        have.expect("bcast reached every subgroup member")
    }

    /// Subgroup sum of `u64`.
    pub fn allreduce_sum(&mut self, ctx: &mut RankCtx, v: u64) -> u64 {
        self.allreduce(ctx, v, |a, b| a + b)
    }

    /// Subgroup barrier.
    pub fn barrier(&mut self, ctx: &mut RankCtx) {
        ctx.trace_begin(TraceCode::Barrier, self.seq, self.comm_id);
        self.allreduce(ctx, 0u8, |_, _| 0u8);
        ctx.bump_barrier();
        ctx.trace_end(TraceCode::Barrier, self.seq, self.comm_id);
    }

    /// Ring allgather within the subgroup.
    pub fn allgatherv<T: Wire + Clone>(&mut self, ctx: &mut RankCtx, mine: &[T]) -> Vec<Vec<T>> {
        let p = self.size();
        let me = self.me;
        ctx.trace_begin(TraceCode::Allgatherv, self.seq, self.comm_id);
        let mut blocks: Vec<Option<Vec<T>>> = vec![None; p];
        blocks[me] = Some(mine.to_vec());
        if p > 1 {
            let next = (me + 1) % p;
            let prev = (me + p - 1) % p;
            for step in 0..p - 1 {
                let tag = self.tag(step as u64);
                let send_idx = (me + p - step) % p;
                let to_send = blocks[send_idx].clone().expect("ring schedule");
                self.send(ctx, next, tag, &to_send);
                let recv_idx = (prev + p - step) % p;
                blocks[recv_idx] = Some(self.recv(ctx, prev, tag));
            }
        }
        self.next();
        ctx.bump_collective();
        ctx.trace_end(TraceCode::Allgatherv, self.seq, self.comm_id);
        blocks
            .into_iter()
            .map(|b| b.expect("ring covered group"))
            .collect()
    }

    /// Personalised all-to-all within the subgroup.
    pub fn alltoallv<T: Wire + Clone>(
        &mut self,
        ctx: &mut RankCtx,
        out: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        let p = self.size();
        let me = self.me;
        assert_eq!(out.len(), p, "one buffer per subgroup member");
        ctx.trace_begin(TraceCode::Alltoallv, self.seq, self.comm_id);
        let tag = self.tag(0);
        let mut own = None;
        for (d, buf) in out.into_iter().enumerate() {
            if d == me {
                own = Some(buf);
            } else {
                self.send(ctx, d, tag, &buf);
            }
        }
        let mut result = Vec::with_capacity(p);
        for s in 0..p {
            if s == me {
                result.push(own.take().expect("own block set"));
            } else {
                result.push(self.recv(ctx, s, tag));
            }
        }
        self.next();
        ctx.bump_collective();
        ctx.trace_end(TraceCode::Alltoallv, self.seq, self.comm_id);
        result
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::{Machine, MachineConfig};

    #[test]
    fn split_forms_correct_groups() {
        let rep = Machine::new(MachineConfig::with_ranks(6)).run(|ctx| {
            // rows of a 2x3 grid: color = rank / 3
            let row = ctx.split(ctx.rank() as u64 / 3, ctx.rank() as u64);
            (row.rank(), row.size(), row.global_rank(0))
        });
        assert_eq!(rep.results[0], (0, 3, 0));
        assert_eq!(rep.results[2], (2, 3, 0));
        assert_eq!(rep.results[3], (0, 3, 3));
        assert_eq!(rep.results[5], (2, 3, 3));
    }

    #[test]
    fn key_controls_ordering() {
        let rep = Machine::new(MachineConfig::with_ranks(4)).run(|ctx| {
            // reverse order by key
            let g = ctx.split(0, 100 - ctx.rank() as u64);
            g.rank()
        });
        assert_eq!(rep.results, vec![3, 2, 1, 0]);
    }

    #[test]
    fn subgroup_allreduce_is_scoped() {
        let rep = Machine::new(MachineConfig::with_ranks(6)).run(|ctx| {
            let color = (ctx.rank() % 2) as u64; // evens vs odds
            let mut g = ctx.split(color, ctx.rank() as u64);
            g.allreduce_sum(ctx, ctx.rank() as u64)
        });
        // evens: 0+2+4 = 6; odds: 1+3+5 = 9
        assert_eq!(rep.results, vec![6, 9, 6, 9, 6, 9]);
    }

    #[test]
    fn concurrent_subgroup_collectives_do_not_cross() {
        // rows and columns of a 2x2 grid, used alternately
        let rep = Machine::new(MachineConfig::with_ranks(4)).run(|ctx| {
            let r = ctx.rank();
            let mut row = ctx.split((r / 2) as u64, r as u64);
            let mut col = ctx.split((r % 2) as u64, r as u64);
            let a = row.allreduce_sum(ctx, r as u64 + 1);
            let b = col.allreduce_sum(ctx, r as u64 + 1);
            let c = row.allreduce_sum(ctx, 10);
            (a, b, c)
        });
        // rows {0,1} {2,3}: sums 3, 7; cols {0,2} {1,3}: sums 4, 6
        assert_eq!(
            rep.results,
            vec![(3, 4, 20), (3, 6, 20), (7, 4, 20), (7, 6, 20)]
        );
    }

    #[test]
    fn subgroup_allgatherv_and_alltoallv() {
        let rep = Machine::new(MachineConfig::with_ranks(6)).run(|ctx| {
            let color = (ctx.rank() / 3) as u64;
            let mut g = ctx.split(color, ctx.rank() as u64);
            let gathered = g.allgatherv(ctx, &[ctx.rank() as u64]);
            let out: Vec<Vec<u64>> = (0..g.size())
                .map(|d| vec![(ctx.rank() * 10 + d) as u64])
                .collect();
            let exchanged = g.alltoallv(ctx, out);
            (gathered, exchanged)
        });
        let (gathered, exchanged) = &rep.results[4]; // rank 4 = group 1, sub-rank 1
        assert_eq!(gathered.concat(), vec![3, 4, 5]);
        assert_eq!(exchanged.concat(), vec![31, 41, 51]);
    }

    #[test]
    fn singleton_groups_work() {
        let rep = Machine::new(MachineConfig::with_ranks(3)).run(|ctx| {
            let mut g = ctx.split(ctx.rank() as u64, 0); // everyone alone
            assert_eq!(g.size(), 1);
            g.barrier(ctx);
            g.allreduce_sum(ctx, 42)
        });
        assert_eq!(rep.results, vec![42, 42, 42]);
    }
}
