//! # g500-validate — Graph500 result validation and TEPS statistics
//!
//! The Graph500 benchmark does not trust the kernel under test: every run of
//! every root is validated against the input edge list by an independent
//! checker, and only validated runs contribute to the reported TEPS
//! statistics. This crate implements that checker for both kernels:
//!
//! * [`sssp_check`] — the five SSSP validation rules (root distance, tree
//!   well-formedness, tree-edge consistency, the edge-wise triangle
//!   inequality, and component agreement),
//! * [`bfs_check`] — the analogous level/parent checks for kernel 2,
//! * [`teps`] — traversed-edge counting and the harmonic-mean TEPS summary
//!   block the benchmark reports.
#![warn(missing_docs)]

pub mod bfs_check;
pub mod dist_check;
pub mod sssp_check;
pub mod teps;

pub use bfs_check::validate_bfs;
pub use dist_check::{distributed_validate_sssp, DistValidation};
pub use sssp_check::{validate_sssp, SsspResult, ValidationReport};
pub use teps::{count_traversed_edges, TepsSummary};
