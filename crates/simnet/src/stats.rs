//! Per-rank traffic and time accounting.
//!
//! Every experiment in the reconstructed evaluation ultimately reads these
//! counters: message counts and bytes drive the communication-volume figures
//! (F6), superstep counts explain bucket fusion (F4), and the virtual-clock
//! components split compute from communication in the breakdown figure.

/// Counters one rank accumulates over a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetStats {
    /// Point-to-point messages sent by application code.
    pub user_msgs: u64,
    /// Application payload bytes sent.
    pub user_bytes: u64,
    /// Messages sent on behalf of collectives (barriers, reductions, …).
    pub coll_msgs: u64,
    /// Collective payload bytes sent.
    pub coll_bytes: u64,
    /// Number of barrier operations entered.
    pub barriers: u64,
    /// Number of collective operations entered (excluding bare barriers).
    pub collectives: u64,
    /// Virtual seconds spent in modeled compute.
    pub compute_s: f64,
    /// Virtual seconds spent blocked on communication (clock jumps while
    /// waiting for messages, plus per-message overheads).
    pub comm_s: f64,
    /// Frames retransmitted by the reliable transport (fault injection).
    pub retransmits: u64,
    /// Retransmit timer expirations (every failed delivery attempt: data
    /// lost, frame corrupted, or ack lost).
    pub timeouts: u64,
    /// Frames discarded by receiver-side sequence-number dedup (network
    /// duplicates and ack-loss-induced retransmits of delivered data).
    pub dup_frames_dropped: u64,
    /// Frames rejected by the receiver's CRC32 / framing check.
    pub corrupt_frames: u64,
    /// Frames delivered out of order and masked by reassembly.
    pub reordered_frames: u64,
    /// Injected rank stall windows that triggered.
    pub stall_events: u64,
    /// Virtual seconds lost to injected rank stalls.
    pub stall_s: f64,
    /// Injected process crashes this rank suffered (crash injection).
    pub crashes: u64,
    /// Superstep-boundary checkpoints this rank took.
    pub checkpoints: u64,
    /// Bytes of checkpoint state written (local snapshot, before buddy
    /// replication doubles the traffic).
    pub checkpoint_bytes: u64,
    /// Rollbacks to the last checkpoint this rank performed.
    pub restores: u64,
    /// Supersteps re-executed during restore-and-replay.
    pub replayed_supersteps: u64,
    /// Queries the serving layer shed after failed recovery or a blown
    /// deadline.
    pub queries_shed: u64,
    /// Query admission windows the serving layer retried from checkpoint.
    pub queries_retried: u64,
}

impl NetStats {
    /// Total messages of both classes.
    pub fn total_msgs(&self) -> u64 {
        self.user_msgs + self.coll_msgs
    }

    /// Total bytes of both classes.
    pub fn total_bytes(&self) -> u64 {
        self.user_bytes + self.coll_bytes
    }

    /// Render as a JSON object (the workspace is dependency-free, so JSON
    /// output is hand-rolled; all fields are numeric and need no escaping).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"user_msgs\":{},\"user_bytes\":{},\"coll_msgs\":{},\"coll_bytes\":{},\
             \"barriers\":{},\"collectives\":{},\"compute_s\":{},\"comm_s\":{},\
             \"retransmits\":{},\"timeouts\":{},\"dup_frames_dropped\":{},\
             \"corrupt_frames\":{},\"reordered_frames\":{},\"stall_events\":{},\
             \"stall_s\":{},\"crashes\":{},\"checkpoints\":{},\
             \"checkpoint_bytes\":{},\"restores\":{},\"replayed_supersteps\":{},\
             \"queries_shed\":{},\"queries_retried\":{}}}",
            self.user_msgs,
            self.user_bytes,
            self.coll_msgs,
            self.coll_bytes,
            self.barriers,
            self.collectives,
            crate::stats::json_f64(self.compute_s),
            crate::stats::json_f64(self.comm_s),
            self.retransmits,
            self.timeouts,
            self.dup_frames_dropped,
            self.corrupt_frames,
            self.reordered_frames,
            self.stall_events,
            crate::stats::json_f64(self.stall_s),
            self.crashes,
            self.checkpoints,
            self.checkpoint_bytes,
            self.restores,
            self.replayed_supersteps,
            self.queries_shed,
            self.queries_retried,
        )
    }

    /// Element-wise accumulate (for cross-rank aggregation).
    pub fn merge(&mut self, other: &NetStats) {
        self.user_msgs += other.user_msgs;
        self.user_bytes += other.user_bytes;
        self.coll_msgs += other.coll_msgs;
        self.coll_bytes += other.coll_bytes;
        self.barriers += other.barriers;
        self.collectives += other.collectives;
        self.compute_s += other.compute_s;
        self.comm_s += other.comm_s;
        self.retransmits += other.retransmits;
        self.timeouts += other.timeouts;
        self.dup_frames_dropped += other.dup_frames_dropped;
        self.corrupt_frames += other.corrupt_frames;
        self.reordered_frames += other.reordered_frames;
        self.stall_events += other.stall_events;
        self.stall_s += other.stall_s;
        self.crashes += other.crashes;
        self.checkpoints += other.checkpoints;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.restores += other.restores;
        self.replayed_supersteps += other.replayed_supersteps;
        self.queries_shed += other.queries_shed;
        self.queries_retried += other.queries_retried;
    }

    /// True when any fault-injection / reliable-transport counter is
    /// nonzero — i.e. the run actually exercised the lossy path.
    pub fn saw_faults(&self) -> bool {
        self.retransmits != 0
            || self.timeouts != 0
            || self.dup_frames_dropped != 0
            || self.corrupt_frames != 0
            || self.reordered_frames != 0
            || self.stall_events != 0
    }

    /// True when any crash-injection / recovery counter is nonzero — i.e.
    /// the run actually exercised checkpoint/restart.
    pub fn saw_crashes(&self) -> bool {
        self.crashes != 0
            || self.restores != 0
            || self.replayed_supersteps != 0
            || self.queries_shed != 0
            || self.queries_retried != 0
    }
}

/// Format an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Aggregate a set of per-rank stats into totals.
pub fn aggregate(all: &[NetStats]) -> NetStats {
    let mut out = NetStats::default();
    for s in all {
        out.merge(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_everything() {
        let a = NetStats {
            user_msgs: 1,
            user_bytes: 10,
            coll_msgs: 2,
            coll_bytes: 20,
            barriers: 3,
            collectives: 4,
            compute_s: 0.5,
            comm_s: 0.25,
            retransmits: 5,
            timeouts: 6,
            dup_frames_dropped: 7,
            corrupt_frames: 8,
            reordered_frames: 9,
            stall_events: 2,
            stall_s: 0.125,
            crashes: 1,
            checkpoints: 11,
            checkpoint_bytes: 1024,
            restores: 2,
            replayed_supersteps: 13,
            queries_shed: 3,
            queries_retried: 4,
        };
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.user_msgs, 2);
        assert_eq!(b.total_bytes(), 60);
        assert_eq!(b.barriers, 6);
        assert!((b.compute_s - 1.0).abs() < 1e-12);
        assert_eq!(b.retransmits, 10);
        assert_eq!(b.timeouts, 12);
        assert_eq!(b.dup_frames_dropped, 14);
        assert_eq!(b.corrupt_frames, 16);
        assert_eq!(b.reordered_frames, 18);
        assert_eq!(b.stall_events, 4);
        assert!((b.stall_s - 0.25).abs() < 1e-12);
        assert_eq!(b.crashes, 2);
        assert_eq!(b.checkpoints, 22);
        assert_eq!(b.checkpoint_bytes, 2048);
        assert_eq!(b.restores, 4);
        assert_eq!(b.replayed_supersteps, 26);
        assert_eq!(b.queries_shed, 6);
        assert_eq!(b.queries_retried, 8);
        assert!(b.saw_faults());
        assert!(b.saw_crashes());
        assert!(!NetStats::default().saw_faults());
        assert!(!NetStats::default().saw_crashes());
    }

    #[test]
    fn json_includes_transport_counters() {
        let s = NetStats {
            retransmits: 3,
            corrupt_frames: 1,
            ..NetStats::default()
        };
        let j = s.to_json();
        assert!(j.contains("\"retransmits\":3"), "{j}");
        assert!(j.contains("\"corrupt_frames\":1"), "{j}");
        assert!(j.contains("\"stall_s\":0"), "{j}");
        assert!(j.contains("\"crashes\":0"), "{j}");
        assert!(j.contains("\"checkpoint_bytes\":0"), "{j}");
        assert!(j.contains("\"queries_shed\":0"), "{j}");
    }

    #[test]
    fn aggregate_of_empty_is_default() {
        assert_eq!(aggregate(&[]), NetStats::default());
    }
}
