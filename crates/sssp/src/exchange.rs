//! The update-exchange step: how relaxation requests cross rank boundaries.
//!
//! This is where three of the ablatable optimizations live:
//!
//! * **dedup** — per-destination sort + min-per-target before injection,
//! * **coalescing** — one aggregated message per destination (vs one
//!   message per update, which pays the LogGP per-message overhead `o`
//!   per *edge* and is exactly what makes naive distributed SSSP collapse),
//! * **compression** — the gap+varint codec of [`crate::codec`].
//!
//! All three change only traffic, never semantics: the same set of updates
//! arrives either way (dedup drops only updates that a later min() would
//! discard anyway).

use crate::codec::{
    decode_tagged, decode_updates, dedup_min, dedup_min_tagged, encode_tagged, encode_updates,
    TaggedUpdate, Update,
};
use crate::config::OptConfig;
use rayon::prelude::*;
use simnet::{RankCtx, TraceCode};

/// Tag for non-coalesced per-update messages.
const TAG_SINGLE_UPDATE: u64 = 0x5550;

/// Tag for non-coalesced per-update messages on the lane-tagged path.
const TAG_SINGLE_TAGGED: u64 = 0x5551;

/// What one exchange did, for the run statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExchangeOutcome {
    /// Records handed in by the caller (before dedup).
    pub records_offered: u64,
    /// Records actually shipped (after dedup).
    pub records_sent: u64,
    /// Records received from all peers.
    pub records_received: u64,
}

/// Reusable per-superstep exchange scratch: the per-destination outgoing
/// buckets and the flattened incoming buffer. A kernel keeps one of these
/// alive for its whole run and calls [`exchange_into`] each superstep, so
/// bucket capacity (sized by the first big superstep) is paid once instead
/// of reallocated per exchange. The non-coalesced and `alltoallv` wire
/// paths still consume the bucket Vecs (they are handed to the transport),
/// but the container and the hot dedup/encode paths reuse capacity.
#[derive(Debug, Default)]
pub struct ExchangeBufs {
    out: Vec<Vec<Update>>,
    incoming: Vec<Update>,
}

impl ExchangeBufs {
    /// Scratch for a `p`-rank exchange, with one (empty) bucket per rank.
    pub fn new(p: usize) -> ExchangeBufs {
        ExchangeBufs {
            out: (0..p).map(|_| Vec::new()).collect(),
            incoming: Vec::new(),
        }
    }

    /// The outgoing bucket for destination rank `d`.
    pub fn bucket_mut(&mut self, d: usize) -> &mut Vec<Update> {
        &mut self.out[d]
    }

    /// All outgoing buckets, for bulk filling.
    pub fn buckets_mut(&mut self) -> &mut [Vec<Update>] {
        &mut self.out
    }

    /// Updates received by the last [`exchange_into`] call.
    pub fn incoming(&self) -> &[Update] {
        &self.incoming
    }

    /// Total records currently staged across all buckets.
    pub fn staged(&self) -> u64 {
        self.out.iter().map(|b| b.len() as u64).sum()
    }
}

/// Ship the staged buckets of `bufs` to every rank, leaving the flattened
/// incoming updates in `bufs.incoming` (and the buckets empty, capacity
/// retained where the wire path allows). Collective: every rank must call
/// with the same `opts`. Semantically identical to [`exchange_updates`];
/// this entry point only adds scratch reuse.
pub fn exchange_into(
    ctx: &mut RankCtx,
    bufs: &mut ExchangeBufs,
    opts: &OptConfig,
) -> ExchangeOutcome {
    let ExchangeBufs { out, incoming } = bufs;
    exchange_core(ctx, out, incoming, opts)
}

/// Ship `out[d]` to every rank `d`; return the flattened incoming updates.
/// Collective: every rank must call with the same `opts`.
pub fn exchange_updates(
    ctx: &mut RankCtx,
    mut out: Vec<Vec<Update>>,
    opts: &OptConfig,
) -> (Vec<Update>, ExchangeOutcome) {
    let mut incoming = Vec::new();
    let outcome = exchange_core(ctx, &mut out, &mut incoming, opts);
    (incoming, outcome)
}

/// Shared implementation: dedups + ships the buckets in `out`, leaving the
/// received updates in `incoming` (cleared first). On return every bucket
/// is empty; on the compressed path (which only *reads* the buckets to
/// encode) their capacity survives for the next superstep, while the
/// uncompressed paths hand the Vecs themselves to the transport.
fn exchange_core(
    ctx: &mut RankCtx,
    out: &mut [Vec<Update>],
    incoming: &mut Vec<Update>,
    opts: &OptConfig,
) -> ExchangeOutcome {
    let p = ctx.size();
    assert_eq!(out.len(), p);
    let mut outcome = ExchangeOutcome {
        records_offered: out.iter().map(|b| b.len() as u64).sum(),
        ..Default::default()
    };
    ctx.trace_begin(TraceCode::Exchange, outcome.records_offered, 0);

    if opts.dedup {
        let work = outcome.records_offered;
        // Destination buckets are independent; dedup each in parallel (one
        // bucket per chunk — buckets are few and large). dedup_min is a
        // pure function of the bucket's contents, so shipped bytes are
        // identical at any thread count.
        ctx.trace_begin(TraceCode::TaskWave, p as u64, 2);
        out.par_iter_mut().with_min_len(1).for_each(|b| {
            dedup_min(b);
        });
        // the sort is the modeled "on-chip sort" cost
        ctx.charge_compute(work);
        ctx.trace_end(TraceCode::TaskWave, p as u64, 2);
    }
    outcome.records_sent = out.iter().map(|b| b.len() as u64).sum();

    incoming.clear();
    if !opts.coalescing {
        let taken: Vec<Vec<Update>> = out.iter_mut().map(std::mem::take).collect();
        exchange_one_message_per_update(ctx, taken, incoming);
    } else if opts.compression {
        // encode per destination (in parallel, ordered combine); sortedness
        // comes from dedup when enabled
        ctx.trace_begin(TraceCode::TaskWave, p as u64, 3);
        let enc: Vec<Vec<u8>> = out
            .par_iter()
            .with_min_len(1)
            .map(|b| encode_updates(b, opts.dedup))
            .collect();
        ctx.charge_compute(outcome.records_sent);
        ctx.trace_end(TraceCode::TaskWave, p as u64, 3);
        // encoding only read the buckets: clear them, keeping capacity
        for b in out.iter_mut() {
            b.clear();
        }
        let mut blocks = ctx.alltoallv(enc);
        // Apply per-source blocks in the (possibly fuzzed) delivery order:
        // min-relaxation makes the merge order-free, and the schedule fuzzer
        // verifies exactly that by permuting it.
        let order = ctx.delivery_order(blocks.len());
        for s in order {
            let block = std::mem::take(&mut blocks[s]);
            let mut dec =
                decode_updates(&block).expect("self-produced update encoding is well-formed");
            ctx.charge_compute(dec.len() as u64);
            incoming.append(&mut dec);
        }
    } else {
        let taken: Vec<Vec<Update>> = out.iter_mut().map(std::mem::take).collect();
        let mut blocks = ctx.alltoallv(taken);
        let order = ctx.delivery_order(blocks.len());
        for s in order {
            incoming.append(&mut blocks[s]);
        }
    }

    outcome.records_received = incoming.len() as u64;
    ctx.trace_count(TraceCode::UpdatesSent, outcome.records_sent, 0);
    ctx.trace_count(TraceCode::UpdatesReceived, outcome.records_received, 0);
    ctx.trace_end(TraceCode::Exchange, outcome.records_offered, 0);
    outcome
}

/// Reusable exchange scratch for the lane-tagged update stream of the
/// batched multi-source kernel — the source-tagged twin of
/// [`ExchangeBufs`], carrying `(lane, target, dist, parent)` records.
#[derive(Debug, Default)]
pub struct TaggedExchangeBufs {
    out: Vec<Vec<TaggedUpdate>>,
    incoming: Vec<TaggedUpdate>,
}

impl TaggedExchangeBufs {
    /// Scratch for a `p`-rank exchange, with one (empty) bucket per rank.
    pub fn new(p: usize) -> TaggedExchangeBufs {
        TaggedExchangeBufs {
            out: (0..p).map(|_| Vec::new()).collect(),
            incoming: Vec::new(),
        }
    }

    /// The outgoing bucket for destination rank `d`.
    pub fn bucket_mut(&mut self, d: usize) -> &mut Vec<TaggedUpdate> {
        &mut self.out[d]
    }

    /// Updates received by the last [`exchange_tagged_into`] call.
    pub fn incoming(&self) -> &[TaggedUpdate] {
        &self.incoming
    }

    /// Total records currently staged across all buckets.
    pub fn staged(&self) -> u64 {
        self.out.iter().map(|b| b.len() as u64).sum()
    }
}

/// Ship the staged lane-tagged buckets to every rank, honoring the same
/// `opts` toggles as the single-source path: dedup keeps the canonical
/// minimum per (lane, target), coalescing aggregates per destination, and
/// compression lane-groups the gap+varint codec. Collective: every rank
/// must call with the same `opts`. Because dedup *and* the compressed
/// wire format both order records by the canonical full key, the bytes a
/// lane receives are a function of its update set only — independent of
/// which other lanes share the batch.
pub fn exchange_tagged_into(
    ctx: &mut RankCtx,
    bufs: &mut TaggedExchangeBufs,
    opts: &OptConfig,
) -> ExchangeOutcome {
    let TaggedExchangeBufs { out, incoming } = bufs;
    let p = ctx.size();
    assert_eq!(out.len(), p);
    let mut outcome = ExchangeOutcome {
        records_offered: out.iter().map(|b| b.len() as u64).sum(),
        ..Default::default()
    };
    ctx.trace_begin(TraceCode::Exchange, outcome.records_offered, 1);

    if opts.dedup {
        let work = outcome.records_offered;
        ctx.trace_begin(TraceCode::TaskWave, p as u64, 2);
        out.par_iter_mut().with_min_len(1).for_each(|b| {
            dedup_min_tagged(b);
        });
        ctx.charge_compute(work);
        ctx.trace_end(TraceCode::TaskWave, p as u64, 2);
    }
    outcome.records_sent = out.iter().map(|b| b.len() as u64).sum();

    incoming.clear();
    if !opts.coalescing {
        let taken: Vec<Vec<TaggedUpdate>> = out.iter_mut().map(std::mem::take).collect();
        exchange_one_message_per_tagged(ctx, taken, incoming);
    } else if opts.compression {
        ctx.trace_begin(TraceCode::TaskWave, p as u64, 3);
        let enc: Vec<Vec<u8>> = out
            .par_iter()
            .with_min_len(1)
            .map(|b| encode_tagged(b, opts.dedup))
            .collect();
        ctx.charge_compute(outcome.records_sent);
        ctx.trace_end(TraceCode::TaskWave, p as u64, 3);
        for b in out.iter_mut() {
            b.clear();
        }
        let mut blocks = ctx.alltoallv(enc);
        let order = ctx.delivery_order(blocks.len());
        for s in order {
            let block = std::mem::take(&mut blocks[s]);
            let mut dec =
                decode_tagged(&block).expect("self-produced tagged encoding is well-formed");
            ctx.charge_compute(dec.len() as u64);
            incoming.append(&mut dec);
        }
    } else {
        let taken: Vec<Vec<TaggedUpdate>> = out.iter_mut().map(std::mem::take).collect();
        let mut blocks = ctx.alltoallv(taken);
        let order = ctx.delivery_order(blocks.len());
        for s in order {
            incoming.append(&mut blocks[s]);
        }
    }

    outcome.records_received = incoming.len() as u64;
    ctx.trace_count(TraceCode::UpdatesSent, outcome.records_sent, 1);
    ctx.trace_count(TraceCode::UpdatesReceived, outcome.records_received, 1);
    ctx.trace_end(TraceCode::Exchange, outcome.records_offered, 1);
    outcome
}

/// The no-coalescing path for lane-tagged updates: one message per record,
/// mirroring [`exchange_one_message_per_update`].
fn exchange_one_message_per_tagged(
    ctx: &mut RankCtx,
    out: Vec<Vec<TaggedUpdate>>,
    incoming: &mut Vec<TaggedUpdate>,
) {
    let me = ctx.rank();
    let counts: Vec<Vec<u64>> = out.iter().map(|b| vec![b.len() as u64]).collect();
    let counts_in = ctx.alltoallv(counts);

    for (d, block) in out.into_iter().enumerate() {
        if d == me {
            incoming.extend(block);
        } else {
            for u in block {
                ctx.send(d, TAG_SINGLE_TAGGED, &[u]);
            }
        }
    }
    let order = ctx.delivery_order(counts_in.len());
    for s in order {
        if s == me {
            continue;
        }
        for _ in 0..counts_in[s][0] {
            incoming.push(ctx.recv_one::<TaggedUpdate>(s, TAG_SINGLE_TAGGED));
        }
    }
}

/// The no-coalescing path: every update is its own message. Counts are
/// agreed via a (cheap, aggregated) all-to-all first so receivers know how
/// many singletons to expect from each peer; per-sender FIFO ordering makes
/// the tag reuse across supersteps safe.
fn exchange_one_message_per_update(
    ctx: &mut RankCtx,
    out: Vec<Vec<Update>>,
    incoming: &mut Vec<Update>,
) {
    let me = ctx.rank();
    let counts: Vec<Vec<u64>> = out.iter().map(|b| vec![b.len() as u64]).collect();
    let counts_in = ctx.alltoallv(counts);

    for (d, block) in out.into_iter().enumerate() {
        if d == me {
            incoming.extend(block); // local updates never hit the wire
        } else {
            for u in block {
                ctx.send(d, TAG_SINGLE_UPDATE, &[u]);
            }
        }
    }
    // Drain peers in the (possibly fuzzed) delivery order; each per-sender
    // stream stays FIFO, but the interleave across senders is order-free.
    let order = ctx.delivery_order(counts_in.len());
    for s in order {
        if s == me {
            continue;
        }
        for _ in 0..counts_in[s][0] {
            incoming.push(ctx.recv_one::<Update>(s, TAG_SINGLE_UPDATE));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Machine, MachineConfig};

    fn run_exchange(p: usize, opts: OptConfig) -> Vec<(Vec<Update>, ExchangeOutcome, u64, u64)> {
        Machine::new(MachineConfig::with_ranks(p))
            .run(|ctx| {
                let me = ctx.rank() as u64;
                // rank r sends to every rank d two updates for target d*10
                // (one strictly better), so dedup has something to remove
                let out: Vec<Vec<Update>> = (0..ctx.size() as u64)
                    .map(|d| vec![(d * 10, 0.5 + me as f32, me), (d * 10, 0.4 + me as f32, me)])
                    .collect();
                let (incoming, outcome) = exchange_updates(ctx, out, &opts);
                let stats = ctx.stats();
                (incoming, outcome, stats.user_msgs, stats.total_bytes())
            })
            .results
    }

    #[test]
    fn all_paths_deliver_same_updates() {
        let configs = [
            OptConfig::all_on(),
            OptConfig::all_on().without_compression(),
            OptConfig::all_on().without_dedup(),
            OptConfig::all_on().without_dedup().without_compression(),
            OptConfig::all_off(),
        ];
        let mut reference: Option<Vec<Vec<(u64, u64)>>> = None;
        for (ci, opts) in configs.iter().enumerate() {
            let results = run_exchange(4, *opts);
            // compare the *set* of (target, parent-of-min) pairs per rank:
            // dedup may drop dominated records, so compare post-min state
            let view: Vec<Vec<(u64, u64)>> = results
                .iter()
                .map(|(inc, _, _, _)| {
                    let mut best: std::collections::HashMap<u64, (f32, u64)> =
                        std::collections::HashMap::new();
                    for &(t, d, par) in inc {
                        let e = best.entry(t).or_insert((f32::INFINITY, u64::MAX));
                        if d < e.0 {
                            *e = (d, par);
                        }
                    }
                    let mut v: Vec<(u64, u64)> =
                        best.into_iter().map(|(t, (_, par))| (t, par)).collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            match &reference {
                None => reference = Some(view),
                Some(r) => assert_eq!(r, &view, "config {ci} delivered different state"),
            }
        }
    }

    #[test]
    fn dedup_halves_the_records() {
        let (_, outcome, _, _) = run_exchange(3, OptConfig::all_on())[0].clone();
        assert_eq!(outcome.records_offered, 6);
        assert_eq!(outcome.records_sent, 3);
    }

    #[test]
    fn no_coalescing_sends_per_update_messages() {
        let with = run_exchange(4, OptConfig::all_on().without_dedup());
        let without = run_exchange(4, OptConfig::all_on().without_dedup().without_coalescing());
        let msgs_with: u64 = with.iter().map(|r| r.2).sum();
        let msgs_without: u64 = without.iter().map(|r| r.2).sum();
        // coalesced path sends zero *user* messages (alltoallv is
        // collective-class); naive path sends one per update
        assert_eq!(msgs_with, 0);
        assert_eq!(msgs_without, 4 * 3 * 2); // p ranks × (p-1) peers × 2 updates
    }

    #[test]
    fn compression_reduces_bytes() {
        // many clustered targets so the codec has gaps to exploit
        let run = |opts: OptConfig| -> u64 {
            Machine::new(MachineConfig::with_ranks(2))
                .run(move |ctx| {
                    let out: Vec<Vec<Update>> = (0..2)
                        .map(|d| (0..500u64).map(|i| (d * 1000 + i, 0.25, 42)).collect())
                        .collect();
                    exchange_updates(ctx, out, &opts);
                    ctx.stats().total_bytes()
                })
                .results
                .iter()
                .sum()
        };
        let compressed = run(OptConfig::all_on());
        let raw = run(OptConfig::all_on().without_compression());
        assert!(
            compressed * 3 < raw * 2,
            "compression saved too little: {compressed} vs {raw}"
        );
    }

    #[test]
    fn tagged_paths_deliver_same_state() {
        let configs = [
            OptConfig::all_on(),
            OptConfig::all_on().without_compression(),
            OptConfig::all_on().without_dedup(),
            OptConfig::all_on().without_dedup().without_compression(),
            OptConfig::all_off(),
        ];
        let run = |opts: OptConfig| {
            Machine::new(MachineConfig::with_ranks(3))
                .run(move |ctx| {
                    let me = ctx.rank() as u64;
                    let mut bufs = TaggedExchangeBufs::new(ctx.size());
                    for d in 0..ctx.size() {
                        // two lanes, duplicate targets per lane so dedup bites
                        bufs.bucket_mut(d).extend([
                            (0u32, d as u64 * 10, 0.5 + me as f32, me),
                            (0, d as u64 * 10, 0.4 + me as f32, me),
                            (1, d as u64 * 10, 0.3 + me as f32, me + 100),
                        ]);
                    }
                    exchange_tagged_into(ctx, &mut bufs, &opts);
                    bufs.incoming().to_vec()
                })
                .results
        };
        let mut reference: Option<Vec<Vec<(u32, u64, u64)>>> = None;
        for (ci, opts) in configs.iter().enumerate() {
            let view: Vec<Vec<(u32, u64, u64)>> = run(*opts)
                .iter()
                .map(|inc| {
                    let mut best: std::collections::HashMap<(u32, u64), (f32, u64)> =
                        std::collections::HashMap::new();
                    for &(lane, t, d, par) in inc {
                        let e = best.entry((lane, t)).or_insert((f32::INFINITY, u64::MAX));
                        if (d, par) < (e.0, e.1) {
                            *e = (d, par);
                        }
                    }
                    let mut v: Vec<(u32, u64, u64)> = best
                        .into_iter()
                        .map(|((lane, t), (_, par))| (lane, t, par))
                        .collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            match &reference {
                None => reference = Some(view),
                Some(r) => assert_eq!(r, &view, "tagged config {ci} diverged"),
            }
        }
    }

    #[test]
    fn tagged_dedup_keeps_min_per_lane_target() {
        let results = Machine::new(MachineConfig::with_ranks(2))
            .run(|ctx| {
                let mut bufs = TaggedExchangeBufs::new(ctx.size());
                for d in 0..ctx.size() {
                    bufs.bucket_mut(d).extend([
                        (0u32, 4u64, 0.9f32, 1u64),
                        (0, 4, 0.2, 2),
                        (1, 4, 0.1, 3),
                    ]);
                }
                let outcome = exchange_tagged_into(ctx, &mut bufs, &OptConfig::all_on());
                (outcome.records_offered, outcome.records_sent)
            })
            .results;
        // lanes dedup independently: 3 offered, 2 shipped per destination
        assert_eq!(results[0], (6, 4));
    }

    #[test]
    fn empty_exchange_is_fine() {
        let results = run_exchange(1, OptConfig::all_on());
        // single rank: everything is a local copy
        assert_eq!(results[0].1.records_received, 1);
    }
}
