//! Per-rank traffic and time accounting.
//!
//! Every experiment in the reconstructed evaluation ultimately reads these
//! counters: message counts and bytes drive the communication-volume figures
//! (F6), superstep counts explain bucket fusion (F4), and the virtual-clock
//! components split compute from communication in the breakdown figure.

/// Counters one rank accumulates over a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetStats {
    /// Point-to-point messages sent by application code.
    pub user_msgs: u64,
    /// Application payload bytes sent.
    pub user_bytes: u64,
    /// Messages sent on behalf of collectives (barriers, reductions, …).
    pub coll_msgs: u64,
    /// Collective payload bytes sent.
    pub coll_bytes: u64,
    /// Number of barrier operations entered.
    pub barriers: u64,
    /// Number of collective operations entered (excluding bare barriers).
    pub collectives: u64,
    /// Virtual seconds spent in modeled compute.
    pub compute_s: f64,
    /// Virtual seconds spent blocked on communication (clock jumps while
    /// waiting for messages, plus per-message overheads).
    pub comm_s: f64,
}

impl NetStats {
    /// Total messages of both classes.
    pub fn total_msgs(&self) -> u64 {
        self.user_msgs + self.coll_msgs
    }

    /// Total bytes of both classes.
    pub fn total_bytes(&self) -> u64 {
        self.user_bytes + self.coll_bytes
    }

    /// Render as a JSON object (the workspace is dependency-free, so JSON
    /// output is hand-rolled; all fields are numeric and need no escaping).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"user_msgs\":{},\"user_bytes\":{},\"coll_msgs\":{},\"coll_bytes\":{},\
             \"barriers\":{},\"collectives\":{},\"compute_s\":{},\"comm_s\":{}}}",
            self.user_msgs,
            self.user_bytes,
            self.coll_msgs,
            self.coll_bytes,
            self.barriers,
            self.collectives,
            crate::stats::json_f64(self.compute_s),
            crate::stats::json_f64(self.comm_s),
        )
    }

    /// Element-wise accumulate (for cross-rank aggregation).
    pub fn merge(&mut self, other: &NetStats) {
        self.user_msgs += other.user_msgs;
        self.user_bytes += other.user_bytes;
        self.coll_msgs += other.coll_msgs;
        self.coll_bytes += other.coll_bytes;
        self.barriers += other.barriers;
        self.collectives += other.collectives;
        self.compute_s += other.compute_s;
        self.comm_s += other.comm_s;
    }
}

/// Format an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Aggregate a set of per-rank stats into totals.
pub fn aggregate(all: &[NetStats]) -> NetStats {
    let mut out = NetStats::default();
    for s in all {
        out.merge(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_everything() {
        let a = NetStats {
            user_msgs: 1,
            user_bytes: 10,
            coll_msgs: 2,
            coll_bytes: 20,
            barriers: 3,
            collectives: 4,
            compute_s: 0.5,
            comm_s: 0.25,
        };
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.user_msgs, 2);
        assert_eq!(b.total_bytes(), 60);
        assert_eq!(b.barriers, 6);
        assert!((b.compute_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_of_empty_is_default() {
        assert_eq!(aggregate(&[]), NetStats::default());
    }
}
