//! Monotone radix heap over `u64` keys, and the Dijkstra built on it.
//!
//! A radix heap is the classic monotone priority queue: it exploits the
//! fact that Dijkstra never inserts a key smaller than the last extracted
//! minimum. Entries live in 65 buckets indexed by the position of the
//! highest bit in which the key differs from the last extracted minimum
//! (`last`); extraction scans at most 65 buckets and redistributes one
//! bucket's entries into strictly lower buckets, so every entry moves at
//! most 64 times over its lifetime — `O(m + n·64)` total for Dijkstra
//! against the binary heap's `O(m log n)`.
//!
//! Distances in this workspace are non-negative `f32` ([`Weight`]); IEEE-754
//! orders non-negative floats identically to their bit patterns, so
//! [`weight_to_key`] embeds them order-preservingly into the `u64` key
//! space. Unreachable is the shared sentinel [`INF_KEY`]`= u64::MAX / 4`
//! (matching the exemplar convention): far above every finite distance key
//! (finite `f32` bits fit in 32 bits) with headroom so that key arithmetic
//! can never wrap past it — `tests/cross_impl.rs` pins this contract for
//! every baseline.

use g500_graph::{Csr, ShortestPaths, VertexId, Weight, INF_WEIGHT};

/// Shared "unreachable" sentinel in the `u64` distance-key domain.
///
/// `u64::MAX / 4` leaves two bits of headroom: `INF_KEY + INF_KEY` still
/// fits in a `u64`, so even a (buggy) relaxation through an unreached
/// vertex saturates instead of wrapping below a finite key and silently
/// "reaching" the vertex. All baselines share one sentinel so mixed-oracle
/// comparisons can never pass on overflow.
pub const INF_KEY: u64 = u64::MAX / 4;

/// Embed a non-negative weight into the monotone `u64` key domain.
///
/// Finite distances map to their IEEE-754 bit pattern (order-preserving
/// for non-negative floats); `INF_WEIGHT` maps to [`INF_KEY`].
#[inline]
pub fn weight_to_key(w: Weight) -> u64 {
    debug_assert!(w >= 0.0, "negative weights are not orderable via bits");
    if w.is_finite() {
        w.to_bits() as u64
    } else {
        INF_KEY
    }
}

/// Inverse of [`weight_to_key`]: keys at or above [`INF_KEY`] read back as
/// `INF_WEIGHT`.
#[inline]
pub fn key_to_weight(k: u64) -> Weight {
    if k >= INF_KEY {
        INF_WEIGHT
    } else {
        f32::from_bits(k as u32)
    }
}

/// A monotone radix heap: `pop_min` keys never decrease, and every `push`
/// key must be `>= ` the last popped key (the monotonicity precondition —
/// violated pushes panic in debug builds and corrupt the order in release,
/// exactly like pushing a NaN into a `BinaryHeap`).
#[derive(Clone, Debug)]
pub struct RadixHeap<T> {
    /// `buckets[0]` holds keys equal to `last`; `buckets[i]` (1 ≤ i ≤ 64)
    /// holds keys whose highest bit differing from `last` is bit `i - 1`.
    buckets: Vec<Vec<(u64, T)>>,
    /// The last extracted minimum (initially the floor passed to `new`).
    last: u64,
    len: usize,
}

impl<T> RadixHeap<T> {
    /// Empty heap with monotone floor `0`.
    pub fn new() -> Self {
        Self::with_floor(0)
    }

    /// Empty heap whose first pushes must be `>= floor`.
    pub fn with_floor(floor: u64) -> Self {
        Self {
            buckets: (0..65).map(|_| Vec::new()).collect(),
            last: floor,
            len: 0,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The last extracted minimum (the current monotone floor).
    #[inline]
    pub fn last(&self) -> u64 {
        self.last
    }

    /// Bucket index of `key` relative to `last`: `0` for equality, else
    /// one past the highest differing bit position.
    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        debug_assert!(key >= self.last, "monotonicity violated: {key} < last");
        (64 - (key ^ self.last).leading_zeros()) as usize
    }

    /// Insert `value` with `key`; `key` must be `>= self.last()`.
    pub fn push(&mut self, key: u64, value: T) {
        let b = self.bucket_of(key);
        self.buckets[b].push((key, value));
        self.len += 1;
    }

    /// Remove and return an entry with the minimum key.
    ///
    /// Ties are served LIFO within the minimum bucket; Dijkstra's
    /// correctness (and bitwise distance agreement) does not depend on the
    /// tie order, only on keys being extracted in non-decreasing order.
    pub fn pop_min(&mut self) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        if self.buckets[0].is_empty() {
            // Find the lowest non-empty bucket, advance `last` to its
            // minimum key, and redistribute: every entry lands in a
            // strictly lower bucket (they agree with the new `last` on all
            // bits above the old bucket's index), the minimum itself in
            // bucket 0.
            let i = self
                .buckets
                .iter()
                .position(|b| !b.is_empty())
                .expect("len > 0 but all buckets empty");
            let drained = std::mem::take(&mut self.buckets[i]);
            self.last = drained.iter().map(|&(k, _)| k).min().expect("non-empty");
            for (k, v) in drained {
                let b = self.bucket_of(k);
                debug_assert!(b < i, "redistribution must strictly descend");
                self.buckets[b].push((k, v));
            }
        }
        self.len -= 1;
        self.buckets[0].pop()
    }
}

impl<T> Default for RadixHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Exact single-source shortest paths on a monotone radix heap with lazy
/// deletion — same algorithm and same lazy-insertion discipline as
/// [`crate::dijkstra`], different priority queue. Distances are bitwise
/// identical to the binary-heap oracle: both settle every vertex at the
/// minimum over the same relaxation candidates, and value-equal
/// non-negative floats are bit-equal.
pub fn dijkstra_radix_heap(graph: &Csr, root: VertexId) -> ShortestPaths {
    let n = graph.num_vertices();
    let mut sp = ShortestPaths::with_root(n, root);
    let mut heap: RadixHeap<u32> = RadixHeap::new();
    heap.push(0, root as u32);
    let mut settled = vec![false; n];

    while let Some((key, u)) = heap.pop_min() {
        let u_idx = u as usize;
        if settled[u_idx] {
            continue; // lazy deletion: stale heap entry
        }
        settled[u_idx] = true;
        let d = key_to_weight(key);
        debug_assert_eq!(
            key,
            weight_to_key(sp.dist[u_idx]),
            "radix pop fresher than dist array"
        );
        let vs = graph.neighbors(u_idx);
        let ws = graph.edge_weights(u_idx);
        for (&v, &w) in vs.iter().zip(ws) {
            let v_idx = v as usize;
            let nd = d + w;
            if nd < sp.dist[v_idx] {
                sp.dist[v_idx] = nd;
                sp.parent[v_idx] = u as u64;
                // nd >= d = key floor: the monotone push precondition holds
                heap.push(weight_to_key(nd), v as u32);
            }
        }
    }
    sp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use g500_graph::{Directedness, EdgeList, WEdge};

    fn csr(edges: &[(u64, u64, f32)], n: usize) -> Csr {
        let el = EdgeList::from_edges(edges.iter().map(|&(u, v, w)| WEdge::new(u, v, w)));
        Csr::from_edges(n, &el, Directedness::Undirected)
    }

    #[test]
    fn key_embedding_is_monotone_and_invertible() {
        let ws = [0.0f32, 1e-30, 0.001, 0.5, 0.999, 1.0, 7.25, 1e30];
        for pair in ws.windows(2) {
            assert!(weight_to_key(pair[0]) < weight_to_key(pair[1]));
        }
        for &w in &ws {
            assert_eq!(key_to_weight(weight_to_key(w)).to_bits(), w.to_bits());
        }
        assert_eq!(weight_to_key(INF_WEIGHT), INF_KEY);
        assert_eq!(key_to_weight(INF_KEY), INF_WEIGHT);
        // headroom: the sentinel cannot be reached by adding finite keys
        assert!(weight_to_key(f32::MAX) < INF_KEY);
        assert!(INF_KEY.checked_add(INF_KEY).is_some());
    }

    #[test]
    fn heap_pops_sorted_under_monotone_pushes() {
        let mut h = RadixHeap::new();
        for k in [5u64, 1, 9, 1, 7, 0, 1 << 40, 3] {
            h.push(k, k);
        }
        let mut out = Vec::new();
        while let Some((k, v)) = h.pop_min() {
            assert_eq!(k, v);
            out.push(k);
        }
        assert_eq!(out, vec![0, 1, 1, 3, 5, 7, 9, 1 << 40]);
        assert!(h.is_empty());
    }

    #[test]
    fn interleaved_pushes_respect_floor() {
        let mut h = RadixHeap::new();
        h.push(2, 0);
        h.push(10, 1);
        assert_eq!(h.pop_min().map(|(k, _)| k), Some(2));
        // after popping 2 the floor is 2: pushing 3 is legal and it must
        // come out before 10
        h.push(3, 2);
        assert_eq!(h.pop_min().map(|(k, _)| k), Some(3));
        assert_eq!(h.pop_min().map(|(k, _)| k), Some(10));
        assert_eq!(h.pop_min().map(|(k, _)| k), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "monotonicity violated")]
    fn non_monotone_push_panics_in_debug() {
        let mut h = RadixHeap::new();
        h.push(10, 0);
        assert_eq!(h.pop_min().map(|(k, _)| k), Some(10));
        h.push(9, 1);
    }

    #[test]
    fn matches_binary_heap_dijkstra_bitwise() {
        for seed in 0..6 {
            let el = g500_gen::simple::erdos_renyi(90, 500, seed);
            let g = Csr::from_edges(90, &el, Directedness::Undirected);
            let a = dijkstra(&g, 3);
            let b = dijkstra_radix_heap(&g, 3);
            for v in 0..90 {
                assert_eq!(
                    a.dist[v].to_bits(),
                    b.dist[v].to_bits(),
                    "seed {seed} vertex {v}"
                );
            }
        }
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let g = csr(&[(0, 1, 1.0)], 4);
        let sp = dijkstra_radix_heap(&g, 0);
        assert_eq!(sp.dist[2], INF_WEIGHT);
        assert_eq!(sp.reached_count(), 2);
    }

    #[test]
    fn zero_weight_edges() {
        let g = csr(&[(0, 1, 0.0), (1, 2, 0.0)], 3);
        let sp = dijkstra_radix_heap(&g, 0);
        assert_eq!(sp.dist, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn parent_tree_edges_are_tight() {
        let el = g500_gen::simple::erdos_renyi(60, 300, 17);
        let g = Csr::from_edges(60, &el, Directedness::Undirected);
        let sp = dijkstra_radix_heap(&g, 0);
        for v in 1..60 {
            if sp.dist[v].is_finite() {
                let p = sp.parent[v] as usize;
                let tight = g
                    .arcs(p)
                    .any(|(t, w)| t == v as u64 && sp.dist[p] + w == sp.dist[v]);
                assert!(tight, "no tight tree edge {p}->{v}");
            }
        }
    }
}
