//! Shared-memory parallel delta-stepping.
//!
//! This is the *intra-rank* kernel: on the real machine each process drives
//! hundreds of cores, and the bucket's frontier is relaxed in parallel. The
//! distance array is `AtomicU32` holding `f32` bits (non-negative floats
//! order as their bit patterns, so `fetch_min` implements atomic relaxation
//! — see `g500_graph::types::weight_to_bits`). Parent updates ride a second
//! atomic; a parent may briefly disagree with the very latest distance
//! during a race, so parents are fixed up from winners after each wave,
//! keeping the (distance, parent) pair consistent at wave boundaries.

use crate::bucket::BucketQueue;
use g500_graph::types::weight_to_bits;
use g500_graph::{Csr, ShortestPaths, VertexId, Weight};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Shared-memory parallel delta-stepping from `root` with width `delta`.
pub fn parallel_delta_stepping(graph: &Csr, root: VertexId, delta: Weight) -> ShortestPaths {
    let n = graph.num_vertices();
    let dist: Vec<AtomicU32> = (0..n)
        .map(|_| AtomicU32::new(weight_to_bits(f32::INFINITY)))
        .collect();
    let parent: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    dist[root as usize].store(weight_to_bits(0.0), Ordering::Relaxed);
    parent[root as usize].store(root, Ordering::Relaxed);

    // Shared-reference views: `&[Atomic…]` is `Copy`, so the rayon closures
    // capture these instead of moving the vectors.
    let dist_ref: &[AtomicU32] = &dist;
    let parent_ref: &[AtomicU64] = &parent;
    let load = move |v: usize| f32::from_bits(dist_ref[v].load(Ordering::Relaxed));

    let mut buckets = BucketQueue::new(delta);
    buckets.insert(root as u32, 0.0);
    let mut settled: Vec<u32> = Vec::new();

    while let Some(k) = buckets.min_bucket() {
        settled.clear();
        loop {
            let frontier: Vec<u32> = buckets
                .take_bucket(k)
                .into_iter()
                .filter(|&v| {
                    let d = load(v as usize);
                    d.is_finite() && buckets.bucket_of(d) == k
                })
                .collect();
            if frontier.is_empty() {
                break;
            }
            settled.extend_from_slice(&frontier);
            // Parallel light-edge wave; improvements are collected and
            // re-inserted sequentially (the bucket structure is not shared).
            let improved: Vec<(u32, f32)> = frontier
                .par_iter()
                .flat_map_iter(|&u| {
                    let du = load(u as usize);
                    graph.arcs(u as usize).filter_map(move |(v, w)| {
                        if w < delta {
                            relax_atomic(dist_ref, parent_ref, u, v, du + w)
                        } else {
                            None
                        }
                    })
                })
                .collect();
            for (v, d) in improved {
                buckets.insert(v, d);
            }
        }
        // Heavy phase over the settled set, in parallel, once.
        let improved: Vec<(u32, f32)> = settled
            .par_iter()
            .flat_map_iter(|&u| {
                let du = load(u as usize);
                graph.arcs(u as usize).filter_map(move |(v, w)| {
                    if w >= delta {
                        relax_atomic(dist_ref, parent_ref, u, v, du + w)
                    } else {
                        None
                    }
                })
            })
            .collect();
        for (v, d) in improved {
            buckets.insert(v, d);
        }
    }

    ShortestPaths {
        dist: dist
            .into_iter()
            .map(|a| f32::from_bits(a.into_inner()))
            .collect(),
        parent: parent.into_iter().map(AtomicU64::into_inner).collect(),
    }
}

/// Atomic relaxation: returns `Some((v, nd))` if this call improved `v`.
#[inline]
fn relax_atomic(
    dist: &[AtomicU32],
    parent: &[AtomicU64],
    u: u32,
    v: VertexId,
    nd: Weight,
) -> Option<(u32, f32)> {
    let vi = v as usize;
    let nd_bits = weight_to_bits(nd);
    let prev = dist[vi].fetch_min(nd_bits, Ordering::Relaxed);
    if nd_bits < prev {
        // This thread won the min; record the matching parent. A
        // concurrent better relaxation may overwrite both — last-winner
        // consistency is restored because that winner also stores its
        // parent after its fetch_min.
        parent[vi].store(u as u64, Ordering::Relaxed);
        Some((v as u32, nd))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g500_baselines::dijkstra;
    use g500_graph::Directedness;

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..4 {
            let el = g500_gen::simple::erdos_renyi(100, 600, seed);
            let g = Csr::from_edges(100, &el, Directedness::Undirected);
            let exact = dijkstra(&g, 7);
            let par = parallel_delta_stepping(&g, 7, 0.15);
            assert!(par.distances_match(&exact, 1e-4), "seed {seed}");
        }
    }

    #[test]
    fn matches_on_kronecker() {
        let gen = g500_gen::KroneckerGenerator::new(g500_gen::KroneckerParams::graph500(9, 3));
        let el = gen.generate_all();
        let g = Csr::from_edges(512, &el, Directedness::Undirected);
        let exact = dijkstra(&g, 2);
        let par = parallel_delta_stepping(&g, 2, 0.125);
        assert!(par.distances_match(&exact, 1e-4));
    }

    #[test]
    fn parent_tree_is_usable() {
        let el = g500_gen::simple::erdos_renyi(50, 250, 1);
        let g = Csr::from_edges(50, &el, Directedness::Undirected);
        let sp = parallel_delta_stepping(&g, 0, 0.2);
        // every reached non-root vertex has a reached parent at lower-or-
        // equal distance
        for v in 0..50 {
            if v != 0 && sp.dist[v].is_finite() {
                let p = sp.parent[v];
                assert_ne!(p, u64::MAX);
                assert!(sp.dist[p as usize] <= sp.dist[v] + 1e-6);
            }
        }
    }

    #[test]
    fn single_vertex_graph() {
        let g = Csr::from_edges(1, &g500_graph::EdgeList::new(), Directedness::Directed);
        let sp = parallel_delta_stepping(&g, 0, 0.5);
        assert_eq!(sp.dist, vec![0.0]);
        assert_eq!(sp.parent, vec![0]);
    }
}
