//! Fixed-size bitmaps.
//!
//! Frontier sets in the direction-optimized kernels are represented as
//! bitmaps: dense frontiers cost one bit per vertex instead of 8 bytes per
//! id, which is exactly the traffic reduction the pull direction exploits
//! when broadcasting frontiers between ranks.

/// A fixed-size bitmap over `len` bits backed by `u64` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    len: usize,
    words: Vec<u64>,
}

impl Bitmap {
    /// All-zeros bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if `len == 0`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i`, returning whether it was previously clear.
    #[inline]
    pub fn test_and_set(&mut self, i: usize) -> bool {
        let w = &mut self.words[i / 64];
        let mask = 1 << (i % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clear all bits without reallocating.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Bitwise-or another bitmap of the same length into this one.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterate over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Raw words (for wire transfer between ranks).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from raw words previously obtained via [`Self::words`].
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), len.div_ceil(64));
        Self { len, words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn test_and_set_reports_freshness() {
        let mut b = Bitmap::new(10);
        assert!(b.test_and_set(3));
        assert!(!b.test_and_set(3));
        assert!(b.get(3));
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = Bitmap::new(200);
        let set = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &set {
            b.set(i);
        }
        let got: Vec<_> = b.iter_ones().collect();
        assert_eq!(got, set);
    }

    #[test]
    fn union_and_clear_all() {
        let mut a = Bitmap::new(100);
        let mut b = Bitmap::new(100);
        a.set(1);
        b.set(99);
        a.union_with(&b);
        assert!(a.get(1) && a.get(99));
        a.clear_all();
        assert_eq!(a.count_ones(), 0);
    }

    #[test]
    fn words_roundtrip() {
        let mut a = Bitmap::new(70);
        a.set(5);
        a.set(69);
        let b = Bitmap::from_words(70, a.words().to_vec());
        assert_eq!(a, b);
    }
}
