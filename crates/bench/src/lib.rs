//! # g500-bench — experiment harnesses
//!
//! One binary per reconstructed table/figure of the paper's evaluation
//! (see DESIGN.md's experiment index): `cargo run --release -p g500-bench
//! --bin t2_headline` etc. Each binary prints the table's rows on stdout.
//! Criterion microbenches live in `benches/`.
//!
//! This library holds the shared plumbing: simple environment-variable
//! parameter overrides (`G500_SCALE=18 cargo run …`) and aligned table
//! printing.
#![warn(missing_docs)]

pub mod micro;

use std::fmt::Display;

/// Read an integer parameter from the environment with a default, e.g.
/// `param("G500_SCALE", 16)`.
pub fn param(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read a float parameter from the environment with a default.
pub fn param_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Build a [`simnet::FaultPlan`] from the `G500_*` fault environment
/// variables (`G500_FAULT_SEED`, `G500_DROP_RATE`, `G500_DUP_RATE`,
/// `G500_CORRUPT_RATE`, `G500_REORDER_RATE`, `G500_RETRY_BUDGET`), all
/// zero/off by default — so every harness can run its sweep over a lossy
/// network without code changes. Panics on invalid rates.
pub fn fault_plan_from_env() -> simnet::FaultPlan {
    let plan = simnet::FaultPlan::none()
        .with_seed(param("G500_FAULT_SEED", 0))
        .with_drop(param_f64("G500_DROP_RATE", 0.0))
        .with_duplicate(param_f64("G500_DUP_RATE", 0.0))
        .with_corrupt(param_f64("G500_CORRUPT_RATE", 0.0))
        .with_reorder(param_f64("G500_REORDER_RATE", 0.0))
        .with_retry_budget(param("G500_RETRY_BUDGET", 16) as u32);
    if let Err(e) = plan.validate() {
        panic!("bad G500_* fault environment: {e}");
    }
    plan
}

/// Extra banner parameters describing the fault environment; empty when
/// the plan is inactive, so fault-free harness output is unchanged.
pub fn fault_banner_params(plan: &simnet::FaultPlan) -> Vec<(&'static str, String)> {
    if !plan.is_active() {
        return Vec::new();
    }
    vec![
        ("fault_seed", plan.seed.to_string()),
        (
            "fault rates (drop/dup/corrupt/reorder)",
            format!(
                "{}/{}/{}/{}",
                plan.drop, plan.duplicate, plan.corrupt, plan.reorder
            ),
        ),
        ("retry_budget", plan.retry_budget.to_string()),
    ]
}

/// A fixed-width text table writer for experiment output.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Start a table and print the header row.
    pub fn new(headers: &[&str]) -> Self {
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(12)).collect();
        let t = Table { widths };
        t.print_row(headers);
        let rule: Vec<String> = t.widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("{}", rule.join("-+-"));
        t
    }

    fn print_row<S: Display>(&self, cells: &[S]) {
        let row: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{:>width$}", c.to_string(), width = w))
            .collect();
        println!("{}", row.join(" | "));
    }

    /// Print one data row (cells are stringified right-aligned).
    pub fn row<S: Display>(&self, cells: &[S]) {
        assert_eq!(cells.len(), self.widths.len(), "row arity mismatch");
        self.print_row(cells);
    }
}

/// Format TEPS as GTEPS with 3 significant places.
pub fn gteps(teps: f64) -> String {
    format!("{:.3}", teps / 1e9)
}

/// Format a simulated-seconds value in engineering style.
pub fn secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.3}us", s * 1e6)
    }
}

/// Standard experiment banner.
pub fn banner(id: &str, title: &str, params: &[(&str, String)]) {
    println!("== {id}: {title} ==");
    for (k, v) in params {
        println!("   {k} = {v}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_defaults_and_parses() {
        std::env::remove_var("G500_TEST_PARAM_X");
        assert_eq!(param("G500_TEST_PARAM_X", 7), 7);
        std::env::set_var("G500_TEST_PARAM_X", "42");
        assert_eq!(param("G500_TEST_PARAM_X", 7), 42);
        std::env::set_var("G500_TEST_PARAM_X", "bogus");
        assert_eq!(param("G500_TEST_PARAM_X", 7), 7);
        std::env::remove_var("G500_TEST_PARAM_X");
    }

    #[test]
    fn fault_env_defaults_to_inactive() {
        for v in [
            "G500_FAULT_SEED",
            "G500_DROP_RATE",
            "G500_DUP_RATE",
            "G500_CORRUPT_RATE",
            "G500_REORDER_RATE",
            "G500_RETRY_BUDGET",
        ] {
            std::env::remove_var(v);
        }
        let plan = fault_plan_from_env();
        assert!(!plan.is_active(), "{plan:?}");
        assert!(fault_banner_params(&plan).is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(gteps(2.5e9), "2.500");
        assert_eq!(secs(1.5), "1.500s");
        assert_eq!(secs(0.0015), "1.500ms");
        assert_eq!(secs(2e-6), "2.000us");
    }
}
