//! Conformance for the batched query engine: a lane inside a width-B
//! batch must be *bitwise* identical (distances and parents) to the same
//! source run alone, across adversarial graph families, optimization
//! configs, and batch widths; point-to-point early exit and landmark
//! bounds must never change an answer; cache hits must return exactly
//! what a recompute would. Everything runs under the deterministic
//! scheduler so failures replay from the printed label, and the whole
//! suite is rerun by CI at `G500_THREADS` 1 and 4 (the fixed-chunk
//! contract makes results thread-count invariant).

mod common;

use common::adversarial;
use graph500::baselines::dijkstra;
use graph500::graph::{Csr, Directedness, EdgeList, WEdge};
use graph500::partition::{assemble_local_graph, Block1D};
use graph500::simnet::{Machine, MachineConfig};
use graph500::sssp::{
    batched_delta_stepping, BatchSpec, OptConfig, Query, QueryEngine, ServeConfig,
};

fn to_el(edges: &[(u64, u64, f32)]) -> EdgeList {
    EdgeList::from_edges(edges.iter().map(|&(u, v, w)| WEdge::new(u, v, w)))
}

/// Per-lane gathered result, in comparable form: distance bits, parents,
/// and the lane's target answer/flags.
type LaneResult = (Vec<u32>, Vec<u64>, u32, u64, bool);

/// Run one batch under the deterministic scheduler and gather every lane.
fn batch_run(
    el: &EdgeList,
    n: u64,
    p: usize,
    specs: &[BatchSpec],
    opts: &OptConfig,
) -> Vec<LaneResult> {
    Machine::new(MachineConfig::with_ranks(p).deterministic(0))
        .run(|ctx| {
            let part = Block1D::new(n, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let (md, _) = batched_delta_stepping(ctx, &g, specs, opts);
            (0..specs.len())
                .map(|s| {
                    let sp = md.lane_paths(s).gather_to_all(ctx, g.part());
                    (
                        sp.dist.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                        sp.parent,
                        md.target_dist[s].to_bits(),
                        md.target_parent[s],
                        md.early_exit[s],
                    )
                })
                .collect::<Vec<_>>()
        })
        .results
        .pop()
        .expect("at least one rank")
}

/// Deterministic full-lane roots for an n-vertex graph.
fn roots_for(n: u64, width: usize) -> Vec<u64> {
    (0..width as u64)
        .map(|i| (i * n / width as u64).min(n - 1))
        .collect()
}

fn opt_matrix() -> Vec<(&'static str, OptConfig)> {
    vec![
        ("all_on", OptConfig::all_on()),
        ("all_off", OptConfig::all_off()),
        ("no_coalescing", OptConfig::all_on().without_coalescing()),
        ("no_dedup", OptConfig::all_on().without_dedup()),
        ("no_compression", OptConfig::all_on().without_compression()),
    ]
}

#[test]
fn batched_lanes_bitwise_equal_width_one_runs() {
    for (family, n, edges) in adversarial::all(0xBA7C) {
        let el = to_el(&edges);
        for (opt_name, opts) in opt_matrix() {
            let opts = opts.with_delta(0.25);
            let roots = roots_for(n, 4);
            let specs: Vec<BatchSpec> = roots.iter().map(|&r| BatchSpec::full(r)).collect();
            let batched = batch_run(&el, n, 3, &specs, &opts);
            for (s, &root) in roots.iter().enumerate() {
                let solo = batch_run(&el, n, 3, &[BatchSpec::full(root)], &opts);
                assert_eq!(
                    batched[s].0, solo[0].0,
                    "{family}/{opt_name}: lane {s} distances differ from solo run"
                );
                assert_eq!(
                    batched[s].1, solo[0].1,
                    "{family}/{opt_name}: lane {s} parents differ from solo run"
                );
            }
        }
    }
}

#[test]
fn width_sweep_is_invariant() {
    // the same source inside batches of width 1, 2, 4, 8: identical bits
    for (family, n, edges) in adversarial::all(0x51DE) {
        let el = to_el(&edges);
        let opts = OptConfig::all_on().with_delta(0.25);
        let probe = n / 2;
        let reference = batch_run(&el, n, 3, &[BatchSpec::full(probe)], &opts);
        for width in [2usize, 4, 8] {
            let mut roots = roots_for(n, width);
            roots[0] = probe; // keep the probe in lane 0 at every width
            let specs: Vec<BatchSpec> = roots.iter().map(|&r| BatchSpec::full(r)).collect();
            let wide = batch_run(&el, n, 3, &specs, &opts);
            assert_eq!(
                wide[0].0, reference[0].0,
                "{family}: width {width} changed lane-0 distances"
            );
            assert_eq!(
                wide[0].1, reference[0].1,
                "{family}: width {width} changed lane-0 parents"
            );
        }
    }
}

#[test]
fn p2p_early_exit_answers_equal_full_run() {
    let mut any_early = false;
    for (family, n, edges) in adversarial::all(0xEE17) {
        let el = to_el(&edges);
        let opts = OptConfig::all_on().with_delta(0.25);
        let source = 0u64;
        let targets = [1u64, n / 3, n - 1];
        let full = batch_run(&el, n, 3, &[BatchSpec::full(source)], &opts);
        let specs: Vec<BatchSpec> = targets.iter().map(|&t| BatchSpec::p2p(source, t)).collect();
        for (i, lane) in batch_run(&el, n, 3, &specs, &opts).iter().enumerate() {
            let t = targets[i] as usize;
            assert_eq!(
                lane.2, full[0].0[t],
                "{family}: p2p({source},{t}) distance differs from full run"
            );
            if f32::from_bits(lane.2).is_finite() {
                assert_eq!(
                    lane.3, full[0].1[t],
                    "{family}: p2p({source},{t}) parent differs from full run"
                );
            }
            any_early |= lane.4;
        }
    }
    assert!(any_early, "no p2p lane ever retired early across the suite");
}

#[test]
fn landmark_bounded_lanes_stay_exact() {
    // a finite triangle-inequality bound prunes relaxations but must not
    // change the target's answer relative to the unbounded lane
    for (family, n, edges) in adversarial::all(0x10B0) {
        let el = to_el(&edges);
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let opts = OptConfig::all_on().with_delta(0.25);
        let (s, t) = (0u64, n - 1);
        let unbounded = batch_run(&el, n, 3, &[BatchSpec::p2p(s, t)], &opts);
        // exact-distance bound: the tightest sound bound there is
        let true_d = dijkstra(&csr, s).dist[t as usize];
        if !true_d.is_finite() {
            continue;
        }
        let bound = true_d * (1.0 + 1e-5);
        let bounded = batch_run(&el, n, 3, &[BatchSpec::p2p(s, t).with_bound(bound)], &opts);
        assert_eq!(
            bounded[0].2, unbounded[0].2,
            "{family}: bound changed the p2p distance"
        );
        assert_eq!(
            bounded[0].3, unbounded[0].3,
            "{family}: bound changed the p2p parent"
        );
    }
}

#[test]
fn cache_hit_equals_recompute_bitwise() {
    for (family, n, edges) in adversarial::all(0xCAC4) {
        let el = to_el(&edges);
        let (s, t) = (0u64, n - 1);
        let p = 3;
        // fresh p2p first, then cache the full tree, then hit it
        let stream = vec![Query::p2p(s, t), Query::full(s), Query::p2p(s, t)];
        let outcomes = Machine::new(MachineConfig::with_ranks(p).deterministic(0))
            .run(|ctx| {
                let part = Block1D::new(n, p);
                let m = el.len();
                let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
                let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
                let g = assemble_local_graph(ctx, mine.into_iter(), part);
                let cfg = ServeConfig {
                    batch_width: 1, // each query its own window
                    opts: OptConfig::all_on().with_delta(0.25),
                    num_landmarks: 0,
                    lru_capacity: 2,
                    keep_paths: false,
                    deadline_s: f64::INFINITY,
                };
                let mut engine = QueryEngine::new(ctx, &g, cfg);
                engine
                    .serve(ctx, &stream)
                    .iter()
                    .map(|o| (o.dist.map(|d| d.to_bits()), o.parent, o.cache_hit))
                    .collect::<Vec<_>>()
            })
            .results
            .pop()
            .expect("rank 0");
        // window 1 computes p2p(s,t) fresh; window 3 serves it from the
        // slice window 2 cached — both must carry identical bits
        assert!(
            !outcomes[0].2 && outcomes[2].2,
            "{family}: expected miss then hit"
        );
        assert_eq!(
            outcomes[0].0, outcomes[2].0,
            "{family}: hit distance differs"
        );
        assert_eq!(outcomes[0].1, outcomes[2].1, "{family}: hit parent differs");
    }
}

#[test]
fn batched_answers_match_dijkstra_on_adversarial_graphs() {
    // end-to-end correctness anchor (tolerance compare against f64-free
    // oracle), complementing the bitwise self-consistency above
    for (family, n, edges) in adversarial::all(0xD13A) {
        let el = to_el(&edges);
        let csr = Csr::from_edges(n as usize, &el, Directedness::Undirected);
        let opts = OptConfig::all_on().with_delta(0.25);
        let roots = roots_for(n, 4);
        let specs: Vec<BatchSpec> = roots.iter().map(|&r| BatchSpec::full(r)).collect();
        let batched = batch_run(&el, n, 3, &specs, &opts);
        for (s, &root) in roots.iter().enumerate() {
            let oracle = dijkstra(&csr, root);
            for v in 0..n as usize {
                let got = f32::from_bits(batched[s].0[v]);
                let want = oracle.dist[v];
                assert!(
                    (got.is_infinite() && want.is_infinite()) || (got - want).abs() <= 1e-4,
                    "{family}: root {root} vertex {v}: {got} vs {want}"
                );
            }
        }
    }
}
