//! F10 — BFS (kernel 2) vs SSSP (kernel 3) cost.
//!
//! The two companion record runs — 281T-edge BFS and 140T-edge SSSP — on
//! the same machine family differ by roughly the factor this experiment
//! measures: BFS has no weights, no buckets and one superstep per level,
//! while SSSP pays bucket discipline and re-relaxation. Reports harmonic-
//! mean TEPS for both kernels across scales on the same simulated machine.
//!
//! Overrides: `G500_MAX_SCALE` (16), `G500_RANKS` (8), `G500_ROOTS` (4).

use g500_bench::{banner, gteps, param, Table};
use graph500::{run_bfs_benchmark, run_sssp_benchmark, BenchmarkConfig};

fn main() {
    let max_scale = param("G500_MAX_SCALE", 16) as u32;
    let ranks = param("G500_RANKS", 8) as usize;
    let roots = param("G500_ROOTS", 4) as usize;
    banner("F10", "BFS vs SSSP", &[("ranks", ranks.to_string())]);

    let t = Table::new(&["scale", "kernel", "hmean_GTEPS", "ratio", "validated"]);
    for scale in (12..=max_scale).step_by(2) {
        let mut cfg = BenchmarkConfig::graph500(scale, ranks);
        cfg.num_roots = roots;
        let bfs = run_bfs_benchmark(&cfg);
        let sssp = run_sssp_benchmark(&cfg);
        let gb = bfs.teps.harmonic_mean;
        let gs = sssp.teps.harmonic_mean;
        t.row(&[
            scale.to_string(),
            "BFS (k2)".into(),
            gteps(gb),
            format!("{:.2}x", gb / gs),
            bfs.all_validated().to_string(),
        ]);
        t.row(&[
            scale.to_string(),
            "SSSP (k3)".into(),
            gteps(gs),
            "1.00x".into(),
            sssp.all_validated().to_string(),
        ]);
    }
    println!("\nexpected shape: BFS several-x faster than SSSP — matching the 281T-BFS vs 140T-SSSP pairing of the companion papers");
}
