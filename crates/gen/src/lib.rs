//! # g500-gen — synthetic graph generators
//!
//! The centerpiece is the [`KroneckerGenerator`]: the Graph500 specification's
//! R-MAT/Kronecker edge generator with vertex scrambling and uniform `[0,1)`
//! edge weights, implemented **counter-based** so that any block of edges can
//! be generated independently, in parallel, on any rank, with zero
//! communication — the property that let the paper's run materialise 140
//! trillion edges across 40 million cores without ever holding the edge list
//! in one place.
//!
//! [`simple`] adds deterministic toy generators (paths, grids, stars,
//! Erdős–Rényi, …) that tests and baselines use as ground-truth-friendly
//! inputs.
#![warn(missing_docs)]

pub mod kronecker;
pub mod rng;
pub mod simple;
pub mod weights;

pub use kronecker::{KroneckerGenerator, KroneckerParams};
pub use rng::CounterRng;
pub use weights::{reweight, WeightDist};
