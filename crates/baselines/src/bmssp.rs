//! BMSSP — bounded multi-source shortest paths (Duan, Mao, Mao, Shu, Yin;
//! arXiv:2504.17033), the first deterministic `o(m log n)` comparison-
//! addition SSSP algorithm.
//!
//! Structure of the implementation, mirroring the paper:
//!
//! 1. **Constant-degree transform** ([`transform`]): each vertex becomes a
//!    zero-weight directed cycle with one slot per incident arc, so every
//!    slot has in/out degree O(1). Applied adaptively — graphs whose max
//!    degree is already ≤ [`DEGREE_CAP`] run untransformed.
//! 2. **Recursion** `BMSSP(l, B, S)` ([`Solver::run`]): solves shortest
//!    paths from the source set `S` restricted to distances `< B`, either
//!    completely (returns `B' = B`) or up to a budget of `k·2^{lt}`
//!    settled vertices (returns a smaller frontier bound `B'`); the
//!    returned set `U` is complete below `B'`.
//! 3. **FindPivots** ([`Solver::find_pivots`]): `k` rounds of bounded
//!    Bellman-Ford from `S`, then a BFS forest over tight edges; only
//!    roots of trees with ≥ `k` vertices survive as pivots, shrinking the
//!    recursive source sets.
//! 4. **Partial-order pull structure** ([`crate::pull::PullStructure`]):
//!    feeds each recursive call a batch of smallest-key sources plus a
//!    strict separating bound.
//! 5. **Base case** (`l = 0`, [`Solver::base_case`]): truncated Dijkstra
//!    on the monotone [`RadixHeap`], settling at most `k + |S|` vertices.
//!
//! Documented deviations from the paper's pseudocode (all correctness-
//! preserving, see DESIGN.md "Baseline algorithms"):
//! * `pull` extends batches over whole key tie-groups so its separating
//!   bound is strict; the base case therefore accepts multi-vertex `S`
//!   (the paper's is singleton).
//! * Relaxation uses `≤` when deciding to (re-)insert a vertex into the
//!   pull structure — load-bearing: a vertex whose distance was written
//!   by a truncated base case but not settled there is re-discovered at
//!   the parent level through the tight (equal) relaxation — but strict
//!   `<` for distance/parent commits, so zero-weight cycles can never
//!   produce a parent loop.
//!
//! Distances are bitwise identical to binary-heap Dijkstra: every
//! distance is the min over the same `f32` relaxation candidates
//! (zero-weight transform arcs add `+0.0`, a bitwise no-op on
//! non-negative values), and value-equal non-negative floats are
//! bit-equal.

use crate::pull::PullStructure;
use crate::radix_heap::{weight_to_key, RadixHeap};
use g500_graph::{Csr, ShortestPaths, VertexId, Weight, INF_WEIGHT, NO_PARENT};
use std::collections::{HashSet, VecDeque};

/// Degree threshold above which the constant-degree transform kicks in.
pub const DEGREE_CAP: usize = 16;

/// The transformed constant-degree graph: per-incident-arc slots joined by
/// zero-weight cycles, in flat CSR form, plus the slot ↔ original-vertex
/// maps needed to read answers back out.
struct Transformed {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<Weight>,
    /// Original vertex owning each slot.
    orig_of: Vec<u32>,
    /// First slot of each original vertex.
    slot_base: Vec<u32>,
}

impl Transformed {
    fn num_slots(&self) -> usize {
        self.orig_of.len()
    }

    #[inline]
    fn arcs_of(&self, u: usize) -> (&[u32], &[Weight]) {
        let (lo, hi) = (self.offsets[u], self.offsets[u + 1]);
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }
}

/// Identity "transform" for graphs already within the degree cap: slots
/// are the vertices themselves.
fn identity(graph: &Csr) -> Transformed {
    let n = graph.num_vertices();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut targets = Vec::with_capacity(graph.num_arcs());
    let mut weights = Vec::with_capacity(graph.num_arcs());
    offsets.push(0);
    for u in 0..n {
        targets.extend(graph.neighbors(u).iter().map(|&v| v as u32));
        weights.extend_from_slice(graph.edge_weights(u));
        offsets.push(targets.len());
    }
    Transformed {
        offsets,
        targets,
        weights,
        orig_of: (0..n as u32).collect(),
        slot_base: (0..n as u32).collect(),
    }
}

/// The constant-degree transform: vertex `u` with `d` incident arcs
/// becomes `max(1, d)` slots on a zero-weight directed cycle; each in-arc
/// enters its own slot and each out-arc leaves from its own slot, so every
/// slot touches ≤ 1 real arc + 2 cycle arcs. Distances at every slot of
/// `u` equal the original distance of `u`.
fn transform(graph: &Csr) -> Transformed {
    let n = graph.num_vertices();
    let mut in_deg = vec![0usize; n];
    for u in 0..n {
        for &v in graph.neighbors(u) {
            in_deg[v as usize] += 1;
        }
    }
    let mut slot_base = Vec::with_capacity(n);
    let mut orig_of = Vec::new();
    for (u, &din) in in_deg.iter().enumerate() {
        slot_base.push(orig_of.len() as u32);
        let slots = (din + graph.degree(u)).max(1);
        orig_of.extend(std::iter::repeat_n(u as u32, slots));
    }
    let n_slots = orig_of.len();

    // Out-arc j of u leaves from slot `base + in_deg[u] + j`; the i-th arc
    // to arrive at v enters slot `base(v) + i` (tracked by `in_seen`).
    let mut adj: Vec<Vec<(u32, Weight)>> = vec![Vec::new(); n_slots];
    let mut in_seen = vec![0u32; n];
    for u in 0..n {
        let vs = graph.neighbors(u);
        let ws = graph.edge_weights(u);
        for (j, (&v, &w)) in vs.iter().zip(ws).enumerate() {
            let from = slot_base[u] as usize + in_deg[u] + j;
            let to = slot_base[v as usize] + in_seen[v as usize];
            in_seen[v as usize] += 1;
            adj[from].push((to, w));
        }
    }
    for u in 0..n {
        let base = slot_base[u] as usize;
        let slots = (in_deg[u] + graph.degree(u)).max(1);
        if slots > 1 {
            for i in 0..slots {
                let next = base as u32 + ((i + 1) % slots) as u32;
                adj[base + i].push((next, 0.0));
            }
        }
    }

    let mut offsets = Vec::with_capacity(n_slots + 1);
    let mut targets = Vec::new();
    let mut weights = Vec::new();
    offsets.push(0);
    for slot in adj {
        for (v, w) in slot {
            targets.push(v);
            weights.push(w);
        }
        offsets.push(targets.len());
    }
    Transformed {
        offsets,
        targets,
        weights,
        orig_of,
        slot_base,
    }
}

/// Recursion state over one transformed graph.
struct Solver {
    g: Transformed,
    /// Tentative distance per slot.
    dhat: Vec<Weight>,
    /// Best distance per *original* vertex ever committed through a real
    /// (inter-vertex) arc; pairs with `parent_orig`.
    best_orig: Vec<Weight>,
    parent_orig: Vec<u64>,
    /// Paper parameter `k = ⌊log^{1/3} n⌋`.
    k: usize,
    /// Paper parameter `t = ⌊log^{2/3} n⌋`.
    t: usize,
    /// Slot is *complete*: its distance is final and its out-arcs have
    /// been relaxed with that final value (set at base-case settle time).
    /// Complete slots are never re-inserted into any pull structure or
    /// heap — without this, tight (equal-key) relaxations through the
    /// transform's zero-weight cycles reschedule complete slots over and
    /// over, and the rework compounds per level into quadratic blowup.
    settled: Vec<bool>,
    /// Epoch-stamped scratch for [`Self::find_pivots`] (one slot each):
    /// membership marks replace per-call hash sets. `find_pivots` never
    /// recurses, so one shared scratch is safe; epochs make clears O(1).
    fp_w_mark: Vec<u32>,
    fp_next_mark: Vec<u32>,
    fp_root_mark: Vec<u32>,
    fp_epoch: u32,
    fp_round_epoch: u32,
    fp_root_epoch: u32,
}

impl Solver {
    /// Relax arc `(u, v, w)`. Commits distance (and, across a real arc,
    /// parent) on strict improvement; returns the candidate key whenever
    /// `d̂[u] + w ≤ d̂[v]` so the caller can (re-)insert `v` — the paper's
    /// `≤` rule.
    #[inline]
    fn try_relax(&mut self, u: usize, v: usize, w: Weight) -> Option<u64> {
        let nd = self.dhat[u] + w;
        if nd > self.dhat[v] {
            return None;
        }
        if nd < self.dhat[v] {
            self.dhat[v] = nd;
            // A complete slot's distance is supposed to be final; if a
            // strict improvement lands anyway, make it schedulable again
            // rather than silently freezing a stale value.
            self.settled[v] = false;
        } else if self.settled[v] {
            // Tight relaxation into a complete slot: its value is final
            // and its out-arcs were already relaxed at settle time, so
            // there is nothing to reschedule.
            return None;
        }
        let (ou, ov) = (self.g.orig_of[u], self.g.orig_of[v]);
        if ou != ov && nd < self.best_orig[ov as usize] {
            self.best_orig[ov as usize] = nd;
            self.parent_orig[ov as usize] = ou as u64;
        }
        Some(weight_to_key(nd))
    }

    /// FindPivots (paper Algorithm 1): `k` rounds of Bellman-Ford from
    /// `S` bounded by `B`, collecting the relaxed set `W`; early-return
    /// `(S, W)` when `|W| > k·|S|`, else keep as pivots only the `S`-roots
    /// of tight-edge BFS trees spanning ≥ `k` vertices.
    fn find_pivots(&mut self, bkey: u64, s: &[u32]) -> (Vec<u32>, Vec<u32>) {
        self.fp_epoch += 1;
        let ep = self.fp_epoch;
        let mut w_all: Vec<u32> = s.to_vec();
        for &x in s {
            self.fp_w_mark[x as usize] = ep;
        }
        let mut w_prev: Vec<u32> = s.to_vec();
        for _ in 0..self.k {
            self.fp_round_epoch += 1;
            let rep = self.fp_round_epoch;
            let mut w_next: Vec<u32> = Vec::new();
            for &wu in &w_prev {
                let u = wu as usize;
                let (lo, hi) = (self.g.offsets[u], self.g.offsets[u + 1]);
                for a in lo..hi {
                    let (v, w) = (self.g.targets[a], self.g.weights[a]);
                    if let Some(key) = self.try_relax(u, v as usize, w) {
                        if key < bkey && self.fp_next_mark[v as usize] != rep {
                            self.fp_next_mark[v as usize] = rep;
                            w_next.push(v);
                        }
                    }
                }
            }
            for &v in &w_next {
                if self.fp_w_mark[v as usize] != ep {
                    self.fp_w_mark[v as usize] = ep;
                    w_all.push(v);
                }
            }
            if w_all.len() > self.k * s.len() {
                return (s.to_vec(), w_all);
            }
            w_prev = w_next;
        }

        // Tight-edge forest: every vertex gets in-degree ≤ 1 over arcs with
        // d̂[v] == d̂[u] + w inside W — *including* S vertices, which may be
        // claimed as children of an earlier root's tree. (Seeding every S
        // vertex as its own root would shatter a tight chain that lies
        // wholly inside S into singleton trees, no tree would reach size
        // `k`, and the chain's root would never be selected as a pivot —
        // breaking the pivot-coverage lemma.) Roots are processed in S
        // order with full BFS exhaustion per root; first assignment wins,
        // which keeps the forest acyclic through zero-weight tight cycles.
        self.fp_root_epoch += 1;
        let rep = self.fp_root_epoch;
        let mut tree_size: Vec<usize> = vec![0; s.len()];
        let mut queue: VecDeque<u32> = VecDeque::new();
        for (si, &start) in s.iter().enumerate() {
            if self.fp_root_mark[start as usize] == rep {
                continue; // already a child in an earlier root's tree
            }
            self.fp_root_mark[start as usize] = rep;
            tree_size[si] = 1;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                let (vs, ws) = self.g.arcs_of(u as usize);
                for (&v, &w) in vs.iter().zip(ws) {
                    if self.fp_w_mark[v as usize] == ep
                        && self.fp_root_mark[v as usize] != rep
                        && (self.dhat[u as usize] + w).to_bits() == self.dhat[v as usize].to_bits()
                    {
                        self.fp_root_mark[v as usize] = rep;
                        tree_size[si] += 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        let pivots: Vec<u32> = s
            .iter()
            .enumerate()
            .filter(|&(si, _)| tree_size[si] >= self.k)
            .map(|(_, &x)| x)
            .collect();
        (pivots, w_all)
    }

    /// Base case (paper Algorithm 2, generalized to multi-source `S`):
    /// truncated Dijkstra on the monotone radix heap, settling at most
    /// `k + |S|` vertices below `B` — extended through the trailing key
    /// tie-group, so with `U` the settled set the returned bound `B'`
    /// satisfies `max settled key < B'`: either `B` itself (heap drained:
    /// complete) or the smallest fresh key left in the heap. The strict
    /// gap is what guarantees progress at the parent level even on
    /// zero-weight tie plateaus (the paper's singleton variant with
    /// `U = {u : d̂[u] < max d̂}` returns an empty `U` there, and the
    /// parent would re-prepend the same source forever).
    ///
    /// Discarding the peeked boundary entry is safe: every vertex with
    /// true distance `< B'` was settled before it, and its own key will
    /// be regenerated by the parent's `≤`-relaxation out of `U`.
    fn base_case(&mut self, bkey: u64, s: &[u32]) -> (u64, Vec<u32>) {
        let floor = s
            .iter()
            .map(|&x| weight_to_key(self.dhat[x as usize]))
            .min()
            .unwrap_or(0);
        let mut heap: RadixHeap<u32> = RadixHeap::with_floor(floor);
        for &x in s {
            heap.push(weight_to_key(self.dhat[x as usize]), x);
        }
        let limit = self.k + s.len();
        let mut settled: Vec<u32> = Vec::new();
        let mut last_key = 0u64;
        let mut bound = bkey;
        while let Some((key, u)) = heap.pop_min() {
            if key > weight_to_key(self.dhat[u as usize]) || self.settled[u as usize] {
                continue; // stale, duplicate, or already complete elsewhere
            }
            if settled.len() >= limit && key > last_key {
                bound = key;
                break;
            }
            self.settled[u as usize] = true;
            settled.push(u);
            last_key = key;
            let (lo, hi) = (self.g.offsets[u as usize], self.g.offsets[u as usize + 1]);
            for a in lo..hi {
                let (v, w) = (self.g.targets[a], self.g.weights[a]);
                if let Some(k) = self.try_relax(u as usize, v as usize, w) {
                    if k < bkey {
                        heap.push(k, v);
                    }
                }
            }
        }
        (bound, settled)
    }

    /// BMSSP(l, B, S) (paper Algorithm 3). Returns `(B', U)`: `U` is the
    /// set of vertices settled with final distance `< B'`; `B' = B` iff
    /// the call ran to completion within its `k·2^{lt}` budget.
    fn run(&mut self, l: usize, bkey: u64, s: Vec<u32>) -> (u64, Vec<u32>) {
        if l == 0 {
            return self.base_case(bkey, &s);
        }
        let (pivots, w_all) = self.find_pivots(bkey, &s);
        let m = 1usize << ((l - 1) * self.t).min(40);
        let mut d = PullStructure::new(m, bkey);
        for &p in &pivots {
            if !self.settled[p as usize] {
                d.insert(p, weight_to_key(self.dhat[p as usize]));
            }
        }
        let budget = (self.k as u64).saturating_mul(1u64 << ((l * self.t).min(62)));
        let mut u_all: Vec<u32> = Vec::new();
        let mut u_set: HashSet<u32> = HashSet::new();
        let mut last_sep = bkey;
        while (u_all.len() as u64) < budget && !d.is_empty() {
            let (s_i, b_i) = d.pull();
            let (b_sep, u_i) = self.run(l - 1, b_i, s_i.clone());
            last_sep = b_sep;
            for &u in &u_i {
                if u_set.insert(u) {
                    u_all.push(u);
                }
            }
            // Relax out of the completed set; ≥ B_i keys re-enter D, keys
            // in [B', B_i) were produced below the pulled range and are
            // batch-prepended together with the unfinished sources.
            let mut prepend: Vec<(u32, u64)> = Vec::new();
            for &uu in &u_i {
                let u = uu as usize;
                let (lo, hi) = (self.g.offsets[u], self.g.offsets[u + 1]);
                for a in lo..hi {
                    let (v, w) = (self.g.targets[a], self.g.weights[a]);
                    if let Some(key) = self.try_relax(u, v as usize, w) {
                        if key >= b_i && key < bkey {
                            d.insert(v, key);
                        } else if key >= b_sep && key < b_i {
                            prepend.push((v, key));
                        }
                        // keys < b_sep belong to vertices the recursive
                        // call already completed: nothing to re-insert
                    }
                }
            }
            for &x in &s_i {
                let key = weight_to_key(self.dhat[x as usize]);
                if key >= b_sep && key < b_i && !self.settled[x as usize] {
                    prepend.push((x, key));
                }
            }
            d.batch_prepend(prepend);
        }
        let bprime = if d.is_empty() { bkey } else { last_sep };
        for &x in &w_all {
            if weight_to_key(self.dhat[x as usize]) < bprime && u_set.insert(x) {
                u_all.push(x);
            }
        }
        (bprime, u_all)
    }
}

/// Exact single-source shortest paths via the BMSSP recursion; same
/// `(dist, parent)` contract as [`crate::dijkstra`], distances bitwise
/// equal to it.
pub fn bmssp(graph: &Csr, root: VertexId) -> ShortestPaths {
    let n = graph.num_vertices();
    let mut sp = ShortestPaths::with_root(n, root);
    if n == 0 {
        return sp;
    }
    let max_deg = (0..n).map(|u| graph.degree(u)).max().unwrap_or(0);
    let g = if max_deg <= DEGREE_CAP {
        identity(graph)
    } else {
        transform(graph)
    };
    let n_slots = g.num_slots();
    let lg = ((n_slots.max(2)) as f64).log2();
    let k = (lg.powf(1.0 / 3.0).floor() as usize).max(1);
    let t = (lg.powf(2.0 / 3.0).floor() as usize).max(1);
    let top_l = ((lg / t as f64).ceil() as usize).max(1);

    let root_slot = g.slot_base[root as usize];
    let mut solver = Solver {
        dhat: vec![INF_WEIGHT; n_slots],
        best_orig: vec![INF_WEIGHT; n],
        parent_orig: vec![NO_PARENT; n],
        g,
        k,
        t,
        settled: vec![false; n_slots],
        fp_w_mark: vec![0; n_slots],
        fp_next_mark: vec![0; n_slots],
        fp_root_mark: vec![0; n_slots],
        fp_epoch: 0,
        fp_round_epoch: 0,
        fp_root_epoch: 0,
    };
    solver.dhat[root_slot as usize] = 0.0;
    solver.best_orig[root as usize] = 0.0;
    let (_bound, _u) = solver.run(top_l, crate::radix_heap::INF_KEY, vec![root_slot]);

    for v in 0..n {
        if v as u64 == root {
            continue;
        }
        sp.dist[v] = solver.best_orig[v];
        sp.parent[v] = solver.parent_orig[v];
        debug_assert_eq!(
            solver.best_orig[v].to_bits(),
            solver.dhat[solver.g.slot_base[v] as usize].to_bits(),
            "slot-0 and per-vertex distances disagree at {v}"
        );
    }
    sp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use g500_graph::{Directedness, EdgeList, WEdge};

    fn csr(edges: &[(u64, u64, f32)], n: usize) -> Csr {
        let el = EdgeList::from_edges(edges.iter().map(|&(u, v, w)| WEdge::new(u, v, w)));
        Csr::from_edges(n, &el, Directedness::Undirected)
    }

    fn assert_bitwise_eq(g: &Csr, root: u64, ctx: &str) {
        let a = dijkstra(g, root);
        let b = bmssp(g, root);
        for v in 0..g.num_vertices() {
            assert_eq!(
                a.dist[v].to_bits(),
                b.dist[v].to_bits(),
                "{ctx}: vertex {v} dijkstra={} bmssp={}",
                a.dist[v],
                b.dist[v]
            );
        }
    }

    #[test]
    fn tiny_path_and_unreachable() {
        let g = csr(&[(0, 1, 1.5), (1, 2, 2.5)], 5);
        let sp = bmssp(&g, 0);
        assert_eq!(sp.dist[..3], [0.0, 1.5, 4.0]);
        assert_eq!(sp.dist[3], INF_WEIGHT);
        assert_eq!(sp.parent[2], 1);
        assert_eq!(sp.parent[3], NO_PARENT);
    }

    #[test]
    fn zero_weight_edges_no_parent_cycle() {
        let g = csr(&[(0, 1, 0.0), (1, 2, 0.0), (2, 0, 0.0), (2, 3, 1.0)], 4);
        let sp = bmssp(&g, 0);
        assert_eq!(sp.dist, vec![0.0, 0.0, 0.0, 1.0]);
        // walk parents from every vertex; must reach the root
        for mut v in 0..4usize {
            for _ in 0..=4 {
                if v == 0 {
                    break;
                }
                v = sp.parent[v] as usize;
            }
            assert_eq!(v, 0, "parent chain does not reach root");
        }
    }

    #[test]
    fn high_degree_star_takes_transform_path() {
        // star center has degree 40 > DEGREE_CAP: exercises the
        // constant-degree transform
        let mut edges = Vec::new();
        for leaf in 1..41u64 {
            edges.push((0, leaf, leaf as f32 * 0.25));
        }
        let g = csr(&edges, 41);
        assert_bitwise_eq(&g, 0, "star-40");
        let sp = bmssp(&g, 0);
        assert_eq!(sp.dist[40], 10.0);
        assert_eq!(sp.parent[40], 0);
    }

    #[test]
    fn random_graphs_match_dijkstra_bitwise() {
        for seed in 0..8 {
            let el = g500_gen::simple::erdos_renyi(120, 700, seed);
            let g = Csr::from_edges(120, &el, Directedness::Undirected);
            assert_bitwise_eq(&g, seed % 120, &format!("er seed {seed}"));
        }
    }

    #[test]
    fn sparse_long_paths_match() {
        let el = g500_gen::simple::path(400, 1.0);
        let g = Csr::from_edges(400, &el, Directedness::Undirected);
        assert_bitwise_eq(&g, 0, "path-400");
        let el = g500_gen::simple::grid2d(17, 13);
        let g = Csr::from_edges(17 * 13, &el, Directedness::Undirected);
        assert_bitwise_eq(&g, 5, "grid 17x13");
    }

    #[test]
    fn parent_edges_are_tight() {
        let el = g500_gen::simple::erdos_renyi(80, 400, 99);
        let g = Csr::from_edges(80, &el, Directedness::Undirected);
        let sp = bmssp(&g, 0);
        for v in 1..80 {
            if sp.dist[v].is_finite() {
                let p = sp.parent[v] as usize;
                let tight = g
                    .arcs(p)
                    .any(|(t, w)| t == v as u64 && sp.dist[p] + w == sp.dist[v]);
                assert!(tight, "no tight tree edge {p}->{v}");
            }
        }
    }

    #[test]
    fn single_vertex_graph() {
        let g = csr(&[], 1);
        let sp = bmssp(&g, 0);
        assert_eq!(sp.dist, vec![0.0]);
        assert_eq!(sp.parent, vec![0]);
    }
}
