//! Failure injection: the runtime must fail *stop*, not hang or lie.
//!
//! A 40-million-core job dies fast or corrupts results slowly; the
//! simulated machine mirrors the fail-stop discipline (a rank fault aborts
//! the job, waiters included) and the validator must catch every class of
//! corrupted kernel output.

use graph500::gen::simple;
use graph500::graph::{EdgeList, INF_WEIGHT, NO_PARENT};
use graph500::simnet::{Machine, MachineConfig};
use graph500::validate::{validate_sssp, SsspResult};

// ---------- runtime fail-stop ----------

#[test]
#[should_panic(expected = "panicked")]
fn fault_on_one_rank_aborts_waiters() {
    Machine::new(MachineConfig::with_ranks(4)).run(|ctx| {
        if ctx.rank() == 2 {
            panic!("injected fault on rank 2");
        }
        // everyone else waits on a collective rank 2 will never join
        ctx.barrier();
    });
}

#[test]
#[should_panic(expected = "panicked")]
fn fault_during_alltoall_aborts() {
    Machine::new(MachineConfig::with_ranks(3)).run(|ctx| {
        if ctx.rank() == 0 {
            panic!("injected fault before exchange");
        }
        let out: Vec<Vec<u64>> = (0..ctx.size()).map(|d| vec![d as u64]).collect();
        ctx.alltoallv(out);
    });
}

#[test]
fn healthy_job_after_failed_job() {
    // a failed Machine::run must not poison the next one
    let bad = std::panic::catch_unwind(|| {
        Machine::new(MachineConfig::with_ranks(2)).run(|ctx| {
            if ctx.rank() == 1 {
                panic!("boom");
            }
            ctx.barrier();
        });
    });
    assert!(bad.is_err());
    let rep = Machine::new(MachineConfig::with_ranks(2)).run(|ctx| ctx.allreduce_sum(1));
    assert_eq!(rep.results, vec![2, 2]);
}

#[test]
#[should_panic(expected = "does not decode")]
fn type_confusion_is_detected() {
    // sender ships u32s, receiver expects (u64, f32) records: the payload
    // length cannot divide evenly → decode failure, loudly
    Machine::new(MachineConfig::with_ranks(2)).run(|ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 5, &[7u32]);
        } else {
            let _: Vec<(u64, f32)> = ctx.recv(0, 5);
        }
    });
}

// ---------- deterministic-mode fail-stop ----------

#[test]
#[should_panic(expected = "panicked")]
fn det_fault_on_one_rank_aborts_waiters() {
    // the serialized scheduler must hand the token past the dead rank and
    // abort the waiters instead of spinning on them forever
    Machine::new(MachineConfig::with_ranks(4).deterministic(0)).run(|ctx| {
        if ctx.rank() == 2 {
            panic!("injected fault on rank 2");
        }
        ctx.barrier();
    });
}

#[test]
#[should_panic(expected = "panicked")]
fn det_fault_under_fuzzed_schedule_aborts() {
    // same, under a non-canonical (preempting) schedule
    Machine::new(MachineConfig::with_ranks(4).deterministic(0xBAD)).run(|ctx| {
        if ctx.rank() == 1 {
            panic!("injected fault before exchange");
        }
        let out: Vec<Vec<u64>> = (0..ctx.size()).map(|d| vec![d as u64]).collect();
        ctx.alltoallv(out);
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn det_mismatched_recv_is_reported_as_deadlock() {
    // rank 0 waits for a message rank 1 never sends: with every rank
    // blocked or done, the scheduler must name the deadlock rather than
    // hang (the threads-mode watchdog would abort too, but without the
    // blocked-on diagnosis)
    Machine::new(MachineConfig::with_ranks(2).deterministic(0)).run(|ctx| {
        if ctx.rank() == 0 {
            let _: Vec<u64> = ctx.recv(1, 9);
        }
    });
}

#[test]
#[should_panic(expected = "orphan")]
fn det_misrouted_message_is_caught() {
    // rank 0 sends rank 1 a message nobody receives: debug-mode orphan
    // detection fails the job at exit instead of dropping it silently
    Machine::new(MachineConfig::with_ranks(2).deterministic(0)).run(|ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 3, &[1u64]);
        }
    });
}

#[test]
fn det_healthy_job_after_failed_job() {
    let bad = std::panic::catch_unwind(|| {
        Machine::new(MachineConfig::with_ranks(2).deterministic(7)).run(|ctx| {
            if ctx.rank() == 1 {
                panic!("boom");
            }
            ctx.barrier();
        });
    });
    assert!(bad.is_err());
    let rep =
        Machine::new(MachineConfig::with_ranks(2).deterministic(7)).run(|ctx| ctx.allreduce_sum(1));
    assert_eq!(rep.results, vec![2, 2]);
}

// ---------- validator catches corrupted kernel output ----------

fn good_result() -> (EdgeList, SsspResult) {
    let el = simple::path(5, 0.5);
    (
        el,
        SsspResult {
            root: 0,
            dist: vec![0.0, 0.5, 1.0, 1.5, 2.0],
            parent: vec![0, 0, 1, 2, 3],
        },
    )
}

#[test]
fn pristine_result_passes() {
    let (el, res) = good_result();
    assert!(validate_sssp(5, &el, &res).ok);
}

#[test]
fn corruption_too_short_distance() {
    let (el, mut res) = good_result();
    res.dist[3] = 0.6; // shorter than any real path
    assert!(!validate_sssp(5, &el, &res).ok);
}

#[test]
fn corruption_too_long_distance() {
    let (el, mut res) = good_result();
    res.dist[3] = 2.5;
    res.dist[4] = 3.0;
    assert!(!validate_sssp(5, &el, &res).ok);
}

#[test]
fn corruption_false_unreachability() {
    let (el, mut res) = good_result();
    res.dist[4] = INF_WEIGHT;
    res.parent[4] = NO_PARENT;
    assert!(!validate_sssp(5, &el, &res).ok);
}

#[test]
fn corruption_parent_loop() {
    let (el, mut res) = good_result();
    res.parent[3] = 4;
    res.parent[4] = 3;
    assert!(!validate_sssp(5, &el, &res).ok);
}

#[test]
fn corruption_orphan_parent() {
    let (el, mut res) = good_result();
    res.parent[2] = NO_PARENT; // reached but parentless
    assert!(!validate_sssp(5, &el, &res).ok);
}

#[test]
fn corruption_nonexistent_tree_edge() {
    let (el, mut res) = good_result();
    res.parent[4] = 0; // no edge 0-4 in a path
    res.dist[4] = 0.5;
    assert!(!validate_sssp(5, &el, &res).ok);
}

#[test]
fn every_single_bit_flip_class_is_caught() {
    // systematic: corrupt each vertex's distance upward and downward and
    // require rejection (excluding no-ops)
    let (el, res) = good_result();
    for v in 1..5 {
        for delta in [-0.3f32, 0.3] {
            let mut bad = res.clone();
            bad.dist[v] += delta;
            let rep = validate_sssp(5, &el, &bad);
            assert!(!rep.ok, "undetected corruption at {v} delta {delta}");
        }
    }
}
