//! Deterministic seeded scheduling of rank execution.
//!
//! In [`SchedMode::Threads`] the machine runs one free OS thread per rank and
//! delivery interleavings are whatever the host scheduler produces. Results
//! are still *value*-deterministic (receives match on `(src, tag)` and each
//! stream is FIFO), but execution order is not replayable, a lost message
//! hangs until the watchdog timeout, and nothing checks that every envelope
//! was consumed.
//!
//! [`SchedMode::Deterministic`] serializes the job: exactly one rank runs at
//! a time, holding an execution token that is handed off at every blocking
//! point (a receive that cannot be satisfied yet, a seeded preemption on
//! send, or rank completion). The next rank is always the *ready* rank with
//! the minimum `(virtual_time, tie_break)` key, where `tie_break` is the rank
//! id for seed 0 (the canonical schedule) or a seeded hash for fuzzing.
//! Every envelope is stamped with a global sequence number at deposit time,
//! so the delivery order is totally ordered by `(virtual_time, src, tag,
//! seq)`: receives take the lowest-seq matching envelope, and within one
//! `(src, tag)` stream sequence order equals virtual-arrival order because
//! sender clocks are monotone. The same seed therefore replays the exact
//! same schedule — byte-identical `NetStats`, superstep counts, and distance
//! vectors — while different seeds explore different legal interleavings.
//!
//! The serialized scheduler also sees the whole job state, which buys two
//! checks the threaded mode cannot do:
//!
//! * **Deadlock detection** — if no rank is runnable and not all are done,
//!   the job aborts immediately with the full wait-for list instead of
//!   hanging.
//! * **Orphan detection** — at teardown, envelopes that were delivered but
//!   never received (e.g. a message routed to the wrong rank) are reported
//!   (see `Machine::run`, gated on `MachineConfig::debug_checks`).
//!
//! Fault injection composes with both modes without touching this module:
//! the reliable transport ([`crate::transport`]) runs its retransmit
//! protocol synchronously inside the send, charging timeouts to the
//! sender's virtual clock before the (single, lossless) envelope is
//! deposited. The scheduler only ever sees final arrival times, so the
//! same `(sched_seed, fault_seed)` pair replays byte-identically, and
//! fault schedules are identical under [`SchedMode::Threads`] and
//! [`SchedMode::Deterministic`].

use crate::rank::{Envelope, Tag};
use std::sync::{Condvar, Mutex};

/// How the machine schedules rank execution and message delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedMode {
    /// One free-running OS thread per rank (the historical default).
    Threads,
    /// Serialized seeded execution: replayable schedules, deadlock and
    /// orphan detection, and seeded delivery-order fuzzing. Seed 0 is the
    /// canonical schedule (lowest virtual time first, rank id tie-break);
    /// other seeds permute tie-breaks, preemption points, and the orders
    /// returned by `RankCtx::delivery_order`.
    Deterministic {
        /// Schedule seed. Same seed ⇒ byte-identical replay.
        seed: u64,
    },
}

impl SchedMode {
    /// True if this is a deterministic mode.
    pub fn is_deterministic(&self) -> bool {
        matches!(self, SchedMode::Deterministic { .. })
    }
}

/// SplitMix64 — the tie-break / permutation hash used throughout the
/// deterministic scheduler. Public within the crate so `RankCtx` can derive
/// per-rank permutation streams from the same generator.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Status {
    /// Runnable: may be granted the execution token.
    Ready,
    /// Parked in a receive that no deposited envelope matches yet.
    Blocked { src: usize, tag: Tag },
    /// The rank's closure returned.
    Done,
}

struct Inner {
    /// Rank currently holding the execution token.
    current: usize,
    status: Vec<Status>,
    /// Per-receiver undelivered envelopes, in deposit (sequence) order.
    mailbox: Vec<Vec<Envelope>>,
    /// Last reported virtual clock of each rank (refreshed at yield points);
    /// the primary sort key for granting the token.
    vtime: Vec<f64>,
    /// Global deposit counter: stamps `Envelope::seq`.
    next_seq: u64,
    /// Scheduling-decision counter, mixed into seeded tie-breaks.
    step: u64,
    /// Set on rank panic or detected deadlock; wakes and fails all waiters.
    aborted: bool,
    /// Diagnostic attached to the abort (deadlock wait-for list).
    fail_msg: Option<String>,
}

/// Shared state of one deterministic job. One instance per `Machine::run`.
pub(crate) struct SchedCore {
    inner: Mutex<Inner>,
    cv: Condvar,
    seed: u64,
}

impl SchedCore {
    /// Lock the scheduler state, ignoring poisoning: a panicking rank
    /// poisons the mutex by design (fail-stop), and peers still need the
    /// state to report clean abort diagnostics.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn new(ranks: usize, seed: u64) -> Self {
        let mut inner = Inner {
            current: 0,
            status: vec![Status::Ready; ranks],
            mailbox: (0..ranks).map(|_| Vec::new()).collect(),
            vtime: vec![0.0; ranks],
            next_seq: 0,
            step: 0,
            aborted: false,
            fail_msg: None,
        };
        // Initial grant: all ranks are ready at virtual time zero, so the
        // tie-break alone decides who starts.
        inner.current = pick_next(&mut inner, seed).expect("at least one rank is ready");
        SchedCore {
            inner: Mutex::new(inner),
            cv: Condvar::new(),
            seed,
        }
    }

    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }

    /// Block until `rank` is granted the execution token for the first time.
    pub(crate) fn acquire(&self, rank: usize) {
        let mut inner = self.lock();
        while !inner.aborted && inner.current != rank {
            inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
        if inner.aborted {
            panic_aborted(&inner, rank, None);
        }
    }

    /// Deposit `env` into `dest`'s mailbox, stamping the global sequence
    /// number. With a non-zero seed this is also a potential preemption
    /// point: the sender may yield the token so a woken receiver (or any
    /// other ready rank) runs before the sender's next step.
    pub(crate) fn deposit(&self, me: usize, now: f64, dest: usize, mut env: Envelope) {
        let mut inner = self.lock();
        debug_assert_eq!(inner.current, me, "send from a rank not holding the token");
        inner.vtime[me] = now;
        env.seq = inner.next_seq;
        inner.next_seq += 1;
        if let Status::Blocked { src, tag } = inner.status[dest] {
            if src == env.src && tag == env.tag {
                inner.status[dest] = Status::Ready;
            }
        }
        inner.mailbox[dest].push(env);

        if self.seed != 0 {
            inner.step += 1;
            let coin = splitmix64(self.seed ^ inner.step.wrapping_mul(0xD134_2543_DE82_EF95));
            if coin & 1 == 0 {
                // Yield while staying ready; the grant key decides who runs.
                self.yield_token(inner, me);
            }
        }
    }

    /// Take the lowest-sequence envelope matching `(src, tag)` from `rank`'s
    /// mailbox, parking the rank (and handing off the token) until one is
    /// available. Detects deadlock if parking leaves no rank runnable.
    pub(crate) fn recv_match(&self, rank: usize, now: f64, src: usize, tag: Tag) -> Envelope {
        let mut inner = self.lock();
        inner.vtime[rank] = now;
        loop {
            if inner.aborted {
                panic_aborted(&inner, rank, Some((src, tag)));
            }
            if let Some(i) = inner.mailbox[rank]
                .iter()
                .position(|e| e.src == src && e.tag == tag)
            {
                return inner.mailbox[rank].remove(i);
            }
            inner.status[rank] = Status::Blocked { src, tag };
            match pick_next(&mut inner, self.seed) {
                Some(next) => {
                    inner.current = next;
                    self.cv.notify_all();
                }
                None => {
                    // No rank is runnable and this one just blocked: the job
                    // can never make progress again.
                    let msg = deadlock_report(&inner);
                    inner.aborted = true;
                    inner.fail_msg = Some(msg.clone());
                    self.cv.notify_all();
                    panic!("{msg}");
                }
            }
            while !inner.aborted && inner.current != rank {
                inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Mark `rank`'s closure as finished and hand the token onward. If every
    /// remaining rank is blocked, raise the deadlock abort (the blocked
    /// ranks themselves panic with the diagnostic).
    pub(crate) fn finish(&self, rank: usize, now: f64) {
        let mut inner = self.lock();
        inner.vtime[rank] = now;
        inner.status[rank] = Status::Done;
        match pick_next(&mut inner, self.seed) {
            Some(next) => {
                inner.current = next;
                self.cv.notify_all();
            }
            None => {
                if inner
                    .status
                    .iter()
                    .any(|s| matches!(s, Status::Blocked { .. }))
                    && !inner.aborted
                {
                    inner.aborted = true;
                    inner.fail_msg = Some(deadlock_report(&inner));
                }
                self.cv.notify_all();
            }
        }
    }

    /// Raise the abort flag (rank panic propagation) and wake all waiters.
    pub(crate) fn abort_all(&self) {
        let mut inner = self.lock();
        inner.aborted = true;
        self.cv.notify_all();
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.lock().aborted
    }

    /// `(dest, src, tag, seq)` of every deposited-but-never-received
    /// envelope. Non-empty at teardown means a message was misrouted or a
    /// receive was forgotten.
    pub(crate) fn orphans(&self) -> Vec<(usize, usize, Tag, u64)> {
        let inner = self.lock();
        let mut out = Vec::new();
        for (dest, mbox) in inner.mailbox.iter().enumerate() {
            for env in mbox {
                out.push((dest, env.src, env.tag, env.seq));
            }
        }
        out.sort_unstable_by_key(|&(.., seq)| seq);
        out
    }

    /// Yield the token while staying ready, then wait to be re-granted.
    fn yield_token<'a>(&'a self, mut inner: std::sync::MutexGuard<'a, Inner>, me: usize) {
        debug_assert_eq!(inner.status[me], Status::Ready);
        if let Some(next) = pick_next(&mut inner, self.seed) {
            inner.current = next;
            self.cv.notify_all();
            while !inner.aborted && inner.current != me {
                inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
            if inner.aborted {
                panic_aborted(&inner, me, None);
            }
        }
    }
}

/// Grant key: the ready rank with the minimum `(virtual_time, tie_break)`.
/// Seed 0 tie-breaks by rank id — the canonical schedule. Other seeds hash
/// `(seed, step, rank)` so equal-time ranks run in a seeded order.
fn pick_next(inner: &mut Inner, seed: u64) -> Option<usize> {
    inner.step += 1;
    let step = inner.step;
    let mut best: Option<(f64, u64, usize)> = None;
    for (r, s) in inner.status.iter().enumerate() {
        if *s != Status::Ready {
            continue;
        }
        let tie = if seed == 0 {
            r as u64
        } else {
            splitmix64(seed ^ step.wrapping_mul(0x9E6C_63D0_876A_68DD) ^ r as u64)
        };
        let key = (inner.vtime[r], tie, r);
        if best.is_none_or(|(bt, btie, _)| (key.0, key.1) < (bt, btie)) {
            best = Some(key);
        }
    }
    best.map(|(_, _, r)| r)
}

fn deadlock_report(inner: &Inner) -> String {
    let mut msg = String::from("deterministic scheduler deadlock: no rank can make progress; ");
    let waits: Vec<String> = inner
        .status
        .iter()
        .enumerate()
        .filter_map(|(r, s)| match s {
            Status::Blocked { src, tag } => {
                Some(format!("rank {r} waits for (src {src}, tag {tag:#x})"))
            }
            _ => None,
        })
        .collect();
    msg.push_str(&waits.join(", "));
    msg
}

fn panic_aborted(inner: &Inner, rank: usize, waiting: Option<(usize, Tag)>) -> ! {
    if let Some(msg) = &inner.fail_msg {
        panic!("rank {rank}: {msg}");
    }
    match waiting {
        Some((src, tag)) => panic!(
            "rank {rank}: job aborted — another rank failed while this rank \
             was waiting for ({src}, tag {tag})"
        ),
        None => panic!("rank {rank}: job aborted — another rank failed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_pure_and_spreads() {
        // The replay guarantee depends on this function being pure.
        assert_eq!(splitmix64(42), splitmix64(42));
        let outs: std::collections::HashSet<u64> = (0..64).map(splitmix64).collect();
        assert_eq!(outs.len(), 64, "first 64 outputs must be distinct");
    }

    #[test]
    fn sched_mode_flags() {
        assert!(!SchedMode::Threads.is_deterministic());
        assert!(SchedMode::Deterministic { seed: 7 }.is_deterministic());
    }
}
