//! TEPS (traversed edges per second) statistics.
//!
//! Graph500 reports, over the 64 sampled roots, the full distribution of
//! per-root TEPS with the **harmonic** mean as the headline number (TEPS is
//! a rate, and the benchmark fixes work-per-root, so the harmonic mean is
//! the statistically meaningful average — the spec is explicit about this).

use g500_graph::EdgeList;

/// Count input edges with at least one endpoint in the reached set — the
/// TEPS numerator per the specification (self-loops and duplicates count,
/// exactly as generated).
pub fn count_traversed_edges(edges: &EdgeList, reached: impl Fn(u64) -> bool) -> u64 {
    edges
        .iter()
        .filter(|e| reached(e.u) || reached(e.v))
        .count() as u64
}

/// Distribution summary of per-root TEPS samples.
#[derive(Clone, Debug, PartialEq)]
pub struct TepsSummary {
    /// Number of (validated) runs.
    pub runs: usize,
    /// Minimum per-root TEPS.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum per-root TEPS.
    pub max: f64,
    /// Harmonic mean — the official headline statistic.
    pub harmonic_mean: f64,
    /// Arithmetic mean, reported for comparison.
    pub mean: f64,
}

impl TepsSummary {
    /// Build from `(traversed_edges, seconds)` samples. Panics on empty
    /// input or non-positive times.
    pub fn from_samples(samples: &[(u64, f64)]) -> Self {
        assert!(!samples.is_empty(), "need at least one run");
        let mut teps: Vec<f64> = samples
            .iter()
            .map(|&(m, t)| {
                assert!(t > 0.0, "non-positive run time");
                m as f64 / t
            })
            .collect();
        teps.sort_by(|a, b| a.total_cmp(b));
        let n = teps.len();
        let q = |f: f64| -> f64 {
            let idx = (f * (n - 1) as f64).round() as usize;
            teps[idx]
        };
        let mean = teps.iter().sum::<f64>() / n as f64;
        let harmonic_mean = n as f64 / teps.iter().map(|t| 1.0 / t).sum::<f64>();
        Self {
            runs: n,
            min: teps[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: teps[n - 1],
            harmonic_mean,
            mean,
        }
    }

    /// Render as a JSON object (hand-rolled: the workspace has no serde).
    pub fn to_json(&self) -> String {
        let f = |x: f64| {
            if x.is_finite() {
                format!("{x}")
            } else {
                "null".to_string()
            }
        };
        format!(
            "{{\"runs\":{},\"min\":{},\"q1\":{},\"median\":{},\"q3\":{},\"max\":{},\
             \"harmonic_mean\":{},\"mean\":{}}}",
            self.runs,
            f(self.min),
            f(self.q1),
            f(self.median),
            f(self.q3),
            f(self.max),
            f(self.harmonic_mean),
            f(self.mean)
        )
    }

    /// Render the official-style output block.
    pub fn render(&self, label: &str) -> String {
        format!(
            "{label}\n  runs:          {}\n  min_TEPS:      {:.4e}\n  q1_TEPS:       {:.4e}\n  median_TEPS:   {:.4e}\n  q3_TEPS:       {:.4e}\n  max_TEPS:      {:.4e}\n  harmonic_mean: {:.4e}\n  mean:          {:.4e}",
            self.runs, self.min, self.q1, self.median, self.q3, self.max,
            self.harmonic_mean, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g500_graph::WEdge;

    #[test]
    fn traversed_edge_counting() {
        let el = EdgeList::from_edges([
            WEdge::new(0, 1, 0.1),
            WEdge::new(1, 2, 0.1),
            WEdge::new(3, 4, 0.1),
        ]);
        let reached = |v: u64| v <= 2;
        assert_eq!(count_traversed_edges(&el, reached), 2);
        assert_eq!(count_traversed_edges(&el, |_| false), 0);
        assert_eq!(count_traversed_edges(&el, |_| true), 3);
    }

    #[test]
    fn harmonic_mean_below_arithmetic() {
        // same edge count, times 1s and 4s → TEPS 100 and 25
        let s = TepsSummary::from_samples(&[(100, 1.0), (100, 4.0)]);
        assert_eq!(s.min, 25.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 62.5).abs() < 1e-12);
        assert!((s.harmonic_mean - 40.0).abs() < 1e-12);
        assert!(s.harmonic_mean < s.mean);
    }

    #[test]
    fn single_sample_quartiles_collapse() {
        let s = TepsSummary::from_samples(&[(1000, 2.0)]);
        assert_eq!(s.min, s.max);
        assert_eq!(s.median, 500.0);
        assert_eq!(s.harmonic_mean, 500.0);
    }

    #[test]
    fn render_contains_headline() {
        let s = TepsSummary::from_samples(&[(100, 1.0)]);
        let out = s.render("SSSP scale 10");
        assert!(out.contains("harmonic_mean"));
        assert!(out.contains("SSSP scale 10"));
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_samples_panic() {
        TepsSummary::from_samples(&[]);
    }
}
