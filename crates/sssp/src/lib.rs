//! # g500-sssp — delta-stepping SSSP at (simulated) extreme scale
//!
//! This crate is the reproduction of the paper's contribution: the Graph500
//! SSSP kernel (kernel 3) as an optimized distributed delta-stepping, plus
//! the direction-optimizing distributed BFS (kernel 2) it is paired with.
//!
//! Three implementations share semantics and are cross-validated:
//!
//! * [`seq`] — textbook sequential delta-stepping (Meyer & Sanders) with
//!   light/heavy edge phases; the readable reference.
//! * [`par`] — shared-memory parallel delta-stepping (rayon + atomic
//!   fetch-min on distance bits); what runs *inside* one rank of the real
//!   machine's 390-core nodes.
//! * [`dist`] — the headline kernel: bulk-synchronous distributed
//!   delta-stepping over `simnet` with the extreme-scale optimization stack,
//!   each piece independently toggleable through [`OptConfig`] so the
//!   ablation experiments (T3, F6, F8) can isolate its effect:
//!   - **message coalescing** — per-destination aggregation of relaxation
//!     requests instead of one message per edge,
//!   - **update deduplication** ("on-chip sort") — outgoing requests are
//!     sorted by target and only the minimum per target is shipped,
//!   - **payload compression** — sorted targets are gap+varint coded,
//!   - **bucket fusion** — local cascading within a bucket plus fusing the
//!     long sparse tail of buckets into one Bellman-Ford-style phase,
//!   - **direction optimization** — per-iteration push/pull choice with a
//!     density heuristic, using the frontier-broadcast pull schedule,
//!   - **adaptive Δ** — bucket width chosen from the measured degree/weight
//!     profile instead of a magic constant.
#![warn(missing_docs)]

pub mod bfs;
pub mod bucket;
pub mod codec;
pub mod config;
pub mod delta;
pub mod dist;
pub mod dist2d;
pub mod exchange;
pub mod multi;
pub mod par;
pub mod seq;
pub mod serve;

pub use bfs::{distributed_bfs, BfsStats};
pub use bucket::BucketQueue;
pub use config::{Direction, OptConfig};
pub use delta::suggest_delta;
pub use dist::{distributed_delta_stepping, try_distributed_delta_stepping, SsspRunStats};
pub use dist2d::{Grid2DSssp, Sssp2DStats};
pub use multi::{
    batched_delta_stepping, multi_source_delta_stepping, try_batched_delta_stepping, BatchSpec,
    MultiDist, MultiStats,
};
pub use par::{parallel_delta_stepping, parallel_delta_stepping_traced, WaveRecord};
pub use seq::delta_stepping;
pub use serve::{
    triangle_bound, LandmarkSet, Lru, Query, QueryEngine, QueryOutcome, ServeConfig, ServeStats,
};
