//! The process-global work-stealing thread pool.
//!
//! One pool serves the whole process: simnet spawns one OS thread per
//! simulated rank, and if each rank owned a private pool the host would be
//! oversubscribed `ranks × threads`-fold. Instead every rank submits its
//! parallel regions to this single shared pool.
//!
//! ## Execution model
//!
//! A parallel region is a *task*: `nchunks` independent chunk indices plus a
//! `Fn(usize)` body. Work circulates as **jobs** — contiguous chunk ranges
//! `[lo, hi)` of a task — through per-worker deques:
//!
//! * **LIFO local / FIFO steal.** A worker pushes and pops at the back of
//!   its own deque (the most recently split-off — and cache-hottest —
//!   range), while thieves take from the front (the oldest and largest
//!   range), the classic Chase-Lev discipline realised here with one short
//!   critical section per deque (std-only, no atomic deque).
//! * **Batched claiming.** An executing thread repeatedly splits its range
//!   in half, parking the back half in a deque for thieves, until the range
//!   is at most the task's *grain* (a run of chunks sized from
//!   `nchunks / (threads × OVERSPLIT)`); it then runs the whole run and
//!   retires it with a single atomic subtraction. Claiming a run of chunks
//!   costs one deque operation + one atomic, not one `fetch_update` per
//!   chunk as the old work-sharing pool paid.
//! * **Idle backoff.** An idle worker spins through a few
//!   exponentially-growing rounds of steal attempts (with `spin_loop` and
//!   `yield_now` between rounds), then parks on a condvar. Job pushes only
//!   touch the futex when a sleeper exists, so a fully-awake pool runs
//!   wake-free; a 1-core host parks quickly instead of burning the only
//!   core in a spin.
//!
//! Chunk *boundaries* are fixed up front by the iterator layer and never
//! depend on the number of threads; stealing and grain only decide **who**
//! runs a chunk and in what batch, never **what** a chunk is. Per-chunk
//! results are combined sequentially in chunk-index order at the reduce
//! step, which is what keeps results bitwise reproducible (see the crate
//! docs and DESIGN.md "Work-stealing & the determinism contract").
//!
//! The submitter blocks until every chunk of its task has completed, which
//! is what makes the lifetime-erased body pointer sound: the `Fn` lives on
//! the submitter's stack and outlives every dereference.
//!
//! ## Nested parallelism and deadlock freedom
//!
//! A chunk body may itself open a parallel region (nested `join`, sorts
//! inside a parallel map, ...). Before blocking, a submitter first drains
//! every queued job *of its own task* from the deques, so by the time it
//! waits, each outstanding chunk is being executed by some thread; a thread
//! executing a chunk only blocks as the submitter of a strictly *deeper*
//! task (for which the same argument applies). Depth strictly increases
//! along any waits-for chain, so the deepest execution is never blocked and
//! the system always makes progress. Parked workers re-check every deque
//! under the sleep lock before waiting, and pushers take the same lock to
//! notify, so wakeups cannot be lost.
//!
//! ## Panics
//!
//! The first panic from any chunk is captured; remaining chunks of the task
//! are skipped (their jobs still retire), and the payload is re-thrown on
//! the submitting thread once the task drains — stolen or local alike.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Chunk-runs per worker a task is oversplit into; larger values smooth
/// skew at the price of more deque traffic. Grain only groups execution —
/// it never moves a chunk boundary.
const OVERSPLIT: usize = 4;

/// Steal rounds an idle worker spins through (with exponentially growing
/// pauses) before parking on the condvar.
const SPIN_ROUNDS: u32 = 6;

/// One in-flight parallel region.
struct Task {
    /// Lifetime-erased pointer to the chunk body on the submitter's stack.
    /// Valid until the submitter returns from [`Pool::run`], which cannot
    /// happen before `pending` reaches zero.
    func: *const (dyn Fn(usize) + Sync),
    /// Chunks not yet retired. The task is complete when this hits zero.
    pending: AtomicUsize,
    /// Largest chunk run executed (and retired) as one batch.
    grain: usize,
    /// Set on first panic; later chunks are skipped.
    poisoned: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `func` is only dereferenced while the submitter provably waits
// (see module docs); all other fields are Sync primitives.
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    /// Retire `n` chunks; signals the submitter when the task drains.
    fn retire(&self, n: usize) {
        if self.pending.fetch_sub(n, Ordering::AcqRel) == n {
            let mut done = self.done.lock().unwrap();
            *done = true;
            self.done_cv.notify_all();
        }
    }
}

/// A contiguous run of chunks `[lo, hi)` of one task.
struct Job {
    task: Arc<Task>,
    lo: usize,
    hi: usize,
}

/// One worker's deque, padded to its own cache line pair so neighbouring
/// workers' queue traffic never false-shares.
#[repr(align(128))]
struct WorkerDeque {
    jobs: Mutex<VecDeque<Job>>,
}

/// Per-worker counters, cache-line padded for the same reason. Purely
/// diagnostic: read by [`pool_stats`], never by the scheduler.
#[repr(align(128))]
#[derive(Default)]
struct WorkerCounters {
    /// Chunk runs executed from the worker's own deque (LIFO pops).
    local_runs: AtomicU64,
    /// Chunk runs stolen from another deque (FIFO steals).
    steals: AtomicU64,
    /// Times the worker parked on the condvar.
    parks: AtomicU64,
}

/// Aggregated scheduler counters, for tests and diagnostics.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Pool size (including the inline submitter slot).
    pub threads: usize,
    /// Chunk runs executed from workers' own deques.
    pub local_runs: u64,
    /// Chunk runs stolen across deques (includes submitter self-steals).
    pub steals: u64,
    /// Worker park events.
    pub parks: u64,
}

struct Shared {
    /// One deque per worker thread. External submitters (rank threads)
    /// scatter split-off jobs round-robin across these.
    deques: Vec<WorkerDeque>,
    counters: Vec<WorkerCounters>,
    /// Extra counter slot for threads that are not pool workers.
    external: WorkerCounters,
    /// Number of workers currently parked; mirrored outside the lock so the
    /// push fast path is one relaxed load.
    sleepers: AtomicUsize,
    sleep: Mutex<()>,
    wake_cv: Condvar,
    /// Round-robin cursor for external pushes.
    rr: AtomicUsize,
}

impl Shared {
    fn counters_for(&self, worker: Option<usize>) -> &WorkerCounters {
        match worker {
            Some(id) => &self.counters[id],
            None => &self.external,
        }
    }

    /// Park-safe work check: is any deque non-empty?
    fn any_queued(&self) -> bool {
        self.deques
            .iter()
            .any(|d| !d.jobs.lock().unwrap().is_empty())
    }

    /// Push a job: onto this worker's own deque back (LIFO end) when called
    /// from a worker, round-robin otherwise. Wakes a sleeper only if one
    /// exists, so an awake pool never touches the futex.
    fn push(&self, worker: Option<usize>, job: Job) {
        let idx = match worker {
            Some(id) => id,
            None => self.rr.fetch_add(1, Ordering::Relaxed) % self.deques.len(),
        };
        self.deques[idx].jobs.lock().unwrap().push_back(job);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.sleep.lock().unwrap();
            self.wake_cv.notify_one();
        }
    }

    /// LIFO pop from the worker's own deque.
    fn pop_local(&self, id: usize) -> Option<Job> {
        self.deques[id].jobs.lock().unwrap().pop_back()
    }

    /// FIFO steal from any other deque, scanning round-robin from `id + 1`.
    fn steal(&self, id: usize) -> Option<Job> {
        let n = self.deques.len();
        for k in 1..=n {
            let victim = (id + k) % n;
            if let Some(job) = self.deques[victim].jobs.lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Remove any queued job belonging to `task` (front-first), scanning
    /// all deques. Used by a submitter to drain its own task before
    /// blocking — see the deadlock-freedom argument in the module docs.
    fn steal_task_job(&self, task: &Arc<Task>) -> Option<Job> {
        for d in &self.deques {
            let mut q = d.jobs.lock().unwrap();
            if let Some(pos) = q.iter().position(|j| Arc::ptr_eq(&j.task, task)) {
                return q.remove(pos);
            }
        }
        None
    }
}

thread_local! {
    /// Index of the pool worker running on this thread (`usize::MAX` for
    /// external threads — rank threads, tests, the submitter).
    static WORKER_ID: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn current_worker() -> Option<usize> {
    let id = WORKER_ID.with(|w| w.get());
    (id != usize::MAX).then_some(id)
}

/// Execute a job: split halves off for thieves while the range exceeds the
/// task's grain, then run the remaining chunk run and retire it with one
/// atomic. The split-off halves land on this worker's deque (LIFO) or, for
/// external threads, round-robin across worker deques.
fn execute(shared: &Shared, worker: Option<usize>, job: Job) {
    let Job { task, lo, mut hi } = job;
    while hi - lo > task.grain {
        let mid = lo + (hi - lo) / 2;
        shared.push(
            worker,
            Job {
                task: Arc::clone(&task),
                lo: mid,
                hi,
            },
        );
        hi = mid;
    }
    if !task.poisoned.load(Ordering::Acquire) {
        // SAFETY: the submitter cannot return (and invalidate `func`)
        // while this run is claimed but not retired.
        let body = unsafe { &*task.func };
        for i in lo..hi {
            if task.poisoned.load(Ordering::Relaxed) {
                break;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(i))) {
                task.poisoned.store(true, Ordering::Release);
                let mut slot = task.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
    }
    task.retire(hi - lo);
}

pub(crate) struct Pool {
    shared: Arc<Shared>,
    nthreads: usize,
}

impl Pool {
    fn new(nthreads: usize) -> Pool {
        // The submitter of each task participates in executing it, so
        // `nthreads` total parallelism needs `nthreads - 1` workers; with
        // one thread the pool runs everything inline on the caller.
        let nworkers = nthreads.saturating_sub(1);
        let shared = Arc::new(Shared {
            deques: (0..nworkers)
                .map(|_| WorkerDeque {
                    jobs: Mutex::new(VecDeque::new()),
                })
                .collect(),
            counters: (0..nworkers).map(|_| WorkerCounters::default()).collect(),
            external: WorkerCounters::default(),
            sleepers: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake_cv: Condvar::new(),
            rr: AtomicUsize::new(0),
        });
        for id in 0..nworkers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("g500-pool-{id}"))
                .spawn(move || worker_loop(&shared, id))
                .expect("spawning pool worker");
        }
        Pool { shared, nthreads }
    }

    /// Execute `f(0..nchunks)` across the pool; returns when every chunk has
    /// retired. Re-throws the first chunk panic on this thread.
    fn run(&self, nchunks: usize, f: &(dyn Fn(usize) + Sync)) {
        // Erase the borrow lifetime; soundness argued in the module docs.
        let func: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        let grain = (nchunks / (self.nthreads * OVERSPLIT)).max(1);
        let task = Arc::new(Task {
            func,
            pending: AtomicUsize::new(nchunks),
            grain,
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        let shared = &*self.shared;
        let worker = current_worker();

        // Execute the whole range ourselves; splitting inside `execute`
        // scatters the back halves for thieves as we go.
        execute(
            shared,
            worker,
            Job {
                task: Arc::clone(&task),
                lo: 0,
                hi: nchunks,
            },
        );
        // Help until no queued job of this task remains anywhere, then wait
        // for in-flight runs (executing on other threads) to retire.
        while task.pending.load(Ordering::Acquire) > 0 {
            if let Some(job) = shared.steal_task_job(&task) {
                shared
                    .counters_for(worker)
                    .steals
                    .fetch_add(1, Ordering::Relaxed);
                execute(shared, worker, job);
                continue;
            }
            let mut done = task.done.lock().unwrap();
            while !*done && task.pending.load(Ordering::Acquire) > 0 {
                done = task.done_cv.wait(done).unwrap();
            }
            break;
        }

        let payload = task.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: &Shared, id: usize) {
    WORKER_ID.with(|w| w.set(id));
    let mut backoff: u32 = 0;
    loop {
        if let Some(job) = shared.pop_local(id) {
            shared.counters[id]
                .local_runs
                .fetch_add(1, Ordering::Relaxed);
            execute(shared, Some(id), job);
            backoff = 0;
            continue;
        }
        if let Some(job) = shared.steal(id) {
            shared.counters[id].steals.fetch_add(1, Ordering::Relaxed);
            execute(shared, Some(id), job);
            backoff = 0;
            continue;
        }
        if backoff < SPIN_ROUNDS {
            // Exponential backoff: 2^backoff pause slots, then re-scan.
            for _ in 0..(1u32 << backoff) {
                std::hint::spin_loop();
            }
            std::thread::yield_now();
            backoff += 1;
            continue;
        }
        // Park. Re-check under the sleep lock (pushers notify under the
        // same lock), so a push between our last scan and the wait cannot
        // be lost.
        shared.counters[id].parks.fetch_add(1, Ordering::Relaxed);
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut guard = shared.sleep.lock().unwrap();
        while !shared.any_queued() {
            guard = shared.wake_cv.wait(guard).unwrap();
        }
        drop(guard);
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
        backoff = 0;
    }
}

/// Thread count requested via [`configure_threads`] before first pool use;
/// 0 means "not configured".
static REQUESTED: AtomicUsize = AtomicUsize::new(0);
static POOL: OnceLock<Pool> = OnceLock::new();

fn resolve_threads() -> usize {
    let requested = REQUESTED.load(Ordering::SeqCst);
    if requested > 0 {
        return requested;
    }
    if let Ok(s) = std::env::var("G500_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

pub(crate) fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool::new(resolve_threads()))
}

/// Request a pool size, overriding `G500_THREADS` and the hardware default.
/// Must be called before the first parallel operation; returns `true` if the
/// request took effect (the pool was not yet started), `false` if the pool
/// is already running at its original size.
pub fn configure_threads(n: usize) -> bool {
    REQUESTED.store(n.max(1), Ordering::SeqCst);
    POOL.get().is_none()
}

/// Number of threads the global pool runs with (initializing it on first
/// call). Chunk *boundaries* never depend on this — callers may use it only
/// to bound per-chunk scratch allocation or pick chunk counts for
/// order-insensitive merges.
pub fn current_num_threads() -> usize {
    pool().nthreads
}

/// Snapshot of the scheduler's diagnostic counters (local runs, steals,
/// parks). Counters are monotonic over the pool's lifetime; results never
/// depend on them.
pub fn pool_stats() -> PoolStats {
    let p = pool();
    let mut s = PoolStats {
        threads: p.nthreads,
        ..Default::default()
    };
    for c in p.shared.counters.iter().chain([&p.shared.external]) {
        s.local_runs += c.local_runs.load(Ordering::Relaxed);
        s.steals += c.steals.load(Ordering::Relaxed);
        s.parks += c.parks.load(Ordering::Relaxed);
    }
    s
}

/// Run `f(i)` for every `i in 0..nchunks`, distributing chunk runs across
/// the pool. Blocks until all chunks retire; re-throws the first panic.
pub(crate) fn run_parallel(nchunks: usize, f: &(dyn Fn(usize) + Sync)) {
    if nchunks == 0 {
        return;
    }
    let p = pool();
    if p.nthreads == 1 || nchunks == 1 {
        for i in 0..nchunks {
            f(i);
        }
        return;
    }
    p.run(nchunks, f);
}

/// Run two closures, potentially in parallel, returning both results.
/// Panics from either side are re-thrown on the caller (first one wins).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let a = Mutex::new(Some(oper_a));
    let b = Mutex::new(Some(oper_b));
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    run_parallel(2, &|i| {
        if i == 0 {
            let f = a.lock().unwrap().take().unwrap();
            *ra.lock().unwrap() = Some(f());
        } else {
            let f = b.lock().unwrap().take().unwrap();
            *rb.lock().unwrap() = Some(f());
        }
    });
    (
        ra.into_inner().unwrap().unwrap(),
        rb.into_inner().unwrap().unwrap(),
    )
}

/// A job spawned into a [`Scope`]: boxed so the scope can own it, callable
/// once with the scope itself (to allow nested spawns).
type ScopeJob<'s> = Box<dyn FnOnce(&Scope<'s>) + Send + 's>;

/// A scope for spawning borrowing jobs. Unlike upstream rayon, spawned jobs
/// run in deferred batches once the scope body returns (each batch may spawn
/// more); all jobs still complete before [`scope`] returns, and panics
/// propagate to the caller.
pub struct Scope<'s> {
    jobs: Mutex<Vec<ScopeJob<'s>>>,
}

impl<'s> Scope<'s> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'s>) + Send + 's,
    {
        self.jobs.lock().unwrap().push(Box::new(f));
    }
}

/// Create a scope, run `f` in it, then drain all spawned jobs (in parallel)
/// until none remain. Returns `f`'s result.
pub fn scope<'s, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'s>) -> R,
{
    let s = Scope {
        jobs: Mutex::new(Vec::new()),
    };
    let r = f(&s);
    loop {
        let batch: Vec<_> = std::mem::take(&mut *s.jobs.lock().unwrap());
        if batch.is_empty() {
            break;
        }
        let slots: Vec<Mutex<Option<ScopeJob<'s>>>> =
            batch.into_iter().map(|j| Mutex::new(Some(j))).collect();
        run_parallel(slots.len(), &|i| {
            let job = slots[i].lock().unwrap().take().unwrap();
            job(&s);
        });
    }
    r
}
