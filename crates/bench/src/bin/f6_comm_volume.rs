//! F6 — Communication volume: what each traffic optimization saves.
//!
//! Messages and bytes on the wire for one SSSP run under the four
//! combinations of {coalescing, dedup+compression}, measured exactly by
//! the simulated network layer. The paper's coalescing/compression claims
//! are about precisely these counters.
//!
//! Overrides: `G500_SCALE` (14), `G500_RANKS` (8).

use g500_bench::{banner, fault_banner_params, fault_plan_from_env, gteps, param, Table};
use g500_sssp::OptConfig;
use graph500::{run_sssp_benchmark, BenchmarkConfig};

fn main() {
    let scale = param("G500_SCALE", 14) as u32;
    let ranks = param("G500_RANKS", 8) as usize;
    let fault = fault_plan_from_env();
    let mut params = vec![("scale", scale.to_string()), ("ranks", ranks.to_string())];
    params.extend(fault_banner_params(&fault));
    banner("F6", "communication volume", &params);

    let variants: Vec<(&str, OptConfig)> = vec![
        (
            "naive (no coalesce, raw)",
            OptConfig::all_on()
                .without_coalescing()
                .without_dedup()
                .without_compression(),
        ),
        (
            "coalesced, raw",
            OptConfig::all_on().without_dedup().without_compression(),
        ),
        (
            "coalesced + dedup",
            OptConfig::all_on().without_compression(),
        ),
        ("coalesced + dedup + compress", OptConfig::all_on()),
    ];

    let t = Table::new(&[
        "variant",
        "msgs",
        "MB",
        "updates_sent",
        "bytes/update",
        "hmean_GTEPS",
    ]);
    let mut base_msgs = 0u64;
    for (name, opts) in variants {
        let mut cfg = BenchmarkConfig::graph500(scale, ranks).faults(fault);
        cfg.num_roots = 2;
        cfg.validate = false;
        cfg.opts = opts;
        let rep = run_sssp_benchmark(&cfg);
        let msgs = rep.net.total_msgs();
        if base_msgs == 0 {
            base_msgs = msgs;
        }
        let updates: u64 = rep.runs.iter().map(|r| r.stats.updates_sent).sum();
        t.row(&[
            name.to_string(),
            format!("{msgs} ({:.0}x less)", base_msgs as f64 / msgs as f64),
            format!("{:.2}", rep.net.total_bytes() as f64 / 1e6),
            updates.to_string(),
            format!(
                "{:.1}",
                rep.net.user_bytes.max(rep.net.coll_bytes) as f64 / updates.max(1) as f64
            ),
            gteps(rep.teps.harmonic_mean),
        ]);
    }
    println!("\nexpected shape: coalescing collapses message count by orders of magnitude; dedup cuts update records; compression cuts bytes/update toward ~10");
}
