//! F12 — Partition load balance: why degree-aware placement exists.
//!
//! For each strategy, measure the imbalance the job actually experiences:
//! the max/mean ratio of per-rank sent bytes and messages over a full
//! benchmark run. Kronecker hubs concentrate traffic on their owners;
//! striping the hub prefix (degree-aware) flattens it.
//!
//! Overrides: `G500_SCALE` (14), `G500_RANKS` (8).

use g500_bench::{banner, gteps, param, Table};
use graph500::{run_sssp_benchmark, BenchmarkConfig, PartitionStrategy};

fn imbalance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let max = xs.iter().copied().fold(f64::MIN, f64::max);
    if mean <= 0.0 {
        1.0
    } else {
        max / mean
    }
}

fn main() {
    let scale = param("G500_SCALE", 14) as u32;
    let ranks = param("G500_RANKS", 8) as usize;
    banner(
        "F12",
        "partition load balance",
        &[("scale", scale.to_string()), ("ranks", ranks.to_string())],
    );

    let t = Table::new(&[
        "strategy",
        "hmean_GTEPS",
        "bytes_max/mean",
        "comm_s_max/mean",
        "validated",
    ]);
    for (name, part) in [
        ("block", PartitionStrategy::Block),
        ("cyclic", PartitionStrategy::Cyclic),
        (
            "degree-aware",
            PartitionStrategy::DegreeAware { hub_factor: 8.0 },
        ),
    ] {
        let mut cfg = BenchmarkConfig::graph500(scale, ranks);
        cfg.num_roots = 4;
        cfg.partition = part;
        let rep = run_sssp_benchmark(&cfg);
        let bytes: Vec<f64> = rep
            .per_rank_net
            .iter()
            .map(|s| s.total_bytes() as f64)
            .collect();
        let comm: Vec<f64> = rep.per_rank_net.iter().map(|s| s.comm_s).collect();
        t.row(&[
            name.to_string(),
            gteps(rep.teps.harmonic_mean),
            format!("{:.3}", imbalance(&bytes)),
            format!("{:.3}", imbalance(&comm)),
            rep.all_validated().to_string(),
        ]);
    }
    println!("\nexpected shape: block partitioning shows the highest byte imbalance; degree-aware closest to 1.0");
}
