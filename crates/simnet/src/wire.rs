//! Fixed-layout wire encoding for typed messages.
//!
//! Simnet messages are byte vectors; this module provides the little-endian
//! codec that turns records into bytes and back. It is deliberately a plain
//! hand-rolled format (no serde): the message hot path of the SSSP kernel
//! encodes billions of 16-byte relaxation records, and a fixed-layout codec
//! keeps that a couple of `to_le_bytes` stores — the same reasoning the
//! Performance Book applies to serialization-heavy inner loops.

/// A type with a fixed-size little-endian wire layout.
pub trait Wire: Sized {
    /// Encoded size in bytes (constant per type).
    const SIZE: usize;

    /// Append the encoding of `self` to `out`.
    fn write(&self, out: &mut Vec<u8>);

    /// Decode from `buf[*pos..]`, advancing `*pos`. `None` if truncated.
    fn read(buf: &[u8], pos: &mut usize) -> Option<Self>;
}

macro_rules! wire_prim {
    ($t:ty) => {
        impl Wire for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            #[inline]
            fn write(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn read(buf: &[u8], pos: &mut usize) -> Option<Self> {
                let end = pos.checked_add(Self::SIZE)?;
                let bytes = buf.get(*pos..end)?;
                *pos = end;
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    };
}

wire_prim!(u8);
wire_prim!(u16);
wire_prim!(u32);
wire_prim!(u64);
wire_prim!(i32);
wire_prim!(i64);
wire_prim!(f32);
wire_prim!(f64);

impl Wire for () {
    const SIZE: usize = 0;

    #[inline]
    fn write(&self, _out: &mut Vec<u8>) {}

    #[inline]
    fn read(_buf: &[u8], _pos: &mut usize) -> Option<Self> {
        Some(())
    }
}

impl Wire for bool {
    const SIZE: usize = 1;

    #[inline]
    fn write(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }

    #[inline]
    fn read(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let b = *buf.get(*pos)?;
        *pos += 1;
        Some(b != 0)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;

    #[inline]
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
    }

    #[inline]
    fn read(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some((A::read(buf, pos)?, B::read(buf, pos)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE;

    #[inline]
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
        self.2.write(out);
    }

    #[inline]
    fn read(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some((A::read(buf, pos)?, B::read(buf, pos)?, C::read(buf, pos)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE + D::SIZE;

    #[inline]
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
        self.2.write(out);
        self.3.write(out);
    }

    #[inline]
    fn read(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some((
            A::read(buf, pos)?,
            B::read(buf, pos)?,
            C::read(buf, pos)?,
            D::read(buf, pos)?,
        ))
    }
}

/// Encode a slice of records into a fresh byte buffer.
pub fn encode_slice<T: Wire>(items: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(items.len() * T::SIZE);
    for it in items {
        it.write(&mut out);
    }
    out
}

/// Why a payload failed to decode as a vector of records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Payload length in bytes.
    pub len: usize,
    /// Wire size of the requested record type.
    pub elem_size: usize,
}

/// Decode a whole buffer of records, reporting the payload length and
/// record size on failure so callers can surface a diagnosable transport
/// error (see [`TransportError::Decode`]) instead of silently truncating.
///
/// [`TransportError::Decode`]: crate::transport::TransportError::Decode
pub fn decode_vec_checked<T: Wire>(buf: &[u8]) -> Result<Vec<T>, DecodeError> {
    decode_vec(buf).ok_or(DecodeError {
        len: buf.len(),
        elem_size: T::SIZE,
    })
}

/// Decode a whole buffer of records. `None` if the length is not a multiple
/// of the record size or a record is malformed.
pub fn decode_vec<T: Wire>(buf: &[u8]) -> Option<Vec<T>> {
    if T::SIZE == 0 {
        return if buf.is_empty() {
            Some(Vec::new())
        } else {
            None
        };
    }
    if !buf.len().is_multiple_of(T::SIZE) {
        return None;
    }
    let mut out = Vec::with_capacity(buf.len() / T::SIZE);
    let mut pos = 0;
    while pos < buf.len() {
        out.push(T::read(buf, &mut pos)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        42u64.write(&mut buf);
        (-7i64).write(&mut buf);
        1.5f32.write(&mut buf);
        true.write(&mut buf);
        let mut pos = 0;
        assert_eq!(u64::read(&buf, &mut pos), Some(42));
        assert_eq!(i64::read(&buf, &mut pos), Some(-7));
        assert_eq!(f32::read(&buf, &mut pos), Some(1.5));
        assert_eq!(bool::read(&buf, &mut pos), Some(true));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn tuples_roundtrip() {
        let rec = (3u64, 0.5f32, 9u32);
        let buf = encode_slice(&[rec]);
        assert_eq!(buf.len(), <(u64, f32, u32)>::SIZE);
        assert_eq!(decode_vec::<(u64, f32, u32)>(&buf), Some(vec![rec]));
    }

    #[test]
    fn slice_roundtrip() {
        let recs: Vec<(u32, u32)> = (0..100).map(|i| (i, i * 2)).collect();
        let buf = encode_slice(&recs);
        assert_eq!(decode_vec::<(u32, u32)>(&buf), Some(recs));
    }

    #[test]
    fn truncated_input_rejected() {
        let buf = encode_slice(&[7u64]);
        assert_eq!(decode_vec::<u64>(&buf[..7]), None);
        let mut pos = 0;
        assert_eq!(u64::read(&buf[..7], &mut pos), None);
    }

    #[test]
    fn checked_decode_reports_sizes() {
        let buf = encode_slice(&[7u64]);
        assert_eq!(decode_vec_checked::<u64>(&buf), Ok(vec![7]));
        assert_eq!(
            decode_vec_checked::<u64>(&buf[..7]),
            Err(DecodeError {
                len: 7,
                elem_size: 8
            })
        );
    }

    #[test]
    fn unit_type() {
        let buf = encode_slice::<()>(&[(), ()]);
        assert!(buf.is_empty());
        assert_eq!(decode_vec::<()>(&buf), Some(vec![]));
        assert_eq!(decode_vec::<()>(&[1u8]), None);
    }
}
