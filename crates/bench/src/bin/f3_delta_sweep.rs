//! F3 — Δ parameter sweep: the bucket-width trade-off.
//!
//! Runtime vs Δ on a fixed graph/machine, sweeping Δ over two decades
//! around the adaptive choice. Small Δ → many buckets → superstep latency
//! dominates (Dijkstra-like); large Δ → wasted re-relaxations (Bellman-
//! Ford-like). The adaptive rule should land near the valley floor.
//!
//! Overrides: `G500_SCALE` (15), `G500_RANKS` (8), `G500_ROOTS` (4).

use g500_bench::{banner, gteps, param, secs, Table};
use g500_sssp::{suggest_delta, OptConfig};
use graph500::{run_sssp_benchmark, BenchmarkConfig};

fn main() {
    let scale = param("G500_SCALE", 15) as u32;
    let ranks = param("G500_RANKS", 8) as usize;
    let roots = param("G500_ROOTS", 4) as usize;
    banner(
        "F3",
        "delta sweep",
        &[("scale", scale.to_string()), ("ranks", ranks.to_string())],
    );

    // Graph500 profile: ~32 arcs/vertex, mean weight 1/2.
    let adaptive = suggest_delta(32.0, 0.5);
    let sweep: Vec<f32> = [
        0.125f32 / 16.0,
        0.125 / 8.0,
        0.125 / 4.0,
        0.125 / 2.0,
        0.125,
        0.25,
        0.5,
        1.0,
        2.0,
        8.0,
    ]
    .to_vec();

    let t = Table::new(&[
        "delta",
        "hmean_GTEPS",
        "mean_time",
        "supersteps",
        "buckets",
        "relax/edge",
    ]);
    for &delta in &sweep {
        let mut cfg = BenchmarkConfig::graph500(scale, ranks);
        cfg.num_roots = roots;
        cfg.validate = false;
        cfg.opts = OptConfig::all_on().with_delta(delta);
        // disable tail fusion so the sweep exposes the raw bucket-count
        // effect rather than the mitigation
        cfg.opts.bucket_fusion = false;
        let rep = run_sssp_benchmark(&cfg);
        let steps: u64 =
            rep.runs.iter().map(|r| r.stats.supersteps).sum::<u64>() / rep.runs.len() as u64;
        let buckets: u64 =
            rep.runs.iter().map(|r| r.stats.buckets).sum::<u64>() / rep.runs.len() as u64;
        let relax: u64 = rep.runs.iter().map(|r| r.stats.relaxations).sum();
        let mean_t = rep.runs.iter().map(|r| r.sim_time_s).sum::<f64>() / rep.runs.len() as f64;
        let marker = if (delta - adaptive).abs() < 1e-6 {
            " <- adaptive"
        } else {
            ""
        };
        t.row(&[
            format!("{delta}{marker}"),
            gteps(rep.teps.harmonic_mean),
            secs(mean_t),
            steps.to_string(),
            buckets.to_string(),
            format!(
                "{:.2}",
                relax as f64 / (2.0 * rep.m as f64 * rep.runs.len() as f64)
            ),
        ]);
    }
    println!("\nexpected shape: U-shaped runtime — supersteps fall and wasted relaxations rise with delta; adaptive pick near the valley");
}
