//! Bring your own algorithm: the simulated machine is a general SPMD
//! substrate, not just an SSSP harness.
//!
//! This example implements distributed connected components by min-label
//! propagation over `simnet` + the partition layer, then cross-checks the
//! result against the sequential union-find and prices the run on two
//! interconnects. ~60 lines of algorithm — the same footprint a real MPI
//! prototype would be, minus the cluster.
//!
//! ```text
//! cargo run --release --example custom_algorithm
//! ```

use g500_gen::{KroneckerGenerator, KroneckerParams};
use g500_graph::component_stats;
use g500_partition::{assemble_local_graph, Block1D, LocalGraph, VertexPartition};
use graph500::simnet::{Machine, MachineConfig, RankCtx, Topology};

/// Distributed CC: every vertex repeatedly adopts the smallest label among
/// itself and its neighbors; labels cross rank boundaries in one
/// all-to-all per round. Converges in O(component diameter) rounds.
fn label_propagation<P: VertexPartition>(
    ctx: &mut RankCtx,
    graph: &LocalGraph<P>,
) -> (Vec<u64>, u64) {
    let part = graph.part().clone();
    let me = ctx.rank();
    let p = ctx.size();
    let n_local = graph.local_vertices();
    let mut label: Vec<u64> = (0..n_local).map(|l| part.to_global(me, l)).collect();
    let mut active: Vec<usize> = (0..n_local).collect();
    let mut rounds = 0u64;

    loop {
        // push my (possibly improved) labels along edges
        let mut out: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
        for &l in &active {
            for (v, _) in graph.arcs(l) {
                out[part.owner(v)].push((v, label[l]));
            }
        }
        ctx.charge_compute(out.iter().map(|b| b.len() as u64).sum());
        let total: u64 = out.iter().map(|b| b.len() as u64).sum();
        if ctx.allreduce_sum(total) == 0 {
            break;
        }
        let incoming = ctx.alltoallv(out);

        // adopt minima; changed vertices stay active
        let mut changed = vec![false; n_local];
        for block in incoming {
            for (v, lab) in block {
                let l = part.to_local(v);
                if lab < label[l] {
                    label[l] = lab;
                    changed[l] = true;
                }
            }
        }
        active = (0..n_local).filter(|&l| changed[l]).collect();
        rounds += 1;
    }
    (label, rounds)
}

fn main() {
    let scale = 12u32;
    let gen = KroneckerGenerator::new(KroneckerParams::graph500(scale, 11));
    let n = gen.params().num_vertices();
    let m = gen.params().num_edges();
    let el = gen.generate_all();

    // ground truth on the host
    let truth = component_stats(n as usize, &el);
    println!(
        "ground truth: {} components, giant = {} of {} vertices\n",
        truth.components, truth.giant_size, n
    );

    for (name, topo) in [
        ("crossbar", Topology::Crossbar),
        ("2d torus", Topology::Torus2D { w: 4, h: 2 }),
    ] {
        let ranks = 8usize;
        let rep = Machine::new(MachineConfig::with_ranks(ranks).topology(topo)).run(|ctx| {
            let part = Block1D::new(n, ranks);
            let (lo, hi) = (
                ctx.rank() as u64 * m / ranks as u64,
                (ctx.rank() as u64 + 1) * m / ranks as u64,
            );
            let mine = gen.edge_block(lo..hi);
            let g = assemble_local_graph(ctx, mine.iter(), part);
            let (label, rounds) = label_propagation(ctx, &g);
            // count distinct roots-of-components among local labels
            let distinct: std::collections::HashSet<u64> = label.into_iter().collect();
            (distinct, rounds)
        });

        // merge per-rank label sets and count distinct component labels
        let mut all = std::collections::HashSet::new();
        let mut rounds = 0;
        for (set, r) in &rep.results {
            all.extend(set.iter().copied());
            rounds = *r;
        }
        // isolated vertices label themselves → total components must match
        assert_eq!(
            all.len(),
            truth.components,
            "distributed CC disagrees with union-find"
        );
        println!(
            "{name:>9}: {} components in {rounds} rounds — {:.2} ms simulated, {:.1} MB moved",
            all.len(),
            rep.sim_time_s * 1e3,
            rep.total_stats().total_bytes() as f64 / 1e6
        );
    }
    println!("\nsame answer, different price: the cost model makes interconnect choices visible before buying the machine.");
}
