//! Batched multi-source SSSP — the shared-superstep engine under the
//! query-serving layer (and the "64 roots" workload done right).
//!
//! The Graph500 harness runs 64 independent searches back-to-back. At
//! extreme scale, the *tail* of each search — many near-empty supersteps —
//! dominates, and the machine idles through 64 tails in sequence. Batching
//! runs `B` sources concurrently: each superstep carries the union of all
//! sources' traffic, so per-superstep fixed costs (latency, allreduce
//! fan-in) are amortized B ways.
//!
//! # Layout
//!
//! Per-lane state is a flat structure-of-arrays: `dist[lane * n_local + l]`
//! and likewise for parents, so a lane's slice is contiguous and the relax
//! inner loop is a single-zip sweep over one adjacency range — no
//! `Vec<Vec>` pointer chase. The bucket queue stores the *packed key*
//! `lane * n_local + l` directly as its `u32` element, which doubles as
//! the SoA index: pop, re-check, and scan all address the same flat array.
//!
//! # Determinism and width-invariance
//!
//! Lanes never read each other's state. A lane inside a width-`B` batch
//! sees exactly the per-wave state it would see in a width-1 batch: extra
//! bucket epochs contributed by other lanes scan an empty frontier for it,
//! dedup and the compressed wire format order records by the canonical
//! (lane, target, dist, parent) key, and the commit applies strict-`<`
//! improvements in received order. Batched distances *and parents* are
//! therefore bitwise identical to per-source runs, at any `G500_THREADS`
//! (the scan runs under the fixed-chunk contract, the commit is
//! sequential in scan order).
//!
//! # Point-to-point lanes
//!
//! A lane with a target retires as soon as the target is settled: once the
//! global bucket epoch `k` exceeds the target's tentative bucket, any
//! future improvement would need `nd ≥ kΔ >` tentative — impossible — so
//! the distance and parent are final. Target owners allgather live-target
//! tentatives each epoch and every rank applies the identical retirement
//! rule. A retired lane stops scanning and stops accepting updates,
//! shrinking live-batch width as the batch drains. Lanes may also carry an
//! upper `bound` (e.g. a landmark triangle-inequality bound from the
//! serving layer): relaxations that exceed it are pruned, which cannot
//! change any distance ≤ bound — in particular the target's.

use crate::bucket::BucketQueue;
use crate::codec::TaggedUpdate;
use crate::config::OptConfig;
use crate::dist::{get_weight_vec, put_weight_slice};
use crate::exchange::{exchange_tagged_into, TaggedExchangeBufs};
use g500_graph::{VertexId, Weight, INF_WEIGHT, NO_PARENT};
use g500_partition::{DistShortestPaths, LocalGraph, VertexPartition};
use rayon::prelude::*;
use simnet::recovery::{codec, Checkpoint, FaultEscalation, Recovery};
use simnet::{RankCtx, TraceCode};

/// One lane of a batch: a source, an optional point-to-point target, and
/// an optional upper bound on useful path lengths.
#[derive(Clone, Copy, Debug)]
pub struct BatchSpec {
    /// Global source vertex.
    pub source: VertexId,
    /// Optional target: the lane retires once this vertex settles.
    pub target: Option<VertexId>,
    /// Prune relaxations whose tentative distance exceeds this bound
    /// (`INF_WEIGHT` = unbounded). Must be ≥ the true source→target
    /// distance for the target's result to be exact.
    pub bound: Weight,
}

impl BatchSpec {
    /// A full single-source lane.
    pub fn full(source: VertexId) -> Self {
        BatchSpec {
            source,
            target: None,
            bound: INF_WEIGHT,
        }
    }

    /// A point-to-point lane.
    pub fn p2p(source: VertexId, target: VertexId) -> Self {
        BatchSpec {
            source,
            target: Some(target),
            bound: INF_WEIGHT,
        }
    }

    /// Attach an upper bound for relaxation pruning.
    pub fn with_bound(mut self, bound: Weight) -> Self {
        self.bound = bound;
        self
    }
}

/// Per-rank result of a batched run, lane-major SoA.
#[derive(Clone, Debug)]
pub struct MultiDist {
    /// Number of lanes in the batch.
    pub lanes: usize,
    /// Local vertices per lane (the SoA stride).
    pub n_local: usize,
    /// `dist[s * n_local + l]`: distance from lane `s`'s source to local
    /// vertex `l`. A retired point-to-point lane's slice is frozen at
    /// retirement (only its target entries are final).
    pub dist: Vec<Weight>,
    /// `parent[s * n_local + l]`: global parent in lane `s`'s tree.
    pub parent: Vec<u64>,
    /// Virtual time each lane finished (retirement for early-exit lanes,
    /// batch end otherwise).
    pub finished_at: Vec<f64>,
    /// True for point-to-point lanes that retired before the batch ended.
    pub early_exit: Vec<bool>,
    /// Per lane: the target's settled distance (`INF_WEIGHT` for full
    /// lanes and unreachable targets). Identical on every rank.
    pub target_dist: Vec<Weight>,
    /// Per lane: the target's parent (`NO_PARENT` when absent). Identical
    /// on every rank.
    pub target_parent: Vec<u64>,
}

impl MultiDist {
    /// Lane `s`'s local distance slice.
    pub fn lane_dist(&self, s: usize) -> &[Weight] {
        &self.dist[s * self.n_local..(s + 1) * self.n_local]
    }

    /// Lane `s`'s local parent slice.
    pub fn lane_parent(&self, s: usize) -> &[u64] {
        &self.parent[s * self.n_local..(s + 1) * self.n_local]
    }

    /// Lane `s` as an owned [`DistShortestPaths`] (for gathers).
    pub fn lane_paths(&self, s: usize) -> DistShortestPaths {
        DistShortestPaths {
            dist: self.lane_dist(s).to_vec(),
            parent: self.lane_parent(s).to_vec(),
        }
    }
}

/// Counters from one batched run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MultiStats {
    /// Global communication rounds for the whole batch.
    pub supersteps: u64,
    /// Update emissions after bound pruning, for the whole batch.
    pub relaxations: u64,
    /// Update records shipped (post-dedup).
    pub updates_sent: u64,
    /// Relaxations pruned by lane bounds.
    pub pruned: u64,
    /// Point-to-point lanes that retired before the batch ended.
    pub retired: u64,
}

/// Default Δ when `opts.delta` is `None`: the batched kernel has no
/// per-run weight profile to adapt from, so it uses the same fixed width
/// the F-series experiments use.
const DEFAULT_DELTA: Weight = 0.125;

/// Below this many frontier elements a wave is scanned sequentially; the
/// sequential loop emits the same candidates in the same (element, arc)
/// order, so results are bitwise unaffected by which path runs.
const SEQ_SCAN_CUTOFF: usize = 1024;

/// Run `roots.len()` full SSSP searches concurrently. Collective.
/// Compatibility wrapper over [`batched_delta_stepping`] with the full
/// optimization stack and a fixed Δ.
pub fn multi_source_delta_stepping<P: VertexPartition + Sync>(
    ctx: &mut RankCtx,
    graph: &LocalGraph<P>,
    roots: &[VertexId],
    delta: Weight,
) -> (MultiDist, MultiStats) {
    let specs: Vec<BatchSpec> = roots.iter().map(|&r| BatchSpec::full(r)).collect();
    batched_delta_stepping(ctx, graph, &specs, &OptConfig::all_on().with_delta(delta))
}

/// The batch's complete mutable kernel state, snapshotted at bucket
/// boundaries when a [`CrashPlan`](simnet::CrashPlan) is active. Scratch
/// buffers (`bufs`, `frontier`, `settled`, `candidates`, `raw`) are
/// excluded: each is fully overwritten before it is read in every
/// superstep. `finished_at` carries virtual timestamps and is checkpointed
/// so rollback restores the exact pre-crash record, but it legitimately
/// differs from a fault-free run (recovery stretches virtual time).
struct BatchState<'a> {
    dist: &'a mut Vec<Weight>,
    parent: &'a mut Vec<u64>,
    finished_at: &'a mut Vec<f64>,
    early_exit: &'a mut Vec<bool>,
    target_dist: &'a mut Vec<Weight>,
    target_parent: &'a mut Vec<u64>,
    live: &'a mut Vec<bool>,
    live_p2p: &'a mut usize,
    buckets: &'a mut BucketQueue,
    stats: &'a mut MultiStats,
}

impl Checkpoint for BatchState<'_> {
    fn save(&self, out: &mut Vec<u8>) {
        put_weight_slice(out, self.dist);
        codec::put_u64_slice(out, self.parent);
        codec::put_f64_slice(out, self.finished_at);
        codec::put_bool_slice(out, self.early_exit);
        put_weight_slice(out, self.target_dist);
        codec::put_u64_slice(out, self.target_parent);
        codec::put_bool_slice(out, self.live);
        codec::put_u64(out, *self.live_p2p as u64);
        self.buckets.save(out);
        codec::put_u64(out, self.stats.supersteps);
        codec::put_u64(out, self.stats.relaxations);
        codec::put_u64(out, self.stats.updates_sent);
        codec::put_u64(out, self.stats.pruned);
        codec::put_u64(out, self.stats.retired);
    }

    fn load(&mut self, buf: &[u8]) {
        let mut pos = 0usize;
        *self.dist = get_weight_vec(buf, &mut pos);
        *self.parent = codec::get_u64_vec(buf, &mut pos);
        *self.finished_at = codec::get_f64_vec(buf, &mut pos);
        *self.early_exit = codec::get_bool_vec(buf, &mut pos);
        *self.target_dist = get_weight_vec(buf, &mut pos);
        *self.target_parent = codec::get_u64_vec(buf, &mut pos);
        *self.live = codec::get_bool_vec(buf, &mut pos);
        *self.live_p2p = codec::get_u64(buf, &mut pos) as usize;
        self.buckets.load(buf, &mut pos);
        self.stats.supersteps = codec::get_u64(buf, &mut pos);
        self.stats.relaxations = codec::get_u64(buf, &mut pos);
        self.stats.updates_sent = codec::get_u64(buf, &mut pos);
        self.stats.pruned = codec::get_u64(buf, &mut pos);
        self.stats.retired = codec::get_u64(buf, &mut pos);
        assert_eq!(pos, buf.len(), "trailing bytes in batch checkpoint");
    }
}

/// Run one batch of lanes through shared delta-stepping supersteps.
/// Collective: every rank must call with identical `specs` and `opts`.
/// Honors `opts.coalescing`, `opts.dedup`, `opts.compression`, and
/// `opts.delta`; the batched kernel always pushes (multi-source pull
/// would broadcast one frontier per lane, defeating the amortization) and
/// never fuses the tail (retirement needs the per-bucket epoch boundary).
///
/// Panics on fault escalation; use [`try_batched_delta_stepping`] to
/// handle crash-recovery exhaustion as a typed error.
pub fn batched_delta_stepping<P: VertexPartition + Sync>(
    ctx: &mut RankCtx,
    graph: &LocalGraph<P>,
    specs: &[BatchSpec],
    opts: &OptConfig,
) -> (MultiDist, MultiStats) {
    match try_batched_delta_stepping(ctx, graph, specs, opts) {
        Ok(out) => out,
        Err(e) => panic!("rank {}: {e}", ctx.rank()),
    }
}

/// [`batched_delta_stepping`] with typed fault escalation: when a crash
/// plan is active and recovery cannot complete (budget exhausted,
/// checkpoint lost), every rank returns the identical `Err` from the same
/// collective point instead of panicking.
pub fn try_batched_delta_stepping<P: VertexPartition + Sync>(
    ctx: &mut RankCtx,
    graph: &LocalGraph<P>,
    specs: &[BatchSpec],
    opts: &OptConfig,
) -> Result<(MultiDist, MultiStats), FaultEscalation> {
    let part = graph.part();
    let p = ctx.size();
    let me = ctx.rank();
    let n_local = graph.local_vertices();
    let lanes = specs.len();
    assert!(lanes > 0, "empty batch");
    assert!(
        (lanes as u64).saturating_mul(n_local.max(1) as u64) <= u32::MAX as u64,
        "batch state exceeds packed u32 keys: {lanes} lanes x {n_local} local vertices"
    );
    let delta = opts.delta.unwrap_or(DEFAULT_DELTA);

    let mut dist = vec![INF_WEIGHT; lanes * n_local];
    let mut parent = vec![NO_PARENT; lanes * n_local];
    let mut finished_at = vec![0.0f64; lanes];
    let mut early_exit = vec![false; lanes];
    let mut target_dist = vec![INF_WEIGHT; lanes];
    let mut target_parent = vec![NO_PARENT; lanes];
    let mut live = vec![true; lanes];
    let bounds: Vec<Weight> = specs.iter().map(|s| s.bound).collect();
    let mut stats = MultiStats::default();

    // Point-to-point bookkeeping: the lanes whose target this rank owns
    // (contributors to the per-epoch retirement allgather) and the global
    // count of live p2p lanes (identical on every rank).
    let my_targets: Vec<(u32, usize)> = specs
        .iter()
        .enumerate()
        .filter_map(|(s, spec)| {
            let t = spec.target?;
            (part.owner(t) == me).then(|| (s as u32, part.to_local(t)))
        })
        .collect();
    let mut live_p2p = specs.iter().filter(|s| s.target.is_some()).count();

    let mut buckets = BucketQueue::new(delta);
    for (s, spec) in specs.iter().enumerate() {
        if part.owner(spec.source) == me {
            let l = part.to_local(spec.source);
            dist[s * n_local + l] = 0.0;
            parent[s * n_local + l] = spec.source;
            buckets.insert((s * n_local + l) as u32, 0.0);
        }
    }

    let mut bufs = TaggedExchangeBufs::new(p);
    let mut frontier: Vec<u32> = Vec::new();
    let mut settled: Vec<u32> = Vec::new();
    let mut candidates: Vec<TaggedUpdate> = Vec::new();
    let mut raw: Vec<u32> = Vec::new();

    // Borrow the full mutable batch state as one Checkpoint view; built
    // fresh at each recovery hook so the borrows end before the kernel
    // body touches the fields again.
    macro_rules! batch_state {
        () => {
            BatchState {
                dist: &mut dist,
                parent: &mut parent,
                finished_at: &mut finished_at,
                early_exit: &mut early_exit,
                target_dist: &mut target_dist,
                target_parent: &mut target_parent,
                live: &mut live,
                live_p2p: &mut live_p2p,
                buckets: &mut buckets,
                stats: &mut stats,
            }
        };
    }

    // Epoch-0 checkpoint is taken after source insertion, so a restore can
    // always rewind to a state that already holds the roots.
    let mut rec = Recovery::begin(ctx, &batch_state!());

    'outer: loop {
        if let Some(r) = rec.as_mut() {
            if r.bucket_boundary(ctx, &mut batch_state!())? {
                continue 'outer;
            }
        }
        let k_local = buckets.min_bucket().map_or(u64::MAX, |k| k as u64);
        let k = ctx.allreduce_min(k_local);
        if k == u64::MAX {
            break;
        }
        let k = k as usize;

        // Retirement epoch: target owners publish live tentatives; every
        // rank applies the identical "settled below bucket k" rule, so the
        // retirement set — and thus the whole batch schedule — is a pure
        // function of the allreduced bucket index and the lane states.
        if live_p2p > 0 {
            let contrib: Vec<TaggedUpdate> = my_targets
                .iter()
                .filter(|&&(s, _)| live[s as usize])
                .map(|&(s, l)| {
                    let idx = s as usize * n_local + l;
                    (s, specs[s as usize].target.unwrap(), dist[idx], parent[idx])
                })
                .collect();
            for block in ctx.allgatherv(&contrib) {
                for (s, _t, d, par) in block {
                    let s = s as usize;
                    if d.is_finite() && buckets.bucket_of(d) < k {
                        live[s] = false;
                        live_p2p -= 1;
                        early_exit[s] = true;
                        finished_at[s] = ctx.now();
                        target_dist[s] = d;
                        target_parent[s] = par;
                        stats.retired += 1;
                        ctx.trace_count(TraceCode::QueryRetired, s as u64, k as u64);
                    }
                }
            }
            if live.iter().all(|&l| !l) {
                break; // every lane was p2p and has retired
            }
        }

        settled.clear();
        // light inner loop
        loop {
            if let Some(r) = rec.as_mut() {
                if r.probe(ctx, &mut batch_state!())? {
                    // restored mid-bucket: the epoch counter rewound, so
                    // re-enter the outer loop from the boundary hook (this
                    // kernel opens no Bucket span, so nothing to close)
                    continue 'outer;
                }
            }
            frontier.clear();
            raw.clear();
            buckets.drain_bucket_into(k, &mut raw);
            frontier.extend(raw.iter().copied().filter(|&e| {
                let d = dist[e as usize];
                live[e as usize / n_local] && d.is_finite() && buckets.bucket_of(d) == k
            }));
            let total = ctx.allreduce_sum(frontier.len() as u64);
            if total == 0 {
                break;
            }
            settled.extend_from_slice(&frontier);

            scan_wave(
                graph,
                &dist,
                &bounds,
                n_local,
                &frontier,
                |w| w < delta,
                &mut candidates,
                &mut stats,
                ctx,
            );
            route_and_apply(
                ctx,
                graph,
                &mut bufs,
                &candidates,
                opts,
                &mut dist,
                &mut parent,
                &mut buckets,
                &live,
                n_local,
                &mut stats,
            );
        }

        // heavy phase for everything this bucket settled
        scan_wave(
            graph,
            &dist,
            &bounds,
            n_local,
            &settled,
            |w| w >= delta,
            &mut candidates,
            &mut stats,
            ctx,
        );
        route_and_apply(
            ctx,
            graph,
            &mut bufs,
            &candidates,
            opts,
            &mut dist,
            &mut parent,
            &mut buckets,
            &live,
            n_local,
            &mut stats,
        );
    }
    if let Some(r) = rec {
        r.finish(ctx);
    }

    // Lanes still live at batch end: full lanes, unreachable targets, and
    // targets that settled in the final bucket. Resolve remaining p2p
    // results with one last allgather so every rank returns identical
    // target values.
    if live_p2p > 0 {
        let contrib: Vec<TaggedUpdate> = my_targets
            .iter()
            .filter(|&&(s, _)| live[s as usize])
            .map(|&(s, l)| {
                let idx = s as usize * n_local + l;
                (s, specs[s as usize].target.unwrap(), dist[idx], parent[idx])
            })
            .collect();
        for block in ctx.allgatherv(&contrib) {
            for (s, _t, d, par) in block {
                target_dist[s as usize] = d;
                target_parent[s as usize] = par;
            }
        }
    }
    let t_end = ctx.allreduce(ctx.now(), |a, b| if a > b { *a } else { *b });
    for s in 0..lanes {
        if live[s] {
            finished_at[s] = t_end;
        }
    }

    Ok((
        MultiDist {
            lanes,
            n_local,
            dist,
            parent,
            finished_at,
            early_exit,
            target_dist,
            target_parent,
        },
        stats,
    ))
}

/// Scan the out-arcs of one packed frontier element against the frozen
/// lane state, emitting improving candidates. Shared by both scan paths,
/// so their (element, arc) emission order is identical.
#[inline]
#[allow(clippy::too_many_arguments)]
fn scan_elem<P: VertexPartition>(
    graph: &LocalGraph<P>,
    dist: &[Weight],
    bounds: &[Weight],
    n_local: usize,
    me: usize,
    e: u32,
    keep: &(impl Fn(Weight) -> bool + Sync),
    mut emit: impl FnMut(TaggedUpdate),
    pruned: &mut u64,
) {
    let part = graph.part();
    let lane = e as usize / n_local;
    let l = e as usize % n_local;
    let du = dist[e as usize];
    let bound = bounds[lane];
    let u_global = part.to_global(me, l);
    let vs = graph.neighbors(l);
    let ws = graph.edge_weights(l);
    for (&v, &w) in vs.iter().zip(ws) {
        if !keep(w) {
            continue;
        }
        let nd = du + w;
        if nd > bound {
            *pruned += 1;
            continue;
        }
        // frozen-read prefilter for locally-owned targets: identical per
        // lane at any batch width, so width-invariance is preserved
        let owner = part.owner(v);
        if owner == me && nd >= dist[lane * n_local + part.to_local(v)] {
            continue;
        }
        emit((lane as u32, v, nd, u_global));
    }
}

/// Phase 1: scan `sources` (packed lane keys) against the frozen state,
/// collecting candidates in (element, arc) order — sequentially below the
/// cutoff, else on the pool under the fixed-chunk contract.
#[allow(clippy::too_many_arguments)]
fn scan_wave<P: VertexPartition + Sync>(
    graph: &LocalGraph<P>,
    dist: &[Weight],
    bounds: &[Weight],
    n_local: usize,
    sources: &[u32],
    keep: impl Fn(Weight) -> bool + Sync,
    out: &mut Vec<TaggedUpdate>,
    stats: &mut MultiStats,
    ctx: &mut RankCtx,
) {
    let me = ctx.rank();
    let scanned: u64 = sources
        .iter()
        .map(|&e| graph.neighbors(e as usize % n_local).len() as u64)
        .sum();
    let mut pruned = 0u64;
    if sources.len() <= SEQ_SCAN_CUTOFF {
        out.clear();
        for &e in sources {
            scan_elem(
                graph,
                dist,
                bounds,
                n_local,
                me,
                e,
                &keep,
                |c| out.push(c),
                &mut pruned,
            );
        }
    } else {
        ctx.trace_begin(TraceCode::TaskWave, sources.len() as u64, 4);
        let keep = &keep;
        let part = graph.part();
        sources
            .par_iter()
            .with_min_len(64)
            .flat_map_iter(|&e| {
                let lane = e as usize / n_local;
                let l = e as usize % n_local;
                let du = dist[e as usize];
                let bound = bounds[lane];
                let u_global = part.to_global(me, l);
                let vs = graph.neighbors(l);
                let ws = graph.edge_weights(l);
                vs.iter().zip(ws).filter_map(move |(&v, &w)| {
                    if !keep(w) {
                        return None;
                    }
                    let nd = du + w;
                    if nd > bound {
                        return None;
                    }
                    if part.owner(v) == me && nd >= dist[lane * n_local + part.to_local(v)] {
                        return None;
                    }
                    Some((lane as u32, v, nd, u_global))
                })
            })
            .collect_into_vec(out);
        ctx.trace_end(TraceCode::TaskWave, sources.len() as u64, 4);
        // the parallel path cannot cheaply count prunes per item; recompute
        // the deterministic count from totals (scanned - kept-by-weight is
        // not available either), so count prunes only on the sequential
        // path and fold the difference into `relaxations` below.
    }
    stats.pruned += pruned;
    stats.relaxations += out.len() as u64;
    ctx.charge_compute(scanned);
}

/// Phase 2: route candidates into per-destination buckets, exchange them
/// under `opts`, and apply the incoming stream in order (strict-`<`
/// improvements; retired lanes are frozen).
#[allow(clippy::too_many_arguments)]
fn route_and_apply<P: VertexPartition>(
    ctx: &mut RankCtx,
    graph: &LocalGraph<P>,
    bufs: &mut TaggedExchangeBufs,
    candidates: &[TaggedUpdate],
    opts: &OptConfig,
    dist: &mut [Weight],
    parent: &mut [u64],
    buckets: &mut BucketQueue,
    live: &[bool],
    n_local: usize,
    stats: &mut MultiStats,
) {
    let part = graph.part();
    for &c in candidates {
        bufs.bucket_mut(part.owner(c.1)).push(c);
    }
    let outcome = exchange_tagged_into(ctx, bufs, opts);
    stats.supersteps += 1;
    stats.updates_sent += outcome.records_sent;
    ctx.charge_compute(outcome.records_received);
    for &(s, v, nd, par) in bufs.incoming() {
        let s = s as usize;
        if !live[s] {
            continue;
        }
        let idx = s * n_local + part.to_local(v);
        if nd < dist[idx] {
            dist[idx] = nd;
            parent[idx] = par;
            buckets.insert(idx as u32, nd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g500_baselines::dijkstra;
    use g500_graph::{Csr, Directedness};
    use g500_partition::{assemble_local_graph, Block1D};
    use simnet::{Machine, MachineConfig};

    #[test]
    fn batched_matches_dijkstra_per_source() {
        let el = g500_gen::simple::erdos_renyi(48, 220, 31);
        let csr = Csr::from_edges(48, &el, Directedness::Undirected);
        let roots = [0u64, 7, 13, 40];
        let p = 3;
        let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(48, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let (md, _) = multi_source_delta_stepping(ctx, &g, &roots, 0.2);
            (0..roots.len())
                .map(|s| md.lane_paths(s).gather_to_all(ctx, g.part()))
                .collect::<Vec<_>>()
        });
        for (s, &root) in roots.iter().enumerate() {
            let oracle = dijkstra(&csr, root);
            assert!(
                rep.results[0][s].distances_match(&oracle, 1e-4),
                "source {s} (root {root})"
            );
        }
    }

    #[test]
    fn batching_amortizes_supersteps() {
        // B sequential runs pay ~B× the supersteps of one batched run
        let gen = g500_gen::KroneckerGenerator::new(g500_gen::KroneckerParams::graph500(9, 8));
        let el = gen.generate_all();
        let n = 512u64;
        let roots = [1u64, 3, 5, 7, 11, 13, 17, 19];
        let p = 4;
        let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(n, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);

            let (_, batched) = multi_source_delta_stepping(ctx, &g, &roots, 0.125);

            let mut sequential_steps = 0u64;
            for &r in &roots {
                let (_, s) = multi_source_delta_stepping(ctx, &g, &[r], 0.125);
                sequential_steps += s.supersteps;
            }
            (batched.supersteps, sequential_steps)
        });
        let (batched, sequential) = rep.results[0];
        assert!(
            batched * 2 < sequential,
            "batched {batched} supersteps vs sequential {sequential}"
        );
    }

    #[test]
    fn single_source_batch_is_just_sssp() {
        let el = g500_gen::simple::path(12, 0.3);
        let csr = Csr::from_edges(12, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, 0);
        let rep = Machine::new(MachineConfig::with_ranks(2)).run(|ctx| {
            let part = Block1D::new(12, 2);
            let mine: Vec<_> = if ctx.rank() == 0 {
                el.iter().collect()
            } else {
                Vec::new()
            };
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let (md, _) = multi_source_delta_stepping(ctx, &g, &[0], 0.5);
            md.lane_paths(0).gather_to_all(ctx, g.part())
        });
        assert!(rep.results[0].distances_match(&oracle, 1e-5));
    }

    #[test]
    fn p2p_lane_retires_with_exact_answer() {
        // a long path graph: the far end settles late, a near target
        // settles early — its lane must retire with the full-run answer
        let el = g500_gen::simple::path(60, 0.3);
        let csr = Csr::from_edges(60, &el, Directedness::Undirected);
        let oracle = dijkstra(&csr, 0);
        let p = 3;
        let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(60, p);
            let m = el.len();
            let (lo, hi) = (ctx.rank() * m / p, (ctx.rank() + 1) * m / p);
            let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let specs = [BatchSpec::p2p(0, 5), BatchSpec::full(0)];
            let (md, stats) =
                batched_delta_stepping(ctx, &g, &specs, &OptConfig::all_on().with_delta(0.5));
            (
                md.early_exit[0],
                md.target_dist[0],
                md.target_parent[0],
                stats.retired,
            )
        });
        let (early, d, par, retired) = rep.results[0];
        assert!(early, "near target must retire before the path drains");
        assert_eq!(retired, 1);
        assert_eq!(d.to_bits(), oracle.dist[5].to_bits());
        assert_eq!(par, oracle.parent[5]);
    }

    #[test]
    fn crash_recovery_is_byte_identical_to_fault_free() {
        // mixed batch (full + p2p + bounded) under a random crash
        // schedule: distances, parents, target results, retirement flags,
        // and all structural counters must match the fault-free run
        // bitwise; only `finished_at` (virtual time) may move.
        let el = g500_gen::simple::erdos_renyi(56, 260, 17);
        let run = |crash: Option<simnet::CrashPlan>| {
            let mut cfg = MachineConfig::with_ranks(4);
            if let Some(plan) = crash {
                cfg = cfg.crashes(plan);
            }
            let el = &el;
            Machine::new(cfg).run(move |ctx| {
                let part = Block1D::new(56, 4);
                let m = el.len();
                let (lo, hi) = (ctx.rank() * m / 4, (ctx.rank() + 1) * m / 4);
                let mine: Vec<_> = (lo..hi).map(|i| el.get(i)).collect();
                let g = assemble_local_graph(ctx, mine.into_iter(), part);
                let specs = [
                    BatchSpec::full(0),
                    BatchSpec::p2p(3, 40),
                    BatchSpec::p2p(7, 9).with_bound(4.0),
                    BatchSpec::full(21),
                ];
                let (md, stats) = try_batched_delta_stepping(
                    ctx,
                    &g,
                    &specs,
                    &OptConfig::all_on().with_delta(0.2),
                )
                .expect("in-budget crashes must be recovered");
                (md, stats)
            })
        };
        let clean = run(None);
        let plan = simnet::CrashPlan::random(0xBA7C, 0.01).with_checkpoint_interval(2);
        let crashed = run(Some(plan));
        assert!(
            crashed.total_stats().saw_crashes(),
            "the schedule must actually crash someone: {:?}",
            crashed.total_stats()
        );
        for (c, f) in clean.results.iter().zip(crashed.results.iter()) {
            let (cmd, cst) = c;
            let (fmd, fst) = f;
            let cbits: Vec<u32> = cmd.dist.iter().map(|d| d.to_bits()).collect();
            let fbits: Vec<u32> = fmd.dist.iter().map(|d| d.to_bits()).collect();
            assert_eq!(cbits, fbits, "distances must be byte-identical");
            assert_eq!(cmd.parent, fmd.parent, "parents must be byte-identical");
            let ctb: Vec<u32> = cmd.target_dist.iter().map(|d| d.to_bits()).collect();
            let ftb: Vec<u32> = fmd.target_dist.iter().map(|d| d.to_bits()).collect();
            assert_eq!(ctb, ftb, "target distances must be byte-identical");
            assert_eq!(cmd.target_parent, fmd.target_parent);
            assert_eq!(cmd.early_exit, fmd.early_exit);
            assert_eq!(cst, fst, "structural counters must be identical");
        }
    }

    #[test]
    fn unreachable_target_resolves_to_inf() {
        // vertex 11 is isolated when the path stops at 10
        let el = g500_gen::simple::path(11, 0.3);
        let rep = Machine::new(MachineConfig::with_ranks(2)).run(|ctx| {
            let part = Block1D::new(12, 2);
            let mine: Vec<_> = if ctx.rank() == 0 {
                el.iter().collect()
            } else {
                Vec::new()
            };
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            let specs = [BatchSpec::p2p(0, 11)];
            let (md, _) =
                batched_delta_stepping(ctx, &g, &specs, &OptConfig::all_on().with_delta(0.5));
            (md.early_exit[0], md.target_dist[0])
        });
        let (early, d) = rep.results[0];
        assert!(!early);
        assert!(d.is_infinite());
    }
}
