//! Adaptive Δ selection.
//!
//! Meyer & Sanders show Δ = Θ(1/d̄) balances the two failure modes: too
//! small a Δ degenerates to Dijkstra (a bucket per vertex, superstep count
//! explodes), too large to Bellman-Ford (wasted re-relaxations). For
//! Graph500 weights (uniform on `[0,1)`, mean ½) the expected number of
//! out-edges of weight < Δ per vertex is `d̄·Δ`, and keeping that near a
//! small constant `c` bounds light-phase cascading; the paper family uses
//! exactly this style of rule. The Δ-sweep experiment (F3) shows measured
//! runtime is U-shaped around this choice.

use g500_graph::Weight;

/// Suggested bucket width for a graph with average out-degree `avg_degree`
/// and mean edge weight `mean_weight`.
///
/// Picks Δ so a vertex expects ≈4 light out-edges per bucket:
/// `Δ = 4 · (2·mean_weight) / d̄`, clamped to a sane range. For Graph500
/// (d̄ = 32 arcs, mean weight ½) this lands at Δ = 0.125.
pub fn suggest_delta(avg_degree: f64, mean_weight: f64) -> Weight {
    if avg_degree <= 0.0 {
        return 1.0;
    }
    let delta = 4.0 * (2.0 * mean_weight) / avg_degree;
    delta.clamp(1e-3, 4.0) as Weight
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph500_profile_lands_near_eighth() {
        let d = suggest_delta(32.0, 0.5);
        assert!((d - 0.125).abs() < 1e-6, "got {d}");
    }

    #[test]
    fn sparser_graphs_get_wider_buckets() {
        assert!(suggest_delta(4.0, 0.5) > suggest_delta(64.0, 0.5));
    }

    #[test]
    fn degenerate_inputs_clamped() {
        assert_eq!(suggest_delta(0.0, 0.5), 1.0);
        assert!(suggest_delta(1e9, 0.5) >= 1e-3);
        assert!(suggest_delta(0.001, 10.0) <= 4.0);
    }
}
