//! Road-network routing: the *other* SSSP regime.
//!
//! Graph500's Kronecker graphs are low-diameter and skewed; road networks
//! are the opposite — bounded degree, huge diameter. Delta-stepping's Δ
//! trade-off looks completely different here, which is why the paper-style
//! adaptive Δ matters. This example routes on a synthetic city grid with
//! congestion-weighted streets and compares Dijkstra, Bellman-Ford,
//! near-far and delta-stepping at several Δ on *host* time.
//!
//! ```text
//! cargo run --release --example road_network
//! ```

use g500_baselines::{bellman_ford, dijkstra, near_far};
use g500_gen::CounterRng;
use g500_graph::{Csr, Directedness, EdgeList};
use g500_sssp::delta_stepping;
use std::time::Instant;

/// A w×h street grid; each street's travel time is 1 + congestion noise.
fn city_grid(w: u64, h: u64, seed: u64) -> EdgeList {
    let base = g500_gen::simple::grid2d(w, h);
    let rng = CounterRng::new(seed, 0);
    base.iter()
        .enumerate()
        .map(|(i, mut e)| {
            e.w = 1.0 + 3.0 * rng.unit_f32(i as u64); // congestion multiplier
            e
        })
        .collect()
}

fn main() {
    let (w, h) = (400u64, 400u64); // 160k intersections, ~320k streets
    let el = city_grid(w, h, 42);
    let n = (w * h) as usize;
    let csr = Csr::from_edges(n, &el, Directedness::Undirected);
    println!(
        "city grid: {}x{} = {} intersections, {} streets\n",
        w,
        h,
        n,
        el.len()
    );

    let depot = 0u64; // northwest corner
    let t0 = Instant::now();
    let oracle = dijkstra(&csr, depot);
    let dijkstra_t = t0.elapsed().as_secs_f64();
    println!("{:<24} {:>9.1} ms   (oracle)", "dijkstra", dijkstra_t * 1e3);

    let t0 = Instant::now();
    let bf = bellman_ford(&csr, depot);
    let bf_t = t0.elapsed().as_secs_f64();
    assert!(bf.distances_match(&oracle, 1e-3));
    println!(
        "{:<24} {:>9.1} ms   ({:.2}x dijkstra)",
        "bellman-ford",
        bf_t * 1e3,
        dijkstra_t / bf_t
    );

    for delta in [0.5f32, 2.0, 8.0, 32.0] {
        let t0 = Instant::now();
        let ds = delta_stepping(&csr, depot, delta);
        let dt = t0.elapsed().as_secs_f64();
        assert!(ds.distances_match(&oracle, 1e-3), "delta {delta}");
        println!(
            "{:<24} {:>9.1} ms   ({:.2}x dijkstra)",
            format!("delta-stepping d={delta}"),
            dt * 1e3,
            dijkstra_t / dt
        );
    }

    let t0 = Instant::now();
    let nf = near_far(&csr, depot, 2.0);
    let nf_t = t0.elapsed().as_secs_f64();
    assert!(nf.distances_match(&oracle, 1e-3));
    println!(
        "{:<24} {:>9.1} ms   ({:.2}x dijkstra)",
        "near-far d=2",
        nf_t * 1e3,
        dijkstra_t / nf_t
    );

    // Route readout: corner-to-corner path via the parent tree.
    let target = (w * h - 1) as usize;
    let mut path = vec![target as u64];
    while *path.last().expect("non-empty") != depot {
        let last = *path.last().expect("non-empty") as usize;
        path.push(oracle.parent[last]);
        assert!(path.len() <= n, "parent chain broken");
    }
    println!(
        "\nroute depot -> far corner: travel time {:.1}, {} intersections crossed (grid diameter {})",
        oracle.dist[target],
        path.len(),
        w + h - 2
    );
    println!("high-diameter regime: small deltas drown in bucket count — the opposite failure mode to Kronecker graphs");
}
