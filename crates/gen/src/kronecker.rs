//! The Graph500 Kronecker (R-MAT) edge generator.
//!
//! Follows the Graph500 specification: `2^scale` vertices,
//! `edgefactor × 2^scale` undirected edges, initiator matrix
//! `(A, B, C, D) = (0.57, 0.19, 0.19, 0.05)`, vertex labels scrambled by a
//! pseudo-random permutation so locality of the recursive construction can't
//! be exploited, and (for the SSSP kernel) uniform `[0, 1)` edge weights.
//!
//! Every edge is a pure function of `(seed, edge_index)`, so
//! [`KroneckerGenerator::edge`] can be called for any index on any rank —
//! generation is embarrassingly parallel and communication-free, the way the
//! record run generated 140 trillion edges in-place.

use crate::rng::CounterRng;
use g500_graph::{BitMixPermutation, EdgeList, VertexId, WEdge};
use rayon::prelude::*;

/// Parameters of a Kronecker graph instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KroneckerParams {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex; Graph500 fixes 16.
    pub edgefactor: u64,
    /// Initiator matrix upper-left probability (Graph500: 0.57).
    pub a: f64,
    /// Initiator upper-right probability (Graph500: 0.19).
    pub b: f64,
    /// Initiator lower-left probability (Graph500: 0.19).
    pub c: f64,
    /// RNG seed; also keys the vertex scrambler.
    pub seed: u64,
}

impl KroneckerParams {
    /// The official Graph500 parameters at `scale` with a chosen seed.
    pub fn graph500(scale: u32, seed: u64) -> Self {
        Self {
            scale,
            edgefactor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
        }
    }

    /// Number of vertices, `2^scale`.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of generated edge records.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.edgefactor << self.scale
    }
}

/// Stream ids carved out of the generator seed; each concern draws from its
/// own independent stream so adding draws to one never perturbs another.
const STREAM_TOPOLOGY: u64 = 0;
const STREAM_WEIGHT: u64 = 1;

/// The generator proper. Cheap to create and `Copy`-cheap to share.
#[derive(Clone, Debug)]
pub struct KroneckerGenerator {
    params: KroneckerParams,
    topo: CounterRng,
    weight: CounterRng,
    scramble: BitMixPermutation,
    /// Precomputed conditional probabilities of the per-level quadrant draw.
    ab: f64,
    a_norm: f64,
    c_norm: f64,
}

impl KroneckerGenerator {
    /// Build a generator for `params`.
    pub fn new(params: KroneckerParams) -> Self {
        assert!(
            params.scale >= 1 && params.scale <= 62,
            "scale out of range"
        );
        let ab = params.a + params.b;
        assert!(ab < 1.0, "A + B must be < 1");
        Self {
            topo: CounterRng::new(params.seed, STREAM_TOPOLOGY),
            weight: CounterRng::new(params.seed, STREAM_WEIGHT),
            scramble: BitMixPermutation::new(params.scale, params.seed ^ 0x5CA1_AB1E),
            ab,
            a_norm: params.a / ab,
            c_norm: params.c / (1.0 - ab),
            params,
        }
    }

    /// The parameters this generator was built with.
    pub fn params(&self) -> &KroneckerParams {
        &self.params
    }

    /// Generate edge `i` (0 ≤ i < `num_edges`). Pure and deterministic.
    ///
    /// Each of the `scale` recursion levels consumes two uniform draws, as in
    /// the reference implementation: the first picks the row half, the
    /// second the column half conditioned on the row.
    pub fn edge(&self, i: u64) -> WEdge {
        debug_assert!(i < self.params.num_edges());
        let mut u: VertexId = 0;
        let mut v: VertexId = 0;
        let base = i * (2 * self.params.scale as u64);
        for level in 0..self.params.scale as u64 {
            let r1 = self.topo.unit_f64(base + 2 * level);
            let r2 = self.topo.unit_f64(base + 2 * level + 1);
            let row = r1 > self.ab;
            let col = r2 > if row { self.c_norm } else { self.a_norm };
            u = (u << 1) | row as u64;
            v = (v << 1) | col as u64;
        }
        WEdge {
            u: self.scramble.apply(u),
            v: self.scramble.apply(v),
            w: self.weight.unit_f32(i),
        }
    }

    /// Generate a contiguous block of edges (how a rank generates its slice).
    pub fn edge_block(&self, range: std::ops::Range<u64>) -> EdgeList {
        let mut el = EdgeList::with_capacity((range.end - range.start) as usize);
        for i in range {
            el.push(self.edge(i));
        }
        el
    }

    /// Generate the whole edge list with rayon over chunks.
    pub fn generate_all(&self) -> EdgeList {
        let m = self.params.num_edges();
        // Each edge is a pure function of its index and blocks concatenate
        // in index order, so block geometry affects only load balance,
        // never the output. Work-size-aware split: below the threshold the
        // whole list is one sequential block (sub-threshold generation is
        // cheaper than any pool hand-off — and never even starts the
        // pool); above it, oversplit the pool ~4× for balance, floored at
        // MIN_GEN_BLOCK edges per block so blocks stay cache-friendly.
        const MIN_GEN_BLOCK: u64 = 1 << 14;
        if m <= 2 * MIN_GEN_BLOCK {
            return self.edge_block(0..m);
        }
        let nchunks = ((rayon::current_num_threads() as u64) * 4)
            .min(m.div_ceil(MIN_GEN_BLOCK))
            .max(1);
        let chunk = m.div_ceil(nchunks).max(1);
        let blocks: Vec<EdgeList> = (0..m)
            .step_by(chunk as usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .with_min_len(1)
            .map(|start| self.edge_block(start..(start + chunk).min(m)))
            .collect();
        let mut out = EdgeList::with_capacity(m as usize);
        for b in &blocks {
            out.extend_from(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> KroneckerGenerator {
        KroneckerGenerator::new(KroneckerParams::graph500(10, 42))
    }

    #[test]
    fn edge_counts_match_spec() {
        let p = KroneckerParams::graph500(10, 1);
        assert_eq!(p.num_vertices(), 1024);
        assert_eq!(p.num_edges(), 16 * 1024);
    }

    #[test]
    fn deterministic_and_block_splittable() {
        let g = small();
        let all = g.edge_block(0..1000);
        let first = g.edge_block(0..500);
        let second = g.edge_block(500..1000);
        for i in 0..500 {
            assert_eq!(all.get(i), first.get(i));
            assert_eq!(all.get(500 + i), second.get(i));
        }
    }

    #[test]
    fn generate_all_equals_blockwise() {
        let g = small();
        let all = g.generate_all();
        assert_eq!(all.len(), 16 * 1024);
        for i in [0usize, 1, 777, 16 * 1024 - 1] {
            assert_eq!(all.get(i), g.edge(i as u64));
        }
    }

    #[test]
    fn endpoints_in_range_and_weights_in_unit_interval() {
        let g = small();
        let n = g.params().num_vertices();
        for i in 0..2000 {
            let e = g.edge(i);
            assert!(e.u < n && e.v < n);
            assert!((0.0..1.0).contains(&e.w));
        }
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let a = KroneckerGenerator::new(KroneckerParams::graph500(10, 1));
        let b = KroneckerGenerator::new(KroneckerParams::graph500(10, 2));
        let same = (0..100).filter(|&i| a.edge(i) == b.edge(i)).count();
        assert!(same < 5, "{same} identical edges across seeds");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // The defining property of Kronecker graphs: a heavy tail. Compare
        // the max degree against the mean; Erdős–Rényi would have max ≈ mean
        // + a few σ, Kronecker is far beyond.
        let g = small();
        let el = g.generate_all();
        let n = g.params().num_vertices() as usize;
        let mut deg = vec![0usize; n];
        for e in el.iter() {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        let mean = 2.0 * el.len() as f64 / n as f64;
        let max = *deg.iter().max().unwrap();
        assert!(
            (max as f64) > 8.0 * mean,
            "max degree {max} not heavy-tailed vs mean {mean:.1}"
        );
    }

    #[test]
    fn initiator_probabilities_are_respected() {
        // Check the top-level quadrant frequencies of the *unscrambled*
        // recursion against (A, B, C, D). We can't see pre-scramble ids
        // from the public API, so rebuild the level-0 draw directly from
        // the generator's RNG streams, the way `edge` consumes them.
        let params = KroneckerParams::graph500(10, 5);
        let m = 40_000u64;
        let (mut a, mut b, mut c, mut d) = (0u64, 0u64, 0u64, 0u64);
        let topo = crate::rng::CounterRng::new(params.seed, 0);
        for i in 0..m {
            let base = i * (2 * params.scale as u64);
            let r1 = topo.unit_f64(base);
            let r2 = topo.unit_f64(base + 1);
            let ab = params.a + params.b;
            let row = r1 > ab;
            let col = r2
                > if row {
                    params.c / (1.0 - ab)
                } else {
                    params.a / ab
                };
            match (row, col) {
                (false, false) => a += 1,
                (false, true) => b += 1,
                (true, false) => c += 1,
                (true, true) => d += 1,
            }
        }
        let f = |x: u64| x as f64 / m as f64;
        assert!((f(a) - 0.57).abs() < 0.01, "A freq {}", f(a));
        assert!((f(b) - 0.19).abs() < 0.01, "B freq {}", f(b));
        assert!((f(c) - 0.19).abs() < 0.01, "C freq {}", f(c));
        assert!((f(d) - 0.05).abs() < 0.01, "D freq {}", f(d));
    }

    #[test]
    fn weights_are_uniform_unit_interval() {
        let g = small();
        let m = 10_000u64;
        let mean: f64 = (0..m).map(|i| g.edge(i).w as f64).sum::<f64>() / m as f64;
        assert!((mean - 0.5).abs() < 0.02, "weight mean {mean}");
        // spread across deciles
        let mut hist = [0u32; 10];
        for i in 0..m {
            hist[((g.edge(i).w * 10.0) as usize).min(9)] += 1;
        }
        for (i, &h) in hist.iter().enumerate() {
            assert!((800..1200).contains(&h), "decile {i}: {h}");
        }
    }

    #[test]
    fn scrambling_decorrelates_ids_from_structure() {
        // Without scrambling, vertex 0 would be the mega-hub (all-zeros
        // path has the highest probability). With scrambling its image is
        // pseudo-random, so vertex 0 itself should not dominate.
        let g = small();
        let el = g.generate_all();
        let deg0 = el.iter().filter(|e| e.u == 0 || e.v == 0).count();
        let n = g.params().num_vertices() as usize;
        let mut deg = vec![0usize; n];
        for e in el.iter() {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        assert!(
            deg0 < max,
            "vertex 0 is still the hub — scrambler inactive?"
        );
    }
}
