//! CI perf-regression gate over the microbenchmark kernels.
//!
//! Runs the thread sweep from `g500_bench::micro` (re-exec'ing itself per
//! thread count), writes the fresh medians to `results/bench_micro.json`,
//! and enforces two rules against `results/bench_baseline.json`:
//!
//! 1. **No single-thread regression:** every kernel's fresh `T=1` median
//!    must stay within `1.25×` of its baseline `T=1` median.
//! 2. **Bounded pool overhead:** on any host — including the 1-core CI
//!    runner — a kernel's median at `T∈{2,4}` must stay within `1.10×` of
//!    its own fresh `T=1` median. Oversubscribed thread counts may not buy
//!    speedup on one core, but the work-stealing pool must keep them from
//!    costing more than 10%.
//!
//! Noise defenses, layered: each gated ratio takes the more favorable of
//! two views — raw medians, or calibration-normalized medians (every
//! child first times a fixed pure-CPU spin; dividing by it cancels
//! uniform host-speed drift, while spin jitter only ever poisons the
//! normalized view, never the raw one). The sweep runs as interleaved
//! cycles whose thread counts execute back-to-back, each cycle is judged
//! independently, and only violations that reproduce in *every* cycle
//! count; a failing first measurement triggers one automatic re-measure
//! that widens the intersection to four cycles. Exit status 0 = pass,
//! 1 = regression (or missing/unparseable baseline).
//!
//! Maintenance modes:
//! * `G500_BLESS_BENCH=1 cargo run --release -p g500-bench --bin perf_gate`
//!   re-measures and rewrites the baseline (run on an idle machine, commit
//!   the result). Intentional slowdowns and new kernels both go through a
//!   bless.
//! * `--report` prints a per-kernel speedup table against the baseline and
//!   never fails — `run_experiments.sh perf` uses it.

use g500_bench::micro::{self, parse_bench_file, BenchFile, Stats, SweepPoint, SWEEP_THREADS};

/// T=1 fresh-vs-baseline failure threshold.
const BASELINE_RATIO: f64 = 1.25;
/// T∈{2,4} vs own fresh T=1 failure threshold.
const OVERHEAD_RATIO: f64 = 1.10;

/// One rule violation. `key` identifies the `(kernel, rule)` pair across
/// cycles so reproductions can be intersected; `what` is the human text
/// from the cycle that first reported it.
struct Violation {
    key: String,
    kernel: String,
    what: String,
}

/// The gated ratio `num / den`, plus a report label. Two views exist:
/// the raw medians, and the calibration-normalized medians
/// (`median / calib` with each cell's own same-process spin stamp). The
/// gate takes whichever view is more favorable — a genuine regression is
/// slow in both, while each noise mode poisons only one: uniform host
/// drift inflates the raw view but cancels from the calibrated one, and
/// spin jitter inflates the calibrated view but leaves the raw one alone.
fn gate_ratio(num: &Stats, den: &Stats) -> (f64, &'static str) {
    let raw = num.median_ns as f64 / den.median_ns.max(1) as f64;
    match (num.normalized(), den.normalized()) {
        (Some(n), Some(d)) if d > 0.0 && n / d < raw => (n / d, "calibrated "),
        _ => (raw, ""),
    }
}

/// Evaluate both gate rules on one cycle's sweep. `baseline` may be
/// `None` when blessing (rule 1 is then skipped).
fn violations(sweep: &[SweepPoint], baseline: Option<&BenchFile>) -> Vec<Violation> {
    let mut out = Vec::new();
    let t1: Vec<(String, Stats)> = sweep
        .iter()
        .find(|(t, _)| *t == 1)
        .map(|(_, rows)| rows.clone())
        .unwrap_or_default();
    if t1.is_empty() {
        out.push(Violation {
            key: "<sweep>/no-t1".into(),
            kernel: "<sweep>".into(),
            what: "no T=1 measurements collected".into(),
        });
        return out;
    }
    for (name, fresh) in &t1 {
        if name == micro::CALIBRATION_KERNEL {
            continue;
        }
        if let Some(base) = baseline {
            match base.stats(name, 1) {
                Some(b) if b.median_ns > 0 => {
                    let (ratio, how) = gate_ratio(fresh, &b);
                    if ratio > BASELINE_RATIO {
                        out.push(Violation {
                            key: format!("{name}/base"),
                            kernel: name.clone(),
                            what: format!(
                                "T=1 median {:.2}ms is {how}{ratio:.2}x baseline {:.2}ms (limit {BASELINE_RATIO}x)",
                                fresh.median_ns as f64 / 1e6,
                                b.median_ns as f64 / 1e6,
                            ),
                        });
                    }
                }
                _ => out.push(Violation {
                    key: format!("{name}/missing"),
                    kernel: name.clone(),
                    what: "kernel missing from baseline — re-bless with G500_BLESS_BENCH=1".into(),
                }),
            }
        }
        for (t, rows) in sweep {
            if *t == 1 {
                continue;
            }
            if let Some((_, s)) = rows.iter().find(|(n, _)| n == name) {
                let (ratio, how) = gate_ratio(s, fresh);
                if ratio > OVERHEAD_RATIO {
                    out.push(Violation {
                        key: format!("{name}/T={t}"),
                        kernel: name.clone(),
                        what: format!(
                            "T={t} median {:.2}ms is {how}{ratio:.2}x own T=1 median {:.2}ms (limit {OVERHEAD_RATIO}x)",
                            s.median_ns as f64 / 1e6,
                            fresh.median_ns as f64 / 1e6,
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Judge every cycle independently and keep only the violations that
/// reproduce in *all* of them. A cycle's thread counts run back-to-back,
/// so its internal ratios see little host drift; a drift window or spin
/// hiccup poisons some cycles but not every one, while a genuine
/// regression is present in each.
fn reproducible_violations(
    cycles: &[Vec<SweepPoint>],
    baseline: Option<&BenchFile>,
) -> Vec<Violation> {
    let mut it = cycles.iter().filter(|c| !c.is_empty());
    let Some(first) = it.next() else {
        return vec![Violation {
            key: "<sweep>/no-cycles".into(),
            kernel: "<sweep>".into(),
            what: "no sweep cycle produced measurements".into(),
        }];
    };
    let mut bad = violations(first, baseline);
    for cycle in it {
        if bad.is_empty() {
            break;
        }
        let again = violations(cycle, baseline);
        bad.retain(|v| again.iter().any(|a| a.key == v.key));
    }
    bad
}

/// Load and parse the baseline file, if present.
fn load_baseline(path: &std::path::Path) -> Option<Result<BenchFile, String>> {
    match std::fs::read_to_string(path) {
        Ok(text) => Some(parse_bench_file(&text)),
        Err(_) => None,
    }
}

/// Print the `--report` speedup table: per kernel, median ms at every
/// swept thread count plus the ratio of baseline T=1 to fresh T=1
/// (>1 = faster than baseline).
fn report(sweep: &[SweepPoint], baseline: Option<&BenchFile>) {
    let Some((_, t1)) = sweep.iter().find(|(t, _)| *t == 1) else {
        println!("no T=1 measurements; nothing to report");
        return;
    };
    print!("{:<28}", "kernel");
    for t in SWEEP_THREADS {
        print!("{:>12}", format!("T={t} (ms)"));
    }
    println!("{:>14}", "vs baseline");
    for (name, fresh) in t1 {
        print!("{name:<28}");
        for t in SWEEP_THREADS {
            match sweep
                .iter()
                .find(|(st, _)| *st == t)
                .and_then(|(_, rows)| rows.iter().find(|(n, _)| n == name))
            {
                Some((_, s)) => print!("{:>12.2}", s.median_ns as f64 / 1e6),
                None => print!("{:>12}", "-"),
            }
        }
        match baseline.and_then(|b| b.stats(name, 1)) {
            Some(b) if fresh.median_ns > 0 => {
                println!("{:>13.2}x", b.median_ns as f64 / fresh.median_ns as f64)
            }
            _ => println!("{:>14}", "-"),
        }
    }
}

fn main() {
    if std::env::var_os(micro::CHILD_ENV).is_some() {
        micro::child_main();
        return;
    }
    let report_only = std::env::args().any(|a| a == "--report");
    let bless = std::env::var_os("G500_BLESS_BENCH").is_some_and(|v| v == "1");
    let exe = std::env::current_exe().expect("cannot locate own executable");
    let rev = micro::git_rev();
    let results = micro::results_dir();
    let micro_path = results.join("bench_micro.json");
    let baseline_path = results.join("bench_baseline.json");

    // Two interleaved cycles. The JSON artifacts get the min-merged view;
    // the gate rules judge each cycle separately (see
    // `reproducible_violations`).
    let mut cycles = micro::run_sweep_each(&exe, 2);
    let merge = |cycles: &[Vec<SweepPoint>]| {
        let mut best: Vec<SweepPoint> = Vec::new();
        for c in cycles {
            micro::merge_min(&mut best, c.clone());
        }
        best.sort_by_key(|(t, _)| *t);
        best
    };
    let sweep = merge(&cycles);
    if sweep.is_empty() {
        eprintln!("perf_gate: no sweep children succeeded");
        std::process::exit(1);
    }
    if let Err(e) = micro::write_sweep_json(&micro_path, &rev, &sweep) {
        eprintln!("perf_gate: cannot write {}: {e}", micro_path.display());
    } else {
        eprintln!("perf_gate: wrote {}", micro_path.display());
    }

    if bless {
        micro::write_sweep_json(&baseline_path, &rev, &sweep)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", baseline_path.display()));
        println!(
            "blessed baseline at {} (rev {rev})",
            baseline_path.display()
        );
        return;
    }

    let baseline = match load_baseline(&baseline_path) {
        Some(Ok(b)) => Some(b),
        Some(Err(e)) => {
            eprintln!(
                "perf_gate: {} is unparseable ({e}); re-bless it",
                baseline_path.display()
            );
            if report_only {
                None
            } else {
                std::process::exit(1);
            }
        }
        None if report_only => None,
        None => {
            eprintln!(
                "perf_gate: no baseline at {}; generate one with G500_BLESS_BENCH=1",
                baseline_path.display()
            );
            std::process::exit(1);
        }
    };

    if report_only {
        report(&sweep, baseline.as_ref());
        return;
    }

    let mut bad = reproducible_violations(&cycles, baseline.as_ref());
    if !bad.is_empty() {
        // Re-measure once: a loaded CI host can blow a median through no
        // fault of the code. The two new cycles join the intersection, so
        // a violation must now reproduce in all four cycles — a genuine
        // regression is slow in every one; a drift window is not.
        eprintln!(
            "perf_gate: {} violation(s) on first sweep; re-measuring once to rule out noise…",
            bad.len()
        );
        cycles.extend(micro::run_sweep_each(&exe, 2));
        bad = reproducible_violations(&cycles, baseline.as_ref());
    }
    if bad.is_empty() {
        println!(
            "perf_gate: PASS — {} kernels within {BASELINE_RATIO}x of baseline (rev {}) and {OVERHEAD_RATIO}x pool-overhead bound",
            sweep.first().map_or(0, |(_, rows)| {
                rows.iter()
                    .filter(|(n, _)| n != micro::CALIBRATION_KERNEL)
                    .count()
            }),
            baseline.as_ref().map_or("?".into(), |b| b.git_rev.clone()),
        );
    } else {
        eprintln!("perf_gate: FAIL — {} reproducible violation(s):", bad.len());
        for v in &bad {
            eprintln!("  {:<28} {}", v.kernel, v.what);
        }
        eprintln!("if intentional (e.g. a known slowdown traded for correctness), re-bless: G500_BLESS_BENCH=1 cargo run --release -p g500-bench --bin perf_gate");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(median_ns: u64, calib_ns: u64) -> Stats {
        Stats {
            median_ns,
            p10_ns: median_ns,
            p90_ns: median_ns,
            calib_ns,
        }
    }

    #[test]
    fn gate_ratio_takes_the_more_favorable_view() {
        // Uniform 2x host slowdown: raw says 2.0x, calibration cancels it.
        let (r, how) = gate_ratio(&st(200, 100), &st(100, 50));
        assert!((r - 1.0).abs() < 1e-9);
        assert_eq!(how, "calibrated ");
        // Spin hiccup on the numerator side: calibrated view says 2.0x,
        // raw view says 1.0x — raw wins.
        let (r, how) = gate_ratio(&st(100, 25), &st(100, 50));
        assert!((r - 1.0).abs() < 1e-9);
        assert_eq!(how, "");
        // No stamps → raw only.
        let (r, how) = gate_ratio(&st(300, 0), &st(100, 0));
        assert!((r - 3.0).abs() < 1e-9);
        assert_eq!(how, "");
    }

    fn cycle(t1_med: u64, t1_calib: u64, t4_med: u64, t4_calib: u64) -> Vec<SweepPoint> {
        vec![
            (1, vec![("k".to_string(), st(t1_med, t1_calib))]),
            (4, vec![("k".to_string(), st(t4_med, t4_calib))]),
        ]
    }

    #[test]
    fn overhead_violation_must_reproduce_in_every_cycle() {
        // Cycle 0: T=4 is 1.5x in both views. Cycle 1: clean. Not
        // reproducible → no violation.
        let cycles = vec![cycle(100, 50, 150, 50), cycle(100, 50, 100, 50)];
        assert!(reproducible_violations(&cycles, None).is_empty());
        // Slow in both cycles and both views → reported once.
        let cycles = vec![cycle(100, 50, 150, 50), cycle(100, 50, 160, 50)];
        let bad = reproducible_violations(&cycles, None);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].key, "k/T=4");
    }

    #[test]
    fn baseline_rule_cancels_uniform_drift() {
        let mut base = BenchFile {
            git_rev: "base".into(),
            thread_counts: vec![1],
            kernels: Vec::new(),
        };
        base.kernels.push((
            "k".to_string(),
            [(1usize, st(100, 50))].into_iter().collect(),
        ));
        // Host is uniformly 2x slower than at bless time: kernel 200ns but
        // the spin also doubled — calibrated ratio 1.0, gate passes.
        let cycles = vec![vec![(1, vec![("k".to_string(), st(200, 100))])]];
        assert!(reproducible_violations(&cycles, Some(&base)).is_empty());
        // A genuine 2x regression leaves the spin alone — both views
        // agree and the gate fails.
        let cycles = vec![vec![(1, vec![("k".to_string(), st(200, 50))])]];
        let bad = reproducible_violations(&cycles, Some(&base));
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].key, "k/base");
    }

    #[test]
    fn empty_cycles_are_skipped_but_all_empty_fails() {
        let cycles = vec![Vec::new(), cycle(100, 50, 100, 50)];
        assert!(reproducible_violations(&cycles, None).is_empty());
        let bad = reproducible_violations(&[Vec::new(), Vec::new()], None);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].key, "<sweep>/no-cycles");
    }
}
