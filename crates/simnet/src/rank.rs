//! Per-rank execution context: mailboxes, virtual clock, point-to-point
//! messaging.
//!
//! A [`RankCtx`] is handed to the SPMD closure for each rank. It owns the
//! rank's identity, virtual clock, traffic counters, and a transport that is
//! either one free-running channel per rank ([`SchedMode::Threads`]) or the
//! shared deterministic scheduler ([`SchedMode::Deterministic`]). Message
//! *matching* follows MPI: a receive names `(source, tag)` and non-matching
//! envelopes are parked — this is what keeps back-to-back collectives from
//! stealing each other's traffic even when ranks run arbitrarily skewed.
//!
//! [`SchedMode`]: crate::sched::SchedMode
//! [`SchedMode::Threads`]: crate::sched::SchedMode::Threads
//! [`SchedMode::Deterministic`]: crate::sched::SchedMode::Deterministic

use crate::cost::{ComputeModel, LogGP, Topology};
use crate::fault::CrashPlan;
use crate::machine::MachineConfig;
use crate::recovery::{CrashState, FaultEscalation};
use crate::sched::{splitmix64, SchedCore};
use crate::stats::NetStats;
use crate::trace::{TraceBuf, TraceCode, TraceKind};
use crate::transport::{SenderTransport, TransportError, TransportIo};
use crate::wire::{decode_vec_checked, encode_slice, Wire};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Message tag. Application tags must be `< TAG_COLLECTIVE_BASE`.
pub type Tag = u64;

/// Tags at or above this value are reserved for internal collectives.
pub const TAG_COLLECTIVE_BASE: Tag = 1 << 48;

#[derive(Debug)]
pub(crate) struct Envelope {
    pub src: usize,
    pub tag: Tag,
    /// Virtual time at which the payload is available at the receiver.
    pub arrive: f64,
    /// Global deposit sequence number (deterministic mode; a per-sender
    /// counter in threaded mode). Breaks delivery-order ties and names the
    /// message in orphan diagnostics.
    pub seq: u64,
    pub payload: Vec<u8>,
}

/// Which accounting bucket a send belongs to.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum TrafficClass {
    User,
    Collective,
}

/// How this rank talks to its peers.
pub(crate) enum Transport {
    /// Free-running threads: a channel per rank, abort-flag watchdog.
    Threads {
        senders: Vec<Sender<Envelope>>,
        rx: Receiver<Envelope>,
        pending: VecDeque<Envelope>,
        /// Set when any rank panics; waiting ranks notice and abort too, so
        /// a single fault fail-stops the whole job instead of deadlocking.
        abort: Arc<AtomicBool>,
        /// Per-sender sequence counter (diagnostics only in this mode).
        seq: u64,
    },
    /// Serialized seeded execution through the shared scheduler.
    Det { core: Arc<SchedCore> },
}

/// What [`RankCtx::into_parts`] hands back to the machine: counters, final
/// clock, orphan diagnostics, and the trace buffer when tracing was on.
pub(crate) type RankParts = (NetStats, f64, Vec<(usize, Tag, u64)>, Option<Box<TraceBuf>>);

/// The per-rank handle: identity, clock, transport, counters.
pub struct RankCtx {
    rank: usize,
    size: usize,
    transport: Transport,
    now: f64,
    loggp: LogGP,
    topo: Topology,
    compute: ComputeModel,
    stats: NetStats,
    pub(crate) coll_seq: u64,
    subcomm_counter: u64,
    /// SplitMix64 stream behind [`RankCtx::delivery_order`]; zero means
    /// "identity orders" (threaded mode, or deterministic seed 0).
    perm_state: u64,
    /// Reliable-transport state; `Some` only when the machine's
    /// [`FaultPlan`](crate::fault::FaultPlan) is active, so a fault-free
    /// machine pays zero overhead and keeps the historical lossless byte
    /// accounting bit-for-bit.
    reliable: Option<Box<SenderTransport>>,
    /// Crash-fault state (lottery, restore budget, recovery tag space);
    /// `Some` only when the machine's [`CrashPlan`] is active. It lives
    /// here rather than in [`crate::recovery::Recovery`] because it must
    /// outlive individual kernel runs: the lottery's draw stream and the
    /// job-wide restore budget are monotone across every kernel a rank
    /// executes.
    crash: Option<Box<CrashState>>,
    /// Trace buffer; `Some` only when the machine's
    /// [`TraceConfig`](crate::trace::TraceConfig) is enabled, so an
    /// untraced run pays a `None` branch per instrumentation site and
    /// nothing else.
    trace: Option<Box<TraceBuf>>,
}

impl RankCtx {
    pub(crate) fn new(rank: usize, size: usize, transport: Transport, cfg: &MachineConfig) -> Self {
        let perm_state = match &transport {
            Transport::Threads { .. } => 0,
            Transport::Det { core } => {
                if core.seed() == 0 {
                    0
                } else {
                    splitmix64(core.seed() ^ (rank as u64).wrapping_mul(0xA076_1D64_78BD_642F))
                }
            }
        };
        Self {
            rank,
            size,
            transport,
            now: 0.0,
            loggp: cfg.loggp,
            topo: cfg.topology,
            compute: cfg.compute,
            stats: NetStats::default(),
            coll_seq: 0,
            subcomm_counter: 0,
            perm_state,
            reliable: cfg
                .fault
                .is_active()
                .then(|| Box::new(SenderTransport::new(cfg.fault, rank, size))),
            crash: cfg
                .crash
                .is_active()
                .then(|| Box::new(CrashState::new(cfg.crash, rank))),
            trace: cfg.trace.enabled.then(|| Box::new(TraceBuf::new(rank))),
        }
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The rank's virtual clock, in simulated seconds since launch.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// True when running under the deterministic scheduler.
    pub fn is_deterministic(&self) -> bool {
        matches!(self.transport, Transport::Det { .. })
    }

    /// A permutation of `0..n` that algorithms apply to any *semantically
    /// order-free* loop over per-peer data (e.g. merging the blocks of an
    /// all-to-all). Identity in threaded mode and for deterministic seed 0;
    /// a seeded Fisher–Yates shuffle otherwise. This is the schedule
    /// fuzzer's lever: a correct algorithm must produce identical results
    /// for every permutation, because message delivery order between ranks
    /// is never guaranteed.
    pub fn delivery_order(&mut self, n: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        if self.perm_state != 0 && n > 1 {
            for i in (1..n).rev() {
                self.perm_state = splitmix64(self.perm_state);
                let j = (self.perm_state % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
        }
        order
    }

    /// Snapshot of the traffic counters so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Record `n` queries shed by a serving layer (degraded answers after
    /// recovery failure or a blown deadline) into this rank's counters.
    pub fn count_queries_shed(&mut self, n: u64) {
        self.stats.queries_shed += n;
    }

    /// Record `n` queries retried after a crashed admission window was
    /// re-run from its last checkpoint.
    pub fn count_queries_retried(&mut self, n: u64) {
        self.stats.queries_retried += n;
    }

    /// True when this run records trace events. Instrumentation sites that
    /// need to *compute* an event payload (e.g. snapshot counters) can gate
    /// on this to stay zero-cost when tracing is off.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Open a span of `code` at the current virtual time.
    #[inline]
    pub fn trace_begin(&mut self, code: TraceCode, a: u64, b: u64) {
        if let Some(tb) = self.trace.as_deref_mut() {
            tb.record(self.now, TraceKind::Begin, code, a, b);
        }
    }

    /// Close the innermost open span of `code` at the current virtual time.
    #[inline]
    pub fn trace_end(&mut self, code: TraceCode, a: u64, b: u64) {
        if let Some(tb) = self.trace.as_deref_mut() {
            tb.record(self.now, TraceKind::End, code, a, b);
        }
    }

    /// Record a counter sample of `code` at the current virtual time.
    #[inline]
    pub fn trace_count(&mut self, code: TraceCode, a: u64, b: u64) {
        if let Some(tb) = self.trace.as_deref_mut() {
            tb.record(self.now, TraceKind::Count, code, a, b);
        }
    }

    /// Record an `f64`-valued counter sample (value carried as f64 bits).
    #[inline]
    pub fn trace_count_f64(&mut self, code: TraceCode, x: f64, b: u64) {
        if let Some(tb) = self.trace.as_deref_mut() {
            tb.record(self.now, TraceKind::Count, code, x.to_bits(), b);
        }
    }

    /// Tear down, returning counters, final clock, (threaded mode) any
    /// envelopes that were delivered but never received — best-effort orphan
    /// diagnostics as `(src, tag, seq)` — and the trace buffer when tracing
    /// was on. In deterministic mode the scheduler core holds the
    /// authoritative orphan list.
    pub(crate) fn into_parts(self) -> RankParts {
        let leftovers = match self.transport {
            Transport::Threads { rx, pending, .. } => pending
                .into_iter()
                .map(|e| (e.src, e.tag, e.seq))
                .chain(rx.try_iter().map(|e| (e.src, e.tag, e.seq)))
                .collect(),
            Transport::Det { core } => {
                core.finish(self.rank, self.now);
                Vec::new()
            }
        };
        (self.stats, self.now, leftovers, self.trace)
    }

    pub(crate) fn bump_collective(&mut self) {
        self.stats.collectives += 1;
    }

    pub(crate) fn bump_barrier(&mut self) {
        self.stats.barriers += 1;
    }

    /// Allocate the next sub-communicator namespace id. SPMD programs call
    /// `split` in the same order everywhere, so ids agree globally.
    pub(crate) fn next_subcomm_id(&mut self) -> u64 {
        let id = self.subcomm_counter;
        self.subcomm_counter += 1;
        id
    }

    /// Charge `ops` abstract compute operations (edge relaxations, vertex
    /// scans) against the virtual clock.
    pub fn charge_compute(&mut self, ops: u64) {
        let dt = self.compute.seconds(ops);
        self.now += dt;
        self.stats.compute_s += dt;
    }

    /// Charge an explicit number of simulated seconds of compute (for costs
    /// that are not op-shaped, e.g. a modeled sort).
    pub fn charge_seconds(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0);
        self.now += dt;
        self.stats.compute_s += dt;
    }

    /// Charge simulated seconds of *waiting* (failure-detection timeouts,
    /// respawn delays): advances the clock against the communication
    /// bucket, like a blocked receive.
    pub(crate) fn charge_wait(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0);
        self.now += dt;
        self.stats.comm_s += dt;
    }

    /// Mutable counter access for the recovery machinery.
    pub(crate) fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    /// The machine's checkpoint interval, `None` when crash faults are off
    /// (the recovery layer's activation switch).
    pub(crate) fn crash_interval(&self) -> Option<u64> {
        self.crash.as_ref().map(|c| c.plan.checkpoint_interval)
    }

    /// The active crash plan (call only when crash faults are on).
    pub(crate) fn crash_plan(&self) -> CrashPlan {
        self.crash.as_ref().expect("crash plan active").plan
    }

    /// Draw this rank's crash lottery for one recovery probe.
    pub(crate) fn crash_draw(&mut self) -> bool {
        self.crash
            .as_mut()
            .expect("crash plan active")
            .lottery
            .crash_now()
    }

    /// Account `n` freshly agreed crashes against the job-wide restore
    /// budget; returns the new total. Called with the identical `n` at the
    /// identical point on every rank, so the total agrees globally.
    pub(crate) fn add_restores(&mut self, n: u32) -> u32 {
        let c = self.crash.as_mut().expect("crash plan active");
        c.restores_used += n;
        c.restores_used
    }

    /// Allocate the next recovery-traffic tag sequence number (globally
    /// agreed: bumped only at collectively consistent points).
    pub(crate) fn next_recovery_seq(&mut self) -> u64 {
        let c = self.crash.as_mut().expect("crash plan active");
        let s = c.recovery_seq;
        c.recovery_seq += 1;
        s
    }

    pub(crate) fn send_bytes_class(
        &mut self,
        dest: usize,
        tag: Tag,
        payload: Vec<u8>,
        class: TrafficClass,
    ) {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        let bytes = payload.len() as u64;
        match class {
            TrafficClass::User => {
                debug_assert!(
                    tag < TAG_COLLECTIVE_BASE,
                    "tag collides with collective space"
                );
                self.stats.user_msgs += 1;
                self.stats.user_bytes += bytes;
            }
            TrafficClass::Collective => {
                self.stats.coll_msgs += 1;
                self.stats.coll_bytes += bytes;
            }
        }
        // Injected stall windows fire in sent-message-count space, before
        // this send is charged.
        if let Some(rel) = self.reliable.as_mut() {
            if let Some((dt, hit)) = rel.on_send() {
                self.now += dt;
                self.stats.stall_s += dt;
                self.stats.stall_events += hit;
            }
        }
        // Sender-side overhead.
        self.now += self.loggp.overhead;
        self.stats.comm_s += self.loggp.overhead;
        let hops = self.topo.hops(self.rank, dest);
        let arrive = match self.reliable.as_mut() {
            None => self.now + self.loggp.transit(payload.len(), hops),
            Some(rel) => {
                // Lossy link: run the reliable protocol (framing, fault
                // lottery, dedup/reassembly, retransmit backoff) to
                // completion; the mailbox below stays lossless and carries
                // the reassembled payload exactly once.
                let loggp = self.loggp;
                let mut io = TransportIo {
                    now: &mut self.now,
                    stats: &mut self.stats,
                    trace: self.trace.as_deref_mut(),
                };
                match rel.deliver(dest, tag, &payload, &mut io, |frame_len| {
                    loggp.transit(frame_len, hops)
                }) {
                    Ok(arrive) => arrive,
                    // Typed escalation: carried out of arbitrarily deep
                    // send paths (collectives, subcomms, exchanges) as a
                    // panic payload, caught and downcast by
                    // `Machine::try_run` into a structured `Err`.
                    Err(e) => std::panic::panic_any(FaultEscalation::Transport(e)),
                }
            }
        };
        let env = Envelope {
            src: self.rank,
            tag,
            arrive,
            seq: 0,
            payload,
        };
        match &mut self.transport {
            Transport::Threads { senders, seq, .. } => {
                let mut env = env;
                env.seq = *seq;
                *seq += 1;
                senders[dest]
                    .send(env)
                    .expect("peer rank hung up (panicked?)");
            }
            Transport::Det { core } => {
                let core = Arc::clone(core);
                core.deposit(self.rank, self.now, dest, env);
            }
        }
    }

    /// Send a raw byte payload to `dest` with `tag`.
    pub fn send_bytes(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) {
        self.send_bytes_class(dest, tag, payload, TrafficClass::User);
    }

    /// Send a slice of typed records.
    pub fn send<T: Wire>(&mut self, dest: usize, tag: Tag, items: &[T]) {
        self.send_bytes(dest, tag, encode_slice(items));
    }

    pub(crate) fn recv_bytes_class(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        let env = match &mut self.transport {
            Transport::Det { core } => {
                let core = Arc::clone(core);
                core.recv_match(self.rank, self.now, src, tag)
            }
            Transport::Threads {
                rx, pending, abort, ..
            } => {
                // First look in the pending queue.
                if let Some(idx) = pending.iter().position(|e| e.src == src && e.tag == tag) {
                    pending.remove(idx).expect("index just found")
                } else {
                    // Otherwise pull from the channel, parking non-matching
                    // envelopes. Poll with a timeout so a fault elsewhere
                    // (abort flag) is noticed instead of waiting forever on
                    // a message that will never come.
                    loop {
                        match rx.recv_timeout(Duration::from_millis(5)) {
                            Ok(env) => {
                                if env.src == src && env.tag == tag {
                                    break env;
                                }
                                pending.push_back(env);
                            }
                            Err(RecvTimeoutError::Timeout) => {
                                if abort.load(Ordering::Acquire) {
                                    panic!(
                                        "rank {}: job aborted — another rank failed while this \
                                         rank was waiting for ({src}, tag {tag})",
                                        self.rank
                                    );
                                }
                            }
                            Err(RecvTimeoutError::Disconnected) => {
                                panic!(
                                    "rank {}: all peers hung up while waiting for \
                                     ({src}, tag {tag})",
                                    self.rank
                                );
                            }
                        }
                    }
                }
            }
        };
        debug_assert!(
            env.src == src && env.tag == tag,
            "misrouted envelope: got (src {}, tag {:#x}), wanted (src {src}, tag {tag:#x})",
            env.src,
            env.tag
        );
        self.consume(env)
    }

    fn consume(&mut self, env: Envelope) -> Vec<u8> {
        // Wait until the payload has arrived in virtual time, then pay the
        // receiver-side overhead.
        if env.arrive > self.now {
            self.stats.comm_s += env.arrive - self.now;
            self.now = env.arrive;
        }
        self.now += self.loggp.overhead;
        self.stats.comm_s += self.loggp.overhead;
        env.payload
    }

    /// Receive the raw payload of the next message from `(src, tag)`.
    /// Blocks (in host time) until it arrives.
    pub fn recv_bytes(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        self.recv_bytes_class(src, tag)
    }

    /// Receive a slice of typed records from `(src, tag)`.
    ///
    /// Panics with a [`TransportError::Decode`] fail-stop if the payload
    /// does not decode as a whole number of `T`s — a truncated/garbage
    /// payload or mismatched send/recv types must surface as a diagnosable
    /// transport error, never as a silently truncated batch.
    pub fn recv<T: Wire>(&mut self, src: usize, tag: Tag) -> Vec<T> {
        self.try_recv(src, tag)
            .unwrap_or_else(|e| panic!("rank {}: {e}", self.rank))
    }

    /// Like [`RankCtx::recv`], but returns an undecodable payload as a
    /// structured [`TransportError`] instead of panicking.
    pub fn try_recv<T: Wire>(&mut self, src: usize, tag: Tag) -> Result<Vec<T>, TransportError> {
        let buf = self.recv_bytes(src, tag);
        decode_vec_checked(&buf).map_err(|e| TransportError::Decode {
            src,
            dst: self.rank,
            tag,
            len: e.len,
            elem_size: e.elem_size,
        })
    }

    /// Convenience: send a single record.
    pub fn send_one<T: Wire>(&mut self, dest: usize, tag: Tag, item: T) {
        self.send(dest, tag, &[item]);
    }

    /// Convenience: receive exactly one record.
    pub fn recv_one<T: Wire>(&mut self, src: usize, tag: Tag) -> T {
        let mut v = self.recv::<T>(src, tag);
        assert_eq!(v.len(), 1, "expected exactly one record");
        v.pop().expect("length checked")
    }
}
