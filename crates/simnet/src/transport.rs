//! Deterministic reliable transport: CRC32-framed packets, per-stream
//! sequence numbers, receiver-side dedup/reassembly, and ack/retransmit
//! with virtual-time exponential backoff.
//!
//! This is the defender half of the lossy-network contract (the adversary
//! — the seeded fault lottery — lives in [`crate::fault`]). Beneath
//! [`RankCtx::send_bytes`], every message is fragmented into MTU-sized
//! frames, each carrying a CRC32 over header+payload and a per-`(src, dst,
//! tag)` sequence number. The link protocol is then *simulated to
//! completion at send time*: each frame's transmission attempts draw fates
//! from the sender-owned per-link SplitMix64 stream, corrupted copies are
//! literally bit-flipped and rejected by the real [`Frame::decode`] CRC
//! check, duplicates are deduplicated by the real [`Reassembler`], and
//! every failed attempt (data lost, frame corrupted, or ack lost) charges
//! a retransmit timeout with exponential backoff to the sender's virtual
//! clock. Only the fully reassembled payload is deposited into the
//! receiver's mailbox — exactly once — so the mailbox/scheduler layer
//! above stays lossless and both [`SchedMode`]s see identical values.
//!
//! Running the protocol synchronously inside the send is the simulation
//! analogue of an MPI progress engine: the receive side of a real NIC's
//! reliable link layer runs concurrently with the application, and its
//! *observable effect* — in-order, exactly-once delivery, with latency
//! inflated by retransmissions — is reproduced here with the actual
//! receiver-side algorithms, just executed on the sender's thread. Because
//! the fault lottery and all protocol state are owned by the sending rank,
//! the entire fault/retry schedule is a pure function of
//! [`FaultPlan`](crate::fault::FaultPlan) — independent of thread timing
//! and scheduler seed — which is what extends the determinism contract to
//! lossy networks.
//!
//! When the budget of [`FaultPlan::retry_budget`] retransmissions is
//! exhausted the transport escalates a typed
//! [`TransportError::RetryBudgetExhausted`] naming the link, frame
//! sequence number, and retry count. The send path wraps it in a
//! [`FaultEscalation`](crate::recovery::FaultEscalation) panic payload
//! that `Machine::try_run` surfaces as a structured `Err` (and
//! `Machine::run` re-raises with the historical diagnosable message), so
//! the job fail-stops without a hang under either scheduler.
//!
//! [`RankCtx::send_bytes`]: crate::rank::RankCtx::send_bytes
//! [`SchedMode`]: crate::sched::SchedMode

use crate::fault::{FaultPlan, FrameFate, LinkRng, StallSchedule};
use crate::rank::Tag;
use crate::stats::NetStats;
use crate::trace::{TraceBuf, TraceCode, TraceKind};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Frame magic: `b"G500"` little-endian.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"G500");

/// Encoded frame header size in bytes.
pub const HEADER_SIZE: usize = 4 + 4 + 4 + 8 + 8 + 4 + 4;

/// Byte offset of the CRC field inside the header.
const CRC_OFFSET: usize = HEADER_SIZE - 4;

// ---- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) ----

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// Fold `bytes` into a running CRC32 state (start from
/// [`CRC_INIT`], finish with [`crc_finish`]).
pub fn crc_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = CRC_TABLE[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// Initial CRC32 state.
pub const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Final xor of the CRC32 state.
pub fn crc_finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc_finish(crc_update(CRC_INIT, bytes))
}

// ---- frames ----

/// One link-layer packet: a fragment of an application message, framed
/// with routing metadata, a per-`(src, dst, tag)` sequence number, and a
/// CRC32 over header+payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Sending rank.
    pub src: u32,
    /// Destination rank.
    pub dst: u32,
    /// Application/collective tag of the carried message.
    pub tag: Tag,
    /// Stream sequence number (monotone per `(src, dst, tag)`).
    pub seq: u64,
    /// The carried payload fragment.
    pub payload: Vec<u8>,
}

/// Why a received byte buffer is not a valid frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than a header, or shorter than the header's claimed length.
    Truncated,
    /// The magic word does not match.
    BadMagic,
    /// Trailing bytes beyond the header's claimed payload length.
    LengthMismatch,
    /// CRC32 over header+payload does not match the stored checksum.
    CrcMismatch {
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum recomputed from the received bytes.
        computed: u32,
    },
}

impl Frame {
    /// Serialize to wire bytes: `magic | src | dst | tag | seq | len | crc
    /// | payload`, CRC32 computed over every byte except the CRC field.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_SIZE + self.payload.len());
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(&self.dst.to_le_bytes());
        out.extend_from_slice(&self.tag.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // crc placeholder
        out.extend_from_slice(&self.payload);
        let crc = frame_crc(&out);
        out[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse and verify wire bytes. Any burst corruption of ≤ 32
    /// contiguous bits anywhere in the buffer is guaranteed to be caught
    /// (CRC32 burst-error property), surfacing as one of the
    /// [`FrameError`] variants.
    pub fn decode(buf: &[u8]) -> Result<Frame, FrameError> {
        if buf.len() < HEADER_SIZE {
            return Err(FrameError::Truncated);
        }
        let rd32 = |at: usize| u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"));
        let rd64 = |at: usize| u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"));
        if rd32(0) != FRAME_MAGIC {
            return Err(FrameError::BadMagic);
        }
        let len = rd32(28) as usize;
        match buf.len().checked_sub(HEADER_SIZE) {
            Some(have) if have < len => return Err(FrameError::Truncated),
            Some(have) if have > len => return Err(FrameError::LengthMismatch),
            _ => {}
        }
        let stored = rd32(CRC_OFFSET);
        let computed = frame_crc(buf);
        if stored != computed {
            return Err(FrameError::CrcMismatch { stored, computed });
        }
        Ok(Frame {
            src: rd32(4),
            dst: rd32(8),
            tag: rd64(12),
            seq: rd64(20),
            payload: buf[HEADER_SIZE..].to_vec(),
        })
    }
}

/// CRC32 of an encoded frame buffer, skipping the CRC field itself.
fn frame_crc(buf: &[u8]) -> u32 {
    let state = crc_update(CRC_INIT, &buf[..CRC_OFFSET]);
    let state = crc_update(state, &buf[CRC_OFFSET + 4..]);
    crc_finish(state)
}

/// Flip a seeded burst of 1–32 contiguous bits in `buf` — the fault
/// injector's corruption model, chosen because CRC32 detects *every* burst
/// of at most 32 bits, making corruption detection a guarantee rather
/// than a probability.
pub fn corrupt_burst(buf: &mut [u8], seed: u64) {
    if buf.is_empty() {
        return;
    }
    let total_bits = buf.len() as u64 * 8;
    let start = seed % total_bits;
    let width = 1 + (seed >> 32) % 32;
    for bit in start..(start + width).min(total_bits) {
        buf[(bit / 8) as usize] ^= 1 << (bit % 8);
    }
}

// ---- receiver-side dedup + in-order reassembly ----

/// What the receiver did with an offered frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Offer {
    /// New sequence number: buffered / appended in order.
    Accepted,
    /// Already-seen sequence number: dropped.
    Duplicate,
}

/// Receiver-side state for one message: accepts frames in any order,
/// drops duplicate sequence numbers, and reassembles the payload in
/// sequence order.
#[derive(Debug)]
pub struct Reassembler {
    next_seq: u64,
    data: Vec<u8>,
    out_of_order: BTreeMap<u64, Vec<u8>>,
}

impl Reassembler {
    /// Start reassembling a message whose first frame carries `first_seq`.
    pub fn new(first_seq: u64) -> Self {
        Reassembler {
            next_seq: first_seq,
            data: Vec::new(),
            out_of_order: BTreeMap::new(),
        }
    }

    /// Offer a verified frame; duplicates (by sequence number) are
    /// rejected, fresh frames are merged in order.
    pub fn offer(&mut self, frame: Frame) -> Offer {
        if frame.seq < self.next_seq || self.out_of_order.contains_key(&frame.seq) {
            return Offer::Duplicate;
        }
        self.out_of_order.insert(frame.seq, frame.payload);
        while let Some(chunk) = self.out_of_order.remove(&self.next_seq) {
            self.data.extend_from_slice(&chunk);
            self.next_seq += 1;
        }
        Offer::Accepted
    }

    /// True once every sequence number below `end_seq` has been merged.
    pub fn is_complete(&self, end_seq: u64) -> bool {
        self.next_seq >= end_seq && self.out_of_order.is_empty()
    }

    /// The reassembled payload (call once complete).
    pub fn into_payload(self) -> Vec<u8> {
        debug_assert!(self.out_of_order.is_empty(), "incomplete reassembly");
        self.data
    }
}

// ---- structured failure ----

/// A structured, diagnosable transport failure. Escalated as a
/// [`FaultEscalation`](crate::recovery::FaultEscalation) through
/// `Machine::try_run`; `Machine::run` re-raises it as a job-abort panic
/// whose message embeds the `Display` text (what `should_panic` tests and
/// operators see).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// A frame could not be delivered within the retry budget.
    RetryBudgetExhausted {
        /// Sending rank of the doomed frame.
        src: usize,
        /// Destination rank of the doomed frame.
        dst: usize,
        /// Message tag of the stream.
        tag: Tag,
        /// Sequence number of the frame that kept failing.
        seq: u64,
        /// Retransmissions attempted before giving up.
        retries: u32,
    },
    /// A received payload does not decode as the receiver's record type —
    /// mismatched send/recv types or a truncated/garbage payload.
    Decode {
        /// Source rank of the undecodable message.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Message tag.
        tag: Tag,
        /// Payload length in bytes.
        len: usize,
        /// The receiver's record size in bytes.
        elem_size: usize,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::RetryBudgetExhausted {
                src,
                dst,
                tag,
                seq,
                retries,
            } => write!(
                f,
                "transport error: retry budget exhausted on link {src} -> {dst} \
                 (tag {tag:#x}, frame seq {seq}) after {retries} retransmission(s)"
            ),
            TransportError::Decode {
                src,
                dst,
                tag,
                len,
                elem_size,
            } => write!(
                f,
                "transport error: payload from rank {src} to rank {dst} on tag {tag:#x} \
                 does not decode as the receiver's record type \
                 ({len} bytes is not a whole number of {elem_size}-byte records)"
            ),
        }
    }
}

impl std::error::Error for TransportError {}

/// Mutable per-send context threaded through [`SenderTransport::deliver`]:
/// the sender's virtual clock, its counters, and (when tracing) its trace
/// buffer. Bundled so the protocol loop can stamp timeout/retransmit events
/// at the exact virtual times the counters change.
pub(crate) struct TransportIo<'a> {
    /// The sending rank's virtual clock.
    pub now: &'a mut f64,
    /// The sending rank's traffic counters.
    pub stats: &'a mut NetStats,
    /// The sending rank's trace buffer, when tracing is on.
    pub trace: Option<&'a mut TraceBuf>,
}

// ---- the sender-side reliable channel ----

/// Per-rank reliable-transport state: one fault-lottery stream per
/// outgoing link, per-`(dst, tag)` sequence counters, and the rank's
/// seeded stall schedule. Created only when the machine's
/// [`FaultPlan`] is active.
pub(crate) struct SenderTransport {
    plan: FaultPlan,
    rank: usize,
    links: Vec<LinkRng>,
    seqs: HashMap<(usize, Tag), u64>,
    stalls: StallSchedule,
}

impl SenderTransport {
    pub(crate) fn new(plan: FaultPlan, rank: usize, size: usize) -> Self {
        SenderTransport {
            plan,
            rank,
            links: (0..size)
                .map(|dst| LinkRng::for_link(plan.seed, rank, dst))
                .collect(),
            seqs: HashMap::new(),
            stalls: StallSchedule::for_rank(&plan, rank),
        }
    }

    /// Account one application message against the stall schedule;
    /// returns newly-triggered stall seconds and window count, if any.
    pub(crate) fn on_send(&mut self) -> Option<(f64, u64)> {
        self.stalls.on_send()
    }

    /// Run the reliable link protocol for one message to completion and
    /// return the virtual arrival time of the fully reassembled payload at
    /// the receiver. Advances `*io.now` past every retransmit timeout
    /// (exponential backoff), accumulates fault counters into `io.stats`,
    /// and (when tracing) records a timeout/retransmit event per counter
    /// bump. `transit(frame_bytes)` prices one frame's flight.
    ///
    /// Returns a typed [`TransportError::RetryBudgetExhausted`] once any
    /// single frame fails `retry_budget + 1` attempts; the caller decides
    /// how to escalate (the rank send path raises it as a
    /// [`FaultEscalation`](crate::recovery::FaultEscalation) panic payload).
    pub(crate) fn deliver(
        &mut self,
        dst: usize,
        tag: Tag,
        payload: &[u8],
        io: &mut TransportIo<'_>,
        transit: impl Fn(usize) -> f64,
    ) -> Result<f64, TransportError> {
        let now = &mut *io.now;
        let stats = &mut *io.stats;
        let mut trace = io.trace.as_deref_mut();
        let plan = self.plan;
        let src = self.rank;
        let start_seq = *self.seqs.entry((dst, tag)).or_insert(0);
        let nframes = payload.len().div_ceil(plan.mtu).max(1) as u64;
        let mut reasm = Reassembler::new(start_seq);
        let mut arrive_msg = f64::NEG_INFINITY;

        for i in 0..nframes {
            let lo = (i as usize) * plan.mtu;
            let hi = (lo + plan.mtu).min(payload.len());
            let frame = Frame {
                src: src as u32,
                dst: dst as u32,
                tag,
                seq: start_seq + i,
                payload: payload[lo..hi].to_vec(),
            };
            let encoded = frame.encode();
            let mut rto = plan.rto_s;
            let mut attempt = 0u32;
            loop {
                let fate = FrameFate::draw(&mut self.links[dst], &plan);
                attempt += 1;
                let mut acked = false;
                if !fate.drop {
                    let wire_bytes = if fate.corrupt {
                        let mut c = encoded.clone();
                        corrupt_burst(&mut c, fate.corrupt_seed);
                        c
                    } else {
                        encoded.clone()
                    };
                    match Frame::decode(&wire_bytes) {
                        Err(_) => {
                            // the receiver's CRC check rejects the frame
                            // silently (no ack) — indistinguishable from a
                            // drop to the sender, so the RTO fires below
                            stats.corrupt_frames += 1;
                        }
                        Ok(f) => {
                            let mut arr = *now + transit(encoded.len());
                            match reasm.offer(f) {
                                Offer::Accepted => {
                                    if fate.reorder {
                                        // delayed past its successors; the
                                        // reassembler masks the order, the
                                        // clock pays the delay
                                        arr += plan.rto_s / 2.0;
                                        stats.reordered_frames += 1;
                                    }
                                    arrive_msg = arrive_msg.max(arr);
                                }
                                Offer::Duplicate => stats.dup_frames_dropped += 1,
                            }
                            if fate.duplicate {
                                // the network delivers a second clean copy;
                                // the receiver's seqno dedup discards it
                                let copy = Frame::decode(&encoded).expect("clean copy decodes");
                                if reasm.offer(copy) == Offer::Duplicate {
                                    stats.dup_frames_dropped += 1;
                                }
                            }
                            acked = !fate.ack_drop;
                        }
                    }
                }
                if acked {
                    break;
                }
                // data lost, frame corrupted, or ack lost: the retransmit
                // timer fires in virtual time
                stats.timeouts += 1;
                if let Some(tb) = trace.as_deref_mut() {
                    tb.record(
                        *now,
                        TraceKind::Count,
                        TraceCode::Timeout,
                        start_seq + i,
                        attempt as u64,
                    );
                }
                if attempt > plan.retry_budget {
                    return Err(TransportError::RetryBudgetExhausted {
                        src,
                        dst,
                        tag,
                        seq: start_seq + i,
                        retries: attempt - 1,
                    });
                }
                stats.retransmits += 1;
                *now += rto;
                stats.comm_s += rto;
                if let Some(tb) = trace.as_deref_mut() {
                    tb.record(
                        *now,
                        TraceKind::Count,
                        TraceCode::Retransmit,
                        start_seq + i,
                        attempt as u64,
                    );
                }
                rto *= plan.backoff;
            }
        }

        debug_assert!(reasm.is_complete(start_seq + nframes));
        let reassembled = reasm.into_payload();
        debug_assert_eq!(
            reassembled, payload,
            "reliable transport must reproduce the payload exactly"
        );
        self.seqs.insert((dst, tag), start_seq + nframes);
        // arrival can never precede the send completing
        Ok(arrive_msg.max(*now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(seq: u64, payload: &[u8]) -> Frame {
        Frame {
            src: 1,
            dst: 2,
            tag: 0x77,
            seq,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn crc32_known_vector() {
        // the classic check value for CRC-32/ISO-HDLC
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let f = frame(42, b"hello lossy world");
        let enc = f.encode();
        assert_eq!(enc.len(), HEADER_SIZE + 17);
        assert_eq!(Frame::decode(&enc), Ok(f));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let f = frame(0, b"");
        assert_eq!(Frame::decode(&f.encode()), Ok(f));
    }

    #[test]
    fn truncated_frame_rejected() {
        let enc = frame(1, b"abcdef").encode();
        assert_eq!(Frame::decode(&enc[..10]), Err(FrameError::Truncated));
        assert_eq!(
            Frame::decode(&enc[..enc.len() - 1]),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc = frame(1, b"abcdef").encode();
        enc.push(0);
        assert_eq!(Frame::decode(&enc), Err(FrameError::LengthMismatch));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut enc = frame(1, b"abcdef").encode();
        enc[0] ^= 0xFF;
        assert_eq!(Frame::decode(&enc), Err(FrameError::BadMagic));
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let enc = frame(7, b"the quick brown fox").encode();
        for bit in 0..enc.len() * 8 {
            let mut bad = enc.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                Frame::decode(&bad).is_err(),
                "undetected single-bit flip at bit {bit}"
            );
        }
    }

    #[test]
    fn reassembler_handles_reorder_and_dups() {
        let mut r = Reassembler::new(10);
        assert_eq!(r.offer(frame(12, b"cc")), Offer::Accepted);
        assert_eq!(r.offer(frame(10, b"aa")), Offer::Accepted);
        assert_eq!(r.offer(frame(10, b"aa")), Offer::Duplicate);
        assert_eq!(r.offer(frame(12, b"cc")), Offer::Duplicate);
        assert_eq!(r.offer(frame(11, b"bb")), Offer::Accepted);
        assert!(r.is_complete(13));
        assert_eq!(r.into_payload(), b"aabbcc");
    }

    #[test]
    fn reassembler_rejects_already_merged_seq() {
        let mut r = Reassembler::new(0);
        assert_eq!(r.offer(frame(0, b"x")), Offer::Accepted);
        assert_eq!(r.offer(frame(0, b"x")), Offer::Duplicate);
        assert!(!r.is_complete(2));
    }

    #[test]
    fn transport_error_display_names_the_link() {
        let e = TransportError::RetryBudgetExhausted {
            src: 3,
            dst: 5,
            tag: 0x42,
            seq: 17,
            retries: 16,
        };
        let s = e.to_string();
        assert!(s.contains("link 3 -> 5"), "{s}");
        assert!(s.contains("seq 17"), "{s}");
        assert!(s.contains("16 retransmission"), "{s}");
        let d = TransportError::Decode {
            src: 1,
            dst: 0,
            tag: 9,
            len: 7,
            elem_size: 8,
        };
        assert!(d.to_string().contains("does not decode"));
    }
}
