//! Distributed shortest-path state and result gathering.
//!
//! Every distributed SSSP/BFS kernel keeps `dist`/`parent` arrays indexed by
//! *local* vertex id. Validation and tests need the global view, so this
//! module provides the collective that reassembles a [`ShortestPaths`] over
//! global ids on every rank. (The real benchmark validates distributedly;
//! gathering is the right call at simulation scale and keeps the validator
//! independent of the partitioning.)

use crate::VertexPartition;
use g500_graph::{ShortestPaths, Weight, INF_WEIGHT, NO_PARENT};
use simnet::RankCtx;

/// One rank's slice of a shortest-path computation.
#[derive(Clone, Debug)]
pub struct DistShortestPaths {
    /// `dist[l]` for local vertex `l`.
    pub dist: Vec<Weight>,
    /// `parent[l]` (global id) for local vertex `l`.
    pub parent: Vec<u64>,
}

impl DistShortestPaths {
    /// All-unreached state over `n_local` vertices.
    pub fn unreached(n_local: usize) -> Self {
        Self {
            dist: vec![INF_WEIGHT; n_local],
            parent: vec![NO_PARENT; n_local],
        }
    }

    /// Number of locally reached vertices.
    pub fn reached_local(&self) -> u64 {
        self.dist.iter().filter(|d| d.is_finite()).count() as u64
    }

    /// Collectively reassemble the global result on every rank.
    ///
    /// Each rank contributes `(global_id, dist, parent)` for its *reached*
    /// vertices only (unreached are implied), so the payload is proportional
    /// to the component size, as in the real benchmark's validation gather.
    pub fn gather_to_all<P: VertexPartition>(&self, ctx: &mut RankCtx, part: &P) -> ShortestPaths {
        let me = ctx.rank();
        let mine: Vec<(u64, f32, u64)> = self
            .dist
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .map(|(l, &d)| (part.to_global(me, l), d, self.parent[l]))
            .collect();
        let blocks = ctx.allgatherv(&mine);
        let mut out = ShortestPaths::unreached(part.num_vertices() as usize);
        for block in blocks {
            for (v, d, p) in block {
                out.dist[v as usize] = d;
                out.parent[v as usize] = p;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::part1d::Block1D;
    use crate::VertexPartition;
    use simnet::{Machine, MachineConfig};

    #[test]
    fn gather_reassembles_global_view() {
        let rep = Machine::new(MachineConfig::with_ranks(3)).run(|ctx| {
            let part = Block1D::new(9, 3);
            let n_local = part.local_count(ctx.rank());
            let mut d = DistShortestPaths::unreached(n_local);
            // mark every even global vertex reached with dist = id/2
            for l in 0..n_local {
                let v = part.to_global(ctx.rank(), l);
                if v % 2 == 0 {
                    d.dist[l] = v as f32 / 2.0;
                    d.parent[l] = v;
                }
            }
            d.gather_to_all(ctx, &part)
        });
        for sp in rep.results {
            assert_eq!(sp.reached_count(), 5);
            assert_eq!(sp.dist[4], 2.0);
            assert!(sp.dist[3].is_infinite());
            assert_eq!(sp.parent[6], 6);
            assert_eq!(sp.parent[3], NO_PARENT);
        }
    }
}
