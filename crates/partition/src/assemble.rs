//! Distributed graph assembly: from per-rank edge blocks to per-rank CSRs.
//!
//! The benchmark's construction phase (Graph500 "kernel 0") works like the
//! record run's: every rank generates an arbitrary slice of the global edge
//! list (the counter-based generator makes the slices independent), the
//! slices are exchanged so each arc reaches the rank owning its *source*
//! vertex, and each rank builds a CSR over its local vertices whose targets
//! remain global ids. Because Graph500 graphs are undirected, each input
//! edge contributes an arc in both directions, and the local "transpose"
//! needed by pull-mode relaxation is the graph itself.

use crate::VertexPartition;
use g500_graph::{VertexId, Weight};
use simnet::RankCtx;

/// One rank's share of the distributed graph.
#[derive(Clone, Debug)]
pub struct LocalGraph<P: VertexPartition> {
    part: P,
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
    /// Total arcs across all ranks (2× the undirected edge count).
    global_arcs: u64,
}

/// Wire record for one arc: (global source, global target, weight).
type ArcRec = (u64, u64, f32);

/// Exchange arcs so each rank holds the out-arcs of its own vertices, then
/// build the local CSR. `my_edges` is this rank's generated slice of the
/// *undirected* edge list; both directions of every edge are materialised
/// here. Must be called by all ranks collectively.
pub fn assemble_local_graph<P: VertexPartition>(
    ctx: &mut RankCtx,
    my_edges: impl Iterator<Item = g500_graph::WEdge>,
    part: P,
) -> LocalGraph<P> {
    let p = ctx.size();
    assert_eq!(
        p,
        part.num_ranks(),
        "partition sized for a different machine"
    );

    // Bucket both directions of each edge by owner of the arc's source.
    let mut out: Vec<Vec<ArcRec>> = vec![Vec::new(); p];
    let mut local_edges = 0u64;
    for e in my_edges {
        out[part.owner(e.u)].push((e.u, e.v, e.w));
        out[part.owner(e.v)].push((e.v, e.u, e.w));
        local_edges += 1;
    }
    // Charge the bucketing scan (one op per generated arc).
    ctx.charge_compute(2 * local_edges);

    let received = ctx.alltoallv(out);

    // Counting sort into CSR over local indices.
    let n_local = part.local_count(ctx.rank());
    let mut degree = vec![0u64; n_local];
    let mut total = 0usize;
    for block in &received {
        for &(src, _, _) in block {
            debug_assert_eq!(part.owner(src), ctx.rank(), "misrouted arc");
            degree[part.to_local(src)] += 1;
        }
        total += block.len();
    }
    let mut offsets = vec![0u64; n_local + 1];
    for l in 0..n_local {
        offsets[l + 1] = offsets[l] + degree[l];
    }
    let mut cursor = offsets[..n_local].to_vec();
    let mut targets = vec![0 as VertexId; total];
    let mut weights = vec![0.0 as Weight; total];
    for block in &received {
        for &(src, dst, w) in block {
            let l = part.to_local(src);
            let c = &mut cursor[l];
            targets[*c as usize] = dst;
            weights[*c as usize] = w;
            *c += 1;
        }
    }
    ctx.charge_compute(2 * total as u64);

    let global_arcs = ctx.allreduce_sum(total as u64);

    LocalGraph {
        part,
        offsets,
        targets,
        weights,
        global_arcs,
    }
}

impl<P: VertexPartition> LocalGraph<P> {
    /// The ownership map this graph is distributed by.
    pub fn part(&self) -> &P {
        &self.part
    }

    /// Number of vertices owned by this rank.
    pub fn local_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of arcs stored on this rank.
    pub fn local_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Total arcs over all ranks (2× the undirected edge count).
    pub fn global_arcs(&self) -> u64 {
        self.global_arcs
    }

    /// Out-degree of local vertex `l`.
    #[inline]
    pub fn degree(&self, l: usize) -> usize {
        (self.offsets[l + 1] - self.offsets[l]) as usize
    }

    /// `(global target, weight)` pairs of local vertex `l`.
    #[inline]
    pub fn arcs(&self, l: usize) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let lo = self.offsets[l] as usize;
        let hi = self.offsets[l + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Global targets of local vertex `l`.
    #[inline]
    pub fn neighbors(&self, l: usize) -> &[VertexId] {
        let lo = self.offsets[l] as usize;
        let hi = self.offsets[l + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Weights of local vertex `l`'s arcs, parallel to [`neighbors`]. The
    /// two contiguous slices let relaxation inner loops run as a single
    /// counted zip instead of an iterator chain.
    ///
    /// [`neighbors`]: LocalGraph::neighbors
    pub fn edge_weights(&self, l: usize) -> &[Weight] {
        let lo = self.offsets[l] as usize;
        let hi = self.offsets[l + 1] as usize;
        &self.weights[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::part1d::Block1D;
    use g500_graph::{EdgeList, WEdge};
    use simnet::{Machine, MachineConfig};

    /// Generator-slice helper: rank r takes edges [r·m/p, (r+1)·m/p).
    fn my_slice(el: &EdgeList, rank: usize, p: usize) -> Vec<WEdge> {
        let m = el.len();
        let lo = rank * m / p;
        let hi = (rank + 1) * m / p;
        (lo..hi).map(|i| el.get(i)).collect()
    }

    #[test]
    fn path_graph_distributes_correctly() {
        let el = g500_gen::simple::path(10, 1.0);
        let rep = Machine::new(MachineConfig::with_ranks(3)).run(|ctx| {
            let part = Block1D::new(10, 3);
            let mine = my_slice(&el, ctx.rank(), 3);
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            (g.local_vertices(), g.local_arcs(), g.global_arcs())
        });
        // 9 edges → 18 arcs globally
        assert!(rep.results.iter().all(|&(_, _, ga)| ga == 18));
        let total_arcs: usize = rep.results.iter().map(|&(_, a, _)| a).sum();
        assert_eq!(total_arcs, 18);
        let total_verts: usize = rep.results.iter().map(|&(v, _, _)| v).sum();
        assert_eq!(total_verts, 10);
    }

    #[test]
    fn assembled_graph_matches_sequential_csr() {
        use g500_graph::{Csr, Directedness};
        let el = g500_gen::simple::erdos_renyi(40, 200, 5);
        let p = 4;
        let rep = Machine::new(MachineConfig::with_ranks(p)).run(|ctx| {
            let part = Block1D::new(40, p);
            let mine = my_slice(&el, ctx.rank(), p);
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            // return each local vertex's sorted adjacency with global ids
            let mut adj: Vec<(u64, Vec<(u64, u32)>)> = Vec::new();
            for l in 0..g.local_vertices() {
                let v = part.to_global(ctx.rank(), l);
                let mut ns: Vec<(u64, u32)> = g.arcs(l).map(|(t, w)| (t, w.to_bits())).collect();
                ns.sort_unstable();
                adj.push((v, ns));
            }
            adj
        });
        // sequential reference
        let csr = Csr::from_edges(40, &el, Directedness::Undirected);
        for rank_adj in rep.results {
            for (v, ns) in rank_adj {
                let mut expect: Vec<(u64, u32)> = csr
                    .arcs(v as usize)
                    .map(|(t, w)| (t, w.to_bits()))
                    .collect();
                expect.sort_unstable();
                assert_eq!(ns, expect, "vertex {v}");
            }
        }
    }

    #[test]
    fn single_rank_owns_everything() {
        let el = g500_gen::simple::star(8, 0.5);
        let rep = Machine::new(MachineConfig::with_ranks(1)).run(|ctx| {
            let part = Block1D::new(8, 1);
            let mine: Vec<WEdge> = el.iter().collect();
            let g = assemble_local_graph(ctx, mine.into_iter(), part);
            (g.local_vertices(), g.local_arcs(), g.degree(0))
        });
        assert_eq!(rep.results[0], (8, 14, 7));
    }

    #[test]
    fn traffic_is_charged_for_remote_arcs() {
        let el = g500_gen::simple::cycle(12, 1.0);
        let rep = Machine::new(MachineConfig::with_ranks(4)).run(|ctx| {
            let part = Block1D::new(12, 4);
            let mine = my_slice(&el, ctx.rank(), 4);
            assemble_local_graph(ctx, mine.into_iter(), part);
        });
        let stats = rep.total_stats();
        assert!(
            stats.coll_bytes > 0,
            "assembly must move arcs between ranks"
        );
    }
}
